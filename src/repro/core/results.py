"""Result containers of the ApproxFPGAs flow."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..asic import AsicReport
from ..error import ErrorReport
from ..fpga import FpgaReport
from .exploration import ExplorationCost


@dataclass
class CircuitRecord:
    """Everything the flow knows about one circuit of the library."""

    name: str
    error: ErrorReport
    asic: AsicReport
    features: np.ndarray
    fpga: Optional[FpgaReport] = None
    """Measured FPGA report; ``None`` until the circuit has been synthesized."""

    estimated: Dict[str, float] = field(default_factory=dict)
    """Model estimates of the FPGA parameters (parameter name -> value)."""

    @property
    def synthesized(self) -> bool:
        return self.fpga is not None


@dataclass
class ModelEvaluation:
    """Validation outcome of one (model, FPGA parameter) pair."""

    model_id: str
    parameter: str
    fidelity: float
    pearson: float
    r2: float
    train_time_s: float


@dataclass
class ParameterOutcome:
    """Per-FPGA-parameter outcome of the flow."""

    parameter: str
    top_models: List[str]
    candidate_names: List[str]
    """Circuits selected by the pseudo-Pareto fronts (union over models/fronts)."""

    final_front_names: List[str]
    """Measured Pareto-optimal circuits among all synthesized circuits."""

    true_front_names: List[str] = field(default_factory=list)
    """Oracle Pareto front over the full library (only when coverage is evaluated)."""

    coverage: Optional[float] = None


@dataclass
class ApproxFpgasResult:
    """Full outcome of :class:`repro.core.methodology.ApproxFpgasFlow`."""

    library_name: str
    kind: str
    bitwidth: int
    records: Dict[str, CircuitRecord]
    model_evaluations: List[ModelEvaluation]
    parameter_outcomes: Dict[str, ParameterOutcome]
    exploration_cost: ExplorationCost
    training_names: List[str]
    validation_names: List[str]

    # ------------------------------------------------------------------ #
    def fidelity_table(self) -> Dict[str, Dict[str, float]]:
        """parameter -> model id -> fidelity (the data behind Fig. 5)."""
        table: Dict[str, Dict[str, float]] = {}
        for evaluation in self.model_evaluations:
            table.setdefault(evaluation.parameter, {})[evaluation.model_id] = evaluation.fidelity
        return table

    def top_models(self, parameter: str, k: int = 3) -> List[Tuple[str, float]]:
        """The ``k`` best models for ``parameter`` by validation fidelity (Table II)."""
        rows = [
            (evaluation.model_id, evaluation.fidelity)
            for evaluation in self.model_evaluations
            if evaluation.parameter == parameter
        ]
        rows.sort(key=lambda item: item[1], reverse=True)
        return rows[:k]

    def synthesized_names(self) -> List[str]:
        return [name for name, record in self.records.items() if record.synthesized]

    def num_synthesized(self) -> int:
        return len(self.synthesized_names())

    def measured(self, parameter: str) -> Dict[str, float]:
        """Measured FPGA parameter values of all synthesized circuits."""
        values: Dict[str, float] = {}
        for name, record in self.records.items():
            if record.fpga is not None:
                values[name] = record.fpga.parameter(parameter)
        return values

    def summary(self) -> Dict[str, object]:
        """Compact dictionary used by the benchmarks and EXPERIMENTS.md."""
        return {
            "library": self.library_name,
            "num_circuits": len(self.records),
            "num_synthesized": self.num_synthesized(),
            "speedup": self.exploration_cost.speedup,
            "coverage": {
                parameter: outcome.coverage
                for parameter, outcome in self.parameter_outcomes.items()
            },
            "top_models": {
                parameter: outcome.top_models
                for parameter, outcome in self.parameter_outcomes.items()
            },
        }
