"""The end-to-end ApproxFPGAs flow (Fig. 2 of the paper).

The flow takes a library of approximate circuits and produces the set of
Pareto-optimal FPGA approximate circuits (FPGA-ACs) while synthesizing only a
small fraction of the library:

1. evaluate the error (MED) of every circuit with its behavioural model;
2. obtain ASIC reports (cheap) and build feature vectors for every circuit;
3. synthesize a random training subset for the target FPGA;
4. train the Table I S/ML models per FPGA parameter and rank them by
   fidelity on a held-out validation split;
5. estimate the FPGA parameters of the whole library with the top-k models;
6. build several successive pseudo-Pareto fronts per (model, parameter) in
   the (error, estimated cost) plane and take their union;
7. re-synthesize the selected candidates to obtain measured FPGA costs;
8. report the measured Pareto front, the synthesis-time accounting, and
   (optionally, for evaluation) the coverage of the true Pareto front.

The staged implementation lives in :mod:`repro.core.stages` on top of the
:mod:`repro.api` pipeline; :class:`ApproxFpgasFlow` and
:func:`run_approxfpgas` are kept as thin backwards-compatible wrappers whose
seeded results are bit-identical to the historical monolithic flow.  New
code should prefer :class:`repro.api.ExplorationSession`, which adds shared
caching, artifact checkpointing and resumable runs on the same stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..asic import AsicSynthesizer
from ..engine import BatchEvaluator
from ..error import ERROR_METRICS, ErrorEvaluator
from ..fpga import FPGA_PARAMETERS, FpgaSynthesizer
from ..generators import CircuitLibrary
from ..ml import MODEL_IDS
from .results import ApproxFpgasResult, CircuitRecord
from .stages import (
    ApproxFpgasState,
    approxfpgas_stages,
    build_approxfpgas_result,
    select_training_subset,
)


@dataclass
class ApproxFpgasConfig:
    """Configuration of the ApproxFPGAs flow.

    The defaults follow the paper's recipe: a small synthesized subset (15%
    of the library by default, floored at ``min_training_circuits``) split
    80/20 into training and validation, the three FPGA parameters, three
    pseudo-Pareto fronts and the union of the top-3 models per parameter.
    """

    training_fraction: float = 0.15
    validation_fraction: float = 0.2
    min_training_circuits: int = 20
    num_pseudo_fronts: int = 3
    top_k_models: int = 3
    model_ids: Sequence[str] = field(default_factory=lambda: list(MODEL_IDS))
    fpga_parameters: Sequence[str] = FPGA_PARAMETERS
    error_metric: str = "med"
    seed: int = 42
    evaluate_coverage: bool = True
    """Synthesize the remaining circuits (outside the time accounting) to
    measure how much of the true Pareto front the flow recovered."""

    def __post_init__(self) -> None:
        if not (0.0 < self.training_fraction <= 1.0):
            raise ValueError("training_fraction must be in (0, 1]")
        if not (0.0 < self.validation_fraction < 1.0):
            raise ValueError("validation_fraction must be in (0, 1)")
        if self.min_training_circuits < 2:
            raise ValueError(
                "min_training_circuits must be at least 2 (one training and "
                "one validation circuit)"
            )
        if self.num_pseudo_fronts < 1:
            raise ValueError("num_pseudo_fronts must be at least 1")
        if self.top_k_models < 1:
            raise ValueError("top_k_models must be at least 1")
        unknown = set(self.fpga_parameters) - set(FPGA_PARAMETERS)
        if unknown:
            raise ValueError(f"unknown FPGA parameters: {sorted(unknown)}")
        if self.error_metric not in ERROR_METRICS:
            raise ValueError(
                f"unknown error metric {self.error_metric!r}; "
                f"available: {ERROR_METRICS.keys()}"
            )


class ApproxFpgasFlow:
    """Backwards-compatible facade over the staged ApproxFPGAs pipeline.

    The constructor signature and the public helpers (:meth:`build_records`,
    :meth:`select_training_subset`, :meth:`run`) are unchanged from the
    original monolithic implementation, and seeded results are
    bit-identical; the work itself is delegated to the
    :mod:`repro.core.stages` pipeline.  New code that wants shared caches,
    checkpointing or progress callbacks should use
    :class:`repro.api.ExplorationSession` instead.
    """

    def __init__(
        self,
        library: CircuitLibrary,
        config: Optional[ApproxFpgasConfig] = None,
        fpga_synthesizer: Optional[FpgaSynthesizer] = None,
        asic_synthesizer: Optional[AsicSynthesizer] = None,
        error_evaluator: Optional[ErrorEvaluator] = None,
        engine: Optional[BatchEvaluator] = None,
    ):
        if len(library) == 0:
            raise ValueError("the circuit library is empty")
        self.library = library
        self.config = config or ApproxFpgasConfig()
        self.fpga = fpga_synthesizer or FpgaSynthesizer()
        self.asic = asic_synthesizer or AsicSynthesizer()
        self.error_evaluator = error_evaluator or ErrorEvaluator(library.reference())
        # All circuit evaluation (error metrics, ASIC cost models, FPGA
        # synthesis) is routed through one engine so structurally identical
        # circuits and repeated flow stages share cached results.
        self.engine = engine or BatchEvaluator(
            error_evaluator=self.error_evaluator,
            asic_synthesizer=self.asic,
            fpga_synthesizer=self.fpga,
        )

    def _state(self) -> ApproxFpgasState:
        return ApproxFpgasState(library=self.library, config=self.config, engine=self.engine)

    # ------------------------------------------------------------------ #
    # Individual stages (public so benchmarks and ablations can reuse them)
    # ------------------------------------------------------------------ #
    def build_records(self) -> Tuple[Dict[str, CircuitRecord], np.ndarray, List[str]]:
        """Stage 1-2: error metrics, ASIC reports and feature vectors for the library."""
        from .stages import EvaluateLibraryStage

        state = self._state()
        stage = EvaluateLibraryStage()
        stage.absorb(state, stage.compute(state))
        return state.records, state.features, state.feature_names

    def select_training_subset(self) -> List[str]:
        """Stage 3 selection: the random subset that will be synthesized first."""
        return select_training_subset(self.library, self.config)

    # ------------------------------------------------------------------ #
    def run(self) -> ApproxFpgasResult:
        """Execute the full flow and return the collected results."""
        state = self._state()
        # Route stages 1-3 through the public helper methods so subclasses
        # that override them (the advertised ablation hooks) keep taking
        # effect inside run(), exactly as in the monolithic implementation.
        state.records_builder = self.build_records
        state.subset_selector = self.select_training_subset
        for stage in approxfpgas_stages(self.config):
            stage.absorb(state, stage.compute(state))
        return build_approxfpgas_result(state)


def run_approxfpgas(library: CircuitLibrary, **config_kwargs) -> ApproxFpgasResult:
    """Convenience wrapper: run the flow with keyword-configured settings."""
    config = ApproxFpgasConfig(**config_kwargs) if config_kwargs else ApproxFpgasConfig()
    return ApproxFpgasFlow(library, config=config).run()
