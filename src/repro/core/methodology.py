"""The end-to-end ApproxFPGAs flow (Fig. 2 of the paper).

The flow takes a library of approximate circuits and produces the set of
Pareto-optimal FPGA approximate circuits (FPGA-ACs) while synthesizing only a
small fraction of the library:

1. evaluate the error (MED) of every circuit with its behavioural model;
2. obtain ASIC reports (cheap) and build feature vectors for every circuit;
3. synthesize a random training subset for the target FPGA;
4. train the Table I S/ML models per FPGA parameter and rank them by
   fidelity on a held-out validation split;
5. estimate the FPGA parameters of the whole library with the top-k models;
6. build several successive pseudo-Pareto fronts per (model, parameter) in
   the (error, estimated cost) plane and take their union;
7. re-synthesize the selected candidates to obtain measured FPGA costs;
8. report the measured Pareto front, the synthesis-time accounting, and
   (optionally, for evaluation) the coverage of the true Pareto front.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..asic import AsicSynthesizer
from ..engine import BatchEvaluator
from ..error import ErrorEvaluator
from ..features import feature_matrix
from ..fpga import FPGA_PARAMETERS, FpgaSynthesizer, estimate_synthesis_time
from ..generators import CircuitLibrary
from ..ml import MODEL_IDS, build_model, pearson_correlation, r2_score
from .exploration import ExplorationCost
from .fidelity import fidelity
from .pareto import pareto_coverage, pareto_front_indices, pareto_union, successive_pareto_fronts
from .results import ApproxFpgasResult, CircuitRecord, ModelEvaluation, ParameterOutcome


@dataclass
class ApproxFpgasConfig:
    """Configuration of the ApproxFPGAs flow.

    The defaults follow the paper: a ~10% synthesized subset split 80/20 into
    training and validation, the three FPGA parameters, three pseudo-Pareto
    fronts and the union of the top-3 models per parameter.
    """

    training_fraction: float = 0.15
    validation_fraction: float = 0.2
    min_training_circuits: int = 20
    num_pseudo_fronts: int = 3
    top_k_models: int = 3
    model_ids: Sequence[str] = field(default_factory=lambda: list(MODEL_IDS))
    fpga_parameters: Sequence[str] = FPGA_PARAMETERS
    error_metric: str = "med"
    seed: int = 42
    evaluate_coverage: bool = True
    """Synthesize the remaining circuits (outside the time accounting) to
    measure how much of the true Pareto front the flow recovered."""

    def __post_init__(self) -> None:
        if not (0.0 < self.training_fraction <= 1.0):
            raise ValueError("training_fraction must be in (0, 1]")
        if not (0.0 < self.validation_fraction < 1.0):
            raise ValueError("validation_fraction must be in (0, 1)")
        if self.num_pseudo_fronts < 1:
            raise ValueError("num_pseudo_fronts must be at least 1")
        if self.top_k_models < 1:
            raise ValueError("top_k_models must be at least 1")
        unknown = set(self.fpga_parameters) - set(FPGA_PARAMETERS)
        if unknown:
            raise ValueError(f"unknown FPGA parameters: {sorted(unknown)}")


class ApproxFpgasFlow:
    """Orchestrates the full methodology on one circuit library."""

    def __init__(
        self,
        library: CircuitLibrary,
        config: Optional[ApproxFpgasConfig] = None,
        fpga_synthesizer: Optional[FpgaSynthesizer] = None,
        asic_synthesizer: Optional[AsicSynthesizer] = None,
        error_evaluator: Optional[ErrorEvaluator] = None,
        engine: Optional[BatchEvaluator] = None,
    ):
        if len(library) == 0:
            raise ValueError("the circuit library is empty")
        self.library = library
        self.config = config or ApproxFpgasConfig()
        self.fpga = fpga_synthesizer or FpgaSynthesizer()
        self.asic = asic_synthesizer or AsicSynthesizer()
        self.error_evaluator = error_evaluator or ErrorEvaluator(library.reference())
        # All circuit evaluation (error metrics, ASIC cost models, FPGA
        # synthesis) is routed through one engine so structurally identical
        # circuits and repeated flow stages share cached results.
        self.engine = engine or BatchEvaluator(
            error_evaluator=self.error_evaluator,
            asic_synthesizer=self.asic,
            fpga_synthesizer=self.fpga,
        )

    # ------------------------------------------------------------------ #
    # Individual stages (public so benchmarks and ablations can reuse them)
    # ------------------------------------------------------------------ #
    def build_records(self) -> Tuple[Dict[str, CircuitRecord], np.ndarray, List[str]]:
        """Stage 1-2: error metrics, ASIC reports and feature vectors for the library."""
        circuits = list(self.library)
        error_reports = self.engine.evaluate_errors(circuits)
        asic_reports = self.engine.evaluate_asic(circuits)
        features, feature_names = feature_matrix(circuits, asic_reports=asic_reports)
        records: Dict[str, CircuitRecord] = {}
        for index, circuit in enumerate(circuits):
            records[circuit.name] = CircuitRecord(
                name=circuit.name,
                error=error_reports[index],
                asic=asic_reports[index],
                features=features[index],
            )
        return records, features, feature_names

    def select_training_subset(self) -> List[str]:
        """Stage 3 selection: the random subset that will be synthesized first."""
        count = max(
            self.config.min_training_circuits,
            int(round(self.config.training_fraction * len(self.library))),
        )
        count = min(count, len(self.library))
        rng = np.random.default_rng(self.config.seed)
        indices = rng.choice(len(self.library), size=count, replace=False)
        return [self.library[int(i)].name for i in sorted(indices)]

    def _error_value(self, record: CircuitRecord) -> float:
        return float(getattr(record.error.metrics, self.config.error_metric))

    # ------------------------------------------------------------------ #
    def run(self) -> ApproxFpgasResult:
        """Execute the full flow and return the collected results."""
        config = self.config
        records, features, feature_names = self.build_records()
        names = [circuit.name for circuit in self.library]
        name_to_index = {name: index for index, name in enumerate(names)}

        # --- Stage 3: synthesize the training subset -------------------- #
        subset_names = self.select_training_subset()
        training_time_s = 0.0
        subset_circuits = [self.library.get(name) for name in subset_names]
        for circuit, report in zip(subset_circuits, self.engine.evaluate_fpga(subset_circuits)):
            records[circuit.name].fpga = report
            training_time_s += estimate_synthesis_time(circuit, self.fpga.device)

        # --- Stage 4: train and validate the model zoo ------------------ #
        rng = np.random.default_rng(config.seed + 1)
        shuffled = list(subset_names)
        rng.shuffle(shuffled)
        num_validation = max(1, int(round(config.validation_fraction * len(shuffled))))
        if num_validation >= len(shuffled):
            num_validation = len(shuffled) - 1
        validation_names = shuffled[:num_validation]
        training_names = shuffled[num_validation:]

        X_train = np.vstack([records[name].features for name in training_names])
        X_val = np.vstack([records[name].features for name in validation_names])

        evaluations: List[ModelEvaluation] = []
        model_time_s = 0.0
        fitted_models: Dict[Tuple[str, str], object] = {}
        for parameter in config.fpga_parameters:
            y_train = np.array(
                [records[name].fpga.parameter(parameter) for name in training_names]
            )
            y_val = np.array(
                [records[name].fpga.parameter(parameter) for name in validation_names]
            )
            for model_id in config.model_ids:
                model = build_model(model_id, feature_names, random_state=config.seed)
                start = time.perf_counter()
                model.fit(X_train, y_train)
                estimates = model.predict(X_val)
                elapsed = time.perf_counter() - start
                model_time_s += elapsed
                evaluations.append(
                    ModelEvaluation(
                        model_id=model_id,
                        parameter=parameter,
                        fidelity=fidelity(y_val, estimates),
                        pearson=pearson_correlation(y_val, estimates),
                        r2=r2_score(y_val, estimates),
                        train_time_s=elapsed,
                    )
                )
                fitted_models[(parameter, model_id)] = model

        # --- Stage 5-6: estimate all circuits, build pseudo-Pareto fronts - #
        errors = np.array([self._error_value(records[name]) for name in names])
        parameter_outcomes: Dict[str, ParameterOutcome] = {}
        resynthesis_time_s = 0.0
        candidate_union: Dict[str, List[str]] = {}

        for parameter in config.fpga_parameters:
            # Rank by validation fidelity; break ties with the Pearson
            # correlation so continuous estimators win over piecewise-constant
            # ones that happen to tie on a small validation set.
            ranked = sorted(
                (e for e in evaluations if e.parameter == parameter),
                key=lambda e: (e.fidelity, e.pearson),
                reverse=True,
            )
            top_models = [evaluation.model_id for evaluation in ranked[: config.top_k_models]]

            fronts_per_model: List[List[int]] = []
            for model_id in top_models:
                model = fitted_models[(parameter, model_id)]
                estimates = model.predict(features)
                points = np.column_stack([errors, estimates])
                fronts = successive_pareto_fronts(points, config.num_pseudo_fronts)
                fronts_per_model.extend(fronts)
                # Remember the estimate of the best-ranked model per circuit.
                if model_id == top_models[0]:
                    for index, name in enumerate(names):
                        records[name].estimated[parameter] = float(estimates[index])

            candidate_indices = pareto_union(fronts_per_model)
            candidate_names = [names[index] for index in candidate_indices]
            candidate_union[parameter] = candidate_names

            parameter_outcomes[parameter] = ParameterOutcome(
                parameter=parameter,
                top_models=top_models,
                candidate_names=candidate_names,
                final_front_names=[],
            )

        # --- Stage 7: re-synthesize the selected candidates -------------- #
        for parameter, candidate_names in candidate_union.items():
            pending = [
                self.library.get(name)
                for name in candidate_names
                if records[name].fpga is None
            ]
            for circuit, report in zip(pending, self.engine.evaluate_fpga(pending)):
                records[circuit.name].fpga = report
                resynthesis_time_s += estimate_synthesis_time(circuit, self.fpga.device)

        # --- Stage 8: measured Pareto fronts over the synthesized set ---- #
        flow_synthesized = {name for name, record in records.items() if record.synthesized}
        for parameter, outcome in parameter_outcomes.items():
            measured_names = sorted(flow_synthesized)
            points = np.column_stack(
                [
                    [self._error_value(records[name]) for name in measured_names],
                    [records[name].fpga.parameter(parameter) for name in measured_names],
                ]
            )
            front = pareto_front_indices(points)
            outcome.final_front_names = [measured_names[i] for i in front]

        exploration_cost = ExplorationCost(
            library_name=self.library.name,
            num_circuits=len(self.library),
            exhaustive_time_s=float(
                sum(estimate_synthesis_time(circuit, self.fpga.device) for circuit in self.library)
            ),
            training_time_s=training_time_s,
            resynthesis_time_s=resynthesis_time_s,
            model_time_s=model_time_s,
        )

        # --- Stage 9 (evaluation only): oracle Pareto front & coverage --- #
        if config.evaluate_coverage:
            missing = [self.library.get(name) for name in names if records[name].fpga is None]
            for circuit, report in zip(missing, self.engine.evaluate_fpga(missing)):
                records[circuit.name].fpga = report
            for parameter, outcome in parameter_outcomes.items():
                points = np.column_stack(
                    [
                        errors,
                        [records[name].fpga.parameter(parameter) for name in names],
                    ]
                )
                true_front = pareto_front_indices(points)
                outcome.true_front_names = [names[i] for i in true_front]
                flow_indices = [name_to_index[name] for name in flow_synthesized]
                outcome.coverage = pareto_coverage(true_front, flow_indices)

        return ApproxFpgasResult(
            library_name=self.library.name,
            kind=self.library.kind,
            bitwidth=self.library.bitwidth,
            records=records,
            model_evaluations=evaluations,
            parameter_outcomes=parameter_outcomes,
            exploration_cost=exploration_cost,
            training_names=training_names,
            validation_names=validation_names,
        )


def run_approxfpgas(library: CircuitLibrary, **config_kwargs) -> ApproxFpgasResult:
    """Convenience wrapper: run the flow with keyword-configured settings."""
    config = ApproxFpgasConfig(**config_kwargs) if config_kwargs else ApproxFpgasConfig()
    return ApproxFpgasFlow(library, config=config).run()
