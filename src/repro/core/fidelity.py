"""The fidelity metric of Eq. (1)-(2).

Fidelity measures how well an estimator preserves the *ordering* of circuits
rather than their absolute values: for every ordered pair of circuits the
relation (<, =, >) between the estimated parameters must match the relation
between the measured parameters.  This is the metric the paper uses to rank
the 18 S/ML models, because Pareto-front construction only depends on the
ordering of candidates.
"""

from __future__ import annotations

import numpy as np


def pairwise_relation_matrix(values: np.ndarray, tolerance: float = 0.0) -> np.ndarray:
    """Sign matrix R[i, j] = sign(values[i] - values[j]) with a tie tolerance."""
    values = np.asarray(values, dtype=np.float64).ravel()
    difference = values[:, None] - values[None, :]
    relations = np.sign(difference)
    if tolerance > 0.0:
        relations[np.abs(difference) <= tolerance] = 0.0
    return relations


def fidelity(
    measured: np.ndarray,
    estimated: np.ndarray,
    tolerance: float = 0.0,
) -> float:
    """Fraction of ordered pairs whose (<, =, >) relation is preserved.

    Implements Eq. (1)-(2) of the paper: the double sum runs over all ordered
    pairs including the diagonal (which always matches), and the result is
    normalised by ``|X|^2``.

    Parameters
    ----------
    measured:
        Ground-truth FPGA parameter values.
    estimated:
        Model estimates for the same circuits, in the same order.
    tolerance:
        Absolute difference below which two values are considered equal.  The
        paper uses exact comparison; a small tolerance makes the metric
        robust for continuous estimates (defaults to exact).
    """
    measured = np.asarray(measured, dtype=np.float64).ravel()
    estimated = np.asarray(estimated, dtype=np.float64).ravel()
    if measured.shape != estimated.shape:
        raise ValueError("measured and estimated must have the same length")
    if measured.size == 0:
        raise ValueError("fidelity of an empty set is undefined")

    measured_relations = pairwise_relation_matrix(measured, tolerance)
    estimated_relations = pairwise_relation_matrix(estimated, tolerance)
    matches = (measured_relations == estimated_relations).sum()
    return float(matches) / float(measured.size ** 2)


def fidelity_strict(measured: np.ndarray, estimated: np.ndarray) -> float:
    """Fidelity over *distinct* pairs only (diagonal excluded).

    A slightly harsher variant useful in tests: the diagonal trivially
    matches, so excluding it removes the ``1/n`` optimistic bias.
    """
    measured = np.asarray(measured, dtype=np.float64).ravel()
    estimated = np.asarray(estimated, dtype=np.float64).ravel()
    if measured.shape != estimated.shape:
        raise ValueError("measured and estimated must have the same length")
    n = measured.size
    if n < 2:
        raise ValueError("fidelity_strict requires at least two circuits")
    measured_relations = pairwise_relation_matrix(measured)
    estimated_relations = pairwise_relation_matrix(estimated)
    matches = (measured_relations == estimated_relations).sum() - n
    return float(matches) / float(n * (n - 1))
