"""Exploration-time accounting (Fig. 3).

The paper's headline efficiency claim is bookkeeping over synthesis time:
exhaustive exploration synthesizes every circuit in every library, while
ApproxFPGAs synthesizes only the training subset plus the circuits on the
union of pseudo-Pareto fronts, and adds the (comparatively negligible) model
training time.  This module provides that accounting on top of the modeled
per-circuit synthesis time of :func:`repro.fpga.estimate_synthesis_time`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..circuits import Netlist
from ..fpga import FpgaDevice, estimate_synthesis_time


@dataclass(frozen=True)
class ExplorationCost:
    """Synthesis-time accounting for one circuit library.

    The re-synthesis field is spelled ``resynthesis_time_s``, matching the
    key emitted by :meth:`as_dict`.  The historical camel-case spelling
    ``reSynthesis_time_s`` is still accepted as a constructor keyword and
    readable as an attribute, but both emit a :class:`DeprecationWarning`.
    """

    library_name: str
    num_circuits: int
    exhaustive_time_s: float
    training_time_s: float
    resynthesis_time_s: float
    model_time_s: float

    def __init__(
        self,
        library_name: str,
        num_circuits: int,
        exhaustive_time_s: float,
        training_time_s: float,
        resynthesis_time_s: Optional[float] = None,
        model_time_s: float = 0.0,
        **legacy: float,
    ):
        if "reSynthesis_time_s" in legacy:
            warnings.warn(
                "the 'reSynthesis_time_s' keyword is deprecated; "
                "use 'resynthesis_time_s'",
                DeprecationWarning,
                stacklevel=2,
            )
            value = legacy.pop("reSynthesis_time_s")
            if resynthesis_time_s is None:
                resynthesis_time_s = value
        if legacy:
            raise TypeError(f"unexpected keyword arguments: {sorted(legacy)}")
        if resynthesis_time_s is None:
            raise TypeError("missing required argument: 'resynthesis_time_s'")
        object.__setattr__(self, "library_name", library_name)
        object.__setattr__(self, "num_circuits", num_circuits)
        object.__setattr__(self, "exhaustive_time_s", exhaustive_time_s)
        object.__setattr__(self, "training_time_s", training_time_s)
        object.__setattr__(self, "resynthesis_time_s", resynthesis_time_s)
        object.__setattr__(self, "model_time_s", model_time_s)

    @property
    def reSynthesis_time_s(self) -> float:
        """Deprecated alias of :attr:`resynthesis_time_s`."""
        warnings.warn(
            "the 'reSynthesis_time_s' attribute is deprecated; "
            "use 'resynthesis_time_s'",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.resynthesis_time_s

    @property
    def approxfpgas_time_s(self) -> float:
        """Total time of the proposed flow for this library."""
        return self.training_time_s + self.resynthesis_time_s + self.model_time_s

    @property
    def speedup(self) -> float:
        """Exhaustive time divided by ApproxFPGAs time."""
        denominator = max(self.approxfpgas_time_s, 1e-9)
        return self.exhaustive_time_s / denominator

    def as_dict(self) -> Dict[str, float]:
        return {
            "num_circuits": self.num_circuits,
            "exhaustive_time_s": self.exhaustive_time_s,
            "training_time_s": self.training_time_s,
            "resynthesis_time_s": self.resynthesis_time_s,
            "model_time_s": self.model_time_s,
            "approxfpgas_time_s": self.approxfpgas_time_s,
            "speedup": self.speedup,
        }


def total_synthesis_time(circuits: Iterable[Netlist], device: Optional[FpgaDevice] = None) -> float:
    """Sum of the modeled synthesis times of ``circuits`` in seconds."""
    return float(sum(estimate_synthesis_time(circuit, device) for circuit in circuits))


@dataclass
class ExplorationSummary:
    """Aggregate of several libraries (the cumulative curves of Fig. 3)."""

    costs: List[ExplorationCost] = field(default_factory=list)

    def add(self, cost: ExplorationCost) -> None:
        self.costs.append(cost)

    @property
    def exhaustive_total_s(self) -> float:
        return sum(cost.exhaustive_time_s for cost in self.costs)

    @property
    def approxfpgas_total_s(self) -> float:
        return sum(cost.approxfpgas_time_s for cost in self.costs)

    @property
    def overall_speedup(self) -> float:
        return self.exhaustive_total_s / max(self.approxfpgas_total_s, 1e-9)

    def cumulative_rows(self) -> List[Dict[str, float]]:
        """Per-library rows plus running cumulative sums (the Fig. 3 series)."""
        rows: List[Dict[str, float]] = []
        cumulative_exhaustive = 0.0
        cumulative_approx = 0.0
        for cost in self.costs:
            cumulative_exhaustive += cost.exhaustive_time_s
            cumulative_approx += cost.approxfpgas_time_s
            rows.append(
                {
                    "library": cost.library_name,
                    "exhaustive_time_s": cost.exhaustive_time_s,
                    "approxfpgas_time_s": cost.approxfpgas_time_s,
                    "cumulative_exhaustive_s": cumulative_exhaustive,
                    "cumulative_approxfpgas_s": cumulative_approx,
                }
            )
        return rows


def seconds_to_days(seconds: float) -> float:
    """Convenience conversion used when reporting Fig. 3 style numbers."""
    return seconds / 86400.0
