"""Stage decomposition of the ApproxFPGAs flow on the :mod:`repro.api` pipeline.

The eight-step methodology of Fig. 2 is expressed as five/six named
:class:`~repro.api.pipeline.Stage` objects over a shared
:class:`ApproxFpgasState`.  Every stage payload is JSON-serialisable (it
reuses the evaluation engine's cache encodings), so a pipeline with an
artifact store checkpoints after each stage and an interrupted run resumes
from the last completed stage with bit-identical results.

The legacy :class:`~repro.core.methodology.ApproxFpgasFlow` is a thin
wrapper over this module; the stage order, RNG seeding and evaluation
batching reproduce the original monolithic ``run()`` exactly, so seeded
results are unchanged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..api.pipeline import Pipeline, PipelineRun, Stage
from ..asic import AsicSynthesizer
from ..engine import (
    BatchEvaluator,
    asic_report_from_payload,
    asic_report_to_payload,
    blake_token,
    error_report_from_payload,
    error_report_to_payload,
    fpga_report_from_payload,
    fpga_report_to_payload,
)
from ..error import ERROR_METRICS, ErrorEvaluator
from ..features import feature_matrix
from ..fpga import FpgaSynthesizer, estimate_synthesis_time
from ..generators import CircuitLibrary
from ..ml import build_model, pearson_correlation, r2_score
from .exploration import ExplorationCost
from .fidelity import fidelity
from ..search import ParetoArchive
from .pareto import pareto_coverage, pareto_front_indices, pareto_union, successive_pareto_fronts
from .results import ApproxFpgasResult, CircuitRecord, ModelEvaluation, ParameterOutcome

__all__ = [
    "ApproxFpgasState",
    "approxfpgas_stages",
    "approxfpgas_run_token",
    "build_approxfpgas_result",
    "run_approxfpgas_pipeline",
    "select_training_subset",
    "EvaluateLibraryStage",
    "SynthesizeTrainingSubsetStage",
    "FitAndSelectStage",
    "ResynthesizeCandidatesStage",
    "MeasureFrontsStage",
    "EvaluateCoverageStage",
]


# --------------------------------------------------------------------- #
# Shared state
# --------------------------------------------------------------------- #
@dataclass
class ApproxFpgasState:
    """Mutable working state threaded through the ApproxFPGAs stages."""

    library: CircuitLibrary
    config: "ApproxFpgasConfig"  # noqa: F821 - imported lazily to avoid a cycle
    engine: BatchEvaluator

    records: Dict[str, CircuitRecord] = field(default_factory=dict)
    features: Optional[np.ndarray] = None
    feature_names: List[str] = field(default_factory=list)

    subset_names: List[str] = field(default_factory=list)
    training_names: List[str] = field(default_factory=list)
    validation_names: List[str] = field(default_factory=list)
    evaluations: List[ModelEvaluation] = field(default_factory=list)
    parameter_outcomes: Dict[str, ParameterOutcome] = field(default_factory=dict)
    candidate_union: Dict[str, List[str]] = field(default_factory=dict)

    training_time_s: float = 0.0
    resynthesis_time_s: float = 0.0
    model_time_s: float = 0.0

    records_builder: Optional[Callable[[], Tuple[Dict[str, CircuitRecord], np.ndarray, List[str]]]] = None
    """Optional override of stage 1-2 (the legacy flow wires its public
    ``build_records`` method here so subclass overrides keep taking effect)."""

    subset_selector: Optional[Callable[[], List[str]]] = None
    """Optional override of the stage 3 subset selection (the legacy flow
    wires its public ``select_training_subset`` method here)."""

    @classmethod
    def create(
        cls,
        library: CircuitLibrary,
        config: Optional["ApproxFpgasConfig"] = None,  # noqa: F821
        *,
        engine: Optional[BatchEvaluator] = None,
        error_evaluator: Optional[ErrorEvaluator] = None,
        fpga_synthesizer: Optional[FpgaSynthesizer] = None,
        asic_synthesizer: Optional[AsicSynthesizer] = None,
    ) -> "ApproxFpgasState":
        """Build a state with the same component defaults as the legacy flow."""
        from .methodology import ApproxFpgasConfig

        if len(library) == 0:
            raise ValueError("the circuit library is empty")
        config = config or ApproxFpgasConfig()
        if engine is None:
            engine = BatchEvaluator(
                error_evaluator=error_evaluator or ErrorEvaluator(library.reference()),
                asic_synthesizer=asic_synthesizer or AsicSynthesizer(),
                fpga_synthesizer=fpga_synthesizer or FpgaSynthesizer(),
            )
        return cls(library=library, config=config, engine=engine)

    # ------------------------------------------------------------------ #
    @property
    def names(self) -> List[str]:
        return [circuit.name for circuit in self.library]

    @property
    def fpga_synthesizer(self) -> FpgaSynthesizer:
        if self.engine.fpga_synthesizer is None:
            self.engine.fpga_synthesizer = FpgaSynthesizer()
        return self.engine.fpga_synthesizer

    def error_value(self, name: str) -> float:
        """The configured error metric of one circuit, via the metric registry."""
        extract = ERROR_METRICS.get(self.config.error_metric)
        return float(extract(self.records[name].error.metrics))


def select_training_subset(library: CircuitLibrary, config) -> List[str]:
    """Stage 3 selection: the random subset that will be synthesized first."""
    count = max(
        config.min_training_circuits,
        int(round(config.training_fraction * len(library))),
    )
    count = min(count, len(library))
    rng = np.random.default_rng(config.seed)
    indices = rng.choice(len(library), size=count, replace=False)
    return [library[int(i)].name for i in sorted(indices)]


# --------------------------------------------------------------------- #
# Stages
# --------------------------------------------------------------------- #
class EvaluateLibraryStage(Stage):
    """Stages 1-2: error metrics, ASIC reports and feature vectors."""

    name = "evaluate-library"

    def compute(self, state: ApproxFpgasState) -> dict:
        if state.records_builder is not None:
            records, features, feature_names = state.records_builder()
            names = [circuit.name for circuit in state.library]
            error_reports = [records[name].error for name in names]
            asic_reports = [records[name].asic for name in names]
        else:
            circuits = list(state.library)
            error_reports = state.engine.evaluate_errors(circuits)
            asic_reports = state.engine.evaluate_asic(circuits)
            features, feature_names = feature_matrix(circuits, asic_reports=asic_reports)
        return {
            "errors": [error_report_to_payload(report) for report in error_reports],
            "asic": [asic_report_to_payload(report) for report in asic_reports],
            "features": features.tolist(),
            "feature_names": list(feature_names),
        }

    def absorb(self, state: ApproxFpgasState, payload: dict) -> None:
        features = np.asarray(payload["features"], dtype=np.float64)
        state.features = features
        state.feature_names = list(payload["feature_names"])
        state.records = {}
        for index, circuit in enumerate(state.library):
            state.records[circuit.name] = CircuitRecord(
                name=circuit.name,
                error=error_report_from_payload(payload["errors"][index], circuit.name),
                asic=asic_report_from_payload(payload["asic"][index], circuit.name),
                features=features[index],
            )


class SynthesizeTrainingSubsetStage(Stage):
    """Stage 3: synthesize a random training subset on the target FPGA."""

    name = "synthesize-training-subset"

    def compute(self, state: ApproxFpgasState) -> dict:
        if state.subset_selector is not None:
            subset_names = list(state.subset_selector())
        else:
            subset_names = select_training_subset(state.library, state.config)
        circuits = [state.library.get(name) for name in subset_names]
        reports = state.engine.evaluate_fpga(circuits)
        device = state.fpga_synthesizer.device
        training_time_s = float(
            sum(estimate_synthesis_time(circuit, device) for circuit in circuits)
        )
        return {
            "subset": subset_names,
            "fpga": [fpga_report_to_payload(report) for report in reports],
            "training_time_s": training_time_s,
        }

    def absorb(self, state: ApproxFpgasState, payload: dict) -> None:
        state.subset_names = list(payload["subset"])
        for name, report_payload in zip(state.subset_names, payload["fpga"]):
            state.records[name].fpga = fpga_report_from_payload(report_payload, name)
        state.training_time_s = float(payload["training_time_s"])


class FitAndSelectStage(Stage):
    """Stages 4-6: train/validate the model zoo, estimate the whole library
    with the top-k models and take the union of their pseudo-Pareto fronts.

    The fitted models never cross the stage boundary -- the payload carries
    only their validation scores, library-wide estimates and the selected
    candidate names, all JSON-serialisable.
    """

    name = "fit-and-select"

    def compute(self, state: ApproxFpgasState) -> dict:
        config = state.config
        records = state.records
        names = state.names

        # --- Stage 4: train and validate the model zoo ------------------ #
        rng = np.random.default_rng(config.seed + 1)
        shuffled = list(state.subset_names)
        rng.shuffle(shuffled)
        num_validation = max(1, int(round(config.validation_fraction * len(shuffled))))
        if num_validation >= len(shuffled):
            num_validation = len(shuffled) - 1
        validation_names = shuffled[:num_validation]
        training_names = shuffled[num_validation:]

        X_train = np.vstack([records[name].features for name in training_names])
        X_val = np.vstack([records[name].features for name in validation_names])

        evaluations: List[dict] = []
        model_time_s = 0.0
        fitted_models: Dict[Tuple[str, str], object] = {}
        for parameter in config.fpga_parameters:
            y_train = np.array(
                [records[name].fpga.parameter(parameter) for name in training_names]
            )
            y_val = np.array(
                [records[name].fpga.parameter(parameter) for name in validation_names]
            )
            for model_id in config.model_ids:
                model = build_model(model_id, state.feature_names, random_state=config.seed)
                start = time.perf_counter()
                model.fit(X_train, y_train)
                estimates = model.predict(X_val)
                elapsed = time.perf_counter() - start
                model_time_s += elapsed
                evaluations.append(
                    {
                        "model_id": model_id,
                        "parameter": parameter,
                        "fidelity": float(fidelity(y_val, estimates)),
                        "pearson": float(pearson_correlation(y_val, estimates)),
                        "r2": float(r2_score(y_val, estimates)),
                        "train_time_s": float(elapsed),
                    }
                )
                fitted_models[(parameter, model_id)] = model

        # --- Stage 5-6: estimate all circuits, build pseudo-Pareto fronts #
        errors = np.array([state.error_value(name) for name in names])
        estimated: Dict[str, Dict[str, float]] = {}
        parameters: Dict[str, dict] = {}
        for parameter in config.fpga_parameters:
            # Rank by validation fidelity; break ties with the Pearson
            # correlation so continuous estimators win over piecewise-constant
            # ones that happen to tie on a small validation set.
            ranked = sorted(
                (e for e in evaluations if e["parameter"] == parameter),
                key=lambda e: (e["fidelity"], e["pearson"]),
                reverse=True,
            )
            top_models = [evaluation["model_id"] for evaluation in ranked[: config.top_k_models]]

            fronts_per_model: List[List[int]] = []
            for model_id in top_models:
                model = fitted_models[(parameter, model_id)]
                model_estimates = model.predict(state.features)
                points = np.column_stack([errors, model_estimates])
                fronts = successive_pareto_fronts(points, config.num_pseudo_fronts)
                fronts_per_model.extend(fronts)
                # Remember the estimate of the best-ranked model per circuit.
                if model_id == top_models[0]:
                    estimated[parameter] = {
                        name: float(model_estimates[index])
                        for index, name in enumerate(names)
                    }

            candidate_indices = pareto_union(fronts_per_model)
            parameters[parameter] = {
                "top_models": top_models,
                "candidates": [names[index] for index in candidate_indices],
            }

        return {
            "training_names": training_names,
            "validation_names": validation_names,
            "model_evaluations": evaluations,
            "estimated": estimated,
            "parameters": parameters,
            "model_time_s": model_time_s,
        }

    def absorb(self, state: ApproxFpgasState, payload: dict) -> None:
        state.training_names = list(payload["training_names"])
        state.validation_names = list(payload["validation_names"])
        state.model_time_s = float(payload["model_time_s"])
        state.evaluations = [
            ModelEvaluation(
                model_id=entry["model_id"],
                parameter=entry["parameter"],
                fidelity=float(entry["fidelity"]),
                pearson=float(entry["pearson"]),
                r2=float(entry["r2"]),
                train_time_s=float(entry["train_time_s"]),
            )
            for entry in payload["model_evaluations"]
        ]
        state.parameter_outcomes = {}
        state.candidate_union = {}
        names = state.names
        for parameter in state.config.fpga_parameters:
            estimates = payload["estimated"].get(parameter, {})
            for name in names:
                if name in estimates:
                    state.records[name].estimated[parameter] = float(estimates[name])
            entry = payload["parameters"][parameter]
            candidate_names = list(entry["candidates"])
            state.candidate_union[parameter] = candidate_names
            state.parameter_outcomes[parameter] = ParameterOutcome(
                parameter=parameter,
                top_models=list(entry["top_models"]),
                candidate_names=candidate_names,
                final_front_names=[],
            )


class ResynthesizeCandidatesStage(Stage):
    """Stage 7: synthesize the selected candidates that are still unmeasured."""

    name = "resynthesize-candidates"

    def compute(self, state: ApproxFpgasState) -> dict:
        device = state.fpga_synthesizer.device
        new_reports: Dict[str, dict] = {}
        resynthesis_time_s = 0.0
        for parameter in state.config.fpga_parameters:
            pending = [
                state.library.get(name)
                for name in state.candidate_union[parameter]
                if state.records[name].fpga is None and name not in new_reports
            ]
            for circuit, report in zip(pending, state.engine.evaluate_fpga(pending)):
                new_reports[circuit.name] = fpga_report_to_payload(report)
                resynthesis_time_s += estimate_synthesis_time(circuit, device)
        return {"fpga": new_reports, "resynthesis_time_s": float(resynthesis_time_s)}

    def absorb(self, state: ApproxFpgasState, payload: dict) -> None:
        for name, report_payload in payload["fpga"].items():
            state.records[name].fpga = fpga_report_from_payload(report_payload, name)
        state.resynthesis_time_s = float(payload["resynthesis_time_s"])


class MeasureFrontsStage(Stage):
    """Stage 8: measured Pareto fronts over every synthesized circuit.

    Front bookkeeping goes through the shared
    :class:`repro.search.ParetoArchive` (incremental non-dominated
    insertion); circuit names are the archive keys, so the front reads
    straight out of the archive in measured-name order.
    """

    name = "measure-fronts"

    def compute(self, state: ApproxFpgasState) -> dict:
        measured_names = sorted(
            name for name, record in state.records.items() if record.synthesized
        )
        fronts: Dict[str, List[str]] = {}
        for parameter in state.config.fpga_parameters:
            front = ParetoArchive(num_objectives=2)
            for name in measured_names:
                front.insert(
                    name,
                    (state.error_value(name), state.records[name].fpga.parameter(parameter)),
                )
            fronts[parameter] = front.keys()
        return {"fronts": fronts}

    def absorb(self, state: ApproxFpgasState, payload: dict) -> None:
        for parameter, front_names in payload["fronts"].items():
            state.parameter_outcomes[parameter].final_front_names = list(front_names)


class EvaluateCoverageStage(Stage):
    """Stage 9 (evaluation only): synthesize the remaining circuits outside
    the time accounting and measure the coverage of the true Pareto front."""

    name = "evaluate-coverage"

    def compute(self, state: ApproxFpgasState) -> dict:
        names = state.names
        records = state.records
        flow_synthesized = {name for name, record in records.items() if record.synthesized}
        missing = [state.library.get(name) for name in names if records[name].fpga is None]
        new_reports = {
            circuit.name: fpga_report_to_payload(report)
            for circuit, report in zip(missing, state.engine.evaluate_fpga(missing))
        }

        measured = {
            name: fpga_report_from_payload(report_payload, name)
            for name, report_payload in new_reports.items()
        }

        def parameter_value(name: str, parameter: str) -> float:
            report = measured.get(name) or records[name].fpga
            return report.parameter(parameter)

        errors = np.array([state.error_value(name) for name in names])
        name_to_index = {name: index for index, name in enumerate(names)}
        true_fronts: Dict[str, List[str]] = {}
        coverage: Dict[str, float] = {}
        for parameter in state.config.fpga_parameters:
            points = np.column_stack(
                [errors, [parameter_value(name, parameter) for name in names]]
            )
            true_front = pareto_front_indices(points)
            true_fronts[parameter] = [names[i] for i in true_front]
            flow_indices = [name_to_index[name] for name in flow_synthesized]
            coverage[parameter] = float(pareto_coverage(true_front, flow_indices))
        return {"fpga": new_reports, "true_fronts": true_fronts, "coverage": coverage}

    def absorb(self, state: ApproxFpgasState, payload: dict) -> None:
        for name, report_payload in payload["fpga"].items():
            state.records[name].fpga = fpga_report_from_payload(report_payload, name)
        for parameter, front_names in payload["true_fronts"].items():
            outcome = state.parameter_outcomes[parameter]
            outcome.true_front_names = list(front_names)
            outcome.coverage = float(payload["coverage"][parameter])


# --------------------------------------------------------------------- #
# Pipeline assembly
# --------------------------------------------------------------------- #
def approxfpgas_stages(config) -> List[Stage]:
    """The stage sequence of the ApproxFPGAs flow for one configuration."""
    stages: List[Stage] = [
        EvaluateLibraryStage(),
        SynthesizeTrainingSubsetStage(),
        FitAndSelectStage(),
        ResynthesizeCandidatesStage(),
        MeasureFrontsStage(),
    ]
    if config.evaluate_coverage:
        stages.append(EvaluateCoverageStage())
    return stages


def approxfpgas_run_token(library: CircuitLibrary, config) -> str:
    """Digest of everything a checkpointed run depends on.

    A changed library or configuration yields a different token, which
    invalidates old checkpoints instead of resuming into a stale run.
    """
    return blake_token(
        "approxfpgas",
        [circuit.fingerprint() for circuit in library],
        repr(config),
    )


def build_approxfpgas_result(state: ApproxFpgasState) -> ApproxFpgasResult:
    """Assemble the public result object from a fully-run state."""
    exploration_cost = ExplorationCost(
        library_name=state.library.name,
        num_circuits=len(state.library),
        exhaustive_time_s=float(
            sum(
                estimate_synthesis_time(circuit, state.fpga_synthesizer.device)
                for circuit in state.library
            )
        ),
        training_time_s=state.training_time_s,
        resynthesis_time_s=state.resynthesis_time_s,
        model_time_s=state.model_time_s,
    )
    return ApproxFpgasResult(
        library_name=state.library.name,
        kind=state.library.kind,
        bitwidth=state.library.bitwidth,
        records=state.records,
        model_evaluations=state.evaluations,
        parameter_outcomes=state.parameter_outcomes,
        exploration_cost=exploration_cost,
        training_names=state.training_names,
        validation_names=state.validation_names,
    )


def run_approxfpgas_pipeline(
    library: CircuitLibrary,
    config=None,
    *,
    engine: Optional[BatchEvaluator] = None,
    store: Optional[object] = None,
    run_id: Optional[str] = None,
    progress=None,
    resume: bool = True,
) -> Tuple[ApproxFpgasResult, PipelineRun]:
    """Run the staged ApproxFPGAs flow, optionally checkpointing to ``store``.

    Returns the result together with the :class:`~repro.api.pipeline.PipelineRun`
    carrying per-stage timings and which stages were restored from
    checkpoints.
    """
    state = ApproxFpgasState.create(library, config, engine=engine)
    pipeline = Pipeline(
        approxfpgas_stages(state.config),
        store=store,
        run_id=run_id or f"approxfpgas-{library.name}",
        token=approxfpgas_run_token(library, state.config),
        progress=progress,
    )
    run = pipeline.run(state, resume=resume)
    return build_approxfpgas_result(state), run
