"""The ApproxFPGAs methodology: fidelity, Pareto machinery and the full flow."""

from .fidelity import fidelity, fidelity_strict, pairwise_relation_matrix
from .pareto import (
    dominates,
    hypervolume_2d,
    pareto_coverage,
    pareto_front_indices,
    pareto_union,
    successive_pareto_fronts,
)
from .exploration import (
    ExplorationCost,
    ExplorationSummary,
    seconds_to_days,
    total_synthesis_time,
)
from .results import (
    ApproxFpgasResult,
    CircuitRecord,
    ModelEvaluation,
    ParameterOutcome,
)
from .methodology import ApproxFpgasConfig, ApproxFpgasFlow, run_approxfpgas
from .stages import (
    ApproxFpgasState,
    approxfpgas_stages,
    build_approxfpgas_result,
    run_approxfpgas_pipeline,
)

__all__ = [
    "fidelity",
    "fidelity_strict",
    "pairwise_relation_matrix",
    "dominates",
    "hypervolume_2d",
    "pareto_coverage",
    "pareto_front_indices",
    "pareto_union",
    "successive_pareto_fronts",
    "ExplorationCost",
    "ExplorationSummary",
    "seconds_to_days",
    "total_synthesis_time",
    "ApproxFpgasResult",
    "CircuitRecord",
    "ModelEvaluation",
    "ParameterOutcome",
    "ApproxFpgasConfig",
    "ApproxFpgasFlow",
    "run_approxfpgas",
    "ApproxFpgasState",
    "approxfpgas_stages",
    "build_approxfpgas_result",
    "run_approxfpgas_pipeline",
]
