"""Pareto-front construction, successive pseudo-fronts and coverage metrics.

All objectives are minimised (error, latency, power, LUTs).  The paper's key
trick is to extract *multiple* successive pseudo-Pareto fronts from the
model-estimated costs: the first front, then the front of what remains, and
so on.  Because the estimators have limited fidelity, truly Pareto-optimal
circuits can be estimated as slightly dominated; keeping the first few
fronts recovers them at the cost of a few more synthesis runs.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


def _as_points(points: np.ndarray) -> np.ndarray:
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"points must be a 2-D (n, objectives) array, got shape {points.shape}")
    if not np.all(np.isfinite(points)):
        raise ValueError("points contain NaN or infinite values")
    return points


def dominates(a: np.ndarray, b: np.ndarray) -> bool:
    """Whether point ``a`` Pareto-dominates ``b`` (all objectives minimised)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return bool(np.all(a <= b) and np.any(a < b))


def pareto_front_indices(points: np.ndarray) -> List[int]:
    """Indices of the non-dominated points (first Pareto front).

    Duplicate points are all kept: neither strictly dominates the other.  The
    check is a block-vectorised pairwise comparison, which is exact for any
    number of objectives and comfortably fast for library-sized point sets.
    """
    points = _as_points(points)
    n = points.shape[0]
    if n == 0:
        return []
    dominated = np.zeros(n, dtype=bool)
    block_size = 512
    for start in range(0, n, block_size):
        block = points[start:start + block_size]
        # leq[i, j]: candidate j is <= block point i in every objective.
        leq = np.all(points[None, :, :] <= block[:, None, :], axis=2)
        lt = np.any(points[None, :, :] < block[:, None, :], axis=2)
        dominated[start:start + block_size] = np.any(leq & lt, axis=1)
    return [int(i) for i in np.nonzero(~dominated)[0]]


def successive_pareto_fronts(points: np.ndarray, num_fronts: int) -> List[List[int]]:
    """The first ``num_fronts`` successive Pareto fronts (non-dominated sorting).

    Front ``k`` is the Pareto front of the points remaining after removing
    fronts ``1 .. k-1``.  Fewer fronts are returned if the points run out.
    """
    if num_fronts < 1:
        raise ValueError("num_fronts must be at least 1")
    points = _as_points(points)
    remaining = list(range(points.shape[0]))
    fronts: List[List[int]] = []
    for _ in range(num_fronts):
        if not remaining:
            break
        subset = points[remaining]
        local_front = pareto_front_indices(subset)
        front = [remaining[i] for i in local_front]
        fronts.append(sorted(front))
        remaining = [index for index in remaining if index not in set(front)]
    return fronts


def pareto_union(fronts: Sequence[Sequence[int]]) -> List[int]:
    """Union of several fronts (the paper's union over models and front ranks)."""
    result = set()
    for front in fronts:
        result.update(int(i) for i in front)
    return sorted(result)


def pareto_coverage(true_front: Sequence[int], candidate_set: Sequence[int]) -> float:
    """Fraction of the true Pareto-optimal points present in the candidate set.

    This is the paper's "percentage coverage of the pareto-optimal designs"
    (reported as ~71% on average in Fig. 8).
    """
    true_set = set(int(i) for i in true_front)
    if not true_set:
        raise ValueError("the true Pareto front is empty")
    found = true_set & set(int(i) for i in candidate_set)
    return len(found) / len(true_set)


def hypervolume_2d(points: np.ndarray, reference: Sequence[float]) -> float:
    """Dominated hypervolume of a 2-D front w.r.t. a reference point.

    Used by tests and the AutoAx benchmarks to compare search strategies: a
    larger dominated area means a better front (both objectives minimised).
    Points outside the reference box dominate zero area inside it, so they
    are excluded and contribute nothing -- the result is never negative,
    and a front entirely beyond the reference scores exactly 0.0.
    """
    points = _as_points(points)
    if points.shape[1] != 2:
        raise ValueError("hypervolume_2d requires exactly two objectives")
    reference = np.asarray(reference, dtype=np.float64)
    front = points[pareto_front_indices(points)]
    front = front[(front[:, 0] <= reference[0]) & (front[:, 1] <= reference[1])]
    if front.size == 0:
        return 0.0
    order = np.argsort(front[:, 0])
    front = front[order]
    volume = 0.0
    previous_x = None
    best_y = reference[1]
    for x, y in front:
        if previous_x is None:
            previous_x = x
            best_y = y
            continue
        # Each staircase strip is clamped at zero width/height so rounding
        # at the reference boundary can never push the total negative.
        volume += max(x - previous_x, 0.0) * max(reference[1] - best_y, 0.0)
        previous_x = x
        best_y = min(best_y, y)
    volume += max(reference[0] - previous_x, 0.0) * max(reference[1] - best_y, 0.0)
    return float(max(volume, 0.0))
