"""String-keyed plugin registries.

A :class:`Registry` is an ordered mapping from short string keys to factory
objects (classes, functions, extractors).  The package keeps one registry per
extension point -- :data:`repro.ml.MODELS` for the Table I model zoo,
:data:`repro.error.ERROR_METRICS` for error-metric extractors,
:data:`repro.api.SYNTHESIZERS` for cost-model substrates and
:data:`repro.autoax.SEARCH_STRATEGIES` for configuration-space searches --
so new scenarios plug in by registering a key instead of editing flow
internals.

Look-ups of unknown keys raise :class:`RegistryError` listing every
available key.  For backwards compatibility a registry behaves like the
tuple of its keys where that tuple used to be public API: it iterates,
sizes, compares, indexes/slices and concatenates over the keys, so code
written against the old ``MODEL_IDS`` tuple keeps working unchanged.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Iterator, List, Optional, Tuple


class RegistryError(KeyError):
    """Raised for unknown or duplicate registry keys."""

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0] if self.args else ""


class Registry:
    """An ordered ``key -> factory`` mapping with decorator registration.

    Parameters
    ----------
    kind:
        Human-readable name of what is registered (``"model"``,
        ``"error metric"``, ...); used in error messages.
    entries:
        Optional initial ``{key: value}`` entries, kept in insertion order.
    """

    def __init__(self, kind: str, entries: Optional[Dict[str, object]] = None):
        self.kind = kind
        self._entries: "OrderedDict[str, object]" = OrderedDict(entries or {})

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(
        self, key: str, value: Optional[object] = None, *, overwrite: bool = False
    ) -> object:
        """Register ``value`` under ``key``; usable directly or as a decorator.

        ``registry.register("name", obj)`` registers immediately;
        ``@registry.register("name")`` registers the decorated object.
        Re-registering an existing key raises unless ``overwrite=True``.
        """
        if value is None:

            def decorator(obj: Callable) -> Callable:
                self.register(key, obj, overwrite=overwrite)
                return obj

            return decorator
        if key in self._entries and not overwrite:
            raise RegistryError(
                f"{self.kind} {key!r} is already registered; "
                f"pass overwrite=True to replace it"
            )
        self._entries[key] = value
        return value

    def unregister(self, key: str) -> None:
        """Remove ``key``; unknown keys raise :class:`RegistryError`."""
        if key not in self._entries:
            raise self._unknown(key)
        del self._entries[key]

    # ------------------------------------------------------------------ #
    # Look-up
    # ------------------------------------------------------------------ #
    def _unknown(self, key: object) -> RegistryError:
        return RegistryError(
            f"unknown {self.kind} {key!r}; available: {list(self._entries)}"
        )

    def get(self, key: str) -> object:
        """The value registered under ``key``.

        Raises
        ------
        RegistryError
            When ``key`` is unknown; the message lists the available keys.
        """
        try:
            return self._entries[key]
        except KeyError:
            raise self._unknown(key) from None

    def __getitem__(self, key):
        """Value for a string key; tuple-style access for int/slice keys.

        Integer and slice subscripts index the *key list* (``registry[0]``,
        ``registry[:3]``), matching code written against the historical
        tuple-of-ids constants.
        """
        if isinstance(key, int):
            return list(self._entries)[key]
        if isinstance(key, slice):
            return tuple(self._entries)[key]
        return self.get(key)

    def keys(self) -> List[str]:
        return list(self._entries)

    def values(self) -> List[object]:
        return list(self._entries.values())

    def items(self) -> List[Tuple[str, object]]:
        return list(self._entries.items())

    # ------------------------------------------------------------------ #
    # Sequence-of-keys compatibility (old code treats MODEL_IDS as a tuple)
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Registry):
            return self.keys() == other.keys()
        if isinstance(other, (tuple, list)):
            return tuple(self._entries) == tuple(other)
        return NotImplemented

    def __add__(self, other):
        if isinstance(other, tuple):
            return tuple(self._entries) + other
        if isinstance(other, list):
            return list(self._entries) + other
        return NotImplemented

    def __radd__(self, other):
        if isinstance(other, tuple):
            return other + tuple(self._entries)
        if isinstance(other, list):
            return other + list(self._entries)
        return NotImplemented

    def __hash__(self) -> int:  # registries are identity-hashed singletons
        return id(self)

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, keys={list(self._entries)})"
