"""`ExplorationSession`: the shared facade over every exploration flow.

A session owns the pieces that should be shared between runs instead of
re-created inside each flow:

* one :class:`~repro.engine.cache.EvalCache` (optionally disk-backed) and
  one :class:`~repro.engine.evaluator.BatchEvaluator` per golden reference,
  so ApproxFPGAs and AutoAx runs reuse each other's evaluations;
* the synthesis substrates, resolved once from the
  :data:`~repro.api.registries.SYNTHESIZERS` registry;
* deterministic RNG seeding (the session seed becomes the default seed of
  every configuration built by the session);
* an artifact store for stage checkpoints, so interrupted runs resume from
  the last completed stage (see :mod:`repro.api.pipeline`).

Typical use::

    from repro.api import ExplorationSession

    session = ExplorationSession(seed=42, workspace="runs/session-1")
    result = session.run_approxfpgas(library)          # checkpointed + cached
    study = session.run_autoax(multipliers, adders)    # shares the cache
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Sequence, Union

import numpy as np

from ..engine import BatchEvaluator, EvalCache
from ..io.persistence import ShardedJsonStore
from .pipeline import PipelineRun
from .registries import resolve_synthesizer

__all__ = ["ExplorationSession"]

PathLike = Union[str, Path]


class ExplorationSession:
    """Shared caches, substrates, seeding and artifact storage for flows.

    Parameters
    ----------
    seed:
        Session seed; used as the default ``seed`` of configurations the
        session builds (an explicitly passed config keeps its own seed, so
        seeded results stay reproducible and bit-identical to the legacy
        flow classes).
    workspace:
        Optional directory.  When given, the evaluation cache gains a disk
        backend under ``<workspace>/cache`` and stage artifacts are
        checkpointed under ``<workspace>/artifacts`` -- a later session with
        the same workspace starts warm and resumes interrupted runs.
    cache:
        An explicit :class:`EvalCache` to share with other components;
        overrides the workspace-derived cache.
    store:
        An explicit artifact store (any ``get``/``put`` object, e.g. a
        :class:`repro.io.ShardedJsonStore` shared by many worker
        processes); overrides the workspace-derived store.  This is how
        :mod:`repro.service` workers point many sessions at one shared
        checkpoint store.
    shards:
        Shard count of the workspace-derived cache and artifact stores
        (see :class:`repro.io.ShardedJsonStore`).  The default of 1 keeps
        the historical flat layout, so existing workspaces stay warm.
    fpga_synthesizer / asic_synthesizer:
        A :data:`~repro.api.registries.SYNTHESIZERS` key (``"fpga"``,
        ``"asic"``) or a ready-made synthesizer instance.
    engine_mode / max_workers:
        Forwarded to every :class:`BatchEvaluator` the session builds
        (``"auto"`` fans large miss sets out over a process pool).
    sim_backend:
        Simulation backend for error evaluation (``"bool"``, ``"bitplane"``,
        ``"compiled"`` or ``"auto"``, see
        :data:`repro.circuits.SIM_BACKENDS`); forwarded to every engine the
        session builds.  Backends are bit-identical, so this only affects
        speed (and cached results are shared across backends).
    """

    def __init__(
        self,
        *,
        seed: int = 42,
        workspace: Optional[PathLike] = None,
        cache: Optional[EvalCache] = None,
        store: Optional[object] = None,
        fpga_synthesizer: Union[str, object] = "fpga",
        asic_synthesizer: Union[str, object] = "asic",
        engine_mode: str = "auto",
        max_workers: Optional[int] = None,
        sim_backend: str = "auto",
        shards: int = 1,
    ):
        self.seed = seed
        self.workspace = Path(workspace) if workspace is not None else None
        if cache is None:
            disk_store = (
                ShardedJsonStore(self.workspace / "cache", shards=shards)
                if self.workspace
                else None
            )
            cache = EvalCache(store=disk_store)
        self.cache = cache
        if store is None and self.workspace:
            store = ShardedJsonStore(self.workspace / "artifacts", shards=shards)
        self.store = store
        self.fpga_synthesizer = resolve_synthesizer(fpga_synthesizer)
        self.asic_synthesizer = resolve_synthesizer(asic_synthesizer)
        self.engine_mode = engine_mode
        self.max_workers = max_workers
        self.sim_backend = sim_backend
        self._engines: Dict[str, BatchEvaluator] = {}
        self._accelerator_engine: Optional[BatchEvaluator] = None
        self.runs: Dict[str, PipelineRun] = {}
        """Run id -> the most recent :class:`PipelineRun` (stage timings,
        which stages were restored from checkpoints)."""

    # ------------------------------------------------------------------ #
    def rng(self, offset: int = 0) -> np.random.Generator:
        """A fresh generator derived from the session seed."""
        return np.random.default_rng(self.seed + offset)

    def engine_for(self, reference) -> BatchEvaluator:
        """The session's shared :class:`BatchEvaluator` for one golden reference.

        Engines are memoised per reference fingerprint and all share the
        session cache and synthesizers, so repeated runs over the same
        library (or structurally identical circuits across libraries) hit
        the cache.
        """
        key = reference.fingerprint()
        engine = self._engines.get(key)
        if engine is None:
            engine = BatchEvaluator(
                reference,
                asic_synthesizer=self.asic_synthesizer,
                fpga_synthesizer=self.fpga_synthesizer,
                cache=self.cache,
                mode=self.engine_mode,
                max_workers=self.max_workers,
                sim_backend=self.sim_backend,
            )
            self._engines[key] = engine
        return engine

    def accelerator_engine(self) -> BatchEvaluator:
        """The session's engine for exact accelerator-configuration batches.

        Accelerator evaluations need no golden reference circuit, so one
        reference-less :class:`BatchEvaluator` (sharing the session cache,
        mode and worker budget) serves every AutoAx run of the session;
        :meth:`run_autoax` threads it through the staged flow so training
        samples, baselines and candidate re-evaluations run
        generation-batched (see
        :meth:`repro.engine.BatchEvaluator.evaluate_configurations`).
        """
        if self._accelerator_engine is None:
            self._accelerator_engine = BatchEvaluator(
                cache=self.cache,
                mode=self.engine_mode,
                max_workers=self.max_workers,
                sim_backend=self.sim_backend,
            )
        return self._accelerator_engine

    def stats(self):
        """Cumulative statistics of the shared evaluation cache."""
        return self.cache.stats()

    # ------------------------------------------------------------------ #
    # Flows
    # ------------------------------------------------------------------ #
    def run_approxfpgas(
        self,
        library,
        config=None,
        *,
        run_id: Optional[str] = None,
        progress=None,
        resume: bool = True,
    ):
        """Run the staged ApproxFPGAs flow on ``library``.

        With a workspace attached, every completed stage is checkpointed and
        an interrupted run resumes from the last completed stage; pass
        ``resume=False`` to force a fresh run.  Returns the
        :class:`~repro.core.results.ApproxFpgasResult`; per-stage timings
        land in :attr:`runs`.
        """
        from ..core.methodology import ApproxFpgasConfig
        from ..core.stages import run_approxfpgas_pipeline

        config = config or ApproxFpgasConfig(seed=self.seed)
        run_id = run_id or f"approxfpgas-{library.name}"
        result, run = run_approxfpgas_pipeline(
            library,
            config,
            engine=self.engine_for(library.reference()),
            store=self.store,
            run_id=run_id,
            progress=progress,
            resume=resume,
        )
        self.runs[run_id] = run
        return result

    def run_autoax(
        self,
        multipliers: Sequence,
        adders: Sequence,
        config=None,
        *,
        images=None,
        run_id: Optional[str] = None,
        progress=None,
        on_generation=None,
        resume: bool = True,
    ):
        """Run the staged AutoAx-FPGA case study on the given components.

        The accelerator workload is picked with ``AutoAxConfig(workload=...)``
        from the :data:`repro.workloads.WORKLOADS` registry (``"gaussian"``
        by default; the image workloads ``"sobel"`` and ``"sharpen"`` and
        the 1-D signal family ``"mvm"`` / ``"dct"`` / ``"fir"`` /
        ``"fir_mixed"`` ship built in, and custom workloads plug in by
        registering a key).  The session cache is
        shared with every other run, so exact accelerator evaluations are
        reused across scenarios, baselines and repeated studies -- engine
        cache keys are namespaced per workload, so two workloads over the
        same component libraries never alias -- and the session's
        accelerator engine batches them per generation (pick the population
        search with ``AutoAxConfig(search_strategy="nsga2")``).  Returns the
        :class:`~repro.autoax.flow.AutoAxResult`; per-stage timings land in
        :attr:`runs` under a per-workload run id.

        With a session store attached, generation-aware strategies
        (``"nsga2"``) checkpoint every completed generation inside their
        scenario stage and report each fresh generation's stats to
        ``on_generation`` -- finer-grained liveness and resume points than
        the per-stage ``progress`` events.
        """
        from ..autoax.flow import AutoAxConfig
        from ..autoax.stages import default_autoax_run_id, run_autoax_pipeline

        config = config or AutoAxConfig(seed=self.seed)
        run_id = run_id or default_autoax_run_id(config.workload)
        result, run = run_autoax_pipeline(
            multipliers,
            adders,
            config,
            images=images,
            engine=self.accelerator_engine(),
            store=self.store,
            run_id=run_id,
            progress=progress,
            on_generation=on_generation,
            resume=resume,
        )
        self.runs[run_id] = run
        return result
