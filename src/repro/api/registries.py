"""The package's plugin registries, collected in one place.

Six string-keyed extension points cover the axes along which scenarios
vary:

* :data:`repro.ml.MODELS` -- cost-model regressors (Table I zoo built in),
* :data:`repro.error.ERROR_METRICS` -- error-metric extractors,
* :data:`SYNTHESIZERS` (here) -- synthesis substrates,
* :data:`repro.workloads.WORKLOADS` -- accelerator case studies
  (``"gaussian"``, ``"sobel"``, ``"sharpen"``), re-exported here,
* :data:`repro.workloads.QUALITY_METRICS` -- workload quality metrics
  (``"ssim"``, ``"psnr"``, ``"gms"``), re-exported here,
* :data:`repro.autoax.SEARCH_STRATEGIES` -- configuration-space searches
  (``"hill_climb"``, ``"random_archive"`` and the population-based
  ``"nsga2"`` built on :mod:`repro.search`); it is not re-exported here
  because :mod:`repro.autoax` builds on :mod:`repro.api` -- import it from
  :mod:`repro.autoax` instead.

Each is a :class:`repro.registry.Registry`; unknown keys raise
:class:`repro.registry.RegistryError` listing the available keys.
"""

from __future__ import annotations

from ..asic import AsicSynthesizer
from ..error.metrics import ERROR_METRICS
from ..fpga import FpgaSynthesizer
from ..ml.model_zoo import MODELS
from ..registry import Registry, RegistryError
from ..workloads import QUALITY_METRICS, WORKLOADS

__all__ = [
    "Registry",
    "RegistryError",
    "MODELS",
    "ERROR_METRICS",
    "SYNTHESIZERS",
    "WORKLOADS",
    "QUALITY_METRICS",
    "resolve_synthesizer",
]

#: Registry of synthesis-substrate factories (no-argument callables).  The
#: built-in keys are ``"fpga"`` (the paper's target substrate) and
#: ``"asic"`` (the cheap ASIC cost model); alternative devices or external
#: tool adapters plug in by registering a new key.
SYNTHESIZERS = Registry(
    "synthesizer",
    {"fpga": FpgaSynthesizer, "asic": AsicSynthesizer},
)


def resolve_synthesizer(spec):
    """A synthesizer instance from a registry key or a ready-made object."""
    if isinstance(spec, str):
        return SYNTHESIZERS.get(spec)()
    return spec
