"""Public composable API: sessions, stage pipelines and plugin registries.

This package is the recommended entry point for new code:

* :class:`ExplorationSession` -- a facade owning the evaluation cache,
  engines, synthesizers, RNG seeding and the artifact store shared across
  ApproxFPGAs and AutoAx runs;
* :class:`Pipeline` / :class:`Stage` -- the staged-flow machinery with
  per-stage timing, progress callbacks and checkpoint/resume via
  :class:`repro.io.JsonDirectoryStore`;
* the plugin registries (:data:`MODELS`, :data:`ERROR_METRICS`,
  :data:`SYNTHESIZERS`, :data:`WORKLOADS`, :data:`QUALITY_METRICS`,
  :data:`SEARCH_STRATEGIES`) through which new models, metrics,
  substrates, accelerator workloads and searches plug in without editing
  flow internals;
* the multi-fidelity search primitives
  (:func:`expected_hypervolume_improvement`,
  :func:`run_successive_halving`, :class:`SuccessiveHalvingConfig`,
  :func:`default_fidelity_ladder`) for building custom
  screen-cheap/promote-survivors searches outside the built-in
  ``"sh_ehvi"`` strategy.

The legacy entry points (:class:`repro.core.ApproxFpgasFlow`,
:func:`repro.core.run_approxfpgas`, :class:`repro.autoax.AutoAxFpgaFlow`)
remain supported thin wrappers over the same stages.
"""

from .pipeline import (
    FunctionStage,
    Pipeline,
    PipelineError,
    PipelineRun,
    Stage,
    StageEvent,
    StageRecord,
)
from .registries import (
    ERROR_METRICS,
    MODELS,
    QUALITY_METRICS,
    SYNTHESIZERS,
    WORKLOADS,
    Registry,
    RegistryError,
    resolve_synthesizer,
)
from ..search import (
    SuccessiveHalvingConfig,
    SuccessiveHalvingResult,
    default_fidelity_ladder,
    expected_hypervolume_improvement,
    run_successive_halving,
)
from .session import ExplorationSession

__all__ = [
    "ExplorationSession",
    "FunctionStage",
    "Pipeline",
    "PipelineError",
    "PipelineRun",
    "Stage",
    "StageEvent",
    "StageRecord",
    "Registry",
    "RegistryError",
    "MODELS",
    "ERROR_METRICS",
    "SYNTHESIZERS",
    "WORKLOADS",
    "QUALITY_METRICS",
    "SEARCH_STRATEGIES",
    "resolve_synthesizer",
    "SuccessiveHalvingConfig",
    "SuccessiveHalvingResult",
    "default_fidelity_ladder",
    "expected_hypervolume_improvement",
    "run_successive_halving",
]


def __getattr__(name):
    # SEARCH_STRATEGIES lives in repro.autoax.search, which transitively
    # imports repro.core; importing it lazily keeps repro.api importable
    # from inside the core package without a cycle.
    if name == "SEARCH_STRATEGIES":
        from ..autoax.search import SEARCH_STRATEGIES

        return SEARCH_STRATEGIES
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
