"""Composable stage pipelines with checkpoint/resume.

The paper's methodology (Fig. 2) is a staged flow; this module gives the
stages a first-class API:

* a :class:`Stage` computes a **typed, JSON-serialisable payload** from a
  mutable state object (``compute``) and folds a payload back into the state
  (``absorb``).  Because ``absorb`` only ever sees the payload, a stage
  restored from a checkpoint and a stage computed fresh leave the state in
  exactly the same shape.
* a :class:`Pipeline` runs named stages in order with per-stage timing and
  progress callbacks.  When an artifact store is attached (any object with
  ``get``/``put``, in practice :class:`repro.io.JsonDirectoryStore`), every
  completed stage is checkpointed, so an interrupted run resumes from the
  last completed stage instead of starting over.

Stages whose products cannot be serialised (e.g. fitted estimators) set
``checkpoint = False``; they are recomputed deterministically on resume from
the already-restored state, so resumed and uninterrupted runs still produce
identical results.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

__all__ = [
    "Stage",
    "FunctionStage",
    "StageEvent",
    "StageRecord",
    "Pipeline",
    "PipelineRun",
    "PipelineError",
]


class PipelineError(RuntimeError):
    """Raised for malformed pipelines (duplicate or unknown stage names)."""


class Stage(ABC):
    """One named step of a :class:`Pipeline`.

    Subclasses implement :meth:`compute` (state -> payload) and
    :meth:`absorb` (payload -> state mutation).  ``compute`` must not mutate
    the state -- all state updates belong in ``absorb`` so that restoring a
    checkpointed payload is indistinguishable from computing it.
    """

    #: Stage name; unique within a pipeline and used as the checkpoint key.
    name: str = ""

    #: Whether the payload is persisted to the artifact store.  Stages whose
    #: payload cannot be serialised set this to ``False`` and are recomputed
    #: (deterministically) when a run resumes.
    checkpoint: bool = True

    @abstractmethod
    def compute(self, state) -> object:
        """Produce this stage's JSON-serialisable payload from ``state``."""

    @abstractmethod
    def absorb(self, state, payload) -> None:
        """Fold a (computed or restored) payload into ``state``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class FunctionStage(Stage):
    """Adapter turning a pair of callables into a :class:`Stage`."""

    def __init__(
        self,
        name: str,
        compute: Callable[[object], object],
        absorb: Callable[[object, object], None],
        checkpoint: bool = True,
    ):
        self.name = name
        self.checkpoint = checkpoint
        self._compute = compute
        self._absorb = absorb

    def compute(self, state) -> object:
        return self._compute(state)

    def absorb(self, state, payload) -> None:
        self._absorb(state, payload)


@dataclass(frozen=True)
class StageEvent:
    """Progress-callback payload emitted around every stage."""

    stage: str
    index: int
    total: int
    status: str
    """``"started"``, ``"completed"`` or ``"restored"``."""

    elapsed_s: float = 0.0


@dataclass(frozen=True)
class StageRecord:
    """Outcome of one stage of a finished :class:`PipelineRun`."""

    name: str
    elapsed_s: float
    from_checkpoint: bool


@dataclass
class PipelineRun:
    """A finished pipeline execution: the final state plus per-stage records."""

    state: object
    run_id: str
    records: List[StageRecord] = field(default_factory=list)

    @property
    def resumed_stages(self) -> List[str]:
        return [record.name for record in self.records if record.from_checkpoint]

    def timings(self) -> Dict[str, float]:
        """Stage name -> elapsed seconds (0.0 for restored stages)."""
        return {record.name: record.elapsed_s for record in self.records}

    def total_elapsed_s(self) -> float:
        return float(sum(record.elapsed_s for record in self.records))


class Pipeline:
    """Runs named stages in order, checkpointing artifacts between them.

    Parameters
    ----------
    stages:
        The stages, executed in sequence; names must be unique.
    store:
        Optional artifact store (``get``/``put``).  When present, every
        checkpointable stage's payload is persisted under
        ``"pipeline:<run_id>:<stage>"`` and a manifest guards against
        resuming with a different configuration or stage list.
    run_id:
        Namespace of this pipeline's checkpoints inside the store.
    token:
        Digest of everything the run depends on (configuration, inputs).
        A manifest with a different token invalidates old checkpoints, so a
        changed configuration restarts cleanly instead of resuming wrongly.
    progress:
        Optional callback receiving a :class:`StageEvent` when each stage
        starts and when it completes or is restored.
    """

    _MANIFEST = "#manifest"

    def __init__(
        self,
        stages: Sequence[Stage],
        *,
        store: Optional[object] = None,
        run_id: str = "pipeline",
        token: str = "",
        progress: Optional[Callable[[StageEvent], None]] = None,
    ):
        names = [stage.name for stage in stages]
        if len(set(names)) != len(names):
            duplicates = sorted({name for name in names if names.count(name) > 1})
            raise PipelineError(f"duplicate stage names: {duplicates}")
        if any(not name or name.startswith("#") for name in names):
            raise PipelineError("stage names must be non-empty and not start with '#'")
        self.stages = list(stages)
        self.store = store
        self.run_id = run_id
        self.token = token
        self.progress = progress

    # ------------------------------------------------------------------ #
    def _key(self, name: str) -> str:
        return f"pipeline:{self.run_id}:{name}"

    def _emit(self, event: StageEvent) -> None:
        if self.progress is not None:
            self.progress(event)

    def _manifest_allows_resume(self, resume: bool) -> bool:
        """Reconcile the stored manifest with this pipeline's shape.

        The manifest is always (re)stamped so the store reflects the run
        that is about to write checkpoints; resuming is allowed only when
        the previous manifest matches exactly.
        """
        expected = {"token": self.token, "stages": [stage.name for stage in self.stages]}
        matches = self.store.get(self._key(self._MANIFEST)) == expected
        if not matches:
            self.store.put(self._key(self._MANIFEST), expected)
        return resume and matches

    # ------------------------------------------------------------------ #
    def run(self, state, *, resume: bool = True) -> PipelineRun:
        """Execute every stage against ``state`` and return the finished run.

        With a store attached and ``resume=True``, the longest prefix of
        already-checkpointed stages is restored instead of recomputed; the
        first missing checkpoint switches the run to fresh computation for
        all remaining stages (stale later checkpoints are overwritten).
        """
        resuming = self.store is not None and self._manifest_allows_resume(resume)
        records: List[StageRecord] = []
        total = len(self.stages)

        for index, stage in enumerate(self.stages):
            self._emit(StageEvent(stage.name, index, total, "started"))
            entry = None
            if resuming and stage.checkpoint:
                entry = self.store.get(self._key(stage.name))
                if entry is not None and entry.get("stage") != stage.name:
                    entry = None
            if entry is not None:
                payload = entry.get("payload")
                stage.absorb(state, payload)
                records.append(StageRecord(stage.name, 0.0, from_checkpoint=True))
                self._emit(StageEvent(stage.name, index, total, "restored"))
                continue
            if stage.checkpoint:
                # First missing checkpoint: everything downstream runs fresh.
                resuming = False
            started = time.perf_counter()
            payload = stage.compute(state)
            elapsed = time.perf_counter() - started
            if stage.checkpoint and self.store is not None:
                self.store.put(
                    self._key(stage.name), {"stage": stage.name, "payload": payload}
                )
            stage.absorb(state, payload)
            records.append(StageRecord(stage.name, elapsed, from_checkpoint=False))
            self._emit(StageEvent(stage.name, index, total, "completed", elapsed))

        return PipelineRun(state=state, run_id=self.run_id, records=records)
