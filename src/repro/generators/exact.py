"""Exact (golden) arithmetic circuit generators.

Every approximate-circuit family is derived from, and evaluated against, one
of these exact reference implementations.  They are also members of the
circuit libraries themselves (the "zero error" end of every Pareto front).
"""

from __future__ import annotations

from typing import List, Tuple

from ..circuits import NetlistBuilder, Netlist


def ripple_carry_adder(width: int, name: str | None = None) -> Netlist:
    """Exact ``width``-bit ripple-carry adder with a ``width + 1``-bit output."""
    if width < 1:
        raise ValueError("adder width must be at least 1")
    builder = NetlistBuilder(name or f"add{width}_rca_exact", kind="adder")
    a = builder.add_input_word("a", width)
    b = builder.add_input_word("b", width)
    sums, carry = builder.ripple_chain(a, b)
    return builder.finish(
        sums + [carry],
        meta={"family": "exact_rca", "bitwidth": width, "exact": True},
    )


def carry_select_adder(width: int, block: int = 4, name: str | None = None) -> Netlist:
    """Exact carry-select adder (different structure, same function as RCA).

    Included so the exact corner of the adder library is not a single
    structural point; carry-select trades area for depth exactly the way a
    designer would on an FPGA.
    """
    if width < 1:
        raise ValueError("adder width must be at least 1")
    if block < 1:
        raise ValueError("block size must be at least 1")
    builder = NetlistBuilder(name or f"add{width}_csel_exact", kind="adder")
    a = builder.add_input_word("a", width)
    b = builder.add_input_word("b", width)

    sums: List[int] = []
    carry = builder.const0()
    position = 0
    while position < width:
        size = min(block, width - position)
        a_block = a[position:position + size]
        b_block = b[position:position + size]
        if position == 0:
            block_sums, carry = builder.ripple_chain(a_block, b_block, carry)
            sums.extend(block_sums)
        else:
            sums0, carry0 = builder.ripple_chain(a_block, b_block, builder.const0())
            sums1, carry1 = builder.ripple_chain(a_block, b_block, builder.const1())
            for s0, s1 in zip(sums0, sums1):
                sums.append(builder.mux(carry, s0, s1))
            carry = builder.mux(carry, carry0, carry1)
        position += size
    return builder.finish(
        sums + [carry],
        meta={"family": "exact_csel", "bitwidth": width, "exact": True, "block": block},
    )


def _partial_products(builder: NetlistBuilder, a: List[int], b: List[int]) -> List[List[int]]:
    """AND-gate partial-product matrix: ``pp[i][j] = a[j] & b[i]``."""
    return [[builder.and_(a[j], b[i]) for j in range(len(a))] for i in range(len(b))]


def _reduce_columns(builder: NetlistBuilder, columns: List[List[int]]) -> List[int]:
    """Carry-save reduction of a column-wise partial-product matrix.

    Repeatedly applies full/half adders within each column until every column
    holds at most two bits, then resolves the remaining two rows with a
    ripple-carry chain.  Returns the product bits, LSB first.
    """
    columns = [list(column) for column in columns]
    while any(len(column) > 2 for column in columns):
        next_columns: List[List[int]] = [[] for _ in range(len(columns) + 1)]
        for index, column in enumerate(columns):
            remaining = list(column)
            while len(remaining) >= 3:
                x, y, z = remaining.pop(), remaining.pop(), remaining.pop()
                total, carry = builder.full_adder(x, y, z)
                next_columns[index].append(total)
                next_columns[index + 1].append(carry)
            if len(remaining) == 2 and len(column) > 2:
                x, y = remaining.pop(), remaining.pop()
                total, carry = builder.half_adder(x, y)
                next_columns[index].append(total)
                next_columns[index + 1].append(carry)
            next_columns[index].extend(remaining)
        while next_columns and not next_columns[-1]:
            next_columns.pop()
        columns = next_columns

    # Final two-row addition.  Empty columns still have to propagate the
    # ripple carry, so they are treated as holding a constant zero.
    product: List[int] = []
    carry = builder.const0()
    for column in columns:
        if not column:
            total, carry = builder.half_adder(builder.const0(), carry)
        elif len(column) == 1:
            total, carry = builder.half_adder(column[0], carry)
        else:
            total, carry = builder.full_adder(column[0], column[1], carry)
        product.append(total)
    product.append(carry)
    return product


def array_multiplier(width: int, name: str | None = None) -> Netlist:
    """Exact ``width x width`` unsigned array multiplier (ripple-carry rows)."""
    if width < 2:
        raise ValueError("multiplier width must be at least 2")
    builder = NetlistBuilder(name or f"mul{width}x{width}_array_exact", kind="multiplier")
    a = builder.add_input_word("a", width)
    b = builder.add_input_word("b", width)
    partial = _partial_products(builder, a, b)

    # Row-by-row accumulation: running holds bits width .. of the partial sum.
    product: List[int] = [partial[0][0]]
    running: List[int] = partial[0][1:]
    for row in range(1, width):
        row_bits = partial[row]
        carry = builder.const0()
        new_running: List[int] = []
        for column in range(width):
            accumulated = running[column] if column < len(running) else builder.const0()
            total, carry = builder.full_adder(accumulated, row_bits[column], carry)
            new_running.append(total)
        new_running.append(carry)
        product.append(new_running[0])
        running = new_running[1:]
    product.extend(running)
    product = product[: 2 * width]
    return builder.finish(
        product,
        meta={"family": "exact_array", "bitwidth": width, "exact": True},
    )


def wallace_multiplier(width: int, name: str | None = None) -> Netlist:
    """Exact ``width x width`` unsigned multiplier with carry-save (Wallace) reduction."""
    if width < 2:
        raise ValueError("multiplier width must be at least 2")
    builder = NetlistBuilder(name or f"mul{width}x{width}_wallace_exact", kind="multiplier")
    a = builder.add_input_word("a", width)
    b = builder.add_input_word("b", width)
    partial = _partial_products(builder, a, b)

    columns: List[List[int]] = [[] for _ in range(2 * width)]
    for i in range(width):
        for j in range(width):
            columns[i + j].append(partial[i][j])
    product = _reduce_columns(builder, columns)
    product = product[: 2 * width]
    return builder.finish(
        product,
        meta={"family": "exact_wallace", "bitwidth": width, "exact": True},
    )


def exact_reference(kind: str, width: int) -> Netlist:
    """Golden reference circuit for error evaluation of a library."""
    if kind == "adder":
        return ripple_carry_adder(width)
    if kind == "multiplier":
        return array_multiplier(width)
    raise ValueError(f"unknown circuit kind {kind!r}")


def exact_product_table(width: int) -> Tuple[int, int]:
    """(max operand, max product) helper for normalising multiplier error."""
    max_operand = (1 << width) - 1
    return max_operand, max_operand * max_operand
