"""Parametric approximate adder generators.

The families implemented here mirror the designs most frequently used to
seed approximate-arithmetic libraries:

* **Truncated adders** -- the ``k`` least-significant result bits are forced
  to constants and the corresponding carry logic is removed.
* **Lower-part OR adders (LOA)** -- the ``k`` low bits are computed with a
  plain OR, the upper part is an exact adder whose carry-in speculates from
  the top bit of the low part.
* **Approximate-full-adder substitution (AFA)** -- the ``k`` low positions of
  a ripple-carry adder use one of the classic approximate full-adder cells.
* **Carry-cut (segmented) adders** -- the carry chain is cut into fixed-size
  segments; each segment speculates carry-in from a short look-back window,
  in the spirit of ETAII/ACA-style speculative adders.

Every generator produces a :class:`~repro.circuits.Netlist` whose ``meta``
records the family and the approximation parameters, which downstream code
uses for feature extraction and reporting.
"""

from __future__ import annotations

from typing import List

from ..circuits import NetlistBuilder, Netlist


def truncated_adder(width: int, cut: int, fill_one: bool = False) -> Netlist:
    """Adder that ignores the ``cut`` least-significant bit positions.

    The low result bits are tied to 0 (or 1 when ``fill_one``), the upper part
    is an exact ripple-carry adder with carry-in 0.
    """
    if not (0 <= cut <= width):
        raise ValueError("cut must be between 0 and the adder width")
    builder = NetlistBuilder(
        f"add{width}_trunc{cut}{'_f1' if fill_one else ''}", kind="adder"
    )
    a = builder.add_input_word("a", width)
    b = builder.add_input_word("b", width)
    low = [builder.const1() if fill_one else builder.const0() for _ in range(cut)]
    high, carry = builder.ripple_chain(a[cut:], b[cut:])
    return builder.finish(
        low + high + [carry],
        meta={
            "family": "trunc_adder",
            "bitwidth": width,
            "cut": cut,
            "fill_one": fill_one,
            "exact": cut == 0,
        },
    )


def lower_or_adder(width: int, cut: int, speculate_carry: bool = True) -> Netlist:
    """Lower-part OR adder (LOA).

    The ``cut`` low result bits are ``a | b``; the upper part is exact.  When
    ``speculate_carry`` is set, the carry into the upper part is
    ``a[cut-1] & b[cut-1]`` (the classic LOA carry speculation), otherwise 0.
    """
    if not (0 <= cut <= width):
        raise ValueError("cut must be between 0 and the adder width")
    builder = NetlistBuilder(
        f"add{width}_loa{cut}{'' if speculate_carry else '_nc'}", kind="adder"
    )
    a = builder.add_input_word("a", width)
    b = builder.add_input_word("b", width)
    low = [builder.or_(a[i], b[i]) for i in range(cut)]
    if cut > 0 and speculate_carry:
        carry_in = builder.and_(a[cut - 1], b[cut - 1])
    else:
        carry_in = builder.const0()
    high, carry = builder.ripple_chain(a[cut:], b[cut:], carry_in)
    return builder.finish(
        low + high + [carry],
        meta={
            "family": "loa",
            "bitwidth": width,
            "cut": cut,
            "speculate_carry": speculate_carry,
            "exact": cut == 0,
        },
    )


def approximate_fa_adder(width: int, cut: int, variant: int) -> Netlist:
    """Ripple-carry adder whose ``cut`` low positions use approximate full adders.

    ``variant`` selects the approximate cell, see
    :meth:`repro.circuits.NetlistBuilder.approx_full_adder`.
    """
    if not (0 <= cut <= width):
        raise ValueError("cut must be between 0 and the adder width")
    builder = NetlistBuilder(f"add{width}_afa{variant}_c{cut}", kind="adder")
    a = builder.add_input_word("a", width)
    b = builder.add_input_word("b", width)
    carry = builder.const0()
    sums: List[int] = []
    for position in range(width):
        if position < cut:
            total, carry = builder.approx_full_adder(a[position], b[position], carry, variant)
        else:
            total, carry = builder.full_adder(a[position], b[position], carry)
        sums.append(total)
    return builder.finish(
        sums + [carry],
        meta={
            "family": "afa",
            "bitwidth": width,
            "cut": cut,
            "variant": variant,
            "exact": cut == 0,
        },
    )


def carry_cut_adder(width: int, segment: int, lookback: int = 0) -> Netlist:
    """Segmented (carry-cut) adder in the spirit of ETAII / ACA.

    The adder is split into segments of ``segment`` bits.  Each segment is an
    exact ripple adder, but its carry-in is *speculated* from the previous
    ``lookback`` bit positions instead of the full carry chain (``lookback``
    of 0 means the carry is simply cut).
    """
    if segment < 1:
        raise ValueError("segment size must be at least 1")
    if lookback < 0:
        raise ValueError("lookback must be non-negative")
    builder = NetlistBuilder(f"add{width}_seg{segment}_lb{lookback}", kind="adder")
    a = builder.add_input_word("a", width)
    b = builder.add_input_word("b", width)

    sums: List[int] = []
    last_carry = builder.const0()
    position = 0
    while position < width:
        size = min(segment, width - position)
        if position == 0:
            carry_in = builder.const0()
        elif lookback == 0:
            carry_in = builder.const0()
        else:
            # Speculative carry: generate/propagate over the lookback window.
            start = max(0, position - lookback)
            carry_in = builder.const0()
            for bit in range(start, position):
                generate = builder.and_(a[bit], b[bit])
                propagate = builder.or_(a[bit], b[bit])
                carry_in = builder.or_(generate, builder.and_(propagate, carry_in))
        block_sums, last_carry = builder.ripple_chain(
            a[position:position + size], b[position:position + size], carry_in
        )
        sums.extend(block_sums)
        position += size
    return builder.finish(
        sums + [last_carry],
        meta={
            "family": "carry_cut",
            "bitwidth": width,
            "segment": segment,
            "lookback": lookback,
            "exact": segment >= width,
        },
    )
