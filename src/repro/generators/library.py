"""Circuit-library construction.

A :class:`CircuitLibrary` is the reproduction's stand-in for EvoApproxLib: a
named collection of gate-level approximate circuits of a single kind and
bit-width, always containing the exact reference circuit, with a seeded
generator that can scale the library to an arbitrary size by combining every
parametric family with random functional perturbations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence

import numpy as np

from ..circuits import Netlist
from . import adders, exact, multipliers
from .perturbation import perturbation_sweep


@dataclass
class CircuitLibrary:
    """A collection of approximate circuits of one kind and bit-width."""

    name: str
    kind: str
    bitwidth: int
    circuits: List[Netlist] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_name: Dict[str, Netlist] = {}
        for circuit in self.circuits:
            self._register(circuit)

    def _register(self, circuit: Netlist) -> None:
        if circuit.name in self._by_name:
            raise ValueError(f"duplicate circuit name {circuit.name!r} in library {self.name!r}")
        self._by_name[circuit.name] = circuit

    # ------------------------------------------------------------------ #
    def add(self, circuit: Netlist) -> None:
        """Add a circuit (names must be unique within the library)."""
        self._register(circuit)
        self.circuits.append(circuit)

    def __len__(self) -> int:
        return len(self.circuits)

    def __iter__(self) -> Iterator[Netlist]:
        return iter(self.circuits)

    def __getitem__(self, index: int) -> Netlist:
        return self.circuits[index]

    def get(self, name: str) -> Netlist:
        """Look a circuit up by name."""
        return self._by_name[name]

    def names(self) -> List[str]:
        return [circuit.name for circuit in self.circuits]

    @property
    def exact_circuits(self) -> List[Netlist]:
        """Circuits flagged as exact by their generator."""
        return [circuit for circuit in self.circuits if circuit.meta.get("exact")]

    def reference(self) -> Netlist:
        """Golden reference used for error evaluation."""
        return exact.exact_reference(self.kind, self.bitwidth)

    def random_subset(self, fraction: float, seed: int) -> List[Netlist]:
        """Uniformly random subset of the library (at least one circuit)."""
        if not (0.0 < fraction <= 1.0):
            raise ValueError("fraction must be in (0, 1]")
        rng = np.random.default_rng(seed)
        count = max(1, int(round(fraction * len(self.circuits))))
        indices = rng.choice(len(self.circuits), size=count, replace=False)
        return [self.circuits[i] for i in sorted(indices)]

    def families(self) -> Dict[str, int]:
        """Number of circuits per generator family."""
        counts: Dict[str, int] = {}
        for circuit in self.circuits:
            family = str(circuit.meta.get("family", "unknown"))
            counts[family] = counts.get(family, 0) + 1
        return counts


# ---------------------------------------------------------------------- #
# Library builders
# ---------------------------------------------------------------------- #
def _unique_extend(library: CircuitLibrary, candidates: Sequence[Netlist], limit: int) -> None:
    """Add candidates until the library reaches ``limit`` circuits."""
    for circuit in candidates:
        if len(library) >= limit:
            return
        if circuit.name in set(library.names()):
            continue
        library.add(circuit)


#: Fraction of a library drawn from the hand-designed parametric families; the
#: remainder comes from seeded perturbations.  EvoApproxLib is dominated by
#: CGP-evolved (frequently dominated) circuits, and the Pareto machinery needs
#: that long tail of dominated designs to be exercised realistically.
_PARAMETRIC_FRACTION = 0.55


def _parametric_budget(size: int) -> int:
    return max(2, min(size, int(round(_PARAMETRIC_FRACTION * size)) + 1))


def build_adder_library(width: int, size: int = 120, seed: int = 7) -> CircuitLibrary:
    """Build a library of ``width``-bit approximate adders with ``size`` members.

    The parametric families (truncation, LOA, approximate-full-adder
    substitution, carry-cut) are enumerated first (up to ~55% of the library);
    the remainder is filled with seeded perturbations of the exact adder,
    mirroring the CGP-derived portion of EvoApproxLib.
    """
    if size < 1:
        raise ValueError("library size must be at least 1")
    library = CircuitLibrary(name=f"adders_{width}bit", kind="adder", bitwidth=width)

    parametric: List[Netlist] = [exact.ripple_carry_adder(width)]
    if width >= 4:
        parametric.append(exact.carry_select_adder(width, block=max(2, width // 4)))
    for cut in range(1, width):
        parametric.append(adders.truncated_adder(width, cut))
    for cut in range(1, width):
        parametric.append(adders.lower_or_adder(width, cut, speculate_carry=True))
    for cut in range(2, width, 2):
        parametric.append(adders.lower_or_adder(width, cut, speculate_carry=False))
    for variant in (1, 2, 3, 4):
        for cut in range(1, width, 1 if width <= 8 else 2):
            parametric.append(adders.approximate_fa_adder(width, cut, variant))
    for segment in (2, 4, max(2, width // 2)):
        for lookback in (0, 1, 2, 4):
            if segment < width:
                parametric.append(adders.carry_cut_adder(width, segment, lookback))

    _unique_extend(library, parametric, _parametric_budget(size))

    if len(library) < size:
        base = exact.ripple_carry_adder(width, name=f"add{width}_rca_seed")
        extra = perturbation_sweep(
            base,
            count=size - len(library),
            seed=seed,
            min_mutations=1,
            max_mutations=max(4, width),
        )
        _unique_extend(library, extra, size)
    return library


def build_multiplier_library(width: int, size: int = 200, seed: int = 11) -> CircuitLibrary:
    """Build a library of ``width x width`` approximate multipliers.

    Mirrors :func:`build_adder_library`; the parametric families are
    truncation, broken-array, OR partial products, approximate reduction
    cells and (for power-of-two widths) Kulkarni-style recursive multipliers.
    """
    if size < 1:
        raise ValueError("library size must be at least 1")
    library = CircuitLibrary(name=f"multipliers_{width}x{width}", kind="multiplier", bitwidth=width)

    parametric: List[Netlist] = [exact.array_multiplier(width), exact.wallace_multiplier(width)]
    for cut in range(1, width + width // 2):
        parametric.append(multipliers.truncated_multiplier(width, cut))
    for horizontal in range(0, width, max(1, width // 8)):
        for vertical in range(0, width + 1, max(1, width // 4)):
            if horizontal == 0 and vertical == 0:
                continue
            parametric.append(multipliers.broken_array_multiplier(width, horizontal, vertical))
    for cut in range(1, width + 1):
        parametric.append(multipliers.or_partial_product_multiplier(width, cut))
    for variant in (1, 2, 3, 4):
        for cut in range(1, width, 1 if width <= 8 else 2):
            parametric.append(multipliers.approximate_cell_multiplier(width, cut, variant))
    if width >= 4 and width & (width - 1) == 0:
        for level in range(0, width + 1, 2):
            parametric.append(multipliers.recursive_multiplier(width, level))

    _unique_extend(library, parametric, _parametric_budget(size))

    if len(library) < size:
        base = exact.array_multiplier(width)
        base = base.copy(name=f"mul{width}x{width}_seed")
        extra = perturbation_sweep(
            base,
            count=size - len(library),
            seed=seed,
            min_mutations=2,
            max_mutations=max(6, 2 * width),
        )
        _unique_extend(library, extra, size)
    return library


def build_library(kind: str, width: int, size: int, seed: int = 7) -> CircuitLibrary:
    """Dispatch helper used by the methodology and the benchmarks."""
    if kind == "adder":
        return build_adder_library(width, size=size, seed=seed)
    if kind == "multiplier":
        return build_multiplier_library(width, size=size, seed=seed)
    raise ValueError(f"unknown circuit kind {kind!r}")


def default_library_plan() -> List[Dict[str, object]]:
    """The six libraries evaluated in the paper (Fig. 3 / Fig. 8).

    Sizes are scaled down from EvoApproxLib so the full reproduction runs on
    a laptop; the ratios between adder and multiplier library sizes follow
    the paper (the multiplier libraries are much larger).
    """
    return [
        {"kind": "adder", "width": 8, "size": 96},
        {"kind": "adder", "width": 12, "size": 80},
        {"kind": "adder", "width": 16, "size": 72},
        {"kind": "multiplier", "width": 8, "size": 180},
        {"kind": "multiplier", "width": 12, "size": 96},
        {"kind": "multiplier", "width": 16, "size": 64},
    ]
