"""Approximate arithmetic circuit generators (EvoApproxLib substitute)."""

from .exact import (
    array_multiplier,
    carry_select_adder,
    exact_reference,
    ripple_carry_adder,
    wallace_multiplier,
)
from .adders import (
    approximate_fa_adder,
    carry_cut_adder,
    lower_or_adder,
    truncated_adder,
)
from .multipliers import (
    approximate_cell_multiplier,
    broken_array_multiplier,
    or_partial_product_multiplier,
    recursive_multiplier,
    truncated_multiplier,
)
from .perturbation import PerturbationConfig, perturb_netlist, perturbation_sweep
from .library import (
    CircuitLibrary,
    build_adder_library,
    build_library,
    build_multiplier_library,
    default_library_plan,
)

__all__ = [
    "array_multiplier",
    "carry_select_adder",
    "exact_reference",
    "ripple_carry_adder",
    "wallace_multiplier",
    "approximate_fa_adder",
    "carry_cut_adder",
    "lower_or_adder",
    "truncated_adder",
    "approximate_cell_multiplier",
    "broken_array_multiplier",
    "or_partial_product_multiplier",
    "recursive_multiplier",
    "truncated_multiplier",
    "PerturbationConfig",
    "perturb_netlist",
    "perturbation_sweep",
    "CircuitLibrary",
    "build_adder_library",
    "build_library",
    "build_multiplier_library",
    "default_library_plan",
]
