"""Seeded functional perturbation of exact netlists.

EvoApproxLib was produced by Cartesian Genetic Programming: starting from
exact circuits, gate-level mutations are applied and circuits are kept that
trade error for cost.  This module provides the mutation operator of that
process.  Combined with the parametric families it yields libraries whose
size is limited only by how many seeds are drawn, with the same qualitative
spread of error/cost trade-offs (including circuits that are poor on every
axis, which the Pareto machinery must be able to reject).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..circuits import Gate, GateType, Netlist
from ..circuits.gates import ONE_INPUT_GATES, TWO_INPUT_GATES


@dataclass(frozen=True)
class PerturbationConfig:
    """Controls the mutation operator.

    Attributes
    ----------
    num_mutations:
        How many gate-level mutations to apply.
    allow_output_mutation:
        Whether output bits may be redirected to constants or other nodes.
    locality:
        When rewiring an operand, the replacement node is drawn from a window
        of this many node ids around the original operand; keeps mutated
        circuits structurally similar to arithmetic circuits instead of
        random logic.
    """

    num_mutations: int = 4
    allow_output_mutation: bool = True
    locality: int = 24


_MUTATION_KINDS = ("retype", "rewire", "constant", "output")


def perturb_netlist(
    netlist: Netlist,
    seed: int,
    config: Optional[PerturbationConfig] = None,
    name: Optional[str] = None,
) -> Netlist:
    """Return a functionally perturbed copy of ``netlist``.

    The result has the same interface (input words, output width) and is
    always a valid netlist; its function generally differs from the original.
    """
    config = config or PerturbationConfig()
    rng = np.random.default_rng(seed)
    gates: List[Gate] = list(netlist.gates)
    output_bits = list(netlist.output_bits)
    num_inputs = netlist.num_inputs

    applied = 0
    attempts = 0
    while applied < config.num_mutations and attempts < 20 * config.num_mutations:
        attempts += 1
        kind = _MUTATION_KINDS[rng.integers(0, len(_MUTATION_KINDS))]
        if kind == "output" and not config.allow_output_mutation:
            continue
        if kind == "output":
            position = int(rng.integers(0, len(output_bits)))
            # Redirect an output bit to a nearby node or a primary input.
            current = output_bits[position]
            low = max(0, current - config.locality)
            high = min(num_inputs + len(gates), current + config.locality + 1)
            output_bits[position] = int(rng.integers(low, high))
            applied += 1
            continue

        if not gates:
            continue
        index = int(rng.integers(0, len(gates)))
        gate = gates[index]
        node_id = num_inputs + index

        if kind == "retype":
            if gate.arity == 2:
                choices = [g for g in TWO_INPUT_GATES if g != gate.gate_type]
            elif gate.arity == 1:
                choices = [g for g in ONE_INPUT_GATES if g != gate.gate_type]
            else:
                continue
            new_type = choices[int(rng.integers(0, len(choices)))]
            gates[index] = Gate(new_type, gate.a, gate.b)
            applied += 1
        elif kind == "rewire":
            if gate.arity == 0:
                continue
            operand_slot = int(rng.integers(0, gate.arity))
            original = gate.a if operand_slot == 0 else gate.b
            low = max(0, original - config.locality)
            high = min(node_id, original + config.locality + 1)
            if high <= low:
                continue
            replacement = int(rng.integers(low, high))
            if operand_slot == 0:
                gates[index] = Gate(gate.gate_type, replacement, gate.b)
            else:
                gates[index] = Gate(gate.gate_type, gate.a, replacement)
            applied += 1
        elif kind == "constant":
            constant = GateType.CONST0 if rng.random() < 0.5 else GateType.CONST1
            gates[index] = Gate(constant)
            applied += 1

    mutated = Netlist(
        name=name or f"{netlist.name}_p{seed}",
        kind=netlist.kind,
        input_words={k: tuple(v) for k, v in netlist.input_words.items()},
        output_bits=tuple(output_bits),
        gates=gates,
        meta={
            **dict(netlist.meta),
            "family": f"{netlist.meta.get('family', 'unknown')}_perturbed",
            "exact": False,
            "perturbation_seed": seed,
            "perturbation_mutations": config.num_mutations,
        },
    )
    mutated.validate()
    return mutated


def perturbation_sweep(
    netlist: Netlist,
    count: int,
    seed: int,
    min_mutations: int = 1,
    max_mutations: int = 12,
    locality: int = 24,
) -> List[Netlist]:
    """Generate ``count`` perturbed variants with varying mutation strength.

    The mutation strength cycles over ``[min_mutations, max_mutations]`` so the
    resulting set spans near-exact to heavily approximate circuits.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    variants: List[Netlist] = []
    rng = np.random.default_rng(seed)
    for index in range(count):
        strength = min_mutations + index % (max_mutations - min_mutations + 1)
        variant_seed = int(rng.integers(0, 2**31 - 1))
        config = PerturbationConfig(num_mutations=strength, locality=locality)
        variants.append(
            perturb_netlist(
                netlist,
                seed=variant_seed,
                config=config,
                name=f"{netlist.name}_p{index:04d}",
            )
        )
    return variants
