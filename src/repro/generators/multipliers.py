"""Parametric approximate multiplier generators.

Implemented families (all unsigned, ``width x width`` with ``2 * width``
output bits):

* **Truncated multipliers** -- the ``cut`` least-significant partial-product
  columns are dropped and the corresponding output bits tied to 0.
* **Broken-array multipliers (BAM)** -- partial products below a horizontal /
  vertical break line are omitted, shrinking the carry-save array.
* **Approximate-cell array multipliers** -- the reduction cells of the
  ``cut`` least-significant columns are replaced with approximate full
  adders.
* **Kulkarni-style recursive multipliers** -- the operand is split
  recursively down to 2x2 blocks; a configurable number of the 2x2 base
  blocks use the classic inaccurate 2x2 multiplier (3*3 = 7).
* **OR-based partial-product multipliers** -- the AND partial products of the
  low columns are replaced with ORs, a multiplier analogue of LOA.
"""

from __future__ import annotations

from typing import List, Sequence

from ..circuits import NetlistBuilder, Netlist
from .exact import _reduce_columns


def _pp_columns(
    builder: NetlistBuilder, a: Sequence[int], b: Sequence[int], keep
) -> List[List[int]]:
    """Column-wise partial-product matrix, filtered by ``keep(i, j)``."""
    width = len(a)
    columns: List[List[int]] = [[] for _ in range(2 * width)]
    for i in range(width):
        for j in range(width):
            if keep(i, j):
                columns[i + j].append(builder.and_(a[j], b[i]))
    return columns


def _finish_product(builder: NetlistBuilder, columns: List[List[int]], width: int, meta) -> Netlist:
    """Reduce columns and finish a multiplier netlist with 2*width output bits."""
    product = _reduce_columns(builder, columns)
    while len(product) < 2 * width:
        product.append(builder.const0())
    return builder.finish(product[: 2 * width], meta=meta)


def truncated_multiplier(width: int, cut: int) -> Netlist:
    """Multiplier ignoring the ``cut`` least-significant partial-product columns."""
    if not (0 <= cut <= 2 * width - 1):
        raise ValueError("cut must be between 0 and 2*width-1")
    builder = NetlistBuilder(f"mul{width}x{width}_trunc{cut}", kind="multiplier")
    a = builder.add_input_word("a", width)
    b = builder.add_input_word("b", width)
    columns = _pp_columns(builder, a, b, keep=lambda i, j: i + j >= cut)
    return _finish_product(
        builder,
        columns,
        width,
        meta={"family": "trunc_mult", "bitwidth": width, "cut": cut, "exact": cut == 0},
    )


def broken_array_multiplier(width: int, horizontal_break: int, vertical_break: int) -> Netlist:
    """Broken-array multiplier: omit cells below the break lines.

    A partial product ``a[j] & b[i]`` is kept only if ``i + j >= vertical_break``
    (column break) and ``i >= horizontal_break`` does *not* force removal of
    low rows for columns above the break, following the usual BAM definition
    where cells with ``i < horizontal_break`` and ``i + j < width`` are
    omitted.
    """
    if horizontal_break < 0 or vertical_break < 0:
        raise ValueError("break positions must be non-negative")
    builder = NetlistBuilder(
        f"mul{width}x{width}_bam_h{horizontal_break}_v{vertical_break}", kind="multiplier"
    )
    a = builder.add_input_word("a", width)
    b = builder.add_input_word("b", width)

    def keep(i: int, j: int) -> bool:
        if i + j < vertical_break:
            return False
        if i < horizontal_break and i + j < width:
            return False
        return True

    columns = _pp_columns(builder, a, b, keep=keep)
    exact = horizontal_break == 0 and vertical_break == 0
    return _finish_product(
        builder,
        columns,
        width,
        meta={
            "family": "broken_array",
            "bitwidth": width,
            "horizontal_break": horizontal_break,
            "vertical_break": vertical_break,
            "exact": exact,
        },
    )


def or_partial_product_multiplier(width: int, cut: int) -> Netlist:
    """Multiplier whose ``cut`` low columns compute with OR partial products.

    The low columns keep only one (OR-combined) bit per column, removing the
    reduction logic there entirely; the high columns are exact.
    """
    if not (0 <= cut <= 2 * width - 1):
        raise ValueError("cut must be between 0 and 2*width-1")
    builder = NetlistBuilder(f"mul{width}x{width}_orpp{cut}", kind="multiplier")
    a = builder.add_input_word("a", width)
    b = builder.add_input_word("b", width)
    columns: List[List[int]] = [[] for _ in range(2 * width)]
    for i in range(width):
        for j in range(width):
            column = i + j
            bit = builder.and_(a[j], b[i])
            if column < cut and columns[column]:
                columns[column] = [builder.or_(columns[column][0], bit)]
            else:
                columns[column].append(bit)
    return _finish_product(
        builder,
        columns,
        width,
        meta={"family": "or_pp", "bitwidth": width, "cut": cut, "exact": cut == 0},
    )


def approximate_cell_multiplier(width: int, cut: int, variant: int) -> Netlist:
    """Array multiplier whose reduction uses approximate full adders in low columns.

    Columns with index below ``cut`` are reduced with the approximate
    full-adder ``variant``; remaining columns use exact cells.
    """
    if not (0 <= cut <= 2 * width - 1):
        raise ValueError("cut must be between 0 and 2*width-1")
    builder = NetlistBuilder(f"mul{width}x{width}_acell{variant}_c{cut}", kind="multiplier")
    a = builder.add_input_word("a", width)
    b = builder.add_input_word("b", width)
    columns = _pp_columns(builder, a, b, keep=lambda i, j: True)

    # Column reduction with per-column cell selection.
    columns = [list(column) for column in columns]
    while any(len(column) > 2 for column in columns):
        next_columns: List[List[int]] = [[] for _ in range(len(columns) + 1)]
        for index, column in enumerate(columns):
            remaining = list(column)
            approximate = index < cut
            while len(remaining) >= 3:
                x, y, z = remaining.pop(), remaining.pop(), remaining.pop()
                if approximate:
                    total, carry = builder.approx_full_adder(x, y, z, variant)
                else:
                    total, carry = builder.full_adder(x, y, z)
                next_columns[index].append(total)
                next_columns[index + 1].append(carry)
            if len(remaining) == 2 and len(column) > 2:
                x, y = remaining.pop(), remaining.pop()
                total, carry = builder.half_adder(x, y)
                next_columns[index].append(total)
                next_columns[index + 1].append(carry)
            next_columns[index].extend(remaining)
        while next_columns and not next_columns[-1]:
            next_columns.pop()
        columns = next_columns

    product: List[int] = []
    carry = builder.const0()
    for index, column in enumerate(columns):
        if not column:
            product.append(builder.const0())
            continue
        if len(column) == 1:
            total, carry = builder.half_adder(column[0], carry)
        elif index < cut:
            total, carry = builder.approx_full_adder(column[0], column[1], carry, variant)
        else:
            total, carry = builder.full_adder(column[0], column[1], carry)
        product.append(total)
    product.append(carry)
    while len(product) < 2 * width:
        product.append(builder.const0())
    return builder.finish(
        product[: 2 * width],
        meta={
            "family": "approx_cell",
            "bitwidth": width,
            "cut": cut,
            "variant": variant,
            "exact": cut == 0,
        },
    )


def _mult2x2_exact(builder: NetlistBuilder, a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Exact 2x2 multiplier block, 4 output bits."""
    p0 = builder.and_(a[0], b[0])
    p1a = builder.and_(a[1], b[0])
    p1b = builder.and_(a[0], b[1])
    p2 = builder.and_(a[1], b[1])
    s1, c1 = builder.half_adder(p1a, p1b)
    s2, c2 = builder.half_adder(p2, c1)
    return [p0, s1, s2, c2]


def _mult2x2_approx(builder: NetlistBuilder, a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Kulkarni inaccurate 2x2 multiplier: 3 output bits, 3*3 evaluates to 7."""
    p0 = builder.and_(a[0], b[0])
    p1 = builder.or_(builder.and_(a[1], b[0]), builder.and_(a[0], b[1]))
    p2 = builder.and_(a[1], b[1])
    return [p0, p1, p2, builder.const0()]


def recursive_multiplier(width: int, approx_level: int) -> Netlist:
    """Kulkarni-style recursive multiplier.

    The operands are recursively split down to 2x2 base blocks.  A base block
    that only contributes to product bits below ``2 * approx_level`` uses the
    inaccurate 2x2 multiplier (3*3 = 7); the remaining blocks are exact.
    ``approx_level = 0`` is fully exact, ``approx_level = width`` makes every
    base block approximate.  Requires ``width`` to be a power of two >= 4.
    """
    if width < 4 or width & (width - 1):
        raise ValueError("recursive multiplier requires a power-of-two width >= 4")
    if approx_level < 0:
        raise ValueError("approx_level must be non-negative")
    builder = NetlistBuilder(f"mul{width}x{width}_rec_l{approx_level}", kind="multiplier")
    a = builder.add_input_word("a", width)
    b = builder.add_input_word("b", width)
    shift_cut = 2 * approx_level
    product = _recursive_with_cut(builder, a, b, shift_cut, shift=0)
    while len(product) < 2 * width:
        product.append(builder.const0())
    return builder.finish(
        product[: 2 * width],
        meta={
            "family": "recursive",
            "bitwidth": width,
            "approx_level": approx_level,
            "exact": approx_level == 0,
        },
    )


def _recursive_with_cut(
    builder: NetlistBuilder,
    a: Sequence[int],
    b: Sequence[int],
    shift_cut: int,
    shift: int,
) -> List[int]:
    """Recursive product; 2x2 base blocks whose weight is below the cut are approximate.

    ``shift`` is the bit position at which this sub-product is added into the
    full product; a 2x2 block is approximated when ``shift < shift_cut``.
    """
    width = len(a)
    if width == 2:
        if shift < shift_cut:
            return _mult2x2_approx(builder, a, b)
        return _mult2x2_exact(builder, a, b)
    half = width // 2
    a_low, a_high = list(a[:half]), list(a[half:])
    b_low, b_high = list(b[:half]), list(b[half:])
    ll = _recursive_with_cut(builder, a_low, b_low, shift_cut, shift)
    lh = _recursive_with_cut(builder, a_low, b_high, shift_cut, shift + half)
    hl = _recursive_with_cut(builder, a_high, b_low, shift_cut, shift + half)
    hh = _recursive_with_cut(builder, a_high, b_high, shift_cut, shift + 2 * half)

    columns: List[List[int]] = [[] for _ in range(2 * width)]
    for position, bit in enumerate(ll):
        columns[position].append(bit)
    for position, bit in enumerate(lh):
        columns[position + half].append(bit)
    for position, bit in enumerate(hl):
        columns[position + half].append(bit)
    for position, bit in enumerate(hh):
        columns[position + 2 * half].append(bit)
    product = _reduce_columns(builder, columns)
    while len(product) < 2 * width:
        product.append(builder.const0())
    return product[: 2 * width]
