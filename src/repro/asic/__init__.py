"""ASIC synthesis substrate (standard-cell mapping and cost reports)."""

from .cell_library import CellLibrary, StandardCell, default_cell_library
from .synthesis import AsicReport, AsicSynthesizer, synthesize_asic

__all__ = [
    "CellLibrary",
    "StandardCell",
    "default_cell_library",
    "AsicReport",
    "AsicSynthesizer",
    "synthesize_asic",
]
