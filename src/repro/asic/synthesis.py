"""ASIC synthesis substrate.

"Synthesis" here is a deterministic gate-level cost analysis against a
standard-cell library: each live primitive gate becomes one cell, the
critical path is a load-aware longest path, dynamic power comes from the
per-node switching activity and the operating frequency is derived from the
critical path.  This is the stand-in for the commercial ASIC reports the
paper uses as ML features and for the ASIC Pareto front of Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..circuits import Netlist
from ..circuits.activity import node_switching_activities
from .cell_library import CellLibrary, default_cell_library


@dataclass(frozen=True)
class AsicReport:
    """Area / timing / power report of an ASIC mapping."""

    circuit_name: str
    area_um2: float
    critical_path_ns: float
    dynamic_power_mw: float
    leakage_power_mw: float
    cell_count: int

    @property
    def total_power_mw(self) -> float:
        return self.dynamic_power_mw + self.leakage_power_mw

    @property
    def latency_ns(self) -> float:
        """Alias used by the methodology (matches the FPGA report naming)."""
        return self.critical_path_ns

    def as_dict(self) -> Dict[str, float]:
        return {
            "asic_area_um2": self.area_um2,
            "asic_latency_ns": self.critical_path_ns,
            "asic_power_mw": self.total_power_mw,
            "asic_dynamic_power_mw": self.dynamic_power_mw,
            "asic_leakage_power_mw": self.leakage_power_mw,
            "asic_cell_count": self.cell_count,
        }


class AsicSynthesizer:
    """Maps netlists onto a standard-cell library and reports costs.

    Parameters
    ----------
    cell_library:
        The target library; defaults to the bundled 45nm-class library.
    clock_period_ns:
        Assumed operating period used to convert switching energy into
        dynamic power.  When ``None``, the circuit's own critical path is
        used (i.e. the circuit runs at its maximum frequency).
    activity_samples, activity_seed:
        Monte-Carlo parameters for the switching-activity estimate.
    """

    def __init__(
        self,
        cell_library: Optional[CellLibrary] = None,
        clock_period_ns: Optional[float] = None,
        activity_samples: int = 256,
        activity_seed: int = 99,
    ):
        self.cell_library = cell_library or default_cell_library()
        self.clock_period_ns = clock_period_ns
        self.activity_samples = activity_samples
        self.activity_seed = activity_seed

    def synthesize(self, netlist: Netlist) -> AsicReport:
        """Produce the ASIC area / timing / power report for ``netlist``."""
        live_mask = netlist.transitive_fanin()
        fanouts = netlist.fanout_counts()
        activities = node_switching_activities(
            netlist, num_samples=self.activity_samples, seed=self.activity_seed
        )

        area = 0.0
        leakage_nw = 0.0
        switched_energy_fj = 0.0
        cell_count = 0

        # Load-aware longest path: arrival time of each node.
        arrival = np.zeros(netlist.num_nodes, dtype=np.float64)
        for index, gate in enumerate(netlist.gates):
            node_id = netlist.gate_node_id(index)
            cell = self.cell_library.cell(gate.gate_type)
            operands = gate.operands()
            operand_arrival = max((arrival[o] for o in operands), default=0.0)
            load = max(1, int(fanouts[node_id]))
            arrival[node_id] = operand_arrival + cell.intrinsic_delay_ns + cell.load_delay_ns_per_fanout * load

            if not live_mask[node_id]:
                continue
            cell_count += 1
            area += cell.area_um2
            leakage_nw += cell.leakage_nw
            switched_energy_fj += cell.switching_energy_fj * activities[node_id] * load

        critical_path = max((float(arrival[bit]) for bit in netlist.output_bits), default=0.0)
        critical_path = max(critical_path, 1e-3)

        period_ns = self.clock_period_ns if self.clock_period_ns else critical_path
        # fJ per cycle over a period in ns: 1 fJ / 1 ns = 1e-6 W = 1e-3 mW.
        dynamic_power_mw = (switched_energy_fj / period_ns) * 1e-3
        leakage_power_mw = leakage_nw * 1e-6

        return AsicReport(
            circuit_name=netlist.name,
            area_um2=area,
            critical_path_ns=critical_path,
            dynamic_power_mw=dynamic_power_mw,
            leakage_power_mw=leakage_power_mw,
            cell_count=cell_count,
        )


def synthesize_asic(netlist: Netlist, **kwargs) -> AsicReport:
    """One-shot convenience wrapper around :class:`AsicSynthesizer`."""
    return AsicSynthesizer(**kwargs).synthesize(netlist)
