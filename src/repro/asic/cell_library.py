"""Standard-cell library model for the ASIC synthesis substrate.

The numbers are representative of a commercial 45nm low-power library
(NanGate-class): they are not meant to match any foundry exactly, only to
give every primitive gate a distinct, realistic area / delay / energy point
so that ASIC costs order circuits the way a real flow would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..circuits import GateType


@dataclass(frozen=True)
class StandardCell:
    """Electrical and physical characteristics of one standard cell."""

    name: str
    gate_type: GateType
    area_um2: float
    intrinsic_delay_ns: float
    load_delay_ns_per_fanout: float
    switching_energy_fj: float
    leakage_nw: float


@dataclass(frozen=True)
class CellLibrary:
    """A named collection of standard cells, one per primitive gate type."""

    name: str
    voltage_v: float
    cells: Dict[GateType, StandardCell]

    def cell(self, gate_type: GateType) -> StandardCell:
        return self.cells[gate_type]


def default_cell_library() -> CellLibrary:
    """The 45nm-class library used throughout the reproduction."""
    raw = {
        # gate_type: (area, intrinsic delay, load delay/fanout, energy, leakage)
        GateType.CONST0: (0.0, 0.0, 0.0, 0.0, 0.0),
        GateType.CONST1: (0.0, 0.0, 0.0, 0.0, 0.0),
        GateType.BUF: (0.53, 0.020, 0.004, 0.6, 0.9),
        GateType.NOT: (0.53, 0.012, 0.003, 0.5, 0.8),
        GateType.AND: (1.06, 0.032, 0.006, 1.1, 1.6),
        GateType.OR: (1.06, 0.034, 0.006, 1.2, 1.7),
        GateType.NAND: (0.80, 0.022, 0.005, 0.9, 1.2),
        GateType.NOR: (0.80, 0.026, 0.005, 1.0, 1.3),
        GateType.XOR: (1.60, 0.045, 0.008, 1.9, 2.4),
        GateType.XNOR: (1.60, 0.046, 0.008, 1.9, 2.4),
        GateType.ANDNOT: (1.06, 0.030, 0.006, 1.1, 1.5),
        GateType.ORNOT: (1.06, 0.033, 0.006, 1.2, 1.6),
    }
    cells = {
        gate_type: StandardCell(
            name=f"{gate_type.name.lower()}_x1",
            gate_type=gate_type,
            area_um2=values[0],
            intrinsic_delay_ns=values[1],
            load_delay_ns_per_fanout=values[2],
            switching_energy_fj=values[3],
            leakage_nw=values[4],
        )
        for gate_type, values in raw.items()
    }
    return CellLibrary(name="repro45lp", voltage_v=1.1, cells=cells)
