"""Feature extraction for the S/ML cost models.

The paper trains its models on "the hardware description of the AC" plus the
ASIC metrics.  Here every circuit is summarised by a fixed-length numeric
vector combining:

* structural features of the gate-level netlist (gate counts per type,
  depth, fanout statistics, interface widths), and
* the ASIC report (area, latency, power, cell count), which is cheap to
  obtain for the whole library and is exactly what ML1-ML3 regress on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..asic import AsicReport, AsicSynthesizer
from ..circuits import GateType, Netlist, structural_metrics

#: Order of the structural feature block.
STRUCTURAL_FEATURE_NAMES: Tuple[str, ...] = (
    "num_inputs",
    "num_outputs",
    "num_gates",
    "live_gates",
    "depth",
    "max_fanout",
    "mean_fanout",
    "constant_outputs",
    "passthrough_outputs",
) + tuple(f"count_{gate_type.name.lower()}" for gate_type in GateType)

#: Order of the ASIC feature block (names match AsicReport.as_dict()).
ASIC_FEATURE_NAMES: Tuple[str, ...] = (
    "asic_area_um2",
    "asic_latency_ns",
    "asic_power_mw",
    "asic_cell_count",
)

#: Full default feature vector layout.
FEATURE_NAMES: Tuple[str, ...] = STRUCTURAL_FEATURE_NAMES + ASIC_FEATURE_NAMES


@dataclass(frozen=True)
class CircuitFeatures:
    """Feature vector of a single circuit."""

    circuit_name: str
    names: Tuple[str, ...]
    values: np.ndarray

    def as_dict(self) -> Dict[str, float]:
        return dict(zip(self.names, self.values.tolist()))


def extract_features(
    netlist: Netlist,
    asic_report: Optional[AsicReport] = None,
    asic_synthesizer: Optional[AsicSynthesizer] = None,
) -> CircuitFeatures:
    """Extract the feature vector of one circuit.

    The ASIC report is synthesized on the fly when not supplied; pass a
    shared :class:`AsicSynthesizer` to reuse its configuration.
    """
    structure = structural_metrics(netlist).as_dict()
    if asic_report is None:
        asic_report = (asic_synthesizer or AsicSynthesizer()).synthesize(netlist)
    asic = asic_report.as_dict()

    values = []
    for name in STRUCTURAL_FEATURE_NAMES:
        values.append(float(structure.get(name, 0.0)))
    for name in ASIC_FEATURE_NAMES:
        values.append(float(asic[name]))
    return CircuitFeatures(
        circuit_name=netlist.name,
        names=FEATURE_NAMES,
        values=np.asarray(values, dtype=np.float64),
    )


def feature_matrix(
    circuits: Sequence[Netlist],
    asic_reports: Optional[Sequence[AsicReport]] = None,
    asic_synthesizer: Optional[AsicSynthesizer] = None,
) -> Tuple[np.ndarray, List[str]]:
    """Stack the feature vectors of many circuits into a matrix.

    Returns ``(X, feature_names)`` with one row per circuit, in order.
    """
    if asic_reports is not None and len(asic_reports) != len(circuits):
        raise ValueError("asic_reports must align one-to-one with circuits")
    synthesizer = asic_synthesizer or AsicSynthesizer()
    rows = []
    for index, circuit in enumerate(circuits):
        report = asic_reports[index] if asic_reports is not None else None
        rows.append(extract_features(circuit, asic_report=report, asic_synthesizer=synthesizer).values)
    if not rows:
        return np.zeros((0, len(FEATURE_NAMES))), list(FEATURE_NAMES)
    return np.vstack(rows), list(FEATURE_NAMES)
