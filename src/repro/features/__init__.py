"""Feature extraction for the S/ML cost models."""

from .extract import (
    ASIC_FEATURE_NAMES,
    FEATURE_NAMES,
    STRUCTURAL_FEATURE_NAMES,
    CircuitFeatures,
    extract_features,
    feature_matrix,
)

__all__ = [
    "ASIC_FEATURE_NAMES",
    "FEATURE_NAMES",
    "STRUCTURAL_FEATURE_NAMES",
    "CircuitFeatures",
    "extract_features",
    "feature_matrix",
]
