"""FPGA device model.

The parameters describe a Xilinx 7-series Virtex-class device (the paper
targets ``xc7vx485tffg1157-1``): 6-input LUTs, four LUTs per slice, and
delay / energy figures in the range published for 28nm 7-series fabric.  As
with the ASIC cell library the absolute values are representative rather
than vendor-exact; what matters for the methodology is that FPGA costs are
produced by LUT-level mapping, not gate counting.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FpgaDevice:
    """Architecture and electrical parameters of the target FPGA."""

    name: str
    lut_size: int
    luts_per_slice: int
    lut_delay_ns: float
    """Combinational delay through one LUT."""

    routing_delay_ns: float
    """Base routing delay of a net between two LUTs."""

    routing_fanout_delay_ns: float
    """Additional routing delay per unit of fanout of the driving LUT."""

    input_delay_ns: float
    """Delay from a primary input (IOB) to the first LUT."""

    lut_dynamic_energy_fj: float
    """Switched energy of one LUT output toggle (LUT + local interconnect)."""

    net_dynamic_energy_fj: float
    """Switched energy per fanout of a routed net."""

    static_power_per_lut_uw: float
    """Leakage attributed to one occupied LUT."""

    static_power_base_mw: float
    """Device static power floor attributed to the design (clock tree, config)."""

    total_luts: int
    total_slices: int


def default_device() -> FpgaDevice:
    """The Virtex-7 class device used throughout the reproduction."""
    return FpgaDevice(
        name="xc7vx485t-sim",
        lut_size=6,
        luts_per_slice=4,
        lut_delay_ns=0.124,
        routing_delay_ns=0.387,
        routing_fanout_delay_ns=0.021,
        input_delay_ns=0.250,
        lut_dynamic_energy_fj=9.5,
        net_dynamic_energy_fj=3.2,
        static_power_per_lut_uw=1.4,
        static_power_base_mw=0.35,
        total_luts=303600,
        total_slices=75900,
    )
