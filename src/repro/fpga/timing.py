"""FPGA timing analysis.

Static timing over the mapped LUT network: the arrival time of a LUT output
is the worst arrival over its leaf signals plus the LUT delay plus a
fanout-dependent routing delay for the net it drives.  Primary inputs start
at the device's input (IOB-to-fabric) delay.  The reported latency is the
worst arrival over the circuit outputs -- the combinational critical path
that Vivado would report for an unregistered arithmetic core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .device import FpgaDevice
from .lut_mapping import LutMapping


@dataclass(frozen=True)
class TimingReport:
    """Critical-path summary of a mapped circuit."""

    critical_path_ns: float
    logic_levels: int
    logic_delay_ns: float
    routing_delay_ns: float

    @property
    def max_frequency_mhz(self) -> float:
        if self.critical_path_ns <= 0:
            return float("inf")
        return 1e3 / self.critical_path_ns


def analyze_timing(mapping: LutMapping, device: FpgaDevice) -> TimingReport:
    """Compute the critical path of a LUT mapping on ``device``."""
    netlist = mapping.netlist
    fanouts = mapping.fanout_counts()

    arrival: Dict[int, float] = {}
    logic_component: Dict[int, float] = {}

    def source_arrival(node: int) -> float:
        if node in arrival:
            return arrival[node]
        # Primary input or constant feeding a LUT directly.
        return device.input_delay_ns if node < netlist.num_inputs else 0.0

    def source_logic(node: int) -> float:
        return logic_component.get(node, 0.0)

    total_levels = 0
    for lut in sorted(mapping.luts, key=lambda l: l.level):
        worst_leaf = 0.0
        worst_logic = 0.0
        for leaf in lut.leaves:
            leaf_arrival = source_arrival(leaf)
            if leaf_arrival > worst_leaf:
                worst_leaf = leaf_arrival
                worst_logic = source_logic(leaf)
        net_fanout = fanouts.get(lut.root, 1)
        routing = device.routing_delay_ns + device.routing_fanout_delay_ns * max(0, net_fanout - 1)
        arrival[lut.root] = worst_leaf + device.lut_delay_ns + routing
        logic_component[lut.root] = worst_logic + device.lut_delay_ns
        total_levels = max(total_levels, lut.level)

    critical = 0.0
    critical_logic = 0.0
    for bit in netlist.output_bits:
        bit_arrival = arrival.get(bit, source_arrival(bit) if bit < netlist.num_inputs else 0.0)
        if bit_arrival > critical:
            critical = bit_arrival
            critical_logic = logic_component.get(bit, 0.0)

    if not mapping.luts and critical == 0.0:
        # Pure-wire / constant circuit: only the input delay remains.
        critical = device.input_delay_ns if netlist.output_bits else 0.0

    routing_delay = max(0.0, critical - critical_logic - device.input_delay_ns)
    return TimingReport(
        critical_path_ns=critical,
        logic_levels=total_levels,
        logic_delay_ns=critical_logic,
        routing_delay_ns=routing_delay,
    )
