"""K-input LUT technology mapping.

The mapper is a greedy depth-oriented cut-absorption algorithm (a
light-weight relative of FlowMap / priority-cut mapping): every gate keeps a
single best cut, formed by absorbing the cuts of its fan-ins whenever the
merged leaf set still fits into a K-input LUT, and falling back to the
fan-ins themselves otherwise.  The final cover is extracted from the outputs
downwards.  Constant and buffer nodes are propagated for free, as Vivado
would sweep them during optimisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set

from ..circuits import GateType, Netlist


@dataclass(frozen=True)
class Lut:
    """One mapped LUT: the gate node it implements and its leaf inputs."""

    root: int
    leaves: FrozenSet[int]
    level: int

    @property
    def num_inputs(self) -> int:
        return len(self.leaves)


@dataclass
class LutMapping:
    """Result of technology mapping a netlist onto K-input LUTs."""

    netlist: Netlist
    lut_size: int
    luts: List[Lut]
    output_sources: Dict[int, str] = field(default_factory=dict)
    """How each output bit is driven: ``"lut"``, ``"input"`` or ``"constant"``."""

    @property
    def num_luts(self) -> int:
        return len(self.luts)

    @property
    def depth(self) -> int:
        """Maximum LUT level over all mapped LUTs (0 when no LUT is needed)."""
        return max((lut.level for lut in self.luts), default=0)

    def lut_by_root(self) -> Dict[int, Lut]:
        return {lut.root: lut for lut in self.luts}

    def fanout_counts(self) -> Dict[int, int]:
        """How many LUT inputs / circuit outputs each mapped LUT (or PI) drives."""
        counts: Dict[int, int] = {}
        for lut in self.luts:
            for leaf in lut.leaves:
                counts[leaf] = counts.get(leaf, 0) + 1
        for bit in self.netlist.output_bits:
            counts[bit] = counts.get(bit, 0) + 1
        return counts


def _constant_nodes(netlist: Netlist) -> Set[int]:
    """Nodes whose value is a constant (constants and gates fed only by constants)."""
    constants: Set[int] = set()
    for index, gate in enumerate(netlist.gates):
        node_id = netlist.gate_node_id(index)
        if gate.gate_type in (GateType.CONST0, GateType.CONST1):
            constants.add(node_id)
            continue
        operands = gate.operands()
        if operands and all(o in constants for o in operands):
            constants.add(node_id)
    return constants


def map_to_luts(netlist: Netlist, lut_size: int = 6) -> LutMapping:
    """Map ``netlist`` onto ``lut_size``-input LUTs.

    Returns the selected LUT cover.  Buffers and constant logic are absorbed;
    output bits driven directly by primary inputs or constants require no
    LUT.
    """
    if lut_size < 2:
        raise ValueError("lut_size must be at least 2")
    num_inputs = netlist.num_inputs
    constants = _constant_nodes(netlist)

    # alias[n]: node whose logic value n simply forwards (through BUF chains).
    alias: Dict[int, int] = {}

    def resolve(node: int) -> int:
        while node in alias:
            node = alias[node]
        return node

    best_cut: Dict[int, FrozenSet[int]] = {}
    level: Dict[int, int] = {}

    def leaf_level(leaf: int) -> int:
        if leaf < num_inputs:
            return 0
        return level[leaf]

    for index, gate in enumerate(netlist.gates):
        node_id = netlist.gate_node_id(index)
        if node_id in constants:
            continue
        if gate.gate_type == GateType.BUF:
            alias[node_id] = resolve(gate.a)
            continue
        operands = [resolve(o) for o in gate.operands() if resolve(o) not in constants]
        if not operands:
            constants.add(node_id)
            continue

        merged: Set[int] = set()
        for operand in operands:
            if operand < num_inputs:
                merged.add(operand)
            else:
                merged.update(best_cut[operand])
        if len(merged) <= lut_size:
            cut = frozenset(merged)
        else:
            cut = frozenset(operands)
        best_cut[node_id] = cut
        level[node_id] = 1 + max((leaf_level(leaf) for leaf in cut), default=0)

    # Cover extraction from the outputs downwards.
    selected: Dict[int, Lut] = {}
    output_sources: Dict[int, str] = {}
    stack: List[int] = []
    for bit in netlist.output_bits:
        target = resolve(bit)
        if target in constants:
            output_sources[bit] = "constant"
        elif target < num_inputs:
            output_sources[bit] = "input"
        else:
            output_sources[bit] = "lut"
            stack.append(target)

    while stack:
        root = stack.pop()
        if root in selected:
            continue
        cut = best_cut[root]
        selected[root] = Lut(root=root, leaves=cut, level=level[root])
        for leaf in cut:
            if leaf >= num_inputs and leaf not in constants and leaf not in selected:
                stack.append(leaf)

    luts = sorted(selected.values(), key=lambda lut: lut.root)
    return LutMapping(netlist=netlist, lut_size=lut_size, luts=luts, output_sources=output_sources)
