"""FPGA power model.

Dynamic power is the sum over mapped LUTs of the switching activity of the
implemented node times the LUT and net switched energies, divided by the
operating period (by default the circuit's own critical path, i.e. maximum
throughput operation, matching how the paper reports power for combinational
arithmetic cores).  Static power scales with occupied LUTs on top of a small
design floor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..circuits.activity import node_switching_activities
from .device import FpgaDevice
from .lut_mapping import LutMapping
from .timing import TimingReport


@dataclass(frozen=True)
class PowerReport:
    """Power breakdown of a mapped circuit."""

    dynamic_power_mw: float
    static_power_mw: float

    @property
    def total_power_mw(self) -> float:
        return self.dynamic_power_mw + self.static_power_mw


def analyze_power(
    mapping: LutMapping,
    device: FpgaDevice,
    timing: TimingReport,
    clock_period_ns: Optional[float] = None,
    activity_samples: int = 256,
    activity_seed: int = 99,
) -> PowerReport:
    """Estimate dynamic and static power of a mapped circuit."""
    netlist = mapping.netlist
    activities = node_switching_activities(
        netlist, num_samples=activity_samples, seed=activity_seed
    )
    fanouts = mapping.fanout_counts()

    period_ns = clock_period_ns if clock_period_ns else max(timing.critical_path_ns, 1e-3)

    switched_energy_fj = 0.0
    for lut in mapping.luts:
        activity = float(activities[lut.root])
        net_fanout = fanouts.get(lut.root, 1)
        switched_energy_fj += activity * (
            device.lut_dynamic_energy_fj + device.net_dynamic_energy_fj * net_fanout
        )
    # Primary-input nets also toggle and drive routing.
    for node in range(netlist.num_inputs):
        if node in fanouts:
            switched_energy_fj += float(activities[node]) * device.net_dynamic_energy_fj * fanouts[node]

    # fJ switched per period of ns: 1 fJ / ns = 1e-3 mW.
    dynamic_power_mw = (switched_energy_fj / period_ns) * 1e-3
    static_power_mw = device.static_power_base_mw + device.static_power_per_lut_uw * mapping.num_luts * 1e-3
    return PowerReport(dynamic_power_mw=dynamic_power_mw, static_power_mw=static_power_mw)
