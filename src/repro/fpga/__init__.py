"""FPGA synthesis substrate (LUT mapping, packing, timing, power)."""

from .device import FpgaDevice, default_device
from .lut_mapping import Lut, LutMapping, map_to_luts
from .packing import PackingResult, Slice, pack_slices
from .power import PowerReport, analyze_power
from .timing import TimingReport, analyze_timing
from .synthesis import (
    FPGA_PARAMETERS,
    FpgaReport,
    FpgaSynthesisResult,
    FpgaSynthesizer,
    estimate_synthesis_time,
    synthesize_fpga,
)

__all__ = [
    "FpgaDevice",
    "default_device",
    "Lut",
    "LutMapping",
    "map_to_luts",
    "PackingResult",
    "Slice",
    "pack_slices",
    "PowerReport",
    "analyze_power",
    "TimingReport",
    "analyze_timing",
    "FPGA_PARAMETERS",
    "FpgaReport",
    "FpgaSynthesisResult",
    "FpgaSynthesizer",
    "estimate_synthesis_time",
    "synthesize_fpga",
]
