"""Slice packing.

Packs mapped LUTs into slices (CLB halves) of the target device.  The packer
is a greedy affinity packer: LUTs are processed in topological (level, root)
order and added to the currently open slice while capacity remains,
preferring LUTs that share inputs with the slice to reduce inter-slice
routing.  The result provides the slice count reported next to the LUT count
(the paper's Vivado reports list both) and a shared-input statistic used by
the routing-power model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

from .device import FpgaDevice
from .lut_mapping import Lut, LutMapping


@dataclass
class Slice:
    """One occupied slice and the LUTs packed into it."""

    index: int
    luts: List[Lut]
    input_signals: Set[int]

    @property
    def occupancy(self) -> int:
        return len(self.luts)


@dataclass
class PackingResult:
    """Outcome of slice packing."""

    slices: List[Slice]
    num_luts: int

    @property
    def num_slices(self) -> int:
        return len(self.slices)

    @property
    def mean_occupancy(self) -> float:
        if not self.slices:
            return 0.0
        return self.num_luts / len(self.slices)

    @property
    def external_nets(self) -> int:
        """Total number of distinct signals entering slices (routing demand proxy)."""
        return sum(len(s.input_signals) for s in self.slices)


def pack_slices(mapping: LutMapping, device: FpgaDevice) -> PackingResult:
    """Pack the LUTs of ``mapping`` into slices of ``device``."""
    capacity = device.luts_per_slice
    pending = sorted(mapping.luts, key=lambda lut: (lut.level, lut.root))
    slices: List[Slice] = []

    current: List[Lut] = []
    current_inputs: Set[int] = set()

    def close_current() -> None:
        nonlocal current, current_inputs
        if current:
            slices.append(Slice(index=len(slices), luts=current, input_signals=current_inputs))
            current = []
            current_inputs = set()

    remaining = list(pending)
    while remaining:
        if not current:
            lut = remaining.pop(0)
            current = [lut]
            current_inputs = set(lut.leaves)
            continue
        # Pick the remaining LUT (within a short look-ahead window) that shares
        # the most inputs with the open slice.
        window = remaining[: 4 * capacity]
        best_index = 0
        best_shared = -1
        for index, lut in enumerate(window):
            shared = len(current_inputs & lut.leaves)
            if shared > best_shared:
                best_shared = shared
                best_index = index
        lut = remaining.pop(best_index)
        current.append(lut)
        current_inputs |= lut.leaves
        if len(current) >= capacity:
            close_current()
    close_current()

    return PackingResult(slices=slices, num_luts=mapping.num_luts)
