"""FPGA synthesis substrate: mapping, packing, timing, power and report.

This is the drop-in replacement for the Vivado synthesize + implement flow
used in the paper.  Given a gate-level netlist it produces an
:class:`FpgaReport` with the three FPGA parameters the methodology estimates
(#LUTs, latency, power), the slice count, and a *modeled* synthesis
wall-clock time.  The time model is calibrated against the paper's
observation that synthesizing 10% of the 4,494-circuit 8x8 multiplier
library took about six days, i.e. roughly 19 minutes per circuit on their
machine; it is what the exploration-time accounting of Fig. 3 consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from ..circuits import Netlist
from .device import FpgaDevice, default_device
from .lut_mapping import LutMapping, map_to_luts
from .packing import PackingResult, pack_slices
from .power import PowerReport, analyze_power
from .timing import TimingReport, analyze_timing


@dataclass(frozen=True)
class FpgaReport:
    """Area / timing / power report of an FPGA implementation."""

    circuit_name: str
    luts: int
    slices: int
    logic_levels: int
    latency_ns: float
    dynamic_power_mw: float
    static_power_mw: float
    synthesis_time_s: float

    @property
    def total_power_mw(self) -> float:
        return self.dynamic_power_mw + self.static_power_mw

    @property
    def power_mw(self) -> float:
        """Alias: the paper's "power" FPGA parameter (total on-chip power)."""
        return self.total_power_mw

    @property
    def area_luts(self) -> float:
        """Alias: the paper's "area" FPGA parameter (#LUTs)."""
        return float(self.luts)

    def parameter(self, name: str) -> float:
        """Access one of the paper's three FPGA parameters by name."""
        if name == "latency":
            return self.latency_ns
        if name == "power":
            return self.total_power_mw
        if name == "area":
            return float(self.luts)
        raise KeyError(f"unknown FPGA parameter {name!r}")

    def as_dict(self) -> Dict[str, float]:
        return {
            "fpga_luts": self.luts,
            "fpga_slices": self.slices,
            "fpga_logic_levels": self.logic_levels,
            "fpga_latency_ns": self.latency_ns,
            "fpga_power_mw": self.total_power_mw,
            "fpga_dynamic_power_mw": self.dynamic_power_mw,
            "fpga_static_power_mw": self.static_power_mw,
            "fpga_synthesis_time_s": self.synthesis_time_s,
        }


#: The three FPGA parameters the methodology estimates, as named in the paper.
FPGA_PARAMETERS = ("latency", "power", "area")


def estimate_synthesis_time(netlist: Netlist, device: Optional[FpgaDevice] = None) -> float:
    """Modeled Vivado synthesis + implementation wall-clock time in seconds.

    The model grows slightly super-linearly with netlist size (placement and
    routing dominate) and is calibrated so an 8x8 approximate multiplier
    costs on the order of 15-20 minutes, matching the per-circuit time
    implied by the paper's motivational analysis.
    """
    gates = max(1, netlist.live_gate_count())
    inputs = netlist.num_inputs
    base_s = 55.0
    per_gate_s = 1.45
    congestion_s = 0.16 * gates * math.log2(gates + 1) / 8.0
    io_s = 1.8 * inputs
    return base_s + per_gate_s * gates + congestion_s + io_s


@dataclass
class FpgaSynthesisResult:
    """Full synthesis artefacts, for callers that need more than the report."""

    report: FpgaReport
    mapping: LutMapping
    packing: PackingResult
    timing: TimingReport
    power: PowerReport


class FpgaSynthesizer:
    """Maps netlists to the target FPGA and reports costs.

    Parameters
    ----------
    device:
        Target FPGA model; defaults to the bundled Virtex-7-class device.
    clock_period_ns:
        Operating period for the power model; ``None`` uses each circuit's
        critical path (maximum-frequency operation).
    activity_samples, activity_seed:
        Monte-Carlo parameters of the switching-activity estimation.
    """

    def __init__(
        self,
        device: Optional[FpgaDevice] = None,
        clock_period_ns: Optional[float] = None,
        activity_samples: int = 256,
        activity_seed: int = 99,
    ):
        self.device = device or default_device()
        self.clock_period_ns = clock_period_ns
        self.activity_samples = activity_samples
        self.activity_seed = activity_seed

    def synthesize_full(self, netlist: Netlist) -> FpgaSynthesisResult:
        """Run mapping, packing, timing and power analysis on ``netlist``."""
        mapping = map_to_luts(netlist, lut_size=self.device.lut_size)
        packing = pack_slices(mapping, self.device)
        timing = analyze_timing(mapping, self.device)
        power = analyze_power(
            mapping,
            self.device,
            timing,
            clock_period_ns=self.clock_period_ns,
            activity_samples=self.activity_samples,
            activity_seed=self.activity_seed,
        )
        report = FpgaReport(
            circuit_name=netlist.name,
            luts=mapping.num_luts,
            slices=packing.num_slices,
            logic_levels=timing.logic_levels,
            latency_ns=timing.critical_path_ns,
            dynamic_power_mw=power.dynamic_power_mw,
            static_power_mw=power.static_power_mw,
            synthesis_time_s=estimate_synthesis_time(netlist, self.device),
        )
        return FpgaSynthesisResult(
            report=report, mapping=mapping, packing=packing, timing=timing, power=power
        )

    def synthesize(self, netlist: Netlist) -> FpgaReport:
        """Produce only the FPGA report for ``netlist``."""
        return self.synthesize_full(netlist).report


def synthesize_fpga(netlist: Netlist, **kwargs) -> FpgaReport:
    """One-shot convenience wrapper around :class:`FpgaSynthesizer`."""
    return FpgaSynthesizer(**kwargs).synthesize(netlist)
