"""`JobClient`: the submit/status/result/cancel surface of the service.

A client is a thin veneer over the shared :class:`JobRegistry` -- it does
not talk to workers, only to the on-disk registry both sides share, so a
client works from any process that can see the service root::

    from repro.service import JobClient

    client = JobClient("runs/service", tenant="alice")
    job_id = client.submit("autoax", {"workload": "sobel"})
    ...                                   # a worker picks the job up
    record = client.status(job_id)        # state, progress, cache telemetry
    payload = client.result(job_id)       # the finished flow's payload
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Union

from .flows import JOB_FLOWS
from .jobs import JobRecord, JobRegistry, JobSpec

__all__ = ["JobClient"]


class JobClient:
    """Submit and track jobs against one service root.

    Parameters
    ----------
    registry:
        The shared :class:`JobRegistry` (or a service-root path to open).
    tenant:
        Default tenant recorded on jobs this client submits.
    """

    def __init__(
        self,
        registry: Union[JobRegistry, str, "object"],
        *,
        tenant: str = "default",
    ):
        if not isinstance(registry, JobRegistry):
            registry = JobRegistry(registry)
        self.registry = registry
        self.tenant = tenant

    # ------------------------------------------------------------------ #
    def submit(
        self,
        flow: str,
        params: Optional[Dict[str, object]] = None,
        *,
        tenant: Optional[str] = None,
        job_id: Optional[str] = None,
    ) -> str:
        """Enqueue ``flow`` with ``params`` and return the job id.

        Unknown flow keys are rejected here, at submission time, rather
        than surfacing later as a failed job on some worker.
        """
        JOB_FLOWS.get(flow)  # raises RegistryError for unknown flows
        spec = JobSpec(flow=flow, params=dict(params or {}), tenant=tenant or self.tenant)
        return self.registry.submit(spec, job_id=job_id).job_id

    def status(self, job_id: str) -> JobRecord:
        """The job's current record (state, progress, attempts, telemetry)."""
        return self.registry.get(job_id)

    def result(self, job_id: str) -> object:
        """The finished job's payload.

        Raises ``RuntimeError`` for failed jobs (with the recorded error)
        and ``ValueError`` for jobs that have not finished yet.
        """
        record = self.registry.get(job_id)
        if record.state == "failed":
            raise RuntimeError(f"job {job_id!r} failed: {record.error}")
        if record.state != "done":
            raise ValueError(f"job {job_id!r} is {record.state}, not done")
        envelope = self.registry.result(job_id)
        if envelope is None:
            raise RuntimeError(f"job {job_id!r} is done but its result file is missing")
        return envelope["payload"]

    def cancel(self, job_id: str) -> bool:
        """Withdraw a still-queued job; False once a worker owns it."""
        return self.registry.cancel(job_id)

    def wait(
        self, job_id: str, *, timeout: float = 60.0, poll_interval: float = 0.1
    ) -> JobRecord:
        """Block until the job leaves the queued/running states.

        Convenience for tests and scripts; production clients poll
        :meth:`status`.  Raises ``TimeoutError`` when the deadline passes.
        Each sleep is capped at the time remaining, so the call returns (or
        raises) within ``timeout`` rather than overshooting by up to a full
        ``poll_interval``; ``timeout=0`` means a single immediate status
        check with no sleeping at all.
        """
        if timeout < 0:
            raise ValueError("timeout must be non-negative")
        deadline = time.monotonic() + timeout
        while True:
            record = self.status(job_id)
            if record.state not in ("queued", "running"):
                return record
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(f"job {job_id!r} still {record.state} after {timeout}s")
            time.sleep(min(poll_interval, remaining))

    def jobs(self, *, tenant: Optional[str] = None, state: Optional[str] = None) -> List[JobRecord]:
        """Records of this (or any) tenant's jobs, oldest first."""
        return self.registry.list_jobs(state=state, tenant=tenant)
