"""Job specs, records and the on-disk job registry of :mod:`repro.service`.

Everything is plain JSON files under one *service root* directory, published
with the same atomic temp-file + :func:`os.replace` discipline as the
sharded store, so any number of client and worker processes can share a
root without a broker:

``jobs/<job_id>.json``
    The :class:`JobRecord` (spec + lifecycle state + progress + telemetry).
``leases/<job_id>.lease``
    Exists while a worker owns the job.  Created with ``O_CREAT | O_EXCL``
    (claiming is therefore atomic) and rewritten on every heartbeat with a
    fresh timestamp; a lease whose heartbeat is older than
    ``lease_ttl`` seconds marks a dead worker, and the takeover protocol
    (rename the stale lease away, then re-create fresh) guarantees exactly
    one of several contending workers reclaims the job.
``results/<job_id>.json``
    The finished job's payload plus its content digest.
``cache/`` and ``artifacts/``
    Two :class:`~repro.io.ShardedJsonStore` directories shared by every
    worker: the evaluation cache (content-addressed, so hit rates compound
    across tenants) and the pipeline/NSGA-II checkpoint store (what makes a
    reclaimed job resume instead of restart).

Job lifecycle: ``queued -> running -> done | failed``, plus ``cancelled``
for jobs withdrawn before a worker claimed them.  A job whose worker died
stays ``running`` with an expiring lease; :meth:`JobRegistry.claim` hands it
to the next worker, which re-runs it with ``resume=True`` -- bit-identical
to an uninterrupted run by the pipeline/NSGA-II checkpoint guarantees.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..engine.keys import blake_token
from ..io.persistence import ShardedJsonStore

__all__ = [
    "JOB_STATES",
    "JobSpec",
    "JobRecord",
    "JobRegistry",
    "payload_digest",
]

PathLike = Union[str, Path]

JOB_STATES = ("queued", "running", "done", "failed", "cancelled")


def payload_digest(payload: object) -> str:
    """Canonical content digest of a JSON-serialisable result payload.

    Key order is normalised, so two payloads are equal iff their digests
    are -- this is what the crash-resume tests and benchmarks compare
    between interrupted and uninterrupted runs.
    """
    return blake_token(json.dumps(payload, sort_keys=True))


@dataclass(frozen=True)
class JobSpec:
    """What to run: a registered flow plus its JSON parameters.

    ``tenant`` identifies who submitted the job for accounting; it is
    deliberately *not* part of :meth:`token`, because evaluations are
    content-addressed -- two tenants submitting the same work must share
    cache entries, which is the whole amortisation argument of the service.
    """

    flow: str
    params: Dict[str, object] = field(default_factory=dict)
    tenant: str = "default"

    def token(self) -> str:
        """Content digest of the work itself (flow + parameters)."""
        return blake_token("job", self.flow, json.dumps(self.params, sort_keys=True))

    def as_dict(self) -> dict:
        return {"flow": self.flow, "params": dict(self.params), "tenant": self.tenant}

    @classmethod
    def from_dict(cls, raw: dict) -> "JobSpec":
        return cls(
            flow=str(raw["flow"]),
            params=dict(raw.get("params") or {}),
            tenant=str(raw.get("tenant", "default")),
        )


@dataclass
class JobRecord:
    """One job's full lifecycle state as stored in ``jobs/<job_id>.json``."""

    job_id: str
    spec: JobSpec
    state: str = "queued"
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    attempts: int = 0
    worker: Optional[str] = None
    progress: Optional[dict] = None
    """Latest pipeline stage event (stage/index/total/status) the worker saw."""
    resumed_stages: List[str] = field(default_factory=list)
    """Stages restored from checkpoints during the (last) execution."""
    error: Optional[str] = None
    digest: Optional[str] = None
    """Content digest of the result payload (see :func:`payload_digest`)."""
    cache: Optional[dict] = None
    """Per-job delta of the shared cache counters (``CacheStats.since``):
    the tenant-attributable hit-rate telemetry of this job."""
    elapsed_s: Optional[float] = None

    def as_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "spec": self.spec.as_dict(),
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "worker": self.worker,
            "progress": self.progress,
            "resumed_stages": list(self.resumed_stages),
            "error": self.error,
            "digest": self.digest,
            "cache": self.cache,
            "elapsed_s": self.elapsed_s,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "JobRecord":
        return cls(
            job_id=str(raw["job_id"]),
            spec=JobSpec.from_dict(raw["spec"]),
            state=str(raw.get("state", "queued")),
            submitted_at=float(raw.get("submitted_at", 0.0)),
            started_at=raw.get("started_at"),
            finished_at=raw.get("finished_at"),
            attempts=int(raw.get("attempts", 0)),
            worker=raw.get("worker"),
            progress=raw.get("progress"),
            resumed_stages=list(raw.get("resumed_stages") or []),
            error=raw.get("error"),
            digest=raw.get("digest"),
            cache=raw.get("cache"),
            elapsed_s=raw.get("elapsed_s"),
        )


class JobRegistry:
    """The shared on-disk job queue rooted at one service directory.

    Parameters
    ----------
    root:
        Service root directory; created on first use.  Everything --
        records, leases, results, the shared caches -- lives under it.
    lease_ttl:
        Seconds without a heartbeat after which a running job's worker is
        presumed dead and the job becomes reclaimable.
    shards:
        Shard count of the shared cache/artifact stores handed out by
        :meth:`cache_store` / :meth:`artifact_store`.
    """

    def __init__(self, root: PathLike, *, lease_ttl: float = 60.0, shards: int = 16):
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")
        self.root = Path(root)
        self.lease_ttl = float(lease_ttl)
        self.shards = int(shards)
        self.jobs_dir = self.root / "jobs"
        self.leases_dir = self.root / "leases"
        self.results_dir = self.root / "results"
        for directory in (self.jobs_dir, self.leases_dir, self.results_dir):
            directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ #
    # Shared stores
    # ------------------------------------------------------------------ #
    def cache_store(self) -> ShardedJsonStore:
        """The shared content-addressed evaluation-cache backend."""
        return ShardedJsonStore(self.root / "cache", shards=self.shards)

    def artifact_store(self) -> ShardedJsonStore:
        """The shared pipeline/NSGA-II checkpoint store."""
        return ShardedJsonStore(self.root / "artifacts", shards=self.shards)

    # ------------------------------------------------------------------ #
    # Records
    # ------------------------------------------------------------------ #
    def _record_path(self, job_id: str) -> Path:
        if not job_id or "/" in job_id or job_id.startswith("."):
            raise ValueError(f"invalid job id {job_id!r}")
        return self.jobs_dir / f"{job_id}.json"

    def submit(self, spec: JobSpec, *, job_id: Optional[str] = None) -> JobRecord:
        """Enqueue a job and return its record.

        The default id embeds the spec's content token (legible dedupe aid)
        plus a unique suffix, so identical work submitted twice still gets
        two independent jobs -- whose evaluations nevertheless collapse in
        the shared content-addressed cache.
        """
        if job_id is None:
            job_id = f"{spec.flow}-{spec.token()[:10]}-{uuid.uuid4().hex[:6]}"
        path = self._record_path(job_id)
        if path.exists():
            raise ValueError(f"job id {job_id!r} already exists")
        record = JobRecord(job_id=job_id, spec=spec, state="queued", submitted_at=time.time())
        self._write_record(record)
        return record

    def get(self, job_id: str) -> JobRecord:
        path = self._record_path(job_id)
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise KeyError(f"unknown job {job_id!r}") from None
        return JobRecord.from_dict(raw)

    def update(self, record: JobRecord) -> None:
        """Atomically publish a record (last writer wins)."""
        self._write_record(record)

    def _write_record(self, record: JobRecord) -> None:
        ShardedJsonStore._atomic_write(
            self._record_path(record.job_id), json.dumps(record.as_dict(), indent=2)
        )

    def list_jobs(
        self, state: Optional[str] = None, tenant: Optional[str] = None
    ) -> List[JobRecord]:
        """All job records, oldest submission first, optionally filtered."""
        records = []
        for path in self.jobs_dir.glob("*.json"):
            try:
                records.append(JobRecord.from_dict(json.loads(path.read_text(encoding="utf-8"))))
            except (OSError, json.JSONDecodeError, KeyError):
                continue
        records.sort(key=lambda record: (record.submitted_at, record.job_id))
        if state is not None:
            records = [record for record in records if record.state == state]
        if tenant is not None:
            records = [record for record in records if record.spec.tenant == tenant]
        return records

    def cancel(self, job_id: str) -> bool:
        """Withdraw a queued job; returns whether it was cancelled.

        Only queued jobs can be cancelled -- a running worker holds the
        lease and owns the record.  (The race window between the state read
        and a concurrent claim is closed by the worker: it re-reads the
        record after acquiring the lease and releases cancelled jobs.)
        """
        record = self.get(job_id)
        if record.state != "queued":
            return False
        record.state = "cancelled"
        record.finished_at = time.time()
        self.update(record)
        return True

    # ------------------------------------------------------------------ #
    # Leases
    # ------------------------------------------------------------------ #
    def _lease_path(self, job_id: str) -> Path:
        return self.leases_dir / f"{job_id}.lease"

    def lease_info(self, job_id: str) -> Optional[dict]:
        """The current lease (worker + heartbeat), or ``None`` if unleased."""
        try:
            return json.loads(self._lease_path(job_id).read_text(encoding="utf-8"))
        except (FileNotFoundError, OSError, json.JSONDecodeError):
            return None

    def lease_expired(self, job_id: str) -> bool:
        """Whether the job's lease heartbeat is older than ``lease_ttl``."""
        info = self.lease_info(job_id)
        if info is None:
            return True
        return (time.time() - float(info.get("heartbeat", 0.0))) > self.lease_ttl

    def _try_acquire_lease(self, job_id: str, worker_id: str) -> bool:
        """Create the lease file atomically; False when someone holds it."""
        path = self._lease_path(job_id)
        payload = json.dumps({"worker": worker_id, "heartbeat": time.time()})
        try:
            descriptor = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        try:
            os.write(descriptor, payload.encode("utf-8"))
        finally:
            os.close(descriptor)
        return True

    def _try_takeover_lease(self, job_id: str, worker_id: str) -> bool:
        """Steal an *expired* lease; exactly one contender wins.

        The stale lease file is renamed away first -- :func:`os.rename` of
        one source succeeds for exactly one of several racing processes --
        and the winner re-creates a fresh lease via the exclusive-create
        path.
        """
        path = self._lease_path(job_id)
        stale = path.with_name(f"{path.name}.stale.{uuid.uuid4().hex[:8]}")
        try:
            os.rename(path, stale)
        except FileNotFoundError:
            # Someone else renamed it away (or it was released); fall through
            # to a plain acquire attempt on the now-missing file.
            pass
        else:
            stale.unlink(missing_ok=True)
        return self._try_acquire_lease(job_id, worker_id)

    def heartbeat(self, job_id: str, worker_id: str) -> None:
        """Refresh the lease timestamp; raises if the lease changed hands."""
        info = self.lease_info(job_id)
        if info is None or info.get("worker") != worker_id:
            raise RuntimeError(
                f"lease for job {job_id!r} is no longer held by {worker_id!r} "
                f"(current: {info})"
            )
        ShardedJsonStore._atomic_write(
            self._lease_path(job_id),
            json.dumps({"worker": worker_id, "heartbeat": time.time()}),
        )

    def release(self, job_id: str) -> None:
        self._lease_path(job_id).unlink(missing_ok=True)

    # ------------------------------------------------------------------ #
    # Claiming
    # ------------------------------------------------------------------ #
    def claim(self, worker_id: str) -> Optional[JobRecord]:
        """Claim the next runnable job for ``worker_id``, or ``None``.

        Queued jobs are claimed oldest-first via exclusive lease creation;
        when none are queued, ``running`` jobs whose lease has expired (dead
        worker) are reclaimed via the takeover protocol.  The returned
        record is already marked ``running`` with this worker and a fresh
        heartbeat; ``attempts > 1`` tells the caller this is a resumption.
        """
        for record in self.list_jobs(state="queued"):
            if not self._try_acquire_lease(record.job_id, worker_id):
                continue
            return self._start(record.job_id, worker_id)
        for record in self.list_jobs(state="running"):
            if not self.lease_expired(record.job_id):
                continue
            if not self._try_takeover_lease(record.job_id, worker_id):
                continue
            return self._start(record.job_id, worker_id)
        return None

    def _start(self, job_id: str, worker_id: str) -> Optional[JobRecord]:
        """Post-lease bookkeeping: re-read, verify runnable, mark running."""
        record = self.get(job_id)
        if record.state not in ("queued", "running"):
            # Cancelled (or already finished) between listing and leasing.
            self.release(job_id)
            return None
        record.state = "running"
        record.worker = worker_id
        record.started_at = time.time()
        record.attempts += 1
        record.error = None
        self.update(record)
        return record

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def _result_path(self, job_id: str) -> Path:
        return self.results_dir / f"{job_id}.json"

    def store_result(self, job_id: str, payload: object, digest: str) -> None:
        ShardedJsonStore._atomic_write(
            self._result_path(job_id),
            json.dumps({"job_id": job_id, "digest": digest, "payload": payload}),
        )

    def result(self, job_id: str) -> Optional[dict]:
        """The stored ``{"digest", "payload"}`` envelope, or ``None``."""
        try:
            return json.loads(self._result_path(job_id).read_text(encoding="utf-8"))
        except (FileNotFoundError, OSError, json.JSONDecodeError):
            return None
