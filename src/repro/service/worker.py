"""The job worker: claims, runs, heartbeats and resumes jobs.

A worker owns one :class:`~repro.api.ExplorationSession` whose evaluation
cache and artifact store are the registry's **shared sharded stores**, so

* every evaluation any worker performs lands in one content-addressed cache
  -- a second tenant submitting the same work finds it warm;
* every pipeline stage (and, for generation-aware strategies, every search
  generation) is checkpointed under the job's id -- a job reclaimed from a
  dead worker resumes from the last checkpoint and finishes bit-identically
  to an uninterrupted run.

Liveness is lease-based: the worker renews the job's lease on every stage
event and every search generation.  A worker that dies simply stops
heartbeating; it marks nothing, and after ``lease_ttl`` seconds any other
worker's :meth:`~repro.service.jobs.JobRegistry.claim` takes the job over.
Flow *errors* (exceptions) are different from worker *death*: they mark the
job ``failed`` and release the lease, because re-running a deterministic
flow that raised would raise again.

Run a worker process against a service root with::

    python -m repro.service.worker --root runs/service [--poll 0.5] [--once]
"""

from __future__ import annotations

import os
import socket
import time
import uuid
from typing import Optional, Union

from .flows import JOB_FLOWS
from .jobs import JobRecord, JobRegistry, payload_digest

__all__ = ["Worker", "main"]


class Worker:
    """Claims jobs from a :class:`JobRegistry` and executes their flows.

    Parameters
    ----------
    registry:
        The shared job registry (or a service-root path to open one at).
    worker_id:
        Stable identity used on leases; defaults to host + pid + a nonce.
    session_kwargs:
        Extra keyword arguments for the worker's
        :class:`~repro.api.ExplorationSession` (e.g. ``engine_mode``,
        ``sim_backend``, ``max_workers``).  ``cache`` and ``store`` are
        always the registry's shared sharded stores and cannot be
        overridden.
    """

    def __init__(
        self,
        registry: Union[JobRegistry, str, "os.PathLike[str]"],
        *,
        worker_id: Optional[str] = None,
        **session_kwargs,
    ):
        from ..api import ExplorationSession
        from ..engine import EvalCache

        if not isinstance(registry, JobRegistry):
            registry = JobRegistry(registry)
        self.registry = registry
        self.worker_id = worker_id or (
            f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"
        )
        for reserved in ("cache", "store"):
            if reserved in session_kwargs:
                raise ValueError(f"session {reserved!r} is owned by the registry")
        self.session = ExplorationSession(
            cache=EvalCache(store=registry.cache_store()),
            store=registry.artifact_store(),
            **session_kwargs,
        )

    # ------------------------------------------------------------------ #
    def run_once(self) -> Optional[JobRecord]:
        """Claim and fully execute one job; ``None`` when the queue is idle."""
        record = self.registry.claim(self.worker_id)
        if record is None:
            return None
        return self._execute(record)

    def run_forever(
        self,
        *,
        poll_interval: float = 0.5,
        max_jobs: Optional[int] = None,
        idle_timeout: Optional[float] = None,
    ) -> int:
        """Process jobs until ``max_jobs`` are done or the queue stays idle.

        Returns the number of jobs executed.  ``idle_timeout`` bounds how
        long the worker keeps polling an empty queue (``None``: forever).
        """
        executed = 0
        idle_since: Optional[float] = None
        while max_jobs is None or executed < max_jobs:
            record = self.run_once()
            if record is not None:
                executed += 1
                idle_since = None
                continue
            now = time.monotonic()
            if idle_since is None:
                idle_since = now
            if idle_timeout is not None and now - idle_since >= idle_timeout:
                break
            time.sleep(poll_interval)
        return executed

    # ------------------------------------------------------------------ #
    def _heartbeat(self, record: JobRecord) -> None:
        """Renew the lease; overridden by tests to simulate worker death."""
        self.registry.heartbeat(record.job_id, self.worker_id)

    def _execute(self, record: JobRecord) -> JobRecord:
        flow = JOB_FLOWS.get(record.spec.flow)
        resumed: list = []

        def on_progress(event) -> None:
            if event.status == "restored":
                resumed.append(event.stage)
            record.progress = {
                "stage": event.stage,
                "index": event.index,
                "total": event.total,
                "status": event.status,
            }
            self.registry.update(record)
            self._heartbeat(record)

        def on_generation(stats: dict) -> None:
            self._heartbeat(record)

        before = self.session.stats()
        started = time.perf_counter()
        try:
            payload = flow(
                self.session,
                dict(record.spec.params),
                run_id=record.job_id,
                progress=on_progress,
                on_generation=on_generation,
            )
        except Exception as exc:  # noqa: BLE001 - deterministic flow failure
            # A raising flow would raise again on retry; fail the job.  A
            # *dying* worker never reaches this branch -- its lease simply
            # expires and another worker resumes the still-``running`` job.
            record.state = "failed"
            record.error = f"{type(exc).__name__}: {exc}"
            record.finished_at = time.time()
            record.elapsed_s = time.perf_counter() - started
            record.resumed_stages = resumed
            self.registry.update(record)
            self.registry.release(record.job_id)
            return record

        digest = payload_digest(payload)
        self.registry.store_result(record.job_id, payload, digest)
        record.state = "done"
        record.digest = digest
        record.finished_at = time.time()
        record.elapsed_s = time.perf_counter() - started
        record.resumed_stages = resumed
        record.cache = self.session.stats().since(before).as_dict()
        self.registry.update(record)
        self.registry.release(record.job_id)
        return record


def main(argv: Optional[list] = None) -> int:
    """``python -m repro.service.worker``: run a worker against a root."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.service.worker",
        description="Run an exploration-service worker against a service root.",
    )
    parser.add_argument("--root", required=True, help="service root directory")
    parser.add_argument("--lease-ttl", type=float, default=60.0, help="lease TTL seconds")
    parser.add_argument("--shards", type=int, default=16, help="shared-store shard count")
    parser.add_argument("--poll", type=float, default=0.5, help="idle poll interval seconds")
    parser.add_argument("--max-jobs", type=int, default=None, help="exit after N jobs")
    parser.add_argument(
        "--idle-timeout", type=float, default=None, help="exit after this long idle"
    )
    parser.add_argument("--once", action="store_true", help="process at most one job and exit")
    args = parser.parse_args(argv)

    registry = JobRegistry(args.root, lease_ttl=args.lease_ttl, shards=args.shards)
    worker = Worker(registry)
    if args.once:
        record = worker.run_once()
        print(f"{worker.worker_id}: {record.job_id + ' -> ' + record.state if record else 'idle'}")
        return 0
    executed = worker.run_forever(
        poll_interval=args.poll, max_jobs=args.max_jobs, idle_timeout=args.idle_timeout
    )
    print(f"{worker.worker_id}: executed {executed} job(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
