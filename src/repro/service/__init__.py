"""Exploration-as-a-service: an async job layer over the shared caches.

This package turns the session/pipeline machinery into a multi-tenant
service: clients submit flow runs as JSON job specs, worker processes claim
them through atomic lease files, and **every worker shares one
content-addressed evaluation cache** (a sharded
:class:`~repro.io.ShardedJsonStore`), so cache hit rates compound across
tenants -- the same design-space evaluation submitted by different jobs is
computed once, which is the amortisation argument the paper's ML-estimator
flow makes against repeated synthesis, lifted to service scale.

The moving parts:

* :class:`JobRegistry` -- the on-disk queue: job records, lease files with
  heartbeats, results, and the shared sharded cache/artifact stores.
* :class:`JobClient` -- ``submit`` / ``status`` / ``result`` / ``cancel``
  (plus ``wait`` for scripts) against one service root.
* :class:`Worker` -- claims jobs, runs their registered flow through an
  :class:`~repro.api.ExplorationSession`, writes per-stage progress back to
  the record, and heartbeats its lease on every stage and every search
  generation.  When a worker dies, its lease expires and the next worker
  reclaims the job, resuming from the last pipeline/NSGA-II checkpoint --
  bit-identical to an uninterrupted run.
* :data:`JOB_FLOWS` -- the registry of runnable flows (built-ins:
  ``"autoax"`` over any workload x search strategy, ``"approxfpgas"``);
  custom flows register a key.

Quickstart::

    from repro.service import JobClient, Worker

    client = JobClient("runs/service", tenant="alice")
    job_id = client.submit("autoax", {"workload": "sobel"})

    Worker("runs/service").run_once()     # or: python -m repro.service.worker

    print(client.status(job_id).state)    # "done"
    payload = client.result(job_id)

See ``benchmarks/test_service_throughput.py`` for the measured effect: a
second tenant's identical job rides the first tenant's warm cache.
"""

from .client import JobClient
from .flows import JOB_FLOWS
from .jobs import JOB_STATES, JobRecord, JobRegistry, JobSpec, payload_digest


def __getattr__(name: str):
    # Lazy so ``python -m repro.service.worker`` does not import the worker
    # module twice (runpy would warn about the package-level import).
    if name == "Worker":
        from .worker import Worker

        return Worker
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "JOB_FLOWS",
    "JOB_STATES",
    "JobClient",
    "JobRecord",
    "JobRegistry",
    "JobSpec",
    "Worker",
    "payload_digest",
]
