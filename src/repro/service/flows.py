"""Registered job flows: what a :class:`~repro.service.jobs.JobSpec` can run.

A *job flow* is a callable ``flow(session, params, *, run_id, progress,
on_generation) -> payload`` that drives an
:class:`~repro.api.ExplorationSession` and returns a **deterministic,
JSON-serialisable** payload: given equal ``params``, two runs -- cold, warm,
or killed-and-resumed -- must produce bit-identical payloads (and therefore
equal :func:`~repro.service.jobs.payload_digest` values).  Wall-clock
timings and other telemetry belong on the :class:`JobRecord`, never in the
payload.

Because a job must be submittable as JSON, flows receive *descriptions* of
their inputs (library bitwidths, sizes and seeds) rather than live objects;
the component libraries are regenerated deterministically inside the worker
and their evaluation rides the session's shared content-addressed cache, so
regenerating them is cheap after the first tenant has paid for it.

Custom flows plug in through the :data:`JOB_FLOWS` registry::

    from repro.service import JOB_FLOWS

    @JOB_FLOWS.register("my-flow")
    def my_flow(session, params, *, run_id, progress=None, on_generation=None):
        ...
        return {"my": "payload"}
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..registry import Registry

__all__ = ["JOB_FLOWS", "DEFAULT_AUTOAX_PARAMS", "DEFAULT_APPROXFPGAS_PARAMS"]

JOB_FLOWS = Registry("job flow")


# --------------------------------------------------------------------- #
# AutoAx accelerator studies
# --------------------------------------------------------------------- #
DEFAULT_AUTOAX_PARAMS: Dict[str, object] = {
    # Case-study knobs (see repro.autoax.AutoAxConfig).  "workload" is any
    # repro.workloads.WORKLOADS key -- the image trio as well as the 1-D
    # signal family ("mvm"/"dct"/"fir"/"fir_mixed"); "image_size" is the
    # generic input-size knob (signal workloads draw 4*image_size samples
    # per signal).
    "workload": "gaussian",
    "search_strategy": "hill_climb",
    "parameters": ["area"],
    "num_training_samples": 20,
    "num_random_baseline": 16,
    "hill_climb_iterations": 120,
    "image_size": 32,
    "seed": 17,
    # Multi-fidelity ladder for sh_ehvi (ascending pixel budgets; None lets
    # the strategy derive its default; ignored by single-fidelity strategies).
    "fidelity_ladder": None,
    # Component-library description (regenerated deterministically).
    "multiplier_bits": 8,
    "multiplier_library_size": 40,
    "multiplier_seed": 31,
    "num_multipliers": 6,
    "multiplier_max_error": 0.1,
    "adder_bits": 16,
    "adder_library_size": 28,
    "adder_seed": 37,
    "num_adders": 5,
    "adder_max_error": 0.02,
}


def _evaluated_payload(entries: Sequence[object]) -> List[dict]:
    return [
        {
            "multipliers": [int(i) for i in entry.config.multiplier_indices],
            "adders": [int(i) for i in entry.config.adder_indices],
            "quality": float(entry.quality),
            "cost": {name: float(value) for name, value in entry.cost.items()},
        }
        for entry in entries
    ]


@JOB_FLOWS.register("autoax")
def run_autoax_job(
    session,
    params: Optional[Dict[str, object]] = None,
    *,
    run_id: str,
    progress=None,
    on_generation=None,
) -> dict:
    """The AutoAx-FPGA case study (any workload x any search strategy) as a job."""
    from ..autoax.flow import AutoAxConfig
    from ..generators import build_adder_library, build_multiplier_library
    from ..workloads import components_from_library

    p = dict(DEFAULT_AUTOAX_PARAMS)
    p.update(params or {})

    multiplier_library = build_multiplier_library(
        int(p["multiplier_bits"]), size=int(p["multiplier_library_size"]),
        seed=int(p["multiplier_seed"]),
    )
    adder_library = build_adder_library(
        int(p["adder_bits"]), size=int(p["adder_library_size"]), seed=int(p["adder_seed"]),
    )
    # Component selection synthesizes and error-evaluates both libraries;
    # routing it through the session engines makes that work content-addressed
    # too, so the second tenant's job rebuilds the netlists but pays for no
    # evaluation twice.
    multipliers = components_from_library(
        multiplier_library,
        int(p["num_multipliers"]),
        max_error=float(p["multiplier_max_error"]),
        engine=session.engine_for(multiplier_library.reference()),
    )
    adders = components_from_library(
        adder_library,
        int(p["num_adders"]),
        max_error=float(p["adder_max_error"]),
        engine=session.engine_for(adder_library.reference()),
    )

    config = AutoAxConfig(
        workload=str(p["workload"]),
        search_strategy=str(p["search_strategy"]),
        parameters=tuple(p["parameters"]),
        num_training_samples=int(p["num_training_samples"]),
        num_random_baseline=int(p["num_random_baseline"]),
        hill_climb_iterations=int(p["hill_climb_iterations"]),
        image_size=int(p["image_size"]),
        seed=int(p["seed"]),
        fidelity_ladder=(
            tuple(int(f) for f in p["fidelity_ladder"]) if p.get("fidelity_ladder") else None
        ),
    )
    result = session.run_autoax(
        multipliers,
        adders,
        config,
        run_id=run_id,
        progress=progress,
        on_generation=on_generation,
    )
    return {
        "flow": "autoax",
        "workload": config.workload,
        "search_strategy": config.search_strategy,
        "design_space_size": float(result.design_space_size),
        "training_size": int(result.training_size),
        "scenarios": {
            parameter: {
                "candidates": _evaluated_payload(scenario.candidates),
                "front": _evaluated_payload(scenario.front),
            }
            for parameter, scenario in result.scenarios.items()
        },
        "baseline": _evaluated_payload(result.baseline),
    }


# --------------------------------------------------------------------- #
# ApproxFPGAs library explorations
# --------------------------------------------------------------------- #
DEFAULT_APPROXFPGAS_PARAMS: Dict[str, object] = {
    # Library description.
    "kind": "multiplier",
    "bitwidth": 4,
    "library_size": 60,
    "library_seed": 3,
    # Flow knobs (see repro.core.ApproxFpgasConfig).
    "training_fraction": 0.2,
    "min_training_circuits": 12,
    "validation_fraction": 0.2,
    "num_pseudo_fronts": 2,
    "top_k_models": 2,
    "model_ids": ["ML2", "ML4"],
    "error_metric": "med",
    "seed": 42,
    "evaluate_coverage": True,
}


@JOB_FLOWS.register("approxfpgas")
def run_approxfpgas_job(
    session,
    params: Optional[Dict[str, object]] = None,
    *,
    run_id: str,
    progress=None,
    on_generation=None,
) -> dict:
    """The ApproxFPGAs methodology over a generated library as a job."""
    from ..core.methodology import ApproxFpgasConfig
    from ..generators import build_adder_library, build_multiplier_library

    p = dict(DEFAULT_APPROXFPGAS_PARAMS)
    p.update(params or {})

    build = build_adder_library if p["kind"] == "adder" else build_multiplier_library
    library = build(int(p["bitwidth"]), size=int(p["library_size"]), seed=int(p["library_seed"]))

    config = ApproxFpgasConfig(
        training_fraction=float(p["training_fraction"]),
        min_training_circuits=int(p["min_training_circuits"]),
        validation_fraction=float(p["validation_fraction"]),
        num_pseudo_fronts=int(p["num_pseudo_fronts"]),
        top_k_models=int(p["top_k_models"]),
        model_ids=list(p["model_ids"]),
        error_metric=str(p["error_metric"]),
        seed=int(p["seed"]),
        evaluate_coverage=bool(p["evaluate_coverage"]),
    )
    result = session.run_approxfpgas(library, config, run_id=run_id, progress=progress)
    # Deterministic subset only: exploration_cost carries wall-clock times.
    return {
        "flow": "approxfpgas",
        "library": result.library_name,
        "kind": result.kind,
        "bitwidth": int(result.bitwidth),
        "training_names": list(result.training_names),
        "validation_names": list(result.validation_names),
        "parameters": {
            parameter: {
                "top_models": list(outcome.top_models),
                "final_front": list(outcome.final_front_names),
                "true_front": list(outcome.true_front_names),
                "coverage": outcome.coverage,
            }
            for parameter, outcome in result.parameter_outcomes.items()
        },
    }
