"""AutoAx-FPGA case study: accelerator component selection over pluggable workloads.

The accelerator behavioural models, components, quality metrics and input
sets live in :mod:`repro.workloads` (the Gaussian filter is the registered
``"gaussian"`` workload; ``"sobel"`` and ``"sharpen"`` ship alongside it);
this package keeps the case-study machinery -- estimators, search
strategies, the staged flow -- and re-exports the workload names it
historically owned.  Pick a workload with ``AutoAxConfig(workload=...)``.
"""

from .images import (
    blob_image,
    checkerboard_image,
    default_image_set,
    gradient_image,
    noise_image,
    texture_image,
)
from .quality import mean_ssim, psnr, ssim
from .accelerator import (
    GAUSSIAN_KERNEL_3X3,
    KERNEL_SHIFT,
    NUM_ADDER_SLOTS,
    NUM_MULTIPLIER_SLOTS,
    ApproxComponent,
    Configuration,
    GaussianFilterAccelerator,
    build_component,
    components_from_library,
)
from .estimators import (
    HwCostEstimator,
    QorEstimator,
    TrainingSample,
    collect_training_samples,
    configuration_feature_matrix,
    configuration_features,
)
from .search import (
    SEARCH_STRATEGIES,
    EvaluatedConfiguration,
    SearchEvalStats,
    exact_reevaluation,
    hill_climb_pareto,
    nsga2_pareto,
    random_archive,
    random_search,
)
from .flow import AutoAxConfig, AutoAxFlow, AutoAxFpgaFlow, AutoAxResult, ScenarioResult
from .stages import (
    AutoAxState,
    autoax_stages,
    build_autoax_result,
    default_autoax_run_id,
    run_autoax_pipeline,
)

__all__ = [
    "blob_image",
    "checkerboard_image",
    "default_image_set",
    "gradient_image",
    "noise_image",
    "texture_image",
    "mean_ssim",
    "psnr",
    "ssim",
    "GAUSSIAN_KERNEL_3X3",
    "KERNEL_SHIFT",
    "NUM_ADDER_SLOTS",
    "NUM_MULTIPLIER_SLOTS",
    "ApproxComponent",
    "Configuration",
    "GaussianFilterAccelerator",
    "build_component",
    "components_from_library",
    "HwCostEstimator",
    "QorEstimator",
    "TrainingSample",
    "collect_training_samples",
    "configuration_feature_matrix",
    "configuration_features",
    "SEARCH_STRATEGIES",
    "EvaluatedConfiguration",
    "SearchEvalStats",
    "exact_reevaluation",
    "hill_climb_pareto",
    "nsga2_pareto",
    "random_archive",
    "random_search",
    "AutoAxConfig",
    "AutoAxFlow",
    "AutoAxFpgaFlow",
    "AutoAxResult",
    "ScenarioResult",
    "AutoAxState",
    "autoax_stages",
    "build_autoax_result",
    "default_autoax_run_id",
    "run_autoax_pipeline",
]
