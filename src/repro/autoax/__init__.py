"""AutoAx-FPGA case study: Gaussian-filter accelerator component selection."""

from .images import (
    blob_image,
    checkerboard_image,
    default_image_set,
    gradient_image,
    noise_image,
    texture_image,
)
from .quality import mean_ssim, psnr, ssim
from .accelerator import (
    GAUSSIAN_KERNEL_3X3,
    KERNEL_SHIFT,
    NUM_ADDER_SLOTS,
    NUM_MULTIPLIER_SLOTS,
    ApproxComponent,
    Configuration,
    GaussianFilterAccelerator,
    build_component,
    components_from_library,
)
from .estimators import (
    HwCostEstimator,
    QorEstimator,
    TrainingSample,
    collect_training_samples,
    configuration_features,
)
from .search import (
    SEARCH_STRATEGIES,
    EvaluatedConfiguration,
    exact_reevaluation,
    hill_climb_pareto,
    random_archive,
    random_search,
)
from .flow import AutoAxConfig, AutoAxFlow, AutoAxFpgaFlow, AutoAxResult, ScenarioResult
from .stages import AutoAxState, autoax_stages, build_autoax_result, run_autoax_pipeline

__all__ = [
    "blob_image",
    "checkerboard_image",
    "default_image_set",
    "gradient_image",
    "noise_image",
    "texture_image",
    "mean_ssim",
    "psnr",
    "ssim",
    "GAUSSIAN_KERNEL_3X3",
    "KERNEL_SHIFT",
    "NUM_ADDER_SLOTS",
    "NUM_MULTIPLIER_SLOTS",
    "ApproxComponent",
    "Configuration",
    "GaussianFilterAccelerator",
    "build_component",
    "components_from_library",
    "HwCostEstimator",
    "QorEstimator",
    "TrainingSample",
    "collect_training_samples",
    "configuration_features",
    "SEARCH_STRATEGIES",
    "EvaluatedConfiguration",
    "exact_reevaluation",
    "hill_climb_pareto",
    "random_archive",
    "random_search",
    "AutoAxConfig",
    "AutoAxFlow",
    "AutoAxFpgaFlow",
    "AutoAxResult",
    "ScenarioResult",
    "AutoAxState",
    "autoax_stages",
    "build_autoax_result",
    "run_autoax_pipeline",
]
