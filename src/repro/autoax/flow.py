"""The end-to-end AutoAx-FPGA flow (the paper's case study, Fig. 9).

Given the Pareto-optimal FPGA approximate components produced by the
ApproxFPGAs methodology (9 multipliers and 8 adders in the paper), the flow:

1. evaluates a random sample of accelerator configurations exactly
   (behavioural SSIM + composed FPGA cost) to build a training set;
2. trains a QoR estimator and a HW-cost estimator per FPGA parameter;
3. runs the Pareto-archive hill climber in each (parameter, SSIM) plane to
   select a small set of candidate configurations;
4. re-evaluates the candidates exactly and reports, per scenario, the final
   Pareto front next to a plain random-search baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.pareto import hypervolume_2d
from ..engine import EvalCache
from ..search import ParetoArchive
from ..workloads import WORKLOADS, build_workload
from .accelerator import ApproxComponent
from .search import SEARCH_STRATEGIES, EvaluatedConfiguration


@dataclass
class AutoAxConfig:
    """Configuration of the AutoAx-FPGA case study."""

    parameters: Sequence[str] = ("latency", "power", "area")
    num_training_samples: int = 80
    num_random_baseline: int = 80
    hill_climb_iterations: int = 300
    image_size: int = 48
    seed: int = 17
    search_strategy: str = "hill_climb"
    """Key into :data:`repro.autoax.SEARCH_STRATEGIES` selecting how the
    candidate configurations are searched per scenario (built-ins:
    ``"hill_climb"``, ``"random_archive"`` and the population-based
    ``"nsga2"``, which scores whole generations through the estimators in
    one batched call)."""
    workload: str = "gaussian"
    """Key into :data:`repro.workloads.WORKLOADS` selecting which
    accelerator case study the flow optimises (built-ins: the image trio
    ``"gaussian"`` / ``"sobel"`` / ``"sharpen"`` and the 1-D signal
    family ``"mvm"`` / ``"dct"`` / ``"fir"`` / ``"fir_mixed"``).  The
    workload defines the datapath, the slot shape, the quality metric and
    the default seeded input set (2-D images or 1-D signals)."""
    fidelity_ladder: Optional[Sequence[int]] = None
    """Ascending reduced-rung pixel budgets for multi-fidelity strategies
    (``"sh_ehvi"``); each rung evaluates on a centre-cropped input set of
    at most that many total pixels, and the full-fidelity rung is always
    appended by the strategy.  ``None`` lets the strategy derive its
    default geometric ladder; strategies without a ``fidelity_ladder``
    parameter ignore the knob."""

    def __post_init__(self) -> None:
        if self.num_training_samples < 2:
            raise ValueError("num_training_samples must be at least 2")
        if self.num_random_baseline < 1:
            raise ValueError("num_random_baseline must be at least 1")
        if self.fidelity_ladder is not None:
            ladder = tuple(int(f) for f in self.fidelity_ladder)
            if not ladder:
                raise ValueError("fidelity_ladder must be None or a non-empty sequence")
            if any(f < 1 for f in ladder):
                raise ValueError("fidelity_ladder budgets must be positive pixel counts")
            if any(b <= a for a, b in zip(ladder, ladder[1:])):
                raise ValueError("fidelity_ladder budgets must be strictly ascending")
            self.fidelity_ladder = ladder
        if self.search_strategy not in SEARCH_STRATEGIES:
            raise ValueError(
                f"unknown search strategy {self.search_strategy!r}; "
                f"available: {SEARCH_STRATEGIES.keys()}"
            )
        if self.workload not in WORKLOADS:
            raise ValueError(
                f"unknown workload {self.workload!r}; available: {WORKLOADS.keys()}"
            )


@dataclass
class ScenarioResult:
    """Outcome of one (FPGA parameter, SSIM) optimisation scenario."""

    parameter: str
    candidates: List[EvaluatedConfiguration]
    front: List[EvaluatedConfiguration]
    num_candidates: int

    def front_points(self) -> np.ndarray:
        """(cost, ssim) points of the final front."""
        return np.array([[entry.cost[self.parameter], entry.quality] for entry in self.front])


@dataclass
class AutoAxResult:
    """Full outcome of the AutoAx-FPGA flow."""

    scenarios: Dict[str, ScenarioResult]
    baseline: List[EvaluatedConfiguration]
    design_space_size: int
    runtime_s: float
    training_size: int

    def baseline_front(self, parameter: str) -> List[EvaluatedConfiguration]:
        """Pareto front of the random-search baseline for one parameter."""
        front = ParetoArchive(num_objectives=2, dedupe_keys=False)
        for entry in self.baseline:
            front.insert(None, (entry.cost[parameter], 1.0 - entry.quality), item=entry)
        return front.items()

    def hypervolume_comparison(self, parameter: str) -> Dict[str, float]:
        """Dominated hypervolume of AutoAx-FPGA vs the random baseline.

        Both fronts are measured in the (cost, 1 - SSIM) plane against a
        shared reference point; larger is better.
        """
        scenario = self.scenarios[parameter]
        autoax_points = np.array(
            [[entry.cost[parameter], 1.0 - entry.quality] for entry in scenario.candidates]
        )
        baseline_points = np.array(
            [[entry.cost[parameter], 1.0 - entry.quality] for entry in self.baseline]
        )
        combined = np.vstack([autoax_points, baseline_points])
        reference = combined.max(axis=0) * 1.05 + 1e-9
        return {
            "autoax": hypervolume_2d(autoax_points, reference),
            "random": hypervolume_2d(baseline_points, reference),
        }


class AutoAxFpgaFlow:
    """Backwards-compatible facade over the staged AutoAx-FPGA pipeline.

    The constructor signature and :meth:`run` are unchanged from the
    original monolithic implementation, and seeded results are
    bit-identical; the work is delegated to the :mod:`repro.autoax.stages`
    pipeline.  New code that wants shared caches, checkpointing or progress
    callbacks should use :class:`repro.api.ExplorationSession` instead.
    """

    def __init__(
        self,
        multipliers: Sequence[ApproxComponent],
        adders: Sequence[ApproxComponent],
        config: Optional[AutoAxConfig] = None,
        images: Optional[Sequence[np.ndarray]] = None,
        cache: Optional[EvalCache] = None,
    ):
        self.config = config or AutoAxConfig()
        self.accelerator = build_workload(self.config.workload, multipliers, adders)
        self.images = (
            list(images)
            if images is not None
            else self.accelerator.default_inputs(self.config.image_size)
        )
        # One cache for the whole case study: exact evaluations are shared
        # between the per-parameter re-evaluation passes and the random
        # baseline, estimated ones between hill-climbing iterations.
        self.cache = cache if cache is not None else EvalCache()

    def run(self) -> AutoAxResult:
        """Execute the case study and return the per-scenario results."""
        import time

        from .stages import AutoAxState, autoax_stages, build_autoax_result

        state = AutoAxState(
            accelerator=self.accelerator,
            images=self.images,
            config=self.config,
            cache=self.cache,
        )
        start = time.perf_counter()
        for stage in autoax_stages(self.config):
            stage.absorb(state, stage.compute(state))
        return build_autoax_result(state, time.perf_counter() - start)


#: Short alias used throughout the documentation.
AutoAxFlow = AutoAxFpgaFlow
