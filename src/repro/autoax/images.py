"""Synthetic image workload for the Gaussian-filter case study.

The paper evaluates the Gaussian-filter accelerator on an image-processing
workload; since no image set ships with this reproduction, a deterministic
set of synthetic 8-bit grayscale images with varied spatial statistics
(smooth gradients, edges, texture, blobs and noise) stands in for it.  The
images exercise the same code path: every pixel flows through the assigned
approximate multipliers and adders.
"""

from __future__ import annotations

from typing import List

import numpy as np


def gradient_image(size: int) -> np.ndarray:
    """Smooth diagonal gradient."""
    row = np.linspace(0, 255, size)
    image = (row[:, None] + row[None, :]) / 2.0
    return image.astype(np.uint8)


def checkerboard_image(size: int, tile: int = 6) -> np.ndarray:
    """High-frequency checkerboard (edge-heavy content)."""
    indices = np.arange(size)
    pattern = ((indices[:, None] // tile) + (indices[None, :] // tile)) % 2
    return (pattern * 255).astype(np.uint8)


def blob_image(size: int, seed: int = 3) -> np.ndarray:
    """Sum of a few Gaussian blobs (smooth, non-monotone content)."""
    rng = np.random.default_rng(seed)
    ys, xs = np.mgrid[0:size, 0:size]
    image = np.zeros((size, size), dtype=np.float64)
    for _ in range(5):
        cx, cy = rng.uniform(0, size, size=2)
        sigma = rng.uniform(size / 10, size / 4)
        amplitude = rng.uniform(80, 255)
        image += amplitude * np.exp(-((xs - cx) ** 2 + (ys - cy) ** 2) / (2 * sigma ** 2))
    image = 255.0 * image / image.max()
    return image.astype(np.uint8)


def texture_image(size: int, seed: int = 7) -> np.ndarray:
    """Band-limited noise texture."""
    rng = np.random.default_rng(seed)
    noise = rng.normal(0.0, 1.0, size=(size, size))
    # Cheap low-pass: repeated box blur via cumulative sums.
    kernel = np.ones((5, 5)) / 25.0
    padded = np.pad(noise, 2, mode="reflect")
    smoothed = np.zeros_like(noise)
    for dy in range(5):
        for dx in range(5):
            smoothed += kernel[dy, dx] * padded[dy:dy + size, dx:dx + size]
    smoothed -= smoothed.min()
    smoothed /= max(smoothed.max(), 1e-9)
    return (smoothed * 255).astype(np.uint8)


def noise_image(size: int, seed: int = 11) -> np.ndarray:
    """Uniform random noise (worst case for error attenuation)."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(size, size), dtype=np.uint8)


def default_image_set(size: int = 48) -> List[np.ndarray]:
    """The five-image workload used by the AutoAx-FPGA benchmarks."""
    return [
        gradient_image(size),
        checkerboard_image(size),
        blob_image(size),
        texture_image(size),
        noise_image(size),
    ]
