"""Back-compat re-exports of the synthetic image generators.

The generators moved to :mod:`repro.workloads.inputs`, where they are
seeded and size-parameterised per workload; at their defaults (``seed=0``)
they are bit-identical to the historical Gaussian-filter image set, so
``default_image_set(size)`` keeps returning exactly what it always did.
"""

from __future__ import annotations

from ..workloads.inputs import (  # noqa: F401
    blob_image,
    checkerboard_image,
    default_image_set,
    gradient_image,
    noise_image,
    texture_image,
)

__all__ = [
    "blob_image",
    "checkerboard_image",
    "default_image_set",
    "gradient_image",
    "noise_image",
    "texture_image",
]
