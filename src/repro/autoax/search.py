"""Search strategies over the accelerator's configuration space.

AutoAx-FPGA uses a Pareto-archive hill climber driven by the estimators;
the baseline it is compared against in Fig. 9 is plain random search with
exact evaluation.

All configuration evaluation is routed through the evaluation engine's
cache when one is passed: exact evaluations are keyed by the accelerator's
component set, the image set and the configuration, so hits are shared
between :func:`random_search` and :func:`exact_reevaluation` (and across
repeated searches over the same accelerator); estimated evaluations inside
:func:`hill_climb_pareto` are additionally keyed by the fitted estimator
state, so revisited configurations are scored once.  Caching never changes
results -- every evaluation is a deterministic function of its key -- and
random-number consumption is independent of hits, so seeded searches are
reproducible with or without a cache.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..engine import EvalCache, blake_token, cache_key, configuration_token, images_token
from ..registry import Registry
from .accelerator import Configuration, GaussianFilterAccelerator
from .estimators import HwCostEstimator, QorEstimator

#: Registry of configuration-space search strategies.  Each entry is a
#: callable ``(accelerator, qor_estimator, hw_estimator, *, iterations,
#: seed, cache) -> List[EvaluatedConfiguration]`` returning the estimated
#: Pareto-optimal candidates; :class:`~repro.autoax.flow.AutoAxFpgaFlow`
#: resolves ``AutoAxConfig.search_strategy`` here, so new searches plug in
#: by registering a key.
SEARCH_STRATEGIES = Registry("search strategy")


@dataclass
class EvaluatedConfiguration:
    """A configuration with its (exact or estimated) quality and cost."""

    config: Configuration
    quality: float
    cost: Dict[str, float]

    def objectives(self, parameter: str) -> Tuple[float, float]:
        """(cost, quality loss) pair, both minimised."""
        return (self.cost[parameter], 1.0 - self.quality)


def _non_dominated(
    archive: List[EvaluatedConfiguration], parameter: str
) -> List[EvaluatedConfiguration]:
    """Prune an archive to its non-dominated members (cost and 1-SSIM minimised)."""
    if not archive:
        return []
    points = np.array([entry.objectives(parameter) for entry in archive])
    from ..core.pareto import pareto_front_indices

    keep = pareto_front_indices(points)
    return [archive[i] for i in keep]


def accelerator_token(accelerator: GaussianFilterAccelerator) -> str:
    """Digest of the component sets an accelerator is built from."""
    return blake_token(
        [component.netlist.fingerprint() for component in accelerator.multipliers],
        [component.netlist.fingerprint() for component in accelerator.adders],
    )


def _exact_context(accelerator: GaussianFilterAccelerator, images: Sequence[np.ndarray]) -> str:
    return blake_token(accelerator_token(accelerator), images_token(images))


def _through_cache(
    cache: Optional[EvalCache],
    domain: str,
    context: str,
    config: Configuration,
    compute,
) -> EvaluatedConfiguration:
    """Evaluate one configuration via the cache when one is available.

    ``compute`` returns a ``(quality, cost)`` pair; the cached payload is the
    JSON-able ``{"quality", "cost"}`` dictionary so disk backends work.
    """
    key = None
    if cache is not None:
        key = cache_key(
            domain, context, configuration_token(config.multiplier_indices, config.adder_indices)
        )
        hit = cache.get(key)
        if hit is not None:
            return EvaluatedConfiguration(
                config=config,
                quality=float(hit["quality"]),
                cost={name: float(value) for name, value in hit["cost"].items()},
            )
    quality, cost = compute()
    if cache is not None:
        cache.put(key, {"quality": quality, "cost": dict(cost)})
    return EvaluatedConfiguration(config=config, quality=quality, cost=cost)


def _cached_exact_evaluation(
    accelerator: GaussianFilterAccelerator,
    images: Sequence[np.ndarray],
    config: Configuration,
    cache: Optional[EvalCache],
    context: str,
) -> EvaluatedConfiguration:
    """Exactly evaluate one configuration, via the cache when available."""
    return _through_cache(
        cache,
        "axq",
        context,
        config,
        lambda: (accelerator.quality(images, config), accelerator.hw_cost(config)),
    )


def random_search(
    accelerator: GaussianFilterAccelerator,
    images: Sequence[np.ndarray],
    num_samples: int,
    seed: int = 23,
    cache: Optional[EvalCache] = None,
) -> List[EvaluatedConfiguration]:
    """Exactly evaluate ``num_samples`` uniformly random configurations."""
    rng = np.random.default_rng(seed)
    context = _exact_context(accelerator, images)
    results: List[EvaluatedConfiguration] = []
    for _ in range(num_samples):
        config = accelerator.random_configuration(rng)
        results.append(_cached_exact_evaluation(accelerator, images, config, cache, context))
    return results


def _estimator_context(
    accelerator: GaussianFilterAccelerator,
    qor_estimator: QorEstimator,
    hw_estimator: HwCostEstimator,
) -> str:
    """Cache context of estimated evaluations, versioned by the fitted state.

    Estimators without a ``cache_token`` get a run-unique token so foreign
    objects can never share stale estimates.
    """
    return blake_token(
        accelerator_token(accelerator),
        getattr(qor_estimator, "cache_token", None) or f"anon-qor-{uuid.uuid4().hex}",
        getattr(hw_estimator, "cache_token", None) or f"anon-hw-{uuid.uuid4().hex}",
    )


def _estimated_evaluator(
    accelerator: GaussianFilterAccelerator,
    qor_estimator: QorEstimator,
    hw_estimator: HwCostEstimator,
    cache: Optional[EvalCache],
):
    """A ``config -> EvaluatedConfiguration`` closure scoring via the estimators."""
    parameter = hw_estimator.parameter
    context = _estimator_context(accelerator, qor_estimator, hw_estimator)

    def estimate(config: Configuration):
        quality = float(np.clip(qor_estimator.estimate(accelerator, config), 0.0, 1.0))
        cost = dict(accelerator.hw_cost(config))
        cost[parameter] = hw_estimator.estimate(accelerator, config)
        return quality, cost

    def evaluate(config: Configuration) -> EvaluatedConfiguration:
        return _through_cache(cache, "axe", context, config, lambda: estimate(config))

    return evaluate


@SEARCH_STRATEGIES.register("hill_climb")
def hill_climb_pareto(
    accelerator: GaussianFilterAccelerator,
    qor_estimator: QorEstimator,
    hw_estimator: HwCostEstimator,
    iterations: int = 400,
    archive_limit: int = 64,
    seed: int = 31,
    cache: Optional[EvalCache] = None,
) -> List[EvaluatedConfiguration]:
    """Estimator-driven Pareto-archive hill climbing.

    Starting from a small random archive, each iteration mutates one slot of
    a randomly chosen archive member, scores the child with the estimators
    and keeps the archive non-dominated in the (estimated cost, estimated
    quality loss) plane.  Returns the final archive of *estimated*
    Pareto-optimal configurations; callers re-evaluate them exactly.
    """
    rng = np.random.default_rng(seed)
    parameter = hw_estimator.parameter
    evaluate = _estimated_evaluator(accelerator, qor_estimator, hw_estimator, cache)

    archive = [evaluate(accelerator.random_configuration(rng)) for _ in range(8)]
    archive = _non_dominated(archive, parameter)

    for _ in range(iterations):
        parent = archive[int(rng.integers(0, len(archive)))]
        child_config = accelerator.mutate_configuration(parent.config, rng)
        child = evaluate(child_config)
        archive.append(child)
        archive = _non_dominated(archive, parameter)
        if len(archive) > archive_limit:
            # Keep a spread subset along the cost axis.
            archive.sort(key=lambda entry: entry.cost[parameter])
            indices = np.linspace(0, len(archive) - 1, archive_limit).round().astype(int)
            archive = [archive[i] for i in dict.fromkeys(int(i) for i in indices)]
    return archive


@SEARCH_STRATEGIES.register("random_archive")
def random_archive(
    accelerator: GaussianFilterAccelerator,
    qor_estimator: QorEstimator,
    hw_estimator: HwCostEstimator,
    iterations: int = 400,
    archive_limit: int = 64,
    seed: int = 31,
    cache: Optional[EvalCache] = None,
) -> List[EvaluatedConfiguration]:
    """Estimator-scored uniform random sampling, pruned to a Pareto archive.

    The mutation-free counterpart of :func:`hill_climb_pareto`: ``iterations``
    uniformly random configurations are scored with the estimators and the
    non-dominated subset (spread-limited to ``archive_limit`` members along
    the cost axis) is returned.  Useful as an ablation baseline for the
    search itself, with the same strategy signature.
    """
    rng = np.random.default_rng(seed)
    parameter = hw_estimator.parameter
    evaluate = _estimated_evaluator(accelerator, qor_estimator, hw_estimator, cache)

    archive: List[EvaluatedConfiguration] = []
    for _ in range(iterations):
        archive.append(evaluate(accelerator.random_configuration(rng)))
        archive = _non_dominated(archive, parameter)
    if len(archive) > archive_limit:
        archive.sort(key=lambda entry: entry.cost[parameter])
        indices = np.linspace(0, len(archive) - 1, archive_limit).round().astype(int)
        archive = [archive[i] for i in dict.fromkeys(int(i) for i in indices)]
    return archive


def exact_reevaluation(
    accelerator: GaussianFilterAccelerator,
    images: Sequence[np.ndarray],
    candidates: Sequence[EvaluatedConfiguration],
    cache: Optional[EvalCache] = None,
) -> List[EvaluatedConfiguration]:
    """Replace estimated quality/cost of candidates with exact measurements."""
    context = _exact_context(accelerator, images)
    return [
        _cached_exact_evaluation(accelerator, images, candidate.config, cache, context)
        for candidate in candidates
    ]
