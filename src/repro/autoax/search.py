"""Search strategies over the accelerator's configuration space.

AutoAx-FPGA uses a Pareto-archive hill climber driven by the estimators;
the baseline it is compared against in Fig. 9 is plain random search with
exact evaluation.  A population-based NSGA-II strategy (``"nsga2"``) built
on the generic :mod:`repro.search` subsystem scores whole generations
through the estimators in one batched call and exactly re-evaluates the
surviving front through :meth:`repro.engine.BatchEvaluator.evaluate_configurations`.

All strategies keep their candidate front in a shared
:class:`repro.search.ParetoArchive` (incremental non-dominated insertion)
instead of hand-rolled filtering; seeded trajectories are bit-identical to
the historical list-based implementations (pinned by
``tests/test_search_regression.py``).

All configuration evaluation is routed through the evaluation engine's
cache when one is passed: exact evaluations are keyed by the accelerator's
component set, the image set and the configuration, so hits are shared
between :func:`random_search` and :func:`exact_reevaluation` (and across
repeated searches over the same accelerator); estimated evaluations inside
:func:`hill_climb_pareto` are additionally keyed by the fitted estimator
state, so revisited configurations are scored once.  Independently of the
cache, every estimator-driven strategy memoises scores per configuration
within one run, so revisiting a configuration never recomputes the
estimators.  Caching never changes results -- every evaluation is a
deterministic function of its key -- and random-number consumption is
independent of hits, so seeded searches are reproducible with or without a
cache.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..engine import (
    EvalCache,
    accelerator_context,
    accelerator_token,
    blake_token,
    cache_key,
    configuration_token,
    images_token,
)
from ..registry import Registry
from ..search import (
    Nsga2Config,
    ParetoArchive,
    SuccessiveHalvingConfig,
    default_fidelity_ladder,
    expected_hypervolume_improvement,
    run_nsga2,
    run_successive_halving,
)
from ..workloads import ApproxAccelerator, SlotConfiguration, fidelity_inputs
from .estimators import HwCostEstimator, QorEstimator

#: Registry of configuration-space search strategies.  Each entry is a
#: callable ``(accelerator, qor_estimator, hw_estimator, *, iterations,
#: seed, cache) -> List[EvaluatedConfiguration]`` returning the estimated
#: Pareto-optimal candidates; :class:`~repro.autoax.flow.AutoAxFpgaFlow`
#: resolves ``AutoAxConfig.search_strategy`` here, so new searches plug in
#: by registering a key.  Every strategy returns *estimated* candidates;
#: callers perform the exact re-evaluation pass (the staged flow batches it
#: through the state engine).  Strategies may additionally accept ``images``
#: and ``engine`` keyword arguments for direct API users who want the
#: survivors re-evaluated exactly inside the strategy call.
SEARCH_STRATEGIES = Registry("search strategy")


@dataclass
class EvaluatedConfiguration:
    """A configuration with its (exact or estimated) quality and cost."""

    config: SlotConfiguration
    quality: float
    cost: Dict[str, float]

    def objectives(self, parameter: str) -> Tuple[float, float]:
        """(cost, quality loss) pair, both minimised."""
        return (self.cost[parameter], 1.0 - self.quality)


def _non_dominated(
    archive: List[EvaluatedConfiguration], parameter: str
) -> List[EvaluatedConfiguration]:
    """Prune a candidate list to its non-dominated members via the shared archive."""
    pruned = ParetoArchive(num_objectives=2, dedupe_keys=False)
    for entry in archive:
        pruned.insert(None, entry.objectives(parameter), item=entry)
    return pruned.items()


def _exact_context(accelerator: ApproxAccelerator, images: Sequence[np.ndarray]) -> str:
    return accelerator_context(accelerator, images)


def _through_cache(
    cache: Optional[EvalCache],
    domain: str,
    context: str,
    config: SlotConfiguration,
    compute,
) -> EvaluatedConfiguration:
    """Evaluate one configuration via the cache when one is available.

    ``compute`` returns a ``(quality, cost)`` pair; the cached payload is the
    JSON-able ``{"quality", "cost"}`` dictionary so disk backends work.
    """
    key = None
    if cache is not None:
        key = cache_key(
            domain, context, configuration_token(config.multiplier_indices, config.adder_indices)
        )
        hit = cache.get(key)
        if hit is not None:
            return EvaluatedConfiguration(
                config=config,
                quality=float(hit["quality"]),
                cost={name: float(value) for name, value in hit["cost"].items()},
            )
    quality, cost = compute()
    if cache is not None:
        cache.put(key, {"quality": quality, "cost": dict(cost)})
    return EvaluatedConfiguration(config=config, quality=quality, cost=cost)


def _cached_exact_evaluation(
    accelerator: ApproxAccelerator,
    images: Sequence[np.ndarray],
    config: SlotConfiguration,
    cache: Optional[EvalCache],
    context: str,
) -> EvaluatedConfiguration:
    """Exactly evaluate one configuration, via the cache when available."""
    return _through_cache(
        cache,
        "axq",
        context,
        config,
        lambda: (accelerator.quality(images, config), accelerator.hw_cost(config)),
    )


def _batched_exact_evaluation(
    accelerator: ApproxAccelerator,
    images: Sequence[np.ndarray],
    configs: Sequence[SlotConfiguration],
    engine: "BatchEvaluator",  # noqa: F821
) -> List[EvaluatedConfiguration]:
    """Exactly evaluate configurations as one engine batch (same cache keys)."""
    payloads = engine.evaluate_configurations(accelerator, images, configs)
    return [
        EvaluatedConfiguration(
            config=config,
            quality=float(payload["quality"]),
            cost={name: float(value) for name, value in payload["cost"].items()},
        )
        for config, payload in zip(configs, payloads)
    ]


def random_search(
    accelerator: ApproxAccelerator,
    images: Sequence[np.ndarray],
    num_samples: int,
    seed: int = 23,
    cache: Optional[EvalCache] = None,
    engine: Optional["BatchEvaluator"] = None,  # noqa: F821
) -> List[EvaluatedConfiguration]:
    """Exactly evaluate ``num_samples`` uniformly random configurations.

    With an ``engine``, the whole sample is evaluated as one batched,
    cached, optionally process-parallel call; configurations are drawn
    before any evaluation either way, so seeded results are bit-identical
    across both paths.
    """
    rng = np.random.default_rng(seed)
    configs = [accelerator.random_configuration(rng) for _ in range(num_samples)]
    if engine is not None:
        return _batched_exact_evaluation(accelerator, images, configs, engine)
    context = _exact_context(accelerator, images)
    return [
        _cached_exact_evaluation(accelerator, images, config, cache, context)
        for config in configs
    ]


def _estimator_context(
    accelerator: ApproxAccelerator,
    qor_estimator: QorEstimator,
    hw_estimator: HwCostEstimator,
) -> str:
    """Cache context of estimated evaluations, versioned by the fitted state.

    Estimators without a ``cache_token`` get a run-unique token so foreign
    objects can never share stale estimates.
    """
    return blake_token(
        accelerator_token(accelerator),
        getattr(qor_estimator, "cache_token", None) or f"anon-qor-{uuid.uuid4().hex}",
        getattr(hw_estimator, "cache_token", None) or f"anon-hw-{uuid.uuid4().hex}",
    )


@dataclass
class SearchEvalStats:
    """In-run evaluation accounting of one estimator-driven search.

    ``evaluations`` counts requested scores, ``computed`` the ones that
    actually ran the estimators; the rest were memo hits (revisited
    configurations).  Exposed as the ``stats`` attribute of the closure
    returned by the estimated evaluator, and asserted on by the dedupe
    regression tests.
    """

    evaluations: int = 0
    computed: int = 0

    @property
    def memo_hits(self) -> int:
        return self.evaluations - self.computed

    @property
    def memo_hit_rate(self) -> float:
        return self.memo_hits / self.evaluations if self.evaluations else 0.0


def _estimated_evaluator(
    accelerator: ApproxAccelerator,
    qor_estimator: QorEstimator,
    hw_estimator: HwCostEstimator,
    cache: Optional[EvalCache],
):
    """A ``config -> EvaluatedConfiguration`` closure scoring via the estimators.

    Scores are memoised per configuration for the lifetime of the closure
    (keyed under the accelerator/estimator context the closure is bound
    to), so a search that revisits a configuration -- the hill climber
    mutating a slot back to its parent's component, for instance -- never
    pays the estimators twice.  Memo hits return the identical values a
    recomputation would, so seeded trajectories are unchanged; the
    ``stats`` attribute of the closure reports the hit accounting.
    """
    parameter = hw_estimator.parameter
    context = _estimator_context(accelerator, qor_estimator, hw_estimator)
    memo: Dict[str, EvaluatedConfiguration] = {}
    stats = SearchEvalStats()

    def estimate(config: SlotConfiguration):
        quality = float(np.clip(qor_estimator.estimate(accelerator, config), 0.0, 1.0))
        cost = dict(accelerator.hw_cost(config))
        cost[parameter] = hw_estimator.estimate(accelerator, config)
        return quality, cost

    def evaluate(config: SlotConfiguration) -> EvaluatedConfiguration:
        stats.evaluations += 1
        token = configuration_token(config.multiplier_indices, config.adder_indices)
        hit = memo.get(token)
        if hit is not None:
            return hit
        stats.computed += 1
        result = _through_cache(cache, "axe", context, config, lambda: estimate(config))
        memo[token] = result
        return result

    evaluate.stats = stats
    return evaluate


def _spread_limited(archive: ParetoArchive, limit: int) -> None:
    """Bound an archive to ``limit`` members spread along the cost axis."""
    archive.truncate_spread(limit, objective=0)


@SEARCH_STRATEGIES.register("hill_climb")
def hill_climb_pareto(
    accelerator: ApproxAccelerator,
    qor_estimator: QorEstimator,
    hw_estimator: HwCostEstimator,
    iterations: int = 400,
    archive_limit: int = 64,
    seed: int = 31,
    cache: Optional[EvalCache] = None,
) -> List[EvaluatedConfiguration]:
    """Estimator-driven Pareto-archive hill climbing.

    Starting from a small random archive, each iteration mutates one slot of
    a randomly chosen archive member, scores the child with the estimators
    and keeps the archive non-dominated in the (estimated cost, estimated
    quality loss) plane.  Returns the final archive of *estimated*
    Pareto-optimal configurations; callers re-evaluate them exactly.

    Revisited configurations are served from the evaluator's in-run memo
    (and the cross-run cache when one is passed); archive membership is
    maintained incrementally by :class:`repro.search.ParetoArchive` with
    ``dedupe_keys`` off, preserving the historical semantics where a
    revisited candidate occupies one archive slot per visit.
    """
    rng = np.random.default_rng(seed)
    parameter = hw_estimator.parameter
    evaluate = _estimated_evaluator(accelerator, qor_estimator, hw_estimator, cache)

    archive = ParetoArchive(num_objectives=2, dedupe_keys=False)
    for _ in range(8):
        entry = evaluate(accelerator.random_configuration(rng))
        archive.insert(None, entry.objectives(parameter), item=entry)

    for _ in range(iterations):
        parent = archive.entries()[int(rng.integers(0, len(archive)))].item
        child = evaluate(accelerator.mutate_configuration(parent.config, rng))
        archive.insert(None, child.objectives(parameter), item=child)
        if len(archive) > archive_limit:
            # Keep a spread subset along the cost axis.
            _spread_limited(archive, archive_limit)
    return archive.items()


@SEARCH_STRATEGIES.register("random_archive")
def random_archive(
    accelerator: ApproxAccelerator,
    qor_estimator: QorEstimator,
    hw_estimator: HwCostEstimator,
    iterations: int = 400,
    archive_limit: int = 64,
    seed: int = 31,
    cache: Optional[EvalCache] = None,
) -> List[EvaluatedConfiguration]:
    """Estimator-scored uniform random sampling, pruned to a Pareto archive.

    The mutation-free counterpart of :func:`hill_climb_pareto`: ``iterations``
    uniformly random configurations are scored with the estimators and the
    non-dominated subset (spread-limited to ``archive_limit`` members along
    the cost axis) is returned.  Useful as an ablation baseline for the
    search itself, with the same strategy signature.
    """
    rng = np.random.default_rng(seed)
    parameter = hw_estimator.parameter
    evaluate = _estimated_evaluator(accelerator, qor_estimator, hw_estimator, cache)

    archive = ParetoArchive(num_objectives=2, dedupe_keys=False)
    for _ in range(iterations):
        entry = evaluate(accelerator.random_configuration(rng))
        archive.insert(None, entry.objectives(parameter), item=entry)
    if len(archive) > archive_limit:
        _spread_limited(archive, archive_limit)
    return archive.items()


@SEARCH_STRATEGIES.register("nsga2")
def nsga2_pareto(
    accelerator: ApproxAccelerator,
    qor_estimator: QorEstimator,
    hw_estimator: HwCostEstimator,
    iterations: int = 400,
    archive_limit: int = 64,
    seed: int = 31,
    cache: Optional[EvalCache] = None,
    population_size: int = 32,
    crossover_rate: float = 0.9,
    mutation_rate: float = 1.0,
    images: Optional[Sequence[np.ndarray]] = None,
    engine: Optional["BatchEvaluator"] = None,  # noqa: F821
    store=None,
    run_id: str = "nsga2-search",
    on_generation=None,
) -> List[EvaluatedConfiguration]:
    """Population-based NSGA-II over the configuration space.

    The genome is the flat tuple of the accelerator's multiplier and adder
    slot assignments (split at ``num_multiplier_slots``, so any slot shape
    works -- the Gaussian case study's 9 + 8 as well as the MVM family's
    8 + 7); variation is per-parameter uniform crossover plus the same
    single-slot mutation move the hill climber uses.  Whole generations are
    scored through the estimators in **one batched call**
    (``estimate_batch``), which is what makes the strategy faster than the
    sequential hill climber at equal evaluation budget; the global
    non-dominated front accumulates in a shared
    :class:`repro.search.ParetoArchive` truncated by crowding distance.

    ``iterations`` is the surrogate-evaluation budget: the population size
    adapts down for small budgets and ``generations`` is derived so that
    ``population * (generations + 1) <= iterations``, making budgets
    directly comparable with :func:`hill_climb_pareto`.

    Survivor handling implements the paper's surrogate-assisted pattern:
    estimators pre-filter the design space and, when ``images`` are given,
    the surviving front is re-evaluated **exactly** before being returned
    -- generation-batched through ``engine`` when one is passed (shared
    ``axq`` cache keys), serially through ``cache`` otherwise.  Without
    ``images`` the candidates carry estimated values like the other
    strategies and the caller re-evaluates them.

    With a ``store`` (``get``/``put``), the search state -- population,
    archive and RNG stream -- is checkpointed every generation and a rerun
    with the same ``run_id`` resumes bit-identically (pass the *same
    fitted estimator instances*: the checkpoint token covers accelerator
    and search knobs, not the estimators' fitted state).  ``on_generation``
    is forwarded to :func:`repro.search.run_nsga2`: it fires with the stats
    dict of every freshly computed generation, after that generation's
    checkpoint is persisted (service workers heartbeat their leases there).
    """
    parameter = hw_estimator.parameter
    slots_m = accelerator.num_multiplier_slots

    population = min(population_size, max(4, iterations // 4))
    generations = max(0, iterations // population - 1)
    config = Nsga2Config(
        population_size=population,
        generations=generations,
        crossover_rate=crossover_rate,
        mutation_rate=mutation_rate,
        archive_limit=archive_limit,
        seed=seed,
    )

    def to_config(genome) -> SlotConfiguration:
        return SlotConfiguration(tuple(genome[:slots_m]), tuple(genome[slots_m:]))

    def random_genome(rng: np.random.Generator):
        drawn = accelerator.random_configuration(rng)
        return drawn.multiplier_indices + drawn.adder_indices

    def mutate(genome, rng: np.random.Generator):
        mutated = accelerator.mutate_configuration(to_config(genome), rng)
        return mutated.multiplier_indices + mutated.adder_indices

    def crossover(a, b, rng: np.random.Generator):
        take_first = rng.random(len(a)) < 0.5
        return tuple(x if flag else y for x, y, flag in zip(a, b, take_first))

    def batch_scores(estimator, configs, features) -> np.ndarray:
        batch = getattr(estimator, "estimate_batch", None)
        if batch is not None:
            return np.asarray(batch(accelerator, configs, features=features), dtype=np.float64)
        # Duck-typed estimators without a batch API degrade to per-config
        # scoring (slower, same values).
        return np.array(
            [estimator.estimate(accelerator, config) for config in configs], dtype=np.float64
        )

    def evaluate(genomes):
        from .estimators import configuration_feature_matrix

        configs = [to_config(genome) for genome in genomes]
        features = configuration_feature_matrix(accelerator, configs)
        qualities = np.clip(batch_scores(qor_estimator, configs, features), 0.0, 1.0)
        costs = batch_scores(hw_estimator, configs, features)
        return [
            (float(cost), float(1.0 - quality))
            for cost, quality in zip(costs, qualities)
        ]

    token = blake_token(
        "nsga2",
        accelerator_token(accelerator),
        parameter,
        population,
        crossover_rate,
        mutation_rate,
        archive_limit,
        seed,
    )
    result = run_nsga2(
        random_genome=random_genome,
        mutate=mutate,
        crossover=crossover,
        evaluate=evaluate,
        config=config,
        store=store,
        run_id=run_id,
        token=token,
        on_generation=on_generation,
    )

    candidates = [
        EvaluatedConfiguration(
            config=to_config(entry.item),
            quality=1.0 - entry.objectives[1],
            cost={parameter: entry.objectives[0]},
        )
        for entry in result.archive
    ]
    if images is not None:
        if engine is not None:
            return _batched_exact_evaluation(
                accelerator, images, [candidate.config for candidate in candidates], engine
            )
        return exact_reevaluation(accelerator, images, candidates, cache=cache)
    return candidates


def _fidelity_exact_evaluation(
    accelerator: ApproxAccelerator,
    images: Sequence[np.ndarray],
    configs: Sequence[SlotConfiguration],
    cache: Optional[EvalCache],
    fidelity: Optional[int],
) -> List[dict]:
    """Serial counterpart of ``BatchEvaluator.evaluate_configurations(fidelity=...)``.

    Applies the same centre-crop pixel budget and derives the same
    fidelity-namespaced ``axq`` context, so serial (cache-only) and engine
    paths share cache entries bit for bit at every rung -- including the
    full-fidelity rung, which aliases plain exact evaluation.
    """
    reduced = False
    if fidelity is not None:
        images, reduced = fidelity_inputs(images, int(fidelity))
    context = accelerator_context(
        accelerator, images, fidelity=int(fidelity) if reduced else None
    )
    payloads = []
    for config in configs:
        entry = _through_cache(
            cache,
            "axq",
            context,
            config,
            lambda config=config: (
                accelerator.quality(images, config),
                accelerator.hw_cost(config),
            ),
        )
        payloads.append({"quality": entry.quality, "cost": dict(entry.cost)})
    return payloads


@SEARCH_STRATEGIES.register("sh_ehvi")
def successive_halving_ehvi(
    accelerator: ApproxAccelerator,
    qor_estimator: QorEstimator,
    hw_estimator: HwCostEstimator,
    iterations: int = 400,
    archive_limit: int = 64,
    seed: int = 31,
    cache: Optional[EvalCache] = None,
    images: Optional[Sequence[np.ndarray]] = None,
    engine: Optional["BatchEvaluator"] = None,  # noqa: F821
    fidelity_ladder: Optional[Sequence[int]] = None,
    initial_cohort: Optional[int] = None,
    acquisition_pool: Optional[int] = None,
    eta: float = 2.0,
    min_survivors: int = 4,
    mc_samples: int = 128,
    store=None,
    run_id: str = "sh-ehvi-search",
    on_generation=None,
    telemetry: Optional[dict] = None,
) -> List[EvaluatedConfiguration]:
    """EHVI-screened successive halving over an explicit fidelity ladder.

    The multi-fidelity, uncertainty-aware strategy: instead of spending the
    whole budget on exact evaluation (NSGA-II) or none of it (the
    estimator-only strategies), it

    1. **screens** an ``acquisition_pool`` of random configurations with the
       estimators' predictive uncertainty (``estimate_batch_with_std``) and
       greedily picks an ``initial_cohort`` by expected hypervolume
       improvement (each pick's predicted mean joins the selection front
       before the next pick -- the standard believer-style batch rule, fully
       deterministic);
    2. **runs successive halving** over the fidelity ladder: the cohort is
       exactly evaluated at the cheapest rung (a total-pixel budget applied
       by centre-cropping the inputs, see
       :func:`repro.workloads.fidelity_inputs`), survivors selected by
       NSGA-II environmental selection are promoted to the next rung, and
       the final rung is always full fidelity -- so every returned candidate
       carries *exact* measurements, and the flow's subsequent
       re-evaluation pass is pure cache hits.

    ``fidelity_ladder`` lists the reduced-rung pixel budgets in ascending
    order (default: ``total_pixels/16, total_pixels/4`` via
    :func:`repro.search.default_fidelity_ladder`); the full-fidelity rung is
    appended automatically.  Rung evaluations run through ``engine`` when
    one is passed (batched, process-parallel, shared ``axq`` keys) and
    serially through ``cache`` otherwise -- both paths are bit-identical.

    With a ``store``, rung survivors are checkpointed through the same
    store/run_id plumbing NSGA-II uses (see
    :func:`repro.search.run_successive_halving`): a service worker killed
    mid-rung is taken over and finishes to a bit-identical payload.
    ``on_generation`` fires per completed rung.  ``telemetry``, when a dict
    is passed, is filled with the realised pattern budget per rung -- the
    numbers behind the benchmark's budget-vs-hypervolume gate.

    The strategy needs the workload inputs to evaluate exactly, so it sets
    ``needs_exact_inputs`` and the staged flow passes ``images``/``engine``.
    """
    if images is None:
        raise ValueError(
            "sh_ehvi is a multi-fidelity exact strategy and needs the workload's "
            "input images (pass images=..., and ideally engine=...)"
        )
    parameter = hw_estimator.parameter
    rng = np.random.default_rng(seed)
    images = [np.asarray(image) for image in images]
    full_patterns = int(sum(int(image.size) for image in images))

    # ---- 1. uncertainty-aware screening ----------------------------------
    from .estimators import configuration_feature_matrix

    pool_size = int(acquisition_pool or max(64, iterations))
    pool = [accelerator.random_configuration(rng) for _ in range(pool_size)]
    # EHVI can only pick what the pool contains, and random sampling alone
    # rarely reaches the estimated Pareto region, so the pool is seeded with
    # surrogate-optimised candidates too: an estimator-only NSGA-II run (no
    # images/engine, hence zero exact evaluations) contributes its archive.
    # This is the usual "optimise the acquisition on the surrogate" move.
    surrogate = nsga2_pareto(
        accelerator,
        qor_estimator,
        hw_estimator,
        iterations=iterations,
        archive_limit=max(32, 2 * int(initial_cohort or 0)),
        seed=seed,
    )
    pool.extend(entry.config for entry in surrogate)
    pool_size = len(pool)
    features = configuration_feature_matrix(accelerator, pool)
    quality_mean, quality_std = qor_estimator.estimate_batch_with_std(
        accelerator, pool, features=features
    )
    cost_mean, cost_std = hw_estimator.estimate_batch_with_std(
        accelerator, pool, features=features
    )
    means = np.stack([cost_mean, 1.0 - np.clip(quality_mean, 0.0, 1.0)], axis=1)
    stds = np.stack([np.abs(cost_std), np.abs(quality_std)], axis=1)
    maxima = means.max(axis=0)
    reference = maxima + 0.05 * np.abs(maxima) + 1e-9

    cohort_size = int(initial_cohort or min(pool_size, max(8, iterations // 8)))
    selected: List[int] = []
    believer_front: List[np.ndarray] = []
    remaining = list(range(pool_size))
    while remaining and len(selected) < cohort_size:
        front = np.asarray(believer_front, dtype=np.float64).reshape(-1, 2)
        scores = expected_hypervolume_improvement(
            front, reference, means[remaining], stds[remaining],
            num_samples=mc_samples, seed=seed,
        )
        best = int(np.argmax(scores))  # ties break to the lowest pool index
        index = remaining.pop(best)
        selected.append(index)
        believer_front.append(means[index])
    cohort = [pool[i] for i in selected]

    # ---- 2. successive halving up the fidelity ladder --------------------
    if fidelity_ladder is None:
        ladder = default_fidelity_ladder(full_patterns)
    else:
        ladder = tuple(int(f) for f in fidelity_ladder)
    rungs = tuple(f for f in ladder if f < full_patterns) + (None,)

    def encode(config: SlotConfiguration) -> dict:
        return {
            "m": [int(i) for i in config.multiplier_indices],
            "a": [int(i) for i in config.adder_indices],
        }

    def decode(payload: dict) -> SlotConfiguration:
        return SlotConfiguration(
            tuple(int(i) for i in payload["m"]), tuple(int(i) for i in payload["a"])
        )

    def evaluate(rung: int, fidelity: Optional[int], batch: List[dict]) -> List[dict]:
        configs = [decode(payload) for payload in batch]
        if engine is not None:
            return engine.evaluate_configurations(accelerator, images, configs, fidelity=fidelity)
        return _fidelity_exact_evaluation(accelerator, images, configs, cache, fidelity)

    def objectives(payload: dict) -> Tuple[float, float]:
        return (float(payload["cost"][parameter]), 1.0 - float(payload["quality"]))

    token = blake_token(
        "sh_ehvi",
        accelerator_token(accelerator),
        images_token(images),
        parameter,
        pool_size,
        cohort_size,
        rungs,
        eta,
        min_survivors,
        archive_limit,
        mc_samples,
        seed,
    )
    result = run_successive_halving(
        candidates=[encode(config) for config in cohort],
        evaluate=evaluate,
        objectives=objectives,
        config=SuccessiveHalvingConfig(rungs=rungs, eta=eta, min_survivors=min_survivors),
        store=store,
        run_id=run_id,
        token=token,
        on_rung=on_generation,
    )

    archive = ParetoArchive(num_objectives=2, dedupe_keys=False)
    for payload, evaluation in zip(result.survivors, result.evaluations):
        entry = EvaluatedConfiguration(
            config=decode(payload),
            quality=float(evaluation["quality"]),
            cost={name: float(v) for name, v in evaluation["cost"].items()},
        )
        archive.insert(None, entry.objectives(parameter), item=entry)
    if len(archive) > archive_limit:
        archive.truncate_crowding(archive_limit)

    if telemetry is not None:
        def rung_patterns(fidelity: Optional[int]) -> int:
            if fidelity is None:
                return full_patterns
            reduced_images, reduced = fidelity_inputs(images, int(fidelity))
            return sum(int(image.size) for image in reduced_images) if reduced else full_patterns

        per_rung = [
            dict(stats, patterns=rung_patterns(stats["fidelity"])) for stats in result.history
        ]
        telemetry.update(
            {
                "pool": pool_size,
                "cohort": cohort_size,
                "full_patterns": full_patterns,
                "rungs": per_rung,
                "exact_pattern_budget": sum(
                    stats["evaluated"] * stats["patterns"] for stats in per_rung
                ),
                "resumed_from": result.resumed_from,
            }
        )
    return archive.items()


successive_halving_ehvi.needs_exact_inputs = True


def exact_reevaluation(
    accelerator: ApproxAccelerator,
    images: Sequence[np.ndarray],
    candidates: Sequence[EvaluatedConfiguration],
    cache: Optional[EvalCache] = None,
    engine: Optional["BatchEvaluator"] = None,  # noqa: F821
) -> List[EvaluatedConfiguration]:
    """Replace estimated quality/cost of candidates with exact measurements.

    With an ``engine``, the candidate set is evaluated as one batched call
    through :meth:`repro.engine.BatchEvaluator.evaluate_configurations`
    (bit-identical values, same cache keys, process-pool fan-out for large
    fronts); otherwise each candidate is evaluated serially via ``cache``.
    """
    if engine is not None:
        return _batched_exact_evaluation(
            accelerator, images, [candidate.config for candidate in candidates], engine
        )
    context = _exact_context(accelerator, images)
    return [
        _cached_exact_evaluation(accelerator, images, candidate.config, cache, context)
        for candidate in candidates
    ]
