"""Search strategies over the accelerator's configuration space.

AutoAx-FPGA uses a Pareto-archive hill climber driven by the estimators;
the baseline it is compared against in Fig. 9 is plain random search with
exact evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .accelerator import Configuration, GaussianFilterAccelerator
from .estimators import HwCostEstimator, QorEstimator


@dataclass
class EvaluatedConfiguration:
    """A configuration with its (exact or estimated) quality and cost."""

    config: Configuration
    quality: float
    cost: Dict[str, float]

    def objectives(self, parameter: str) -> Tuple[float, float]:
        """(cost, quality loss) pair, both minimised."""
        return (self.cost[parameter], 1.0 - self.quality)


def _non_dominated(
    archive: List[EvaluatedConfiguration], parameter: str
) -> List[EvaluatedConfiguration]:
    """Prune an archive to its non-dominated members (cost and 1-SSIM minimised)."""
    if not archive:
        return []
    points = np.array([entry.objectives(parameter) for entry in archive])
    from ..core.pareto import pareto_front_indices

    keep = pareto_front_indices(points)
    return [archive[i] for i in keep]


def random_search(
    accelerator: GaussianFilterAccelerator,
    images: Sequence[np.ndarray],
    num_samples: int,
    seed: int = 23,
) -> List[EvaluatedConfiguration]:
    """Exactly evaluate ``num_samples`` uniformly random configurations."""
    rng = np.random.default_rng(seed)
    results: List[EvaluatedConfiguration] = []
    for _ in range(num_samples):
        config = accelerator.random_configuration(rng)
        results.append(
            EvaluatedConfiguration(
                config=config,
                quality=accelerator.quality(images, config),
                cost=accelerator.hw_cost(config),
            )
        )
    return results


def hill_climb_pareto(
    accelerator: GaussianFilterAccelerator,
    qor_estimator: QorEstimator,
    hw_estimator: HwCostEstimator,
    iterations: int = 400,
    archive_limit: int = 64,
    seed: int = 31,
) -> List[EvaluatedConfiguration]:
    """Estimator-driven Pareto-archive hill climbing.

    Starting from a small random archive, each iteration mutates one slot of
    a randomly chosen archive member, scores the child with the estimators
    and keeps the archive non-dominated in the (estimated cost, estimated
    quality loss) plane.  Returns the final archive of *estimated*
    Pareto-optimal configurations; callers re-evaluate them exactly.
    """
    rng = np.random.default_rng(seed)
    parameter = hw_estimator.parameter

    def evaluate(config: Configuration) -> EvaluatedConfiguration:
        quality = float(np.clip(qor_estimator.estimate(accelerator, config), 0.0, 1.0))
        cost = dict(accelerator.hw_cost(config))
        cost[parameter] = hw_estimator.estimate(accelerator, config)
        return EvaluatedConfiguration(config=config, quality=quality, cost=cost)

    archive = [evaluate(accelerator.random_configuration(rng)) for _ in range(8)]
    archive = _non_dominated(archive, parameter)

    for _ in range(iterations):
        parent = archive[int(rng.integers(0, len(archive)))]
        child_config = accelerator.mutate_configuration(parent.config, rng)
        child = evaluate(child_config)
        archive.append(child)
        archive = _non_dominated(archive, parameter)
        if len(archive) > archive_limit:
            # Keep a spread subset along the cost axis.
            archive.sort(key=lambda entry: entry.cost[parameter])
            indices = np.linspace(0, len(archive) - 1, archive_limit).round().astype(int)
            archive = [archive[i] for i in dict.fromkeys(int(i) for i in indices)]
    return archive


def exact_reevaluation(
    accelerator: GaussianFilterAccelerator,
    images: Sequence[np.ndarray],
    candidates: Sequence[EvaluatedConfiguration],
) -> List[EvaluatedConfiguration]:
    """Replace estimated quality/cost of candidates with exact measurements."""
    results = []
    for candidate in candidates:
        results.append(
            EvaluatedConfiguration(
                config=candidate.config,
                quality=accelerator.quality(images, candidate.config),
                cost=accelerator.hw_cost(candidate.config),
            )
        )
    return results
