"""Back-compat re-exports of the quality metrics.

The metrics moved to their canonical home :mod:`repro.workloads.quality`
(with hardening: explicit ``inf`` PSNR on identical images, SSIM window
validation, the :data:`~repro.workloads.quality.QUALITY_METRICS`
registry); importing them from here keeps working.
"""

from __future__ import annotations

from ..workloads.quality import (  # noqa: F401
    QUALITY_METRICS,
    gradient_similarity,
    mean_ssim,
    psnr,
    psnr_score,
    ssim,
)

__all__ = [
    "QUALITY_METRICS",
    "gradient_similarity",
    "mean_ssim",
    "psnr",
    "psnr_score",
    "ssim",
]
