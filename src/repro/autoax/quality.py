"""Quality-of-result metrics for the accelerator case study: SSIM and PSNR."""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.ndimage import uniform_filter


def ssim(reference: np.ndarray, test: np.ndarray, window: int = 7, data_range: float = 255.0) -> float:
    """Structural similarity index between two grayscale images.

    Standard SSIM (Wang et al.) with a uniform local window, matching what
    the paper uses to judge the Gaussian filter's output quality.
    """
    reference = np.asarray(reference, dtype=np.float64)
    test = np.asarray(test, dtype=np.float64)
    if reference.shape != test.shape:
        raise ValueError("images must have the same shape")
    if reference.ndim != 2:
        raise ValueError("ssim expects 2-D grayscale images")

    c1 = (0.01 * data_range) ** 2
    c2 = (0.03 * data_range) ** 2

    mu_x = uniform_filter(reference, size=window)
    mu_y = uniform_filter(test, size=window)
    mu_x_sq = mu_x ** 2
    mu_y_sq = mu_y ** 2
    mu_xy = mu_x * mu_y

    sigma_x = uniform_filter(reference ** 2, size=window) - mu_x_sq
    sigma_y = uniform_filter(test ** 2, size=window) - mu_y_sq
    sigma_xy = uniform_filter(reference * test, size=window) - mu_xy

    numerator = (2 * mu_xy + c1) * (2 * sigma_xy + c2)
    denominator = (mu_x_sq + mu_y_sq + c1) * (sigma_x + sigma_y + c2)
    ssim_map = numerator / denominator
    return float(ssim_map.mean())


def psnr(reference: np.ndarray, test: np.ndarray, data_range: float = 255.0) -> float:
    """Peak signal-to-noise ratio in dB (infinite for identical images)."""
    reference = np.asarray(reference, dtype=np.float64)
    test = np.asarray(test, dtype=np.float64)
    if reference.shape != test.shape:
        raise ValueError("images must have the same shape")
    mse = float(np.mean((reference - test) ** 2))
    if mse == 0.0:
        return float("inf")
    return 10.0 * np.log10(data_range ** 2 / mse)


def mean_ssim(references: Sequence[np.ndarray], tests: Sequence[np.ndarray]) -> float:
    """Average SSIM over a workload of image pairs."""
    if len(references) != len(tests):
        raise ValueError("reference and test image lists must have the same length")
    if not references:
        raise ValueError("cannot average SSIM over an empty workload")
    return float(np.mean([ssim(ref, test) for ref, test in zip(references, tests)]))
