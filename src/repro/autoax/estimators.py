"""QoR and hardware-cost estimators for AutoAx-FPGA.

AutoAx evaluates a random sample of configurations exactly, trains
estimators on that sample, and then lets the search explore the full design
space through the (cheap) estimators.  This module provides the feature
encoding of a configuration and thin estimator wrappers around the
:mod:`repro.ml` regressors.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ml import Regressor, RandomForestRegressor, RidgeRegression, ScaledRegressor
from ..workloads import ApproxAccelerator, SlotConfiguration


def configuration_features(
    accelerator: ApproxAccelerator, config: SlotConfiguration
) -> np.ndarray:
    """Numeric feature vector of a configuration.

    Per slot the assigned component contributes its error (MED), LUT count,
    latency and power; slot-aggregated sums are appended so linear models can
    pick up the additive structure of the composed cost directly.
    """
    per_slot: List[float] = []
    for index in config.multiplier_indices:
        component = accelerator.multipliers[index]
        per_slot.extend(
            [
                component.error.med,
                component.fpga.area_luts,
                component.fpga.latency_ns,
                component.fpga.total_power_mw,
            ]
        )
    for index in config.adder_indices:
        component = accelerator.adders[index]
        per_slot.extend(
            [
                component.error.med,
                component.fpga.area_luts,
                component.fpga.latency_ns,
                component.fpga.total_power_mw,
            ]
        )
    values = np.asarray(per_slot, dtype=np.float64)
    grouped = values.reshape(-1, 4)
    aggregates = np.concatenate([grouped.sum(axis=0), grouped.max(axis=0)])
    return np.concatenate([values, aggregates])


def _component_feature_table(components) -> np.ndarray:
    """(num_components, 4) table of the per-slot features of each component."""
    return np.array(
        [
            [
                component.error.med,
                component.fpga.area_luts,
                component.fpga.latency_ns,
                component.fpga.total_power_mw,
            ]
            for component in components
        ],
        dtype=np.float64,
    )


def configuration_feature_matrix(
    accelerator: ApproxAccelerator, configs: Sequence[SlotConfiguration]
) -> np.ndarray:
    """Stacked feature matrix of a whole population of configurations.

    The population path is fully vectorised: per-component features are
    tabulated once and gathered by slot index for every configuration, so
    building a generation's matrix is a couple of NumPy gathers instead of
    ``population x slots`` Python-level attribute walks -- and the single
    ``predict`` call per generation amortises the regressors' call
    overhead.  Population strategies score generations through this path
    (see ``estimate_batch``); per-configuration scoring keeps using
    :func:`configuration_features` (same features up to summation order).
    """
    if not configs:
        return np.empty((0, 0), dtype=np.float64)
    multiplier_table = _component_feature_table(accelerator.multipliers)
    adder_table = _component_feature_table(accelerator.adders)
    multiplier_indices = np.array([config.multiplier_indices for config in configs])
    adder_indices = np.array([config.adder_indices for config in configs])
    # (population, slots, 4) gathers, flattened to the per-slot layout.
    grouped = np.concatenate(
        [multiplier_table[multiplier_indices], adder_table[adder_indices]], axis=1
    )
    values = grouped.reshape(len(configs), -1)
    aggregates = np.concatenate([grouped.sum(axis=1), grouped.max(axis=1)], axis=1)
    return np.concatenate([values, aggregates], axis=1)


@dataclass
class TrainingSample:
    """One exactly-evaluated configuration."""

    config: SlotConfiguration
    features: np.ndarray
    quality: float
    cost: Dict[str, float]


def collect_training_samples(
    accelerator: ApproxAccelerator,
    images: Sequence[np.ndarray],
    num_samples: int,
    seed: int = 17,
    engine: Optional["BatchEvaluator"] = None,  # noqa: F821
) -> List[TrainingSample]:
    """Exactly evaluate ``num_samples`` random configurations.

    With an ``engine`` (:class:`repro.engine.BatchEvaluator`), the whole
    sample is evaluated as one cached, generation-batched call -- the
    per-image shared work is paid once and results land in the engine's
    cache under the same keys the search's exact evaluations use.  The
    configurations are drawn before any evaluation either way, so seeded
    samples are bit-identical with and without an engine.
    """
    if num_samples < 2:
        raise ValueError("need at least two training samples")
    rng = np.random.default_rng(seed)
    configs = [accelerator.random_configuration(rng) for _ in range(num_samples)]
    if engine is not None:
        payloads = engine.evaluate_configurations(accelerator, images, configs)
        measured = [
            (float(payload["quality"]), {k: float(v) for k, v in payload["cost"].items()})
            for payload in payloads
        ]
    else:
        measured = [
            (accelerator.quality(images, config), accelerator.hw_cost(config))
            for config in configs
        ]
    return [
        TrainingSample(
            config=config,
            features=configuration_features(accelerator, config),
            quality=quality,
            cost=cost,
        )
        for config, (quality, cost) in zip(configs, measured)
    ]


def _batch_with_std(
    model: Regressor, features: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """(mean, std) predictions, with zero std for uncertainty-free models.

    Models exposing ``predict_with_std`` (Gaussian processes, forests,
    their :class:`~repro.ml.ScaledRegressor` wrappers) report their own
    predictive uncertainty; anything else is treated as deterministic.
    Uncertainty-aware consumers (the EHVI acquisition in
    :mod:`repro.search.multifidelity`) thus work with *any* estimator
    model, degrading gracefully to point predictions.
    """
    with_std = getattr(model, "predict_with_std", None)
    if with_std is not None:
        mean, std = with_std(features)
        return (
            np.asarray(mean, dtype=np.float64).ravel(),
            np.asarray(std, dtype=np.float64).ravel(),
        )
    mean = np.asarray(model.predict(features), dtype=np.float64).ravel()
    return mean, np.zeros_like(mean)


def _fresh_cache_token(prefix: str) -> str:
    """Globally unique token versioning one estimator state.

    Cached estimates (see :func:`repro.autoax.search.hill_climb_pareto`) are
    keyed by this token, so they can never be served across different
    estimator instances or fits -- including across processes sharing a
    disk-backed cache, which is why this is a UUID and not a counter.
    """
    return f"{prefix}-{uuid.uuid4().hex}"


class QorEstimator:
    """Estimates the SSIM of a configuration from its feature vector."""

    def __init__(self, model: Optional[Regressor] = None):
        self.model = model or RandomForestRegressor(n_estimators=40, max_depth=8)
        self.cache_token = _fresh_cache_token("qor")

    def fit(self, samples: Sequence[TrainingSample]) -> "QorEstimator":
        X = np.vstack([sample.features for sample in samples])
        y = np.array([sample.quality for sample in samples])
        self.model.fit(X, y)
        self.cache_token = _fresh_cache_token("qor")
        return self

    def estimate(self, accelerator: ApproxAccelerator, config: SlotConfiguration) -> float:
        features = configuration_features(accelerator, config).reshape(1, -1)
        return float(self.model.predict(features)[0])

    def estimate_batch(
        self,
        accelerator: ApproxAccelerator,
        configs: Sequence[SlotConfiguration],
        features: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """SSIM estimates for a whole population in one ``predict`` call.

        Pass a precomputed ``features`` matrix to share feature extraction
        with other estimators scoring the same population.
        """
        if not configs:
            return np.empty(0, dtype=np.float64)
        if features is None:
            features = configuration_feature_matrix(accelerator, configs)
        return np.asarray(self.model.predict(features), dtype=np.float64)

    def estimate_batch_with_std(
        self,
        accelerator: ApproxAccelerator,
        configs: Sequence[SlotConfiguration],
        features: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Population estimates with predictive uncertainty (see ``_batch_with_std``)."""
        if not configs:
            return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.float64)
        if features is None:
            features = configuration_feature_matrix(accelerator, configs)
        return _batch_with_std(self.model, features)


class HwCostEstimator:
    """Estimates one FPGA cost parameter of a configuration."""

    def __init__(self, parameter: str, model: Optional[Regressor] = None):
        self.parameter = parameter
        self.model = model or ScaledRegressor(RidgeRegression(alpha=1.0))
        self.cache_token = _fresh_cache_token(f"hw-{parameter}")

    def fit(self, samples: Sequence[TrainingSample]) -> "HwCostEstimator":
        X = np.vstack([sample.features for sample in samples])
        y = np.array([sample.cost[self.parameter] for sample in samples])
        self.model.fit(X, y)
        self.cache_token = _fresh_cache_token(f"hw-{self.parameter}")
        return self

    def estimate(self, accelerator: ApproxAccelerator, config: SlotConfiguration) -> float:
        features = configuration_features(accelerator, config).reshape(1, -1)
        return float(self.model.predict(features)[0])

    def estimate_batch(
        self,
        accelerator: ApproxAccelerator,
        configs: Sequence[SlotConfiguration],
        features: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Cost estimates for a whole population in one ``predict`` call.

        Pass a precomputed ``features`` matrix to share feature extraction
        with other estimators scoring the same population.
        """
        if not configs:
            return np.empty(0, dtype=np.float64)
        if features is None:
            features = configuration_feature_matrix(accelerator, configs)
        return np.asarray(self.model.predict(features), dtype=np.float64)

    def estimate_batch_with_std(
        self,
        accelerator: ApproxAccelerator,
        configs: Sequence[SlotConfiguration],
        features: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Population estimates with predictive uncertainty (see ``_batch_with_std``)."""
        if not configs:
            return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.float64)
        if features is None:
            features = configuration_feature_matrix(accelerator, configs)
        return _batch_with_std(self.model, features)
