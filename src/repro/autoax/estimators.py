"""QoR and hardware-cost estimators for AutoAx-FPGA.

AutoAx evaluates a random sample of configurations exactly, trains
estimators on that sample, and then lets the search explore the full design
space through the (cheap) estimators.  This module provides the feature
encoding of a configuration and thin estimator wrappers around the
:mod:`repro.ml` regressors.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..ml import Regressor, RandomForestRegressor, RidgeRegression, ScaledRegressor
from .accelerator import Configuration, GaussianFilterAccelerator


def configuration_features(
    accelerator: GaussianFilterAccelerator, config: Configuration
) -> np.ndarray:
    """Numeric feature vector of a configuration.

    Per slot the assigned component contributes its error (MED), LUT count,
    latency and power; slot-aggregated sums are appended so linear models can
    pick up the additive structure of the composed cost directly.
    """
    per_slot: List[float] = []
    for index in config.multiplier_indices:
        component = accelerator.multipliers[index]
        per_slot.extend(
            [
                component.error.med,
                component.fpga.area_luts,
                component.fpga.latency_ns,
                component.fpga.total_power_mw,
            ]
        )
    for index in config.adder_indices:
        component = accelerator.adders[index]
        per_slot.extend(
            [
                component.error.med,
                component.fpga.area_luts,
                component.fpga.latency_ns,
                component.fpga.total_power_mw,
            ]
        )
    values = np.asarray(per_slot, dtype=np.float64)
    grouped = values.reshape(-1, 4)
    aggregates = np.concatenate([grouped.sum(axis=0), grouped.max(axis=0)])
    return np.concatenate([values, aggregates])


@dataclass
class TrainingSample:
    """One exactly-evaluated configuration."""

    config: Configuration
    features: np.ndarray
    quality: float
    cost: Dict[str, float]


def collect_training_samples(
    accelerator: GaussianFilterAccelerator,
    images: Sequence[np.ndarray],
    num_samples: int,
    seed: int = 17,
) -> List[TrainingSample]:
    """Exactly evaluate ``num_samples`` random configurations."""
    if num_samples < 2:
        raise ValueError("need at least two training samples")
    rng = np.random.default_rng(seed)
    samples: List[TrainingSample] = []
    for _ in range(num_samples):
        config = accelerator.random_configuration(rng)
        samples.append(
            TrainingSample(
                config=config,
                features=configuration_features(accelerator, config),
                quality=accelerator.quality(images, config),
                cost=accelerator.hw_cost(config),
            )
        )
    return samples


def _fresh_cache_token(prefix: str) -> str:
    """Globally unique token versioning one estimator state.

    Cached estimates (see :func:`repro.autoax.search.hill_climb_pareto`) are
    keyed by this token, so they can never be served across different
    estimator instances or fits -- including across processes sharing a
    disk-backed cache, which is why this is a UUID and not a counter.
    """
    return f"{prefix}-{uuid.uuid4().hex}"


class QorEstimator:
    """Estimates the SSIM of a configuration from its feature vector."""

    def __init__(self, model: Optional[Regressor] = None):
        self.model = model or RandomForestRegressor(n_estimators=40, max_depth=8)
        self.cache_token = _fresh_cache_token("qor")

    def fit(self, samples: Sequence[TrainingSample]) -> "QorEstimator":
        X = np.vstack([sample.features for sample in samples])
        y = np.array([sample.quality for sample in samples])
        self.model.fit(X, y)
        self.cache_token = _fresh_cache_token("qor")
        return self

    def estimate(self, accelerator: GaussianFilterAccelerator, config: Configuration) -> float:
        features = configuration_features(accelerator, config).reshape(1, -1)
        return float(self.model.predict(features)[0])


class HwCostEstimator:
    """Estimates one FPGA cost parameter of a configuration."""

    def __init__(self, parameter: str, model: Optional[Regressor] = None):
        self.parameter = parameter
        self.model = model or ScaledRegressor(RidgeRegression(alpha=1.0))
        self.cache_token = _fresh_cache_token(f"hw-{parameter}")

    def fit(self, samples: Sequence[TrainingSample]) -> "HwCostEstimator":
        X = np.vstack([sample.features for sample in samples])
        y = np.array([sample.cost[self.parameter] for sample in samples])
        self.model.fit(X, y)
        self.cache_token = _fresh_cache_token(f"hw-{self.parameter}")
        return self

    def estimate(self, accelerator: GaussianFilterAccelerator, config: Configuration) -> float:
        features = configuration_features(accelerator, config).reshape(1, -1)
        return float(self.model.predict(features)[0])
