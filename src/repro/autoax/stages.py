"""Stage decomposition of the AutoAx-FPGA case study on :mod:`repro.api`.

The case study becomes four kinds of stages over a shared
:class:`AutoAxState`: exact training-sample collection, estimator fitting,
one search-and-reevaluate scenario per FPGA parameter, and the random
baseline.  Sample and candidate payloads are JSON-serialisable (component
indices plus measured quality/cost), so a pipeline with an artifact store
resumes an interrupted study per scenario.

The estimator-fitting stage is not checkpointable (fitted regressors do not
serialise); it recomputes deterministically from the restored samples, so a
resumed run still matches an uninterrupted one exactly.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..api.pipeline import Pipeline, PipelineRun, Stage
from ..engine import BatchEvaluator, EvalCache, blake_token, images_token
from ..search import ParetoArchive
from ..workloads import ApproxAccelerator, build_workload
from .accelerator import ApproxComponent
from .estimators import (
    HwCostEstimator,
    QorEstimator,
    TrainingSample,
    collect_training_samples,
    configuration_features,
)
from .search import (
    SEARCH_STRATEGIES,
    EvaluatedConfiguration,
    accelerator_token,
    exact_reevaluation,
    random_search,
)

__all__ = [
    "AutoAxState",
    "autoax_stages",
    "autoax_run_token",
    "build_autoax_result",
    "default_autoax_run_id",
    "run_autoax_pipeline",
    "CollectSamplesStage",
    "FitEstimatorsStage",
    "ScenarioStage",
    "RandomBaselineStage",
]


# --------------------------------------------------------------------- #
# Payload encoding of evaluated configurations
# --------------------------------------------------------------------- #
def _evaluated_to_payload(entry: EvaluatedConfiguration) -> dict:
    return {
        "multipliers": [int(i) for i in entry.config.multiplier_indices],
        "adders": [int(i) for i in entry.config.adder_indices],
        "quality": float(entry.quality),
        "cost": {name: float(value) for name, value in entry.cost.items()},
    }


def _evaluated_from_payload(payload: dict, accelerator: ApproxAccelerator) -> EvaluatedConfiguration:
    return EvaluatedConfiguration(
        config=accelerator.make_configuration(
            [int(i) for i in payload["multipliers"]],
            [int(i) for i in payload["adders"]],
        ),
        quality=float(payload["quality"]),
        cost={name: float(value) for name, value in payload["cost"].items()},
    )


# --------------------------------------------------------------------- #
# Shared state
# --------------------------------------------------------------------- #
@dataclass
class AutoAxState:
    """Mutable working state threaded through the AutoAx-FPGA stages."""

    accelerator: ApproxAccelerator
    images: List[np.ndarray]
    config: "AutoAxConfig"  # noqa: F821 - imported lazily to avoid a cycle
    cache: EvalCache
    engine: Optional[BatchEvaluator] = None
    """Optional evaluation engine sharing :attr:`cache`.  When present,
    exact configuration evaluations (training samples, candidate
    re-evaluation, the random baseline) run generation-batched through
    :meth:`~repro.engine.BatchEvaluator.evaluate_configurations` -- results
    are bit-identical to the serial path and share its cache keys."""

    samples: List[TrainingSample] = field(default_factory=list)
    qor_estimator: Optional[QorEstimator] = None
    scenarios: Dict[str, "ScenarioResult"] = field(default_factory=dict)  # noqa: F821
    baseline: List[EvaluatedConfiguration] = field(default_factory=list)

    store: Optional[object] = None
    """Optional artifact store (``get``/``put``).  Strategies that support
    mid-stage checkpointing (currently ``"nsga2"``) persist their
    per-generation state here under ``<run_id>:scenario-<parameter>``, so a
    run killed *inside* a scenario stage resumes from the last completed
    generation instead of the last completed stage."""

    run_id: str = ""
    """Checkpoint namespace of this run inside :attr:`store` (mirrors the
    pipeline run id)."""

    on_generation: Optional[object] = None
    """Optional callable fired with each freshly computed generation's stats
    dict by generation-aware strategies -- the pipeline's per-stage progress
    callback is too coarse for liveness signals during a long search, so
    service workers renew their job leases here."""

    @classmethod
    def create(
        cls,
        multipliers: Sequence[ApproxComponent],
        adders: Sequence[ApproxComponent],
        config: Optional["AutoAxConfig"] = None,  # noqa: F821
        *,
        images: Optional[Sequence[np.ndarray]] = None,
        cache: Optional[EvalCache] = None,
        engine: Optional[BatchEvaluator] = None,
    ) -> "AutoAxState":
        """Build a state with the same component defaults as the legacy flow.

        The accelerator is resolved from :data:`repro.workloads.WORKLOADS`
        via ``config.workload`` (``"gaussian"`` by default), and the default
        image set is the workload's own seeded input set.
        """
        from .flow import AutoAxConfig

        config = config or AutoAxConfig()
        accelerator = build_workload(config.workload, multipliers, adders)
        if engine is not None and cache is not None and engine.cache is not cache:
            raise ValueError("engine and cache must share one EvalCache; pass one or the other")
        if engine is not None and cache is None:
            cache = engine.cache
        return cls(
            accelerator=accelerator,
            images=(
                list(images)
                if images is not None
                else accelerator.default_inputs(config.image_size)
            ),
            config=config,
            cache=cache if cache is not None else EvalCache(),
            engine=engine,
        )


# --------------------------------------------------------------------- #
# Stages
# --------------------------------------------------------------------- #
class CollectSamplesStage(Stage):
    """Exactly evaluate a random sample of configurations (training set)."""

    name = "collect-samples"

    def compute(self, state: AutoAxState) -> list:
        samples = collect_training_samples(
            state.accelerator,
            state.images,
            state.config.num_training_samples,
            seed=state.config.seed,
            engine=state.engine,
        )
        # TrainingSample exposes the same config/quality/cost surface as an
        # EvaluatedConfiguration, so the payload encodings stay in lockstep.
        return [_evaluated_to_payload(sample) for sample in samples]

    def absorb(self, state: AutoAxState, payload: list) -> None:
        # Feature vectors are a deterministic function of the configuration,
        # so they are recomputed instead of serialised.
        samples: List[TrainingSample] = []
        for raw in payload:
            entry = _evaluated_from_payload(raw, state.accelerator)
            samples.append(
                TrainingSample(
                    config=entry.config,
                    features=configuration_features(state.accelerator, entry.config),
                    quality=entry.quality,
                    cost=entry.cost,
                )
            )
        state.samples = samples


class FitEstimatorsStage(Stage):
    """Fit the shared QoR estimator on the training samples.

    Fitted regressors do not serialise, so this stage is never checkpointed;
    fitting is deterministic given the samples, which keeps resumed runs
    identical to uninterrupted ones.
    """

    name = "fit-estimators"
    checkpoint = False

    def compute(self, state: AutoAxState) -> None:
        return None

    def absorb(self, state: AutoAxState, payload) -> None:
        state.qor_estimator = QorEstimator().fit(state.samples)


class ScenarioStage(Stage):
    """One (FPGA parameter, SSIM) scenario: fit the cost estimator, run the
    configured search strategy and re-evaluate the candidates exactly."""

    def __init__(self, parameter: str, offset: int):
        self.parameter = parameter
        self.offset = offset
        self.name = f"scenario-{parameter}"

    def compute(self, state: AutoAxState) -> dict:
        config = state.config
        hw_estimator = HwCostEstimator(self.parameter).fit(state.samples)
        strategy = SEARCH_STRATEGIES.get(config.search_strategy)
        # Every strategy returns *estimated* candidates; the single exact
        # pass below re-evaluates the survivors -- generation-batched
        # through the state engine when one is attached.  (The nsga2
        # strategy's own ``images``/``engine`` parameters serve direct API
        # users; forwarding them here would duplicate the exact pass.)
        # Checkpoint stores and generation callbacks are threaded only into
        # strategies whose signature accepts them; either way the candidate
        # values are identical (checkpointing never changes the RNG stream).
        supported = inspect.signature(strategy).parameters
        extra: Dict[str, object] = {}
        if state.store is not None and "store" in supported and "run_id" in supported:
            extra["store"] = state.store
            extra["run_id"] = f"{state.run_id}:{self.name}" if state.run_id else self.name
        if state.on_generation is not None and "on_generation" in supported:
            extra["on_generation"] = state.on_generation
        # Multi-fidelity strategies (sh_ehvi) evaluate *exactly* inside the
        # strategy -- their final rung is full fidelity -- so they get the
        # inputs and engine; the exact pass below then costs nothing (pure
        # cache hits on the same axq keys).
        if getattr(strategy, "needs_exact_inputs", False):
            extra["images"] = state.images
            if state.engine is not None and "engine" in supported:
                extra["engine"] = state.engine
        ladder = getattr(config, "fidelity_ladder", None)
        if ladder is not None and "fidelity_ladder" in supported:
            extra["fidelity_ladder"] = tuple(int(f) for f in ladder)
        candidates = strategy(
            state.accelerator,
            state.qor_estimator,
            hw_estimator,
            iterations=config.hill_climb_iterations,
            seed=config.seed + 100 + self.offset,
            cache=state.cache,
            **extra,
        )
        evaluated = exact_reevaluation(
            state.accelerator, state.images, candidates, cache=state.cache, engine=state.engine
        )
        return {"candidates": [_evaluated_to_payload(entry) for entry in evaluated]}

    def absorb(self, state: AutoAxState, payload: dict) -> None:
        from .flow import ScenarioResult

        evaluated = [
            _evaluated_from_payload(entry, state.accelerator) for entry in payload["candidates"]
        ]
        front = ParetoArchive(num_objectives=2, dedupe_keys=False)
        for entry in evaluated:
            front.insert(None, entry.objectives(self.parameter), item=entry)
        state.scenarios[self.parameter] = ScenarioResult(
            parameter=self.parameter,
            candidates=evaluated,
            front=front.items(),
            num_candidates=len(evaluated),
        )


class RandomBaselineStage(Stage):
    """The exactly-evaluated random-search baseline of Fig. 9."""

    name = "random-baseline"

    def compute(self, state: AutoAxState) -> list:
        baseline = random_search(
            state.accelerator,
            state.images,
            state.config.num_random_baseline,
            seed=state.config.seed + 999,
            cache=state.cache,
            engine=state.engine,
        )
        return [_evaluated_to_payload(entry) for entry in baseline]

    def absorb(self, state: AutoAxState, payload: list) -> None:
        state.baseline = [
            _evaluated_from_payload(entry, state.accelerator) for entry in payload
        ]


# --------------------------------------------------------------------- #
# Pipeline assembly
# --------------------------------------------------------------------- #
def autoax_stages(config) -> List[Stage]:
    """The stage sequence of the AutoAx-FPGA case study for one configuration."""
    stages: List[Stage] = [CollectSamplesStage(), FitEstimatorsStage()]
    for offset, parameter in enumerate(config.parameters):
        stages.append(ScenarioStage(parameter, offset))
    stages.append(RandomBaselineStage())
    return stages


def autoax_run_token(state: AutoAxState) -> str:
    """Digest of everything a checkpointed case-study run depends on.

    ``accelerator_token`` covers the component sets *and* the workload's
    structural identity, so checkpoints of one workload can never be
    restored into a study of another.
    """
    return blake_token(
        "autoax",
        accelerator_token(state.accelerator),
        images_token(state.images),
        repr(state.config),
    )


def default_autoax_run_id(workload: str) -> str:
    """Default artifact-store run id of one workload's case study.

    The Gaussian case study keeps its historical id (``session.runs`` keys
    and artifact directories keep their pre-workload names); every other
    workload gets its own namespaced id.  Note that checkpoints written
    before the workload subsystem existed recompute regardless of the id:
    the run manifest token now covers the workload identity (via
    :func:`repro.engine.keys.accelerator_token`), which invalidates
    pre-1.5 checkpoints by design.
    """
    return "autoax-gaussian-filter" if workload == "gaussian" else f"autoax-{workload}"


def build_autoax_result(state: AutoAxState, runtime_s: float) -> "AutoAxResult":  # noqa: F821
    """Assemble the public result object from a fully-run state."""
    from .flow import AutoAxResult

    return AutoAxResult(
        scenarios=state.scenarios,
        baseline=state.baseline,
        design_space_size=state.accelerator.design_space_size,
        runtime_s=runtime_s,
        training_size=len(state.samples),
    )


def run_autoax_pipeline(
    multipliers: Sequence[ApproxComponent],
    adders: Sequence[ApproxComponent],
    config=None,
    *,
    images: Optional[Sequence[np.ndarray]] = None,
    cache: Optional[EvalCache] = None,
    engine: Optional[BatchEvaluator] = None,
    store: Optional[object] = None,
    run_id: Optional[str] = None,
    progress=None,
    on_generation=None,
    resume: bool = True,
) -> Tuple["AutoAxResult", PipelineRun]:  # noqa: F821
    """Run the staged AutoAx-FPGA case study, optionally checkpointing.

    Pass an ``engine`` (sharing its cache with ``cache`` or replacing it) to
    evaluate training samples, baselines and candidate re-evaluations as
    generation batches -- bit-identical results, amortised per-image work
    and optional process-pool fan-out.

    With a ``store``, checkpoints are written at two granularities: the
    pipeline checkpoints every completed stage, and generation-aware
    strategies (``"nsga2"``) additionally checkpoint every completed
    generation inside their scenario stage, so a run killed mid-search loses
    at most one generation.  ``on_generation`` (stats dict per freshly
    computed generation) is forwarded to such strategies.
    """
    state = AutoAxState.create(
        multipliers, adders, config, images=images, cache=cache, engine=engine
    )
    run_id = run_id or default_autoax_run_id(state.config.workload)
    state.store = store
    state.run_id = run_id
    state.on_generation = on_generation
    pipeline = Pipeline(
        autoax_stages(state.config),
        store=store,
        run_id=run_id,
        token=autoax_run_token(state),
        progress=progress,
    )
    started = time.perf_counter()
    run = pipeline.run(state, resume=resume)
    return build_autoax_result(state, time.perf_counter() - started), run
