"""Behavioural model of the Gaussian-filter accelerator.

The accelerator is the paper's AutoAx-FPGA case study: a 3x3 Gaussian filter
whose nine constant-coefficient multiplications and eight accumulation
additions are each bound to one approximate component from the
ApproxFPGAs-produced libraries (8x8 multipliers and 16-bit adders).  The
behavioural model applies the filter to images through the components'
gate-level behavioural models, and the hardware cost of a configuration is
composed from the components' FPGA reports (documented substitution for
re-synthesising the flat accelerator in Vivado).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits import Netlist
from ..error import ErrorEvaluator, ErrorReport
from ..fpga import FpgaReport, FpgaSynthesizer
from ..generators import CircuitLibrary

#: Integer 3x3 Gaussian kernel.  The classic 1-2-1 kernel is scaled by 16 so
#: the coefficients exercise the upper operand bits of the 8x8 multipliers
#: (sum = 256, i.e. an 8-bit right shift at the end), matching how fixed-point
#: filter coefficients are quantised in the AutoAx case study.
GAUSSIAN_KERNEL_3X3: Tuple[Tuple[int, ...], ...] = ((16, 32, 16), (32, 64, 32), (16, 32, 16))
KERNEL_SHIFT = 8

NUM_MULTIPLIER_SLOTS = 9
NUM_ADDER_SLOTS = 8


@dataclass
class ApproxComponent:
    """One approximate arithmetic component available to the accelerator."""

    name: str
    kind: str
    netlist: Netlist
    fpga: FpgaReport
    error: ErrorReport
    _table: Optional[np.ndarray] = None

    @property
    def operand_width(self) -> int:
        return self.netlist.word_width("a")

    def _lookup_table(self) -> np.ndarray:
        """Exhaustive output table (built lazily, only for narrow operands)."""
        if self._table is None:
            self._table = self.netlist.exhaustive_outputs()
        return self._table

    def compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Behaviourally evaluate the component on operand vectors."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        width = self.operand_width
        mask = (1 << width) - 1
        a = a & mask
        b = b & mask
        if width <= 10:
            table = self._lookup_table()
            width_b = self.netlist.word_width("b")
            return table[a * (1 << width_b) + b]
        return self.netlist.evaluate_words({"a": a, "b": b})


@dataclass(frozen=True)
class Configuration:
    """Assignment of components to the accelerator's operator slots."""

    multiplier_indices: Tuple[int, ...]
    adder_indices: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.multiplier_indices) != NUM_MULTIPLIER_SLOTS:
            raise ValueError(f"expected {NUM_MULTIPLIER_SLOTS} multiplier slots")
        if len(self.adder_indices) != NUM_ADDER_SLOTS:
            raise ValueError(f"expected {NUM_ADDER_SLOTS} adder slots")


def build_component(
    netlist: Netlist,
    fpga_synthesizer: FpgaSynthesizer,
    evaluator: ErrorEvaluator,
    fpga_report: Optional[FpgaReport] = None,
    error_report: Optional[ErrorReport] = None,
) -> ApproxComponent:
    """Wrap a netlist into an :class:`ApproxComponent` with costs and error."""
    return ApproxComponent(
        name=netlist.name,
        kind=netlist.kind,
        netlist=netlist,
        fpga=fpga_report or fpga_synthesizer.synthesize(netlist),
        error=error_report or evaluator.evaluate(netlist),
    )


def components_from_library(
    library: CircuitLibrary,
    count: int,
    fpga_synthesizer: Optional[FpgaSynthesizer] = None,
    parameter: str = "area",
    max_error: float = 0.1,
    seed: int = 5,
    engine: Optional["BatchEvaluator"] = None,
) -> List[ApproxComponent]:
    """Pick ``count`` Pareto-spread components from a library.

    The circuits are synthesized, circuits whose MED exceeds ``max_error``
    are discarded (an accelerator built from arbitrarily wrong arithmetic is
    useless, and the paper feeds AutoAx-FPGA only Pareto-optimal components),
    the (error, cost) Pareto front of the remainder is computed and ``count``
    components are taken spread along the front.  If the front is shorter
    than ``count`` the least-error dominated circuits fill in.

    Evaluation is batched through :class:`repro.engine.BatchEvaluator`; pass
    an ``engine`` (e.g. one shared with an ApproxFPGAs flow over the same
    library) to reuse its cached error metrics and FPGA reports.
    """
    from ..core.pareto import pareto_front_indices
    from ..engine import BatchEvaluator

    if engine is None:
        engine = BatchEvaluator(
            library.reference(), fpga_synthesizer=fpga_synthesizer or FpgaSynthesizer()
        )
    elif fpga_synthesizer is not None:
        if engine.fpga_synthesizer is None:
            engine.fpga_synthesizer = fpga_synthesizer
        elif engine.fpga_synthesizer is not fpga_synthesizer:
            raise ValueError(
                "conflicting fpga_synthesizer: the provided engine already has "
                "its own; pass one or the other"
            )
    all_circuits = list(library)
    all_errors = engine.evaluate_errors(all_circuits)
    keep = [i for i, e in enumerate(all_errors) if e.med <= max_error]
    if len(keep) < count:
        # Not enough accurate circuits: fall back to the lowest-error ones.
        keep = sorted(range(len(all_circuits)), key=lambda i: all_errors[i].med)[: max(count, 1)]
    circuits = [all_circuits[i] for i in keep]
    errors = [all_errors[i] for i in keep]
    reports = engine.evaluate_fpga(circuits)

    points = np.column_stack(
        [[e.med for e in errors], [r.parameter(parameter) for r in reports]]
    )
    front = pareto_front_indices(points)
    rng = np.random.default_rng(seed)
    if len(front) >= count:
        chosen = [front[i] for i in np.linspace(0, len(front) - 1, count).round().astype(int)]
        # linspace rounding may duplicate for short fronts; de-duplicate then top up.
        chosen = list(dict.fromkeys(chosen))
    else:
        chosen = list(front)
    remaining = sorted(
        (i for i in range(len(circuits)) if i not in set(chosen)),
        key=lambda i: errors[i].med,
    )
    while len(chosen) < count and remaining:
        chosen.append(remaining.pop(0))

    return [
        ApproxComponent(
            name=circuits[i].name,
            kind=circuits[i].kind,
            netlist=circuits[i],
            fpga=reports[i],
            error=errors[i],
        )
        for i in chosen[:count]
    ]


class GaussianFilterAccelerator:
    """3x3 Gaussian-filter accelerator with configurable approximate operators."""

    def __init__(
        self,
        multipliers: Sequence[ApproxComponent],
        adders: Sequence[ApproxComponent],
    ):
        if not multipliers or not adders:
            raise ValueError("at least one multiplier and one adder component are required")
        for component in multipliers:
            if component.kind != "multiplier":
                raise ValueError(f"component {component.name!r} is not a multiplier")
        for component in adders:
            if component.kind != "adder":
                raise ValueError(f"component {component.name!r} is not an adder")
        self.multipliers = list(multipliers)
        self.adders = list(adders)
        self._kernel_flat = [
            GAUSSIAN_KERNEL_3X3[i][j] for i in range(3) for j in range(3)
        ]

    # ------------------------------------------------------------------ #
    # Configuration handling
    # ------------------------------------------------------------------ #
    @property
    def design_space_size(self) -> int:
        """Number of distinct component assignments."""
        return len(self.multipliers) ** NUM_MULTIPLIER_SLOTS * len(self.adders) ** NUM_ADDER_SLOTS

    def exact_configuration(self) -> Configuration:
        """Configuration using the most accurate available component everywhere."""
        best_multiplier = int(np.argmin([c.error.med for c in self.multipliers]))
        best_adder = int(np.argmin([c.error.med for c in self.adders]))
        return Configuration(
            multiplier_indices=(best_multiplier,) * NUM_MULTIPLIER_SLOTS,
            adder_indices=(best_adder,) * NUM_ADDER_SLOTS,
        )

    def random_configuration(self, rng: np.random.Generator) -> Configuration:
        return Configuration(
            multiplier_indices=tuple(
                int(i) for i in rng.integers(0, len(self.multipliers), NUM_MULTIPLIER_SLOTS)
            ),
            adder_indices=tuple(
                int(i) for i in rng.integers(0, len(self.adders), NUM_ADDER_SLOTS)
            ),
        )

    def mutate_configuration(self, config: Configuration, rng: np.random.Generator) -> Configuration:
        """Change the component of one randomly chosen slot (hill-climbing move)."""
        multiplier_indices = list(config.multiplier_indices)
        adder_indices = list(config.adder_indices)
        if rng.random() < NUM_MULTIPLIER_SLOTS / (NUM_MULTIPLIER_SLOTS + NUM_ADDER_SLOTS):
            slot = int(rng.integers(0, NUM_MULTIPLIER_SLOTS))
            multiplier_indices[slot] = int(rng.integers(0, len(self.multipliers)))
        else:
            slot = int(rng.integers(0, NUM_ADDER_SLOTS))
            adder_indices[slot] = int(rng.integers(0, len(self.adders)))
        return Configuration(tuple(multiplier_indices), tuple(adder_indices))

    # ------------------------------------------------------------------ #
    # Behavioural execution
    # ------------------------------------------------------------------ #
    @staticmethod
    def _shifted_planes(image: np.ndarray) -> List[np.ndarray]:
        """The nine 3x3-neighbourhood planes of the image (reflect padding)."""
        padded = np.pad(image.astype(np.int64), 1, mode="reflect")
        height, width = image.shape
        planes = []
        for dy in range(3):
            for dx in range(3):
                planes.append(padded[dy:dy + height, dx:dx + width])
        return planes

    def _exact_from_planes(self, planes: List[np.ndarray]) -> np.ndarray:
        accumulator = np.zeros_like(planes[0])
        for plane, coefficient in zip(planes, self._kernel_flat):
            accumulator += plane * coefficient
        return np.clip(accumulator >> KERNEL_SHIFT, 0, 255).astype(np.uint8)

    def exact_filter(self, image: np.ndarray) -> np.ndarray:
        """Golden output of the filter with exact integer arithmetic."""
        return self._exact_from_planes(self._shifted_planes(image))

    def apply(self, image: np.ndarray, config: Configuration) -> np.ndarray:
        """Output of the filter when executed with the configured components."""
        image = np.asarray(image)
        if image.ndim != 2:
            raise ValueError("expected a 2-D grayscale image")
        return self._apply_planes(self._shifted_planes(image), config)

    def _apply_planes(self, planes: List[np.ndarray], config: Configuration) -> np.ndarray:
        shape = planes[0].shape

        products: List[np.ndarray] = []
        for slot, (plane, coefficient) in enumerate(zip(planes, self._kernel_flat)):
            multiplier = self.multipliers[config.multiplier_indices[slot]]
            coefficients = np.full(plane.size, coefficient, dtype=np.int64)
            products.append(multiplier.compute(plane.ravel(), coefficients))

        def add(slot: int, left: np.ndarray, right: np.ndarray) -> np.ndarray:
            adder = self.adders[config.adder_indices[slot]]
            return adder.compute(left, right)

        # Balanced accumulation tree: 4 + 2 + 1 internal adders, plus the
        # final addition of the ninth product.
        level_one = [add(i, products[2 * i], products[2 * i + 1]) for i in range(4)]
        level_two = [add(4, level_one[0], level_one[1]), add(5, level_one[2], level_one[3])]
        level_three = add(6, level_two[0], level_two[1])
        total = add(7, level_three, products[8])

        result = np.clip(total >> KERNEL_SHIFT, 0, 255)
        return result.reshape(shape).astype(np.uint8)

    # ------------------------------------------------------------------ #
    # Cost and quality models
    # ------------------------------------------------------------------ #
    def hw_cost(self, config: Configuration) -> Dict[str, float]:
        """Composed FPGA cost of a configuration.

        Area and power add up over the component instances; latency follows
        the critical path through the multiplier stage and the four-level
        accumulation tree.
        """
        multipliers = [self.multipliers[i] for i in config.multiplier_indices]
        adders = [self.adders[i] for i in config.adder_indices]

        area = sum(c.fpga.area_luts for c in multipliers) + sum(c.fpga.area_luts for c in adders)
        power = sum(c.fpga.total_power_mw for c in multipliers) + sum(
            c.fpga.total_power_mw for c in adders
        )

        def adder_latency(slot: int) -> float:
            return adders[slot].fpga.latency_ns

        product_latency = [c.fpga.latency_ns for c in multipliers]
        level_one = [
            max(product_latency[2 * i], product_latency[2 * i + 1]) + adder_latency(i)
            for i in range(4)
        ]
        level_two = [
            max(level_one[0], level_one[1]) + adder_latency(4),
            max(level_one[2], level_one[3]) + adder_latency(5),
        ]
        level_three = max(level_two) + adder_latency(6)
        latency = max(level_three, product_latency[8]) + adder_latency(7)

        return {"area": float(area), "power": float(power), "latency": float(latency)}

    def quality(self, images: Sequence[np.ndarray], config: Configuration) -> float:
        """Mean SSIM of the configured filter against the exact filter."""
        return self.quality_prepared(self.prepare_images(images), config)

    # ------------------------------------------------------------------ #
    # Batched evaluation: shared per-image work across many configurations
    # ------------------------------------------------------------------ #
    def prepare_images(
        self, images: Sequence[np.ndarray]
    ) -> List[Tuple[List[np.ndarray], np.ndarray]]:
        """Precompute the per-image work every configuration shares.

        Returns ``(shifted planes, exact reference output)`` per image.  The
        planes and the golden reference do not depend on the configuration,
        so evaluating a whole population against one prepared image set pays
        for them once instead of once per configuration; results are
        bit-identical to the unprepared path (:meth:`quality` itself runs
        through it).
        """
        prepared = []
        for image in images:
            image = np.asarray(image)
            if image.ndim != 2:
                raise ValueError("expected a 2-D grayscale image")
            planes = self._shifted_planes(image)
            prepared.append((planes, self._exact_from_planes(planes)))
        return prepared

    def quality_prepared(
        self, prepared: Sequence[Tuple[List[np.ndarray], np.ndarray]], config: Configuration
    ) -> float:
        """Mean SSIM of one configuration against a prepared image set."""
        from .quality import ssim

        scores = []
        for planes, reference in prepared:
            approximate = self._apply_planes(planes, config)
            scores.append(ssim(reference, approximate))
        return float(np.mean(scores))

    def evaluate_prepared(
        self, prepared: Sequence[Tuple[List[np.ndarray], np.ndarray]], config: Configuration
    ) -> Tuple[float, Dict[str, float]]:
        """(quality, hw cost) of one configuration against prepared images."""
        return self.quality_prepared(prepared, config), self.hw_cost(config)
