"""Back-compat home of the Gaussian-filter accelerator and its components.

The behavioural model, the component machinery and the kernel constants
now live in the generic workload subsystem (:mod:`repro.workloads`) --
the Gaussian filter is its first registered workload (``"gaussian"``) and
its seeded behaviour is bit-identical to the historical implementation
here.  This module re-exports the public names so existing imports keep
working, and keeps the legacy :class:`Configuration` class whose slot
counts are pinned to the Gaussian datapath (9 multipliers, 8 adders).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workloads import (
    GAUSSIAN_KERNEL_3X3,
    KERNEL_SHIFT,
    NUM_ADDER_SLOTS,
    NUM_MULTIPLIER_SLOTS,
    ApproxComponent,
    GaussianFilterAccelerator,
    SlotConfiguration,
    build_component,
    components_from_library,
)

__all__ = [
    "GAUSSIAN_KERNEL_3X3",
    "KERNEL_SHIFT",
    "NUM_ADDER_SLOTS",
    "NUM_MULTIPLIER_SLOTS",
    "ApproxComponent",
    "Configuration",
    "GaussianFilterAccelerator",
    "build_component",
    "components_from_library",
]


@dataclass(frozen=True, eq=False)
class Configuration(SlotConfiguration):
    """Assignment of components to the Gaussian accelerator's operator slots.

    The legacy, shape-pinned configuration: construction validates the
    historical 9-multiplier / 8-adder slot counts.  Workload-generic code
    uses :class:`repro.workloads.SlotConfiguration` (via
    :meth:`repro.workloads.ApproxAccelerator.make_configuration`), which
    compares equal to this class on the same index tuples.
    """

    def __post_init__(self) -> None:
        if len(self.multiplier_indices) != NUM_MULTIPLIER_SLOTS:
            raise ValueError(f"expected {NUM_MULTIPLIER_SLOTS} multiplier slots")
        if len(self.adder_indices) != NUM_ADDER_SLOTS:
            raise ValueError(f"expected {NUM_ADDER_SLOTS} adder slots")
