"""Persistence and export helpers."""

from .persistence import (
    JsonDirectoryStore,
    ShardedJsonStore,
    export_library,
    export_pareto_rtl,
    library_catalog,
    load_result_summary,
    result_to_dict,
    save_result,
)

__all__ = [
    "JsonDirectoryStore",
    "ShardedJsonStore",
    "export_library",
    "export_pareto_rtl",
    "library_catalog",
    "load_result_summary",
    "result_to_dict",
    "save_result",
]
