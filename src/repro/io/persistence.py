"""Persistence helpers: export libraries and flow results to disk.

The released ApproxFPGAs artefact is a directory of Pareto-optimal FPGA-AC
RTL files plus a catalogue of their measured costs; this module produces the
same kind of artefact from a :class:`~repro.core.results.ApproxFpgasResult`
and can archive/restore the flow's summary data as JSON so downstream
tooling (or a later session) does not have to re-run synthesis.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import uuid
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from ..circuits import to_verilog
from ..core.results import ApproxFpgasResult
from ..generators import CircuitLibrary

PathLike = Union[str, Path]

logger = logging.getLogger("repro.io")


class ShardedJsonStore:
    """A concurrency-safe directory of JSON files acting as a key -> value map.

    This is the shared on-disk backend of the whole system: the
    :class:`repro.engine.EvalCache` disk layer, pipeline checkpoints,
    :meth:`repro.search.ParetoArchive.save` payloads and the
    :mod:`repro.service` job artifacts all ride on it.  Each entry is one
    small JSON file named after a hash of its key, so arbitrary keys (cache
    keys embed colons and hex fingerprints) map to safe file names.  The
    original key is stored inside the file and checked on load, which turns
    the astronomically unlikely hash collision into a miss instead of
    silently returning the wrong payload.

    Concurrency and sharding
    ------------------------
    Writes are atomic: the payload goes to a uniquely named temp file in the
    destination directory and is published with :func:`os.replace`, so a
    concurrent reader sees either the old entry or the new one, never a
    half-written file.  With ``shards > 1`` entries are spread over
    ``shards`` subdirectories by a prefix of the hashed key; because cache
    keys are content-addressed, many worker processes hammering one store
    spread their file creations over the shard directories instead of
    serialising on a single directory inode.  ``shards == 1`` keeps the
    historical flat layout of :class:`JsonDirectoryStore`, so existing warm
    cache directories stay readable.

    The shard count is a *layout* property of the directory: a ``.shards``
    marker is written on first use and a later open with a different count
    raises instead of silently missing every existing entry.

    Corrupt entries (truncated or mangled JSON, e.g. after a power loss)
    count as misses; they are additionally tallied in :attr:`corrupt_count`
    (surfaced as ``CacheStats.corrupt`` when the store backs an
    :class:`~repro.engine.EvalCache`) and logged once per store instance.
    """

    _MARKER = ".shards"

    def __init__(self, directory: PathLike, shards: int = 16):
        if shards < 1:
            raise ValueError("shards must be at least 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.shards = int(shards)
        self.corrupt_count = 0
        self._corrupt_logged = False
        self._check_layout()

    # ------------------------------------------------------------------ #
    def _check_layout(self) -> None:
        """Pin the shard count of the directory via a ``.shards`` marker."""
        marker = self.directory / self._MARKER
        try:
            existing = int(marker.read_text(encoding="utf-8").strip())
        except FileNotFoundError:
            self._atomic_write(marker, str(self.shards))
            return
        except (OSError, ValueError):
            # Unreadable marker: rewrite it with our layout (best effort).
            self._atomic_write(marker, str(self.shards))
            return
        if existing != self.shards:
            raise ValueError(
                f"store at {self.directory} is sharded with shards={existing}; "
                f"opening it with shards={self.shards} would miss every entry"
            )

    @staticmethod
    def _atomic_write(path: Path, text: str) -> None:
        """Publish ``text`` at ``path`` via a unique temp file + rename."""
        temporary = path.parent / f"{path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp"
        try:
            temporary.write_text(text, encoding="utf-8")
            temporary.replace(path)
        finally:
            temporary.unlink(missing_ok=True)

    def _path(self, key: str) -> Path:
        token = hashlib.blake2b(key.encode("utf-8"), digest_size=20).hexdigest()
        if self.shards == 1:
            return self.directory / f"{token}.json"
        shard = int(token[:8], 16) % self.shards
        return self.directory / f"{shard:04x}" / f"{token}.json"

    def _entry_files(self) -> Iterator[Path]:
        if self.shards == 1:
            yield from self.directory.glob("*.json")
        else:
            yield from self.directory.glob("[0-9a-f]*/*.json")

    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional[object]:
        path = self._path(key)
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
        except (FileNotFoundError, OSError):
            return None
        except json.JSONDecodeError:
            self._record_corrupt(path)
            return None
        if not isinstance(entry, dict) or entry.get("key") != key:
            return None
        return entry.get("value")

    def put(self, key: str, value: object) -> None:
        path = self._path(key)
        if self.shards > 1:
            path.parent.mkdir(exist_ok=True)
        # Unique temp name per writer: concurrent processes sharing one cache
        # directory must not clobber each other's half-written files before
        # the atomic rename.
        self._atomic_write(path, json.dumps({"key": key, "value": value}))

    def _record_corrupt(self, path: Path) -> None:
        self.corrupt_count += 1
        if not self._corrupt_logged:
            self._corrupt_logged = True
            logger.warning(
                "corrupt JSON entry at %s treated as a cache miss "
                "(further corrupt entries are counted, not logged)",
                path,
            )

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_files())

    def keys(self) -> Iterator[str]:
        for path in self._entry_files():
            try:
                entry = json.loads(path.read_text(encoding="utf-8"))
            except OSError:
                continue
            except json.JSONDecodeError:
                self._record_corrupt(path)
                continue
            if isinstance(entry, dict) and "key" in entry:
                yield entry["key"]

    def clear(self) -> None:
        for path in self._entry_files():
            path.unlink(missing_ok=True)


class JsonDirectoryStore(ShardedJsonStore):
    """The historical flat (single-directory) JSON store.

    A thin wrapper over :class:`ShardedJsonStore` with ``shards=1``: the
    file layout is unchanged, so cache directories written by earlier
    versions stay readable, and writes gained the sharded store's atomic
    temp-file + :func:`os.replace` publication along the way.
    """

    def __init__(self, directory: PathLike):
        super().__init__(directory, shards=1)


def library_catalog(library: CircuitLibrary) -> Dict[str, object]:
    """JSON-serialisable catalogue of a circuit library (no netlist contents)."""
    return {
        "name": library.name,
        "kind": library.kind,
        "bitwidth": library.bitwidth,
        "size": len(library),
        "families": library.families(),
        "circuits": [
            {
                "name": circuit.name,
                "family": circuit.meta.get("family"),
                "exact": bool(circuit.meta.get("exact", False)),
                "gates": circuit.num_gates,
                "live_gates": circuit.live_gate_count(),
                "depth": circuit.depth(),
            }
            for circuit in library
        ],
    }


def export_library(library: CircuitLibrary, directory: PathLike, rtl: bool = True) -> Path:
    """Write a library catalogue (and optionally per-circuit Verilog) to ``directory``.

    Returns the path of the written ``catalog.json``.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    catalog_path = directory / "catalog.json"
    catalog_path.write_text(json.dumps(library_catalog(library), indent=2), encoding="utf-8")
    if rtl:
        rtl_dir = directory / "rtl"
        rtl_dir.mkdir(exist_ok=True)
        for circuit in library:
            (rtl_dir / f"{circuit.name}.v").write_text(to_verilog(circuit), encoding="utf-8")
    return catalog_path


def result_to_dict(result: ApproxFpgasResult) -> Dict[str, object]:
    """Full JSON-serialisable dump of an ApproxFPGAs flow result."""
    records = {}
    for name, record in result.records.items():
        entry: Dict[str, object] = {
            "error": record.error.metrics.as_dict(),
            "error_method": record.error.method,
            "asic": record.asic.as_dict(),
            "estimated": dict(record.estimated),
        }
        if record.fpga is not None:
            entry["fpga"] = record.fpga.as_dict()
        records[name] = entry

    return {
        "library": result.library_name,
        "kind": result.kind,
        "bitwidth": result.bitwidth,
        "training_names": list(result.training_names),
        "validation_names": list(result.validation_names),
        "exploration_cost": result.exploration_cost.as_dict(),
        "fidelity": result.fidelity_table(),
        "model_evaluations": [
            {
                "model_id": evaluation.model_id,
                "parameter": evaluation.parameter,
                "fidelity": evaluation.fidelity,
                "pearson": evaluation.pearson,
                "r2": evaluation.r2,
                "train_time_s": evaluation.train_time_s,
            }
            for evaluation in result.model_evaluations
        ],
        "parameters": {
            parameter: {
                "top_models": list(outcome.top_models),
                "candidates": list(outcome.candidate_names),
                "final_front": list(outcome.final_front_names),
                "true_front": list(outcome.true_front_names),
                "coverage": outcome.coverage,
            }
            for parameter, outcome in result.parameter_outcomes.items()
        },
        "records": records,
    }


def save_result(result: ApproxFpgasResult, path: PathLike) -> Path:
    """Serialise a flow result to a JSON file and return its path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result_to_dict(result), indent=2), encoding="utf-8")
    return path


def load_result_summary(path: PathLike) -> Dict[str, object]:
    """Load a previously saved flow-result JSON (as plain dictionaries)."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def export_pareto_rtl(
    result: ApproxFpgasResult,
    library: CircuitLibrary,
    directory: PathLike,
    parameter: str = "area",
    limit: Optional[int] = None,
) -> List[Path]:
    """Export the RTL of the final Pareto-optimal FPGA-ACs for one parameter.

    This mirrors the open-source FPGA-AC release of the paper: one Verilog
    file per Pareto-optimal circuit, named after the circuit.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    outcome = result.parameter_outcomes[parameter]
    names = outcome.final_front_names[:limit] if limit else outcome.final_front_names
    written: List[Path] = []
    for name in names:
        path = directory / f"{name}.v"
        path.write_text(to_verilog(library.get(name)), encoding="utf-8")
        written.append(path)
    return written
