"""ApproxFPGAs reproduction: ML-driven design-space exploration of ASIC-based
approximate arithmetic components for FPGA-based systems (DAC 2020).

The package is organised as the paper's system diagram (Fig. 2):

* :mod:`repro.circuits` -- gate-level netlist IR and simulation,
* :mod:`repro.generators` -- the approximate-circuit library (EvoApproxLib substitute),
* :mod:`repro.error` -- error metrics (MED, WCE, ...),
* :mod:`repro.asic` / :mod:`repro.fpga` -- the two synthesis substrates,
* :mod:`repro.features` / :mod:`repro.ml` -- feature extraction and the Table I model zoo,
* :mod:`repro.core` -- fidelity, Pareto machinery and the end-to-end flow,
* :mod:`repro.engine` -- the parallel cached evaluation engine (see below),
* :mod:`repro.autoax` -- the AutoAx-FPGA Gaussian-filter case study.

Evaluation engine
-----------------
The exploration hot path -- evaluating the error metrics and the ASIC/FPGA
cost models of whole circuit libraries -- is served by :mod:`repro.engine`:

* :meth:`repro.circuits.Netlist.fingerprint` gives every circuit a stable
  structural content hash (names and metadata excluded), so structurally
  identical circuits share one identity;
* :class:`repro.engine.EvalCache` is a two-layer cache over those
  fingerprints: an in-memory LRU plus an optional on-disk JSON backend
  (:class:`repro.io.JsonDirectoryStore`) that persists results across
  sessions;
* :class:`repro.engine.BatchEvaluator` evaluates whole libraries at once --
  operands and reference outputs are computed once and shared, each circuit
  costs a single vectorised simulation pass, and large miss sets can fan out
  over a :class:`~concurrent.futures.ProcessPoolExecutor` -- while staying
  bit-identical to the serial per-circuit path.

:class:`~repro.core.ApproxFpgasFlow`, the AutoAx-FPGA search strategies and
:func:`repro.autoax.components_from_library` all route their evaluations
through one engine, so cache hits are shared across every stage of a flow
(and across flows, when an explicit cache is passed).
"""

from .core import ApproxFpgasConfig, ApproxFpgasFlow, run_approxfpgas
from .engine import BatchEvaluator, EvalCache
from .generators import CircuitLibrary, build_adder_library, build_multiplier_library

__version__ = "1.1.0"

__all__ = [
    "ApproxFpgasConfig",
    "ApproxFpgasFlow",
    "run_approxfpgas",
    "BatchEvaluator",
    "EvalCache",
    "CircuitLibrary",
    "build_adder_library",
    "build_multiplier_library",
    "__version__",
]
