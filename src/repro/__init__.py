"""ApproxFPGAs reproduction: ML-driven design-space exploration of ASIC-based
approximate arithmetic components for FPGA-based systems (DAC 2020).

The package is organised as the paper's system diagram (Fig. 2):

* :mod:`repro.circuits` -- gate-level netlist IR and simulation,
* :mod:`repro.generators` -- the approximate-circuit library (EvoApproxLib substitute),
* :mod:`repro.error` -- error metrics (MED, WCE, ...),
* :mod:`repro.asic` / :mod:`repro.fpga` -- the two synthesis substrates,
* :mod:`repro.features` / :mod:`repro.ml` -- feature extraction and the Table I model zoo,
* :mod:`repro.core` -- fidelity, Pareto machinery and the end-to-end flow,
* :mod:`repro.engine` -- the parallel cached evaluation engine (see below),
* :mod:`repro.search` -- the shared Pareto archive, the generic
  resumable NSGA-II population search, and
  :mod:`repro.search.multifidelity`: EHVI acquisition over predictive
  uncertainty plus a resumable successive-halving loop over an explicit
  fidelity ladder (registered as ``SEARCH_STRATEGIES["sh_ehvi"]``; engine
  cache keys are namespaced per fidelity rung, so cheap screens never
  alias exhaustive results),
* :mod:`repro.workloads` -- pluggable accelerator workloads (the
  ``WORKLOADS`` registry, the ``ApproxAccelerator`` protocol, quality
  metrics and seeded input sets),
* :mod:`repro.api` -- the public session / pipeline / registry API (see below),
* :mod:`repro.autoax` -- the AutoAx-FPGA case study machinery
  (estimators, search strategies, staged flow) over those workloads,
* :mod:`repro.service` -- exploration as a service: an async job layer
  (``JobClient`` / ``JobRegistry`` / ``Worker``,
  ``python -m repro.service.worker``) where every worker shares one
  sharded content-addressed cache (:class:`repro.io.ShardedJsonStore`),
  jobs are claimed through heartbeated lease files, and a job reclaimed
  from a dead worker resumes from its pipeline/NSGA-II checkpoints
  bit-identically.

Public API
----------
New code should drive the flows through :mod:`repro.api`:

* :class:`repro.api.ExplorationSession` owns the evaluation cache and
  engines, the synthesis substrates, RNG seeding and an artifact store
  shared across ApproxFPGAs and AutoAx runs.  ``session.run_approxfpgas``
  and ``session.run_autoax`` execute the flows as named stage pipelines
  with per-stage timing and progress callbacks; with a ``workspace``
  directory attached, every completed stage is checkpointed and an
  interrupted run resumes from the last completed stage.
* :class:`repro.api.Pipeline` / :class:`repro.api.Stage` are the underlying
  staged-flow machinery (stage decompositions live in
  :mod:`repro.core.stages` and :mod:`repro.autoax.stages`).
* The plugin registries -- :data:`repro.ml.MODELS`,
  :data:`repro.error.ERROR_METRICS`, :data:`repro.api.SYNTHESIZERS`,
  :data:`repro.workloads.WORKLOADS`,
  :data:`repro.workloads.QUALITY_METRICS` and
  :data:`repro.autoax.SEARCH_STRATEGIES` -- are string-keyed extension
  points; new models, error metrics, substrates, accelerator workloads,
  quality metrics and search strategies plug in by registering a key
  instead of editing flow internals.  Unknown keys raise
  :class:`repro.registry.RegistryError` listing the available keys.

The historical entry points (:class:`repro.core.ApproxFpgasFlow`,
:func:`repro.core.run_approxfpgas`, :class:`repro.autoax.AutoAxFpgaFlow`)
remain supported as thin wrappers over the same stages; their seeded
results are bit-identical to the original monolithic flows.

Evaluation engine
-----------------
The exploration hot path -- evaluating the error metrics and the ASIC/FPGA
cost models of whole circuit libraries -- is served by :mod:`repro.engine`:

* :meth:`repro.circuits.Netlist.fingerprint` gives every circuit a stable
  structural content hash (names and metadata excluded), so structurally
  identical circuits share one identity;
* :class:`repro.engine.EvalCache` is a two-layer cache over those
  fingerprints: an in-memory LRU plus an optional on-disk JSON backend
  (:class:`repro.io.JsonDirectoryStore`) that persists results across
  sessions;
* :class:`repro.engine.BatchEvaluator` evaluates whole libraries at once --
  operands and reference outputs are computed once and shared, each circuit
  costs a single vectorised simulation pass, and large miss sets can fan out
  over a :class:`~concurrent.futures.ProcessPoolExecutor` -- while staying
  bit-identical to the serial per-circuit path.

All flows route their evaluations through one engine, so cache hits are
shared across every stage of a flow -- and across flows, when runs share an
:class:`repro.api.ExplorationSession`.

Simulation backends
-------------------
Behavioural simulation itself is pluggable through the
:data:`repro.circuits.SIM_BACKENDS` registry: ``"bool"`` is the original
one-byte-per-pattern implementation, ``"bitplane"``
(:mod:`repro.circuits.bitplane`) packs 64 patterns into each ``uint64``
lane for a several-fold speedup on large pattern counts, and ``"compiled"``
(:mod:`repro.circuits.compiled`) lowers each netlist once into a levelized
op tape over packed bit planes -- cached per structural fingerprint and
executed by a cache-tiled native interpreter where a C compiler is
available (NumPy fallback otherwise) -- for another order of magnitude on
Monte-Carlo workloads.  Backends are
bit-identical by contract -- enforced by the differential suite
(``pytest -m sim_backends``) -- so evaluators default to ``"auto"``
workload-size selection and cached results are shared across backends.
For operand widths whose pattern sets are too large for one allocation,
:class:`repro.error.ErrorAccumulator` accumulates MED/WCE/error-rate over
streamed pattern blocks (``ErrorEvaluator(..., chunk_patterns=...)``),
keeping peak memory flat.
"""

from .api import (
    ERROR_METRICS,
    MODELS,
    SYNTHESIZERS,
    ExplorationSession,
    Pipeline,
    PipelineRun,
    Registry,
    RegistryError,
    Stage,
    StageEvent,
)
from .autoax.search import SEARCH_STRATEGIES
from .core import ApproxFpgasConfig, ApproxFpgasFlow, run_approxfpgas
from .engine import BatchEvaluator, EvalCache
from .generators import CircuitLibrary, build_adder_library, build_multiplier_library

__version__ = "1.9.0"

__all__ = [
    "ApproxFpgasConfig",
    "ApproxFpgasFlow",
    "run_approxfpgas",
    "ExplorationSession",
    "Pipeline",
    "PipelineRun",
    "Stage",
    "StageEvent",
    "Registry",
    "RegistryError",
    "MODELS",
    "ERROR_METRICS",
    "SYNTHESIZERS",
    "SEARCH_STRATEGIES",
    "BatchEvaluator",
    "EvalCache",
    "CircuitLibrary",
    "build_adder_library",
    "build_multiplier_library",
    "__version__",
]
