"""ApproxFPGAs reproduction: ML-driven design-space exploration of ASIC-based
approximate arithmetic components for FPGA-based systems (DAC 2020).

The package is organised as the paper's system diagram (Fig. 2):

* :mod:`repro.circuits` -- gate-level netlist IR and simulation,
* :mod:`repro.generators` -- the approximate-circuit library (EvoApproxLib substitute),
* :mod:`repro.error` -- error metrics (MED, WCE, ...),
* :mod:`repro.asic` / :mod:`repro.fpga` -- the two synthesis substrates,
* :mod:`repro.features` / :mod:`repro.ml` -- feature extraction and the Table I model zoo,
* :mod:`repro.core` -- fidelity, Pareto machinery and the end-to-end flow,
* :mod:`repro.autoax` -- the AutoAx-FPGA Gaussian-filter case study.
"""

from .core import ApproxFpgasConfig, ApproxFpgasFlow, run_approxfpgas
from .generators import CircuitLibrary, build_adder_library, build_multiplier_library

__version__ = "1.0.0"

__all__ = [
    "ApproxFpgasConfig",
    "ApproxFpgasFlow",
    "run_approxfpgas",
    "CircuitLibrary",
    "build_adder_library",
    "build_multiplier_library",
    "__version__",
]
