"""Error metrics for approximate arithmetic circuits.

The headline metric of the paper is the Mean Error Distance (MED), defined
there as "the average of the absolute error difference across all the input
combinations relative to the maximum number of outputs", i.e. the mean
absolute error normalised by the maximum representable output value.  The
other metrics are the standard companions used throughout the approximate
computing literature and by AutoAx.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..registry import Registry


def _as_output_words(values: np.ndarray) -> np.ndarray:
    """Validate and convert an output-word vector to ``int64``.

    Mirrors the operand validation of
    :func:`repro.circuits.simulate.words_to_bits`: floating-point vectors
    would truncate silently, so they are rejected.
    """
    array = np.asarray(values)
    if array.size and array.dtype != np.bool_ and (
        array.dtype == object or not np.issubdtype(array.dtype, np.integer)
    ):
        # Empty vectors are exempt (np.array([]) defaults to float64 and
        # nothing can truncate); the size checks downstream reject them.
        raise TypeError(
            f"output values must be integers, got dtype {array.dtype} "
            "(floating-point outputs would be truncated silently)"
        )
    return array.astype(np.int64, copy=False)


@dataclass(frozen=True)
class ErrorMetrics:
    """Error statistics of an approximate circuit against its golden reference."""

    med: float
    """Mean error distance: mean(|approx - exact|) / max_output."""

    mae: float
    """Mean absolute error (unnormalised)."""

    wce: float
    """Worst-case absolute error."""

    wce_relative: float
    """Worst-case absolute error normalised by the maximum output value."""

    mre: float
    """Mean relative error, with |exact| clamped to 1 to avoid division by zero."""

    error_probability: float
    """Fraction of input patterns on which the outputs differ."""

    mse: float
    """Mean squared error (unnormalised)."""

    def as_dict(self) -> Dict[str, float]:
        return {
            "med": self.med,
            "mae": self.mae,
            "wce": self.wce,
            "wce_relative": self.wce_relative,
            "mre": self.mre,
            "error_probability": self.error_probability,
            "mse": self.mse,
        }


def compute_error_metrics(
    exact_outputs: np.ndarray,
    approx_outputs: np.ndarray,
    max_output: int,
) -> ErrorMetrics:
    """Compute all error metrics from paired exact/approximate output vectors.

    Parameters
    ----------
    exact_outputs, approx_outputs:
        Integer output words of the reference and the approximate circuit for
        the same input patterns.
    max_output:
        Maximum representable value of the output word, used for the
        normalised metrics (MED, relative WCE).
    """
    exact_outputs = _as_output_words(exact_outputs)
    approx_outputs = _as_output_words(approx_outputs)
    if exact_outputs.shape != approx_outputs.shape:
        raise ValueError("exact and approximate output vectors must have the same shape")
    if exact_outputs.size == 0:
        raise ValueError("cannot compute error metrics on an empty output vector")
    if max_output <= 0:
        raise ValueError("max_output must be positive")

    difference = np.abs(approx_outputs - exact_outputs).astype(np.float64)
    mae = float(difference.mean())
    wce = float(difference.max())
    denominator = np.maximum(np.abs(exact_outputs).astype(np.float64), 1.0)
    mre = float((difference / denominator).mean())
    error_probability = float((difference > 0).mean())
    mse = float((difference ** 2).mean())
    return ErrorMetrics(
        med=mae / float(max_output),
        mae=mae,
        wce=wce,
        wce_relative=wce / float(max_output),
        mre=mre,
        error_probability=error_probability,
        mse=mse,
    )


def mean_error_distance(
    exact_outputs: np.ndarray, approx_outputs: np.ndarray, max_output: int
) -> float:
    """Shorthand for only the paper's MED metric."""
    return compute_error_metrics(exact_outputs, approx_outputs, max_output).med


class ErrorAccumulator:
    """Incremental :class:`ErrorMetrics` over a stream of output blocks.

    Feed paired exact/approximate output chunks through :meth:`update` and
    finalize with :meth:`result`; peak memory is bounded by the largest
    chunk, so exhaustive or Monte-Carlo evaluation of wide operands can
    stream fixed-size pattern blocks instead of materialising every output
    at once.

    Accumulation is partition-invariant: splitting a stream into blocks of
    any sizes yields the same metrics as a single :func:`compute_error_metrics`
    call on the concatenated vectors.  The count-based metrics (``med``,
    ``mae``, ``wce``, ``wce_relative``, ``error_probability``) are exact --
    the absolute-error sums are carried as arbitrary-precision integers --
    and ``mse``/``mre`` match the one-shot values exactly whenever their
    float64 partial sums stay integer-representable (always true for the
    operand widths in this project; ``mre`` sums quotients, so it matches to
    within last-ulp accumulation order).
    """

    def __init__(self, max_output: int):
        if max_output <= 0:
            raise ValueError("max_output must be positive")
        self.max_output = int(max_output)
        self._count = 0
        self._abs_sum = 0
        self._max_abs = 0
        self._num_wrong = 0
        self._sq_sum = 0.0
        self._rel_sum = 0.0

    @property
    def count(self) -> int:
        """Patterns accumulated so far."""
        return self._count

    def update(self, exact_outputs: np.ndarray, approx_outputs: np.ndarray) -> "ErrorAccumulator":
        """Fold one block of paired outputs into the running metrics.

        Empty blocks are no-ops; mismatched shapes or non-integer dtypes
        raise.  Returns ``self`` for chaining.
        """
        exact_outputs = _as_output_words(exact_outputs)
        approx_outputs = _as_output_words(approx_outputs)
        if exact_outputs.shape != approx_outputs.shape:
            raise ValueError("exact and approximate output vectors must have the same shape")
        if exact_outputs.size == 0:
            return self

        difference = np.abs(approx_outputs - exact_outputs)
        self._count += int(difference.size)
        self._abs_sum += int(difference.sum(dtype=np.int64))
        self._max_abs = max(self._max_abs, int(difference.max()))
        self._num_wrong += int(np.count_nonzero(difference))
        float_difference = difference.astype(np.float64)
        self._sq_sum += float(np.sum(float_difference ** 2))
        denominator = np.maximum(np.abs(exact_outputs).astype(np.float64), 1.0)
        self._rel_sum += float(np.sum(float_difference / denominator))
        return self

    def merge(self, other: "ErrorAccumulator") -> "ErrorAccumulator":
        """Fold another accumulator (e.g. from a parallel worker) into this one."""
        if other.max_output != self.max_output:
            raise ValueError(
                f"cannot merge accumulators with different max_output "
                f"({self.max_output} vs {other.max_output})"
            )
        self._count += other._count
        self._abs_sum += other._abs_sum
        self._max_abs = max(self._max_abs, other._max_abs)
        self._num_wrong += other._num_wrong
        self._sq_sum += other._sq_sum
        self._rel_sum += other._rel_sum
        return self

    def result(self) -> ErrorMetrics:
        """The metrics of everything accumulated so far."""
        if self._count == 0:
            raise ValueError("cannot compute error metrics on an empty output vector")
        mae = self._abs_sum / self._count
        wce = float(self._max_abs)
        return ErrorMetrics(
            med=mae / self.max_output,
            mae=mae,
            wce=wce,
            wce_relative=wce / self.max_output,
            mre=self._rel_sum / self._count,
            error_probability=self._num_wrong / self._count,
            mse=self._sq_sum / self._count,
        )


#: Registry of error-metric extractors: key -> ``ErrorMetrics -> float``.
#: The ApproxFPGAs flow resolves ``ApproxFpgasConfig.error_metric`` here, so
#: custom metrics plug in by registering an extractor instead of editing the
#: flow.  The built-in keys mirror the :class:`ErrorMetrics` fields.
ERROR_METRICS = Registry(
    "error metric",
    {name: operator.attrgetter(name) for name in ErrorMetrics.__dataclass_fields__},
)
