"""Error metrics for approximate arithmetic circuits.

The headline metric of the paper is the Mean Error Distance (MED), defined
there as "the average of the absolute error difference across all the input
combinations relative to the maximum number of outputs", i.e. the mean
absolute error normalised by the maximum representable output value.  The
other metrics are the standard companions used throughout the approximate
computing literature and by AutoAx.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..registry import Registry


@dataclass(frozen=True)
class ErrorMetrics:
    """Error statistics of an approximate circuit against its golden reference."""

    med: float
    """Mean error distance: mean(|approx - exact|) / max_output."""

    mae: float
    """Mean absolute error (unnormalised)."""

    wce: float
    """Worst-case absolute error."""

    wce_relative: float
    """Worst-case absolute error normalised by the maximum output value."""

    mre: float
    """Mean relative error, with |exact| clamped to 1 to avoid division by zero."""

    error_probability: float
    """Fraction of input patterns on which the outputs differ."""

    mse: float
    """Mean squared error (unnormalised)."""

    def as_dict(self) -> Dict[str, float]:
        return {
            "med": self.med,
            "mae": self.mae,
            "wce": self.wce,
            "wce_relative": self.wce_relative,
            "mre": self.mre,
            "error_probability": self.error_probability,
            "mse": self.mse,
        }


def compute_error_metrics(
    exact_outputs: np.ndarray,
    approx_outputs: np.ndarray,
    max_output: int,
) -> ErrorMetrics:
    """Compute all error metrics from paired exact/approximate output vectors.

    Parameters
    ----------
    exact_outputs, approx_outputs:
        Integer output words of the reference and the approximate circuit for
        the same input patterns.
    max_output:
        Maximum representable value of the output word, used for the
        normalised metrics (MED, relative WCE).
    """
    exact_outputs = np.asarray(exact_outputs, dtype=np.int64)
    approx_outputs = np.asarray(approx_outputs, dtype=np.int64)
    if exact_outputs.shape != approx_outputs.shape:
        raise ValueError("exact and approximate output vectors must have the same shape")
    if exact_outputs.size == 0:
        raise ValueError("cannot compute error metrics on an empty output vector")
    if max_output <= 0:
        raise ValueError("max_output must be positive")

    difference = np.abs(approx_outputs - exact_outputs).astype(np.float64)
    mae = float(difference.mean())
    wce = float(difference.max())
    denominator = np.maximum(np.abs(exact_outputs).astype(np.float64), 1.0)
    mre = float((difference / denominator).mean())
    error_probability = float((difference > 0).mean())
    mse = float((difference ** 2).mean())
    return ErrorMetrics(
        med=mae / float(max_output),
        mae=mae,
        wce=wce,
        wce_relative=wce / float(max_output),
        mre=mre,
        error_probability=error_probability,
        mse=mse,
    )


def mean_error_distance(
    exact_outputs: np.ndarray, approx_outputs: np.ndarray, max_output: int
) -> float:
    """Shorthand for only the paper's MED metric."""
    return compute_error_metrics(exact_outputs, approx_outputs, max_output).med


#: Registry of error-metric extractors: key -> ``ErrorMetrics -> float``.
#: The ApproxFPGAs flow resolves ``ApproxFpgasConfig.error_metric`` here, so
#: custom metrics plug in by registering an extractor instead of editing the
#: flow.  The built-in keys mirror the :class:`ErrorMetrics` fields.
ERROR_METRICS = Registry(
    "error metric",
    {name: operator.attrgetter(name) for name in ErrorMetrics.__dataclass_fields__},
)
