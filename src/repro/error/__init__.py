"""Error metrics and evaluation engines for approximate circuits."""

from .metrics import (
    ERROR_METRICS,
    ErrorAccumulator,
    ErrorMetrics,
    compute_error_metrics,
    mean_error_distance,
)
from .evaluation import ErrorEvaluator, ErrorReport, evaluate_error

__all__ = [
    "ERROR_METRICS",
    "ErrorAccumulator",
    "ErrorMetrics",
    "compute_error_metrics",
    "mean_error_distance",
    "ErrorEvaluator",
    "ErrorReport",
    "evaluate_error",
]
