"""Error evaluation engines.

Small circuits (up to ~20 input bits) are evaluated exhaustively, exactly as
the paper does for 8-bit operands.  Larger circuits (12x12 and 16x16
multipliers would need 2^24 and 2^32 patterns) are evaluated with a seeded
Monte-Carlo sample, which is the standard practice when exhaustive
enumeration is infeasible.

Simulation runs on a pluggable backend (see
:data:`repro.circuits.SIM_BACKENDS`): the default ``"auto"`` selection uses
the packed bit-plane backend on large pattern counts and the boolean
backend on small ones; all backends are bit-identical, so the choice only
affects speed.  For wide operands, ``chunk_patterns`` streams the
evaluation over fixed-size pattern blocks through an
:class:`~repro.error.metrics.ErrorAccumulator`, keeping peak memory flat
regardless of the pattern count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from ..circuits import Netlist
from ..circuits.simulate import (
    exhaustive_operands,
    random_operands,
    simulate_words,
    validate_sim_backend,
)
from .metrics import ErrorAccumulator, ErrorMetrics, compute_error_metrics


@dataclass(frozen=True)
class ErrorReport:
    """Error metrics plus provenance of how they were measured."""

    circuit_name: str
    metrics: ErrorMetrics
    num_patterns: int
    method: str
    """Either ``"exhaustive"`` or ``"monte_carlo"``."""

    @property
    def med(self) -> float:
        return self.metrics.med


class ErrorEvaluator:
    """Evaluates approximate circuits against a golden reference.

    Parameters
    ----------
    reference:
        The exact circuit defining correct behaviour.  Its input words must
        match (names and widths) those of every evaluated circuit.
    max_exhaustive_inputs:
        Exhaustive enumeration is used when the total input width does not
        exceed this limit; otherwise Monte-Carlo sampling is used.
    num_samples:
        Sample count for Monte-Carlo evaluation.
    seed:
        Seed for the Monte-Carlo operand generator (the same operands are
        reused for every circuit so results are comparable).
    sim_backend:
        Simulation backend key (``"bool"``, ``"bitplane"``, ``"compiled"``)
        or ``"auto"`` (the default: pick by pattern count).  Backends are
        bit-identical; this knob only affects speed.
    chunk_patterns:
        When set, simulation and metric computation stream over pattern
        blocks of at most this size (via :class:`ErrorAccumulator`), so
        peak memory is bounded by the block size instead of the full
        pattern count.  ``None`` (the default) evaluates in one shot.
    fidelity:
        Explicit pattern-budget rung for multi-fidelity search ladders.
        ``None`` (the default) keeps the standard behaviour above.  A
        positive integer caps the evaluation at that many patterns: if the
        budget covers the full exhaustive sweep (``2^num_inputs <=
        fidelity`` within ``max_exhaustive_inputs``) the rung *is* exact
        evaluation; otherwise the circuit is evaluated on a seeded
        Monte-Carlo sample of exactly ``fidelity`` patterns, even when it
        is small enough for exhaustive enumeration.  The method/pattern
        count are part of the engine's cache context, so a low-fidelity
        screen can never alias an exact result.
    """

    def __init__(
        self,
        reference: Netlist,
        max_exhaustive_inputs: int = 18,
        num_samples: int = 8192,
        seed: int = 1234,
        sim_backend: str = "auto",
        chunk_patterns: Optional[int] = None,
        fidelity: Optional[int] = None,
    ):
        if chunk_patterns is not None and chunk_patterns <= 0:
            raise ValueError("chunk_patterns must be positive (or None for one-shot)")
        if fidelity is not None and int(fidelity) < 1:
            raise ValueError("fidelity must be a positive pattern budget (or None)")
        validate_sim_backend(sim_backend)  # fail fast on unknown keys
        self.reference = reference
        self.max_exhaustive_inputs = max_exhaustive_inputs
        self.num_samples = num_samples
        self.seed = seed
        self.sim_backend = sim_backend
        self.chunk_patterns = chunk_patterns
        self.fidelity = None if fidelity is None else int(fidelity)

        exhaustive_ok = reference.num_inputs <= max_exhaustive_inputs
        if self.fidelity is not None:
            budget_covers_exact = (
                exhaustive_ok
                and reference.num_inputs < 63
                and (1 << reference.num_inputs) <= self.fidelity
            )
            if budget_covers_exact:
                self._operands = exhaustive_operands(reference)
                self._method = "exhaustive"
            else:
                rng = np.random.default_rng(seed)
                self._operands = random_operands(reference, self.fidelity, rng)
                self._method = "monte_carlo"
        elif exhaustive_ok:
            self._operands = exhaustive_operands(reference)
            self._method = "exhaustive"
        else:
            rng = np.random.default_rng(seed)
            self._operands = random_operands(reference, num_samples, rng)
            self._method = "monte_carlo"
        self._num_patterns = int(len(next(iter(self._operands.values()))))
        self._max_output = (1 << reference.num_outputs) - 1
        self._exact_outputs = self._simulate(reference)

    # ------------------------------------------------------------------ #
    @property
    def streaming(self) -> bool:
        """Whether evaluation actually streams over pattern blocks.

        A ``chunk_patterns`` at or above the pattern count degenerates to
        the one-shot path (and produces literally the same computation), so
        it does not count as streaming -- the engine keys its cache off this
        property.
        """
        return self.chunk_patterns is not None and self.chunk_patterns < self._num_patterns

    def _blocks(self) -> Iterator[Tuple[int, int]]:
        """(start, stop) pattern ranges of at most ``chunk_patterns`` each."""
        step = self.chunk_patterns or self._num_patterns
        for start in range(0, self._num_patterns, step):
            yield start, min(start + step, self._num_patterns)

    def _simulate(self, circuit: Netlist) -> np.ndarray:
        """Output word on the shared operands, chunked when configured."""
        if not self.streaming:
            return simulate_words(circuit, self._operands, backend=self.sim_backend)
        return np.concatenate(
            [
                simulate_words(
                    circuit,
                    {name: values[start:stop] for name, values in self._operands.items()},
                    backend=self.sim_backend,
                )
                for start, stop in self._blocks()
            ]
        )

    @property
    def method(self) -> str:
        return self._method

    @property
    def num_patterns(self) -> int:
        return int(len(self._exact_outputs))

    @property
    def operands(self):
        """The shared operand vectors every circuit is evaluated on."""
        return self._operands

    @property
    def exact_outputs(self) -> np.ndarray:
        """Reference output word for the shared operands."""
        return self._exact_outputs

    @property
    def max_output(self) -> int:
        """Maximum representable output value (normalises MED / relative WCE)."""
        return self._max_output

    def check_interface(self, circuit: Netlist) -> None:
        """Validate that ``circuit`` has the reference's word-level interface."""
        self._check_interface(circuit)

    def _check_interface(self, circuit: Netlist) -> None:
        if set(circuit.input_words) != set(self.reference.input_words):
            raise ValueError(
                f"circuit {circuit.name!r} input words {sorted(circuit.input_words)} do not "
                f"match the reference {sorted(self.reference.input_words)}"
            )
        for name, bits in circuit.input_words.items():
            if len(bits) != len(self.reference.input_words[name]):
                raise ValueError(
                    f"circuit {circuit.name!r} word {name!r} is {len(bits)} bits wide, "
                    f"reference expects {len(self.reference.input_words[name])}"
                )

    def evaluate(self, circuit: Netlist) -> ErrorReport:
        """Error metrics of ``circuit`` against the reference."""
        self._check_interface(circuit)
        if not self.streaming:
            approx_outputs = simulate_words(circuit, self._operands, backend=self.sim_backend)
            metrics = compute_error_metrics(
                self._exact_outputs, approx_outputs, self._max_output
            )
        else:
            accumulator = ErrorAccumulator(self._max_output)
            for start, stop in self._blocks():
                block = {name: values[start:stop] for name, values in self._operands.items()}
                approx_block = simulate_words(circuit, block, backend=self.sim_backend)
                accumulator.update(self._exact_outputs[start:stop], approx_block)
            metrics = accumulator.result()
        return ErrorReport(
            circuit_name=circuit.name,
            metrics=metrics,
            num_patterns=self.num_patterns,
            method=self._method,
        )


def evaluate_error(
    circuit: Netlist,
    reference: Netlist,
    max_exhaustive_inputs: int = 18,
    num_samples: int = 8192,
    seed: int = 1234,
    sim_backend: str = "auto",
    chunk_patterns: Optional[int] = None,
    fidelity: Optional[int] = None,
) -> ErrorReport:
    """One-shot convenience wrapper around :class:`ErrorEvaluator`."""
    evaluator = ErrorEvaluator(
        reference,
        max_exhaustive_inputs=max_exhaustive_inputs,
        num_samples=num_samples,
        seed=seed,
        sim_backend=sim_backend,
        chunk_patterns=chunk_patterns,
        fidelity=fidelity,
    )
    return evaluator.evaluate(circuit)
