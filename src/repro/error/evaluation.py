"""Error evaluation engines.

Small circuits (up to ~20 input bits) are evaluated exhaustively, exactly as
the paper does for 8-bit operands.  Larger circuits (12x12 and 16x16
multipliers would need 2^24 and 2^32 patterns) are evaluated with a seeded
Monte-Carlo sample, which is the standard practice when exhaustive
enumeration is infeasible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuits import Netlist
from ..circuits.simulate import exhaustive_operands, random_operands, simulate_words
from .metrics import ErrorMetrics, compute_error_metrics


@dataclass(frozen=True)
class ErrorReport:
    """Error metrics plus provenance of how they were measured."""

    circuit_name: str
    metrics: ErrorMetrics
    num_patterns: int
    method: str
    """Either ``"exhaustive"`` or ``"monte_carlo"``."""

    @property
    def med(self) -> float:
        return self.metrics.med


class ErrorEvaluator:
    """Evaluates approximate circuits against a golden reference.

    Parameters
    ----------
    reference:
        The exact circuit defining correct behaviour.  Its input words must
        match (names and widths) those of every evaluated circuit.
    max_exhaustive_inputs:
        Exhaustive enumeration is used when the total input width does not
        exceed this limit; otherwise Monte-Carlo sampling is used.
    num_samples:
        Sample count for Monte-Carlo evaluation.
    seed:
        Seed for the Monte-Carlo operand generator (the same operands are
        reused for every circuit so results are comparable).
    """

    def __init__(
        self,
        reference: Netlist,
        max_exhaustive_inputs: int = 18,
        num_samples: int = 8192,
        seed: int = 1234,
    ):
        self.reference = reference
        self.max_exhaustive_inputs = max_exhaustive_inputs
        self.num_samples = num_samples
        self.seed = seed

        if reference.num_inputs <= max_exhaustive_inputs:
            self._operands = exhaustive_operands(reference)
            self._method = "exhaustive"
        else:
            rng = np.random.default_rng(seed)
            self._operands = random_operands(reference, num_samples, rng)
            self._method = "monte_carlo"
        self._exact_outputs = simulate_words(reference, self._operands)
        self._max_output = (1 << reference.num_outputs) - 1

    @property
    def method(self) -> str:
        return self._method

    @property
    def num_patterns(self) -> int:
        return int(len(self._exact_outputs))

    @property
    def operands(self):
        """The shared operand vectors every circuit is evaluated on."""
        return self._operands

    @property
    def exact_outputs(self) -> np.ndarray:
        """Reference output word for the shared operands."""
        return self._exact_outputs

    @property
    def max_output(self) -> int:
        """Maximum representable output value (normalises MED / relative WCE)."""
        return self._max_output

    def check_interface(self, circuit: Netlist) -> None:
        """Validate that ``circuit`` has the reference's word-level interface."""
        self._check_interface(circuit)

    def _check_interface(self, circuit: Netlist) -> None:
        if set(circuit.input_words) != set(self.reference.input_words):
            raise ValueError(
                f"circuit {circuit.name!r} input words {sorted(circuit.input_words)} do not "
                f"match the reference {sorted(self.reference.input_words)}"
            )
        for name, bits in circuit.input_words.items():
            if len(bits) != len(self.reference.input_words[name]):
                raise ValueError(
                    f"circuit {circuit.name!r} word {name!r} is {len(bits)} bits wide, "
                    f"reference expects {len(self.reference.input_words[name])}"
                )

    def evaluate(self, circuit: Netlist) -> ErrorReport:
        """Error metrics of ``circuit`` against the reference."""
        self._check_interface(circuit)
        approx_outputs = simulate_words(circuit, self._operands)
        metrics = compute_error_metrics(self._exact_outputs, approx_outputs, self._max_output)
        return ErrorReport(
            circuit_name=circuit.name,
            metrics=metrics,
            num_patterns=self.num_patterns,
            method=self._method,
        )


def evaluate_error(
    circuit: Netlist,
    reference: Netlist,
    max_exhaustive_inputs: int = 18,
    num_samples: int = 8192,
    seed: int = 1234,
) -> ErrorReport:
    """One-shot convenience wrapper around :class:`ErrorEvaluator`."""
    evaluator = ErrorEvaluator(
        reference,
        max_exhaustive_inputs=max_exhaustive_inputs,
        num_samples=num_samples,
        seed=seed,
    )
    return evaluator.evaluate(circuit)
