"""A generic incremental Pareto archive shared by every search strategy.

The repo's searches (`random_search`, `hill_climb_pareto`, `random_archive`,
`nsga2`) and the methodology's front bookkeeping all need the same three
operations: keep a set of candidates non-dominated under minimisation,
bound its size, and report quality indicators of the surviving front.
:class:`ParetoArchive` centralises them:

* **incremental non-dominated insertion** -- inserting one candidate is
  ``O(len(archive))`` instead of re-filtering the whole set; dominance uses
  the same weak-dominance semantics as
  :func:`repro.core.pareto.pareto_front_indices` (duplicate objective
  vectors are all kept, so batch-filtering and incremental insertion agree
  exactly);
* **crowding distance** and the **2-D hypervolume indicator** for
  diversity-aware truncation and strategy comparison;
* **JSON checkpointing** -- ``to_payload``/``from_payload`` round-trip the
  archive through plain JSON, and ``save``/``load`` persist it in any
  ``get``/``put`` store (in practice :class:`repro.io.JsonDirectoryStore`),
  which is what makes the NSGA-II strategy resumable.

Entries iterate in insertion order (dominated entries drop out, survivors
keep their relative order), which keeps seeded archive-driven searches
bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

# NOTE: repro.core.pareto is imported lazily inside the functions that need
# it -- repro.core.stages uses this archive for its front bookkeeping, so a
# module-level import would be circular.

__all__ = ["ArchiveEntry", "ParetoArchive", "crowding_distances", "non_dominated_ranks"]


@dataclass(frozen=True)
class ArchiveEntry:
    """One archived candidate: an identity, its objectives and a payload.

    ``objectives`` are minimised.  ``item`` is an arbitrary JSON-serialisable
    payload travelling with the entry (a genome, a configuration encoding);
    it takes no part in dominance or identity checks.
    """

    key: Optional[str]
    objectives: Tuple[float, ...]
    item: object = None


def _weakly_dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """``a`` dominates ``b``: no worse everywhere, strictly better somewhere."""
    not_worse = all(x <= y for x, y in zip(a, b))
    return not_worse and any(x < y for x, y in zip(a, b))


class ParetoArchive:
    """An incrementally maintained non-dominated set (all objectives minimised).

    Parameters
    ----------
    num_objectives:
        Optional arity check; inferred from the first insertion when omitted.
    dedupe_keys:
        When ``True`` (default) a key identifies a design: re-inserting an
        existing key replaces its old entry, so re-insertion is idempotent.
        Strategies that intentionally archive revisited candidates as
        distinct members (the legacy hill climber's seeded trajectories
        depend on it) pass ``False`` or insert with ``key=None``.
    """

    def __init__(self, num_objectives: Optional[int] = None, *, dedupe_keys: bool = True):
        self.num_objectives = num_objectives
        self.dedupe_keys = dedupe_keys
        self._entries: List[ArchiveEntry] = []

    # ------------------------------------------------------------------ #
    # Insertion
    # ------------------------------------------------------------------ #
    def _check_objectives(self, objectives: Sequence[float]) -> Tuple[float, ...]:
        values = tuple(float(value) for value in objectives)
        if not values:
            raise ValueError("objectives must not be empty")
        if not all(np.isfinite(values)):
            raise ValueError(f"objectives contain NaN or infinite values: {values}")
        if self.num_objectives is None:
            self.num_objectives = len(values)
        elif len(values) != self.num_objectives:
            raise ValueError(
                f"expected {self.num_objectives} objectives, got {len(values)}"
            )
        return values

    def insert(
        self, key: Optional[str], objectives: Sequence[float], item: object = None
    ) -> bool:
        """Insert one candidate; returns whether it survived.

        The candidate is rejected when any archived entry dominates it
        (equal objective vectors do not dominate each other, so exact
        duplicates under different keys are all kept); archived entries it
        dominates are removed.  With ``dedupe_keys``, an entry under the
        same key is replaced first, making re-insertion idempotent.
        """
        values = self._check_objectives(objectives)
        if self.dedupe_keys and key is not None:
            for entry in self._entries:
                if entry.key == key:
                    if entry.objectives == values:
                        return False  # idempotent: identical entry already archived
                    # The design's objectives changed: the stale entry goes
                    # away regardless of whether its replacement survives.
                    self._entries = [e for e in self._entries if e.key != key]
                    break
        for entry in self._entries:
            if _weakly_dominates(entry.objectives, values):
                return False
        survivors = [
            entry for entry in self._entries if not _weakly_dominates(values, entry.objectives)
        ]
        survivors.append(ArchiveEntry(key=key, objectives=values, item=item))
        self._entries = survivors
        return True

    def extend(
        self, candidates: Sequence[Tuple[Optional[str], Sequence[float], object]]
    ) -> int:
        """Insert ``(key, objectives, item)`` triples; returns survivor count."""
        return sum(1 for key, objectives, item in candidates if self.insert(key, objectives, item))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ArchiveEntry]:
        return iter(self._entries)

    def entries(self) -> List[ArchiveEntry]:
        """The surviving entries, in insertion order."""
        return list(self._entries)

    def keys(self) -> List[Optional[str]]:
        return [entry.key for entry in self._entries]

    def items(self) -> List[object]:
        return [entry.item for entry in self._entries]

    def objective_array(self) -> np.ndarray:
        """(n, num_objectives) float array of the archived objective vectors."""
        if not self._entries:
            return np.empty((0, self.num_objectives or 0), dtype=np.float64)
        return np.array([entry.objectives for entry in self._entries], dtype=np.float64)

    def dominates(self, objectives: Sequence[float]) -> bool:
        """Whether any archived entry dominates the given objective vector."""
        values = tuple(float(value) for value in objectives)
        return any(_weakly_dominates(entry.objectives, values) for entry in self._entries)

    # ------------------------------------------------------------------ #
    # Indicators and truncation
    # ------------------------------------------------------------------ #
    def crowding_distances(self) -> np.ndarray:
        """Crowding distance per entry, aligned with insertion order."""
        return crowding_distances(self.objective_array())

    def hypervolume(self, reference: Optional[Sequence[float]] = None) -> float:
        """Dominated 2-D hypervolume of the archive w.r.t. ``reference``.

        With no reference, a point 5% beyond the archive's own maxima is
        used (matching the AutoAx benchmark convention, and padded by the
        maxima's magnitude so negative objectives stay dominated too); note
        that self-referenced volumes of *different* archives are not
        comparable -- pass a shared reference to compare strategies.
        """
        from ..core.pareto import hypervolume_2d

        points = self.objective_array()
        if points.shape[0] == 0:
            return 0.0
        if points.shape[1] != 2:
            raise ValueError("hypervolume is only defined for 2-objective archives")
        if reference is None:
            maxima = points.max(axis=0)
            reference = maxima + 0.05 * np.abs(maxima) + 1e-9
        return hypervolume_2d(points, reference)

    def truncate_crowding(self, limit: int) -> None:
        """Keep the ``limit`` most-crowding-distant entries (NSGA-II style).

        Boundary entries (infinite distance) are always preferred; ties
        break towards earlier insertion so truncation is deterministic.
        """
        if limit < 1:
            raise ValueError("limit must be at least 1")
        if len(self._entries) <= limit:
            return
        distances = self.crowding_distances()
        # Sort by descending distance, ascending insertion index on ties.
        order = sorted(range(len(self._entries)), key=lambda i: (-distances[i], i))
        keep = sorted(order[:limit])
        self._entries = [self._entries[i] for i in keep]

    def truncate_spread(self, limit: int, objective: int = 0) -> None:
        """Keep ``limit`` entries spread along one objective axis.

        This reproduces the legacy strategies' pruning exactly: entries are
        (stably) sorted by the chosen objective and an evenly spaced subset
        is kept **in that sorted order** -- archive order changes, which the
        seeded legacy trajectories rely on.
        """
        if limit < 1:
            raise ValueError("limit must be at least 1")
        if len(self._entries) <= limit:
            return
        self._entries.sort(key=lambda entry: entry.objectives[objective])
        indices = np.linspace(0, len(self._entries) - 1, limit).round().astype(int)
        self._entries = [self._entries[i] for i in dict.fromkeys(int(i) for i in indices)]

    # ------------------------------------------------------------------ #
    # JSON checkpointing
    # ------------------------------------------------------------------ #
    def to_payload(self) -> dict:
        """JSON-serialisable snapshot of the archive."""
        return {
            "num_objectives": self.num_objectives,
            "dedupe_keys": self.dedupe_keys,
            "entries": [
                {"key": entry.key, "objectives": list(entry.objectives), "item": entry.item}
                for entry in self._entries
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ParetoArchive":
        """Rebuild an archive from :meth:`to_payload` output, bit-identically."""
        archive = cls(
            num_objectives=payload.get("num_objectives"),
            dedupe_keys=bool(payload.get("dedupe_keys", True)),
        )
        # Restored entries are re-validated but not re-filtered: a payload
        # produced by to_payload() is already mutually non-dominated, and
        # round-tripping must preserve entry order exactly.
        for raw in payload["entries"]:
            archive._entries.append(
                ArchiveEntry(
                    key=raw["key"],
                    objectives=archive._check_objectives(raw["objectives"]),
                    item=raw.get("item"),
                )
            )
        return archive

    def save(self, store, key: str) -> None:
        """Persist the archive under ``key`` in a ``get``/``put`` store."""
        store.put(key, self.to_payload())

    @classmethod
    def load(cls, store, key: str) -> Optional["ParetoArchive"]:
        """Load an archive previously saved under ``key`` (``None`` if absent)."""
        payload = store.get(key)
        if payload is None:
            return None
        return cls.from_payload(payload)


# --------------------------------------------------------------------- #
# Free functions shared with the NSGA-II machinery
# --------------------------------------------------------------------- #
def crowding_distances(points: np.ndarray) -> np.ndarray:
    """NSGA-II crowding distance of each point of one front.

    Boundary points of every objective get infinite distance; interior
    points accumulate the normalised gap between their neighbours along
    each objective.  Objectives with zero range contribute nothing.  Sorting
    is stable, so ties resolve deterministically by input order.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"points must be 2-D (n, objectives), got shape {points.shape}")
    n = points.shape[0]
    distances = np.zeros(n, dtype=np.float64)
    if n <= 2:
        distances[:] = np.inf
        return distances
    for objective in range(points.shape[1]):
        values = points[:, objective]
        order = np.argsort(values, kind="stable")
        distances[order[0]] = np.inf
        distances[order[-1]] = np.inf
        span = values[order[-1]] - values[order[0]]
        if span <= 0.0:
            continue
        gaps = (values[order[2:]] - values[order[:-2]]) / span
        interior = order[1:-1]
        finite = np.isfinite(distances[interior])
        distances[interior[finite]] += gaps[finite]
    return distances


def non_dominated_ranks(points: np.ndarray) -> np.ndarray:
    """Front rank per point (0 = first Pareto front), by successive peeling."""
    from ..core.pareto import pareto_front_indices

    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"points must be 2-D (n, objectives), got shape {points.shape}")
    ranks = np.full(points.shape[0], -1, dtype=np.int64)
    remaining = list(range(points.shape[0]))
    rank = 0
    while remaining:
        front_local = pareto_front_indices(points[remaining])
        front = [remaining[i] for i in front_local]
        ranks[front] = rank
        in_front = set(front)
        remaining = [index for index in remaining if index not in in_front]
        rank += 1
    return ranks
