"""Population-based multi-objective search subsystem.

The package holds the problem-agnostic half of the repo's searches:

* :class:`ParetoArchive` -- the shared incremental non-dominated archive
  (crowding distance, 2-D hypervolume, JSON checkpointing) used by every
  strategy in :data:`repro.autoax.SEARCH_STRATEGIES` and by the
  methodology's front bookkeeping (:mod:`repro.core.stages`);
* :func:`run_nsga2` -- a generic, resumable NSGA-II loop over tuple genomes
  with generation-batched evaluation;
* :mod:`repro.search.multifidelity` -- expected-hypervolume-improvement
  acquisition (exact in 2-D, Monte-Carlo beyond) and a resumable
  successive-halving runner over explicit fidelity ladders.

The AutoAx configuration-space strategies themselves (including the
``"nsga2"`` and ``"sh_ehvi"`` adapters) live in :mod:`repro.autoax.search`,
which builds on this package.
"""

from .archive import ArchiveEntry, ParetoArchive, crowding_distances, non_dominated_ranks
from .multifidelity import (
    SuccessiveHalvingConfig,
    SuccessiveHalvingResult,
    default_fidelity_ladder,
    ehvi_2d,
    expected_hypervolume_improvement,
    hypervolume,
    monte_carlo_ehvi,
    run_successive_halving,
)
from .nsga2 import (
    Nsga2Config,
    Nsga2Result,
    genome_token,
    run_nsga2,
    select_next_population,
)

__all__ = [
    "ArchiveEntry",
    "ParetoArchive",
    "crowding_distances",
    "non_dominated_ranks",
    "Nsga2Config",
    "Nsga2Result",
    "genome_token",
    "run_nsga2",
    "select_next_population",
    "SuccessiveHalvingConfig",
    "SuccessiveHalvingResult",
    "default_fidelity_ladder",
    "ehvi_2d",
    "expected_hypervolume_improvement",
    "hypervolume",
    "monte_carlo_ehvi",
    "run_successive_halving",
]
