"""Multi-fidelity, uncertainty-aware search primitives.

Two building blocks close the ROADMAP's "multi-fidelity, uncertainty-aware
search" item; both are problem-agnostic and shared by the ``"sh_ehvi"``
strategy in :mod:`repro.autoax.search`:

* **Expected hypervolume improvement (EHVI)** -- the acquisition function
  that turns a model's ``predict_with_std`` output into "how much would
  this candidate grow the Pareto front?".  The two-objective case uses the
  exact closed form (a strip decomposition of the front's staircase, each
  strip's expectation factorising over the two independent Gaussians); for
  more objectives :func:`monte_carlo_ehvi` estimates the same quantity with
  seeded Gaussian samples against an exact n-dimensional
  :func:`hypervolume`.  :func:`expected_hypervolume_improvement` dispatches
  between the two.

* **Resumable successive halving** -- :func:`run_successive_halving` runs a
  candidate cohort up a fidelity ladder (cheap screens first, survivors
  promoted to higher fidelity), selecting survivors per rung with NSGA-II
  environmental selection.  State is checkpointed through the same
  ``store``/``run_id``/manifest-token plumbing :func:`repro.search.run_nsga2`
  uses, so a service worker killed mid-rung is taken over and resumes to a
  bit-identical result (the loop itself consumes no randomness; evaluation
  must be a deterministic function of ``(candidate, fidelity)``).

All objectives are minimised throughout, matching the rest of
:mod:`repro.search`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np
from scipy.special import ndtr

from .nsga2 import select_next_population

__all__ = [
    "SuccessiveHalvingConfig",
    "SuccessiveHalvingResult",
    "default_fidelity_ladder",
    "ehvi_2d",
    "expected_hypervolume_improvement",
    "hypervolume",
    "monte_carlo_ehvi",
    "run_successive_halving",
]

_SQRT_2PI = math.sqrt(2.0 * math.pi)

#: Smallest standard deviation fed into the Gaussian expectations.  Exactly
#: deterministic predictions (an ensemble whose members agree, a zero-std
#: fallback model) degrade EHVI to the deterministic hypervolume-improvement
#: indicator instead of dividing by zero.
_STD_FLOOR = 1e-12


def _norm_pdf(z: np.ndarray) -> np.ndarray:
    return np.exp(-0.5 * z * z) / _SQRT_2PI


def _psi(u: np.ndarray, b: np.ndarray, mu: np.ndarray, sigma: np.ndarray) -> np.ndarray:
    """``E[(b - Y) * 1[Y < u]]`` for ``Y ~ N(mu, sigma^2)``, elementwise.

    The one Gaussian partial moment both EHVI factors reduce to:
    ``(b - mu) * Phi((u - mu) / sigma) + sigma * phi((u - mu) / sigma)``.
    """
    z = (u - mu) / sigma
    return (b - mu) * ndtr(z) + sigma * _norm_pdf(z)


def _staircase(front: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """The 2-D front reduced to its staircase inside the reference box.

    Points at or beyond the reference in either objective cannot shrink any
    candidate's improvement, so they are dropped; the survivors are pruned
    to the non-dominated subset and sorted to strictly increasing first /
    strictly decreasing second objective.
    """
    from ..core.pareto import pareto_front_indices

    front = np.asarray(front, dtype=np.float64).reshape(-1, 2)
    if front.shape[0]:
        front = front[(front[:, 0] < reference[0]) & (front[:, 1] < reference[1])]
    if front.shape[0]:
        front = front[pareto_front_indices(front)]
        front = front[np.lexsort((front[:, 1], front[:, 0]))]
        # Exact duplicates survive pareto_front_indices; keep one of each.
        keep = np.ones(front.shape[0], dtype=bool)
        keep[1:] = front[1:, 0] > front[:-1, 0]
        front = front[keep]
    return front


def ehvi_2d(
    front: np.ndarray,
    reference: Sequence[float],
    means: np.ndarray,
    stds: np.ndarray,
) -> np.ndarray:
    """Exact two-objective EHVI of independent Gaussian candidates.

    ``front`` is the current non-dominated set (any 2-D point array, may be
    empty), ``reference`` the hypervolume reference point, ``means`` /
    ``stds`` the per-candidate predictive moments, shape ``(k, 2)``.
    Returns the ``(k,)`` vector of expected improvements.

    Derivation: with the front's staircase cut into vertical strips
    ``[a_i, u_i) x [y_2, b_i)`` (sentinels ``a_0 = -inf``, ``u_n = r_1``,
    ``b_0 = r_2``), a candidate ``y`` adds volume
    ``sum_i (u_i - max(a_i, y_1))_+ * (b_i - y_2)_+``; the two factors
    depend on different independent coordinates, so the expectation is the
    product of two Gaussian partial moments (:func:`_psi`) per strip.
    """
    reference = np.asarray(reference, dtype=np.float64).reshape(2)
    means = np.asarray(means, dtype=np.float64).reshape(-1, 2)
    stds = np.maximum(np.asarray(stds, dtype=np.float64).reshape(-1, 2), _STD_FLOOR)
    if means.shape != stds.shape:
        raise ValueError("means and stds must have matching (k, 2) shapes")

    stairs = _staircase(front, reference)
    a = np.concatenate([[-np.inf], stairs[:, 0]])  # strip lower x edges
    u = np.concatenate([stairs[:, 0], [reference[0]]])  # strip upper x edges
    b = np.concatenate([[reference[1]], stairs[:, 1]])  # strip free heights

    mu1, s1 = means[:, :1], stds[:, :1]
    mu2, s2 = means[:, 1:], stds[:, 1:]
    a_row, u_row, b_row = a[None, :], u[None, :], b[None, :]

    # E[(u - max(a, Y1))_+] = (u - a) Phi(z_a) + E[(u - Y1) 1[a <= Y1 < u]];
    # the first term vanishes for the unbounded leftmost strip (Phi -> 0).
    # a is substituted by u on that strip so the eager branch stays finite.
    a_safe = np.where(np.isfinite(a_row), a_row, u_row)
    below_a = np.where(
        np.isfinite(a_row),
        (u_row - a_safe) * ndtr((a_safe - mu1) / s1),
        0.0,
    )
    widths = below_a + _psi(u_row, u_row, mu1, s1) - _psi(a_row, u_row, mu1, s1)
    heights = _psi(b_row, b_row, mu2, s2)
    return np.maximum((widths * heights).sum(axis=1), 0.0)


def hypervolume(points: np.ndarray, reference: Sequence[float]) -> float:
    """Dominated hypervolume of a front in any dimension (all minimised).

    Points with any objective at or beyond the reference contribute
    nothing (their dominated box inside the reference region is empty), so
    the result is never negative.  Two objectives delegate to the
    staircase sweep of :func:`repro.core.pareto.hypervolume_2d`; higher
    dimensions recurse by slicing along the last objective.
    """
    reference = np.asarray(reference, dtype=np.float64).ravel()
    points = np.asarray(points, dtype=np.float64).reshape(-1, reference.shape[0])
    points = points[np.all(points <= reference, axis=1)]
    if points.shape[0] == 0:
        return 0.0
    if reference.shape[0] == 1:
        return float(reference[0] - points.min())
    if reference.shape[0] == 2:
        from ..core.pareto import hypervolume_2d

        return hypervolume_2d(points, reference)
    order = np.argsort(points[:, -1], kind="stable")
    points = points[order]
    edges = np.append(points[:, -1], reference[-1])
    volume = 0.0
    for i in range(points.shape[0]):
        depth = edges[i + 1] - edges[i]
        if depth <= 0.0:
            continue
        volume += depth * hypervolume(points[: i + 1, :-1], reference[:-1])
    return float(volume)


def monte_carlo_ehvi(
    front: np.ndarray,
    reference: Sequence[float],
    means: np.ndarray,
    stds: np.ndarray,
    num_samples: int = 128,
    seed: int = 0,
) -> np.ndarray:
    """Sampled EHVI for any number of objectives (the >2-objective fallback).

    Draws ``num_samples`` seeded Gaussian realisations per candidate and
    averages the exact hypervolume improvement of each draw over the
    current ``front``.  Deterministic given ``seed``; agreement with
    :func:`ehvi_2d` on two objectives is pinned by
    ``tests/test_multifidelity.py``.
    """
    if num_samples < 1:
        raise ValueError("num_samples must be at least 1")
    reference = np.asarray(reference, dtype=np.float64).ravel()
    means = np.asarray(means, dtype=np.float64).reshape(-1, reference.shape[0])
    stds = np.maximum(
        np.asarray(stds, dtype=np.float64).reshape(-1, reference.shape[0]), _STD_FLOOR
    )
    front = np.asarray(front, dtype=np.float64).reshape(-1, reference.shape[0])
    base = hypervolume(front, reference)
    rng = np.random.default_rng(seed)
    draws = rng.standard_normal((num_samples, means.shape[0], reference.shape[0]))
    scores = np.zeros(means.shape[0], dtype=np.float64)
    for index in range(means.shape[0]):
        samples = means[index] + stds[index] * draws[:, index, :]
        improvement = 0.0
        for sample in samples:
            improvement += hypervolume(np.vstack([front, sample[None, :]]), reference) - base
        scores[index] = max(improvement / num_samples, 0.0)
    return scores


def expected_hypervolume_improvement(
    front: np.ndarray,
    reference: Sequence[float],
    means: np.ndarray,
    stds: np.ndarray,
    *,
    num_samples: int = 128,
    seed: int = 0,
    method: str = "auto",
) -> np.ndarray:
    """EHVI of Gaussian candidates over a front: exact in 2-D, sampled beyond.

    ``method`` is ``"auto"`` (exact closed form for two objectives,
    Monte-Carlo otherwise), ``"exact"`` (two objectives only) or
    ``"monte_carlo"`` (any arity; used by the agreement tests).
    """
    reference = np.asarray(reference, dtype=np.float64).ravel()
    if method not in ("auto", "exact", "monte_carlo"):
        raise ValueError(f"unknown EHVI method {method!r}")
    if method == "exact" or (method == "auto" and reference.shape[0] == 2):
        if reference.shape[0] != 2:
            raise ValueError("the exact EHVI closed form needs exactly two objectives")
        return ehvi_2d(front, reference, means, stds)
    return monte_carlo_ehvi(front, reference, means, stds, num_samples=num_samples, seed=seed)


# --------------------------------------------------------------------- #
# Fidelity ladders and resumable successive halving
# --------------------------------------------------------------------- #
def default_fidelity_ladder(
    full_patterns: int, factors: Sequence[int] = (16, 4), floor: int = 256
) -> Tuple[int, ...]:
    """Ascending low-fidelity pattern budgets below ``full_patterns``.

    The conventional geometric ladder (``full/16 -> full/4`` by default),
    floored so tiny workloads don't screen on statistically useless budgets
    and deduplicated/filtered so every rung is a strict reduction.  The
    final full-fidelity rung is *not* included -- callers append it
    (``None`` in :class:`SuccessiveHalvingConfig` terms).
    """
    full_patterns = int(full_patterns)
    if full_patterns < 1:
        raise ValueError("full_patterns must be at least 1")
    rungs: List[int] = []
    for factor in factors:
        budget = max(int(floor), full_patterns // int(factor))
        if budget < full_patterns and (not rungs or budget > rungs[-1]):
            rungs.append(budget)
    return tuple(rungs)


@dataclass(frozen=True)
class SuccessiveHalvingConfig:
    """Knobs of one successive-halving run.

    ``rungs`` is the fidelity ladder: one pattern budget per rung, ascending,
    with ``None`` meaning full fidelity (conventionally the last rung).
    Each rung evaluates the surviving cohort at its fidelity and keeps
    ``ceil(n / eta)`` survivors (never fewer than ``min_survivors``) for the
    next rung; the final rung's cohort is returned whole.
    """

    rungs: Tuple[Optional[int], ...] = (None,)
    eta: float = 2.0
    min_survivors: int = 1

    def __post_init__(self) -> None:
        if not self.rungs:
            raise ValueError("at least one fidelity rung is required")
        if self.eta <= 1.0:
            raise ValueError("eta must be greater than 1")
        if self.min_survivors < 1:
            raise ValueError("min_survivors must be at least 1")
        previous = None
        for fidelity in self.rungs:
            if fidelity is None:
                previous = math.inf
                continue
            if int(fidelity) < 1:
                raise ValueError(f"fidelity rungs must be positive, got {fidelity}")
            if previous is not None and int(fidelity) <= previous:
                raise ValueError(f"fidelity rungs must ascend, got {self.rungs}")
            previous = int(fidelity)


@dataclass
class SuccessiveHalvingResult:
    """Outcome of one (possibly resumed) successive-halving run."""

    survivors: List[object]
    """Candidate payloads of the final rung, in selection order."""
    evaluations: List[object]
    """Final-rung evaluation payloads, aligned with :attr:`survivors`."""
    history: List[dict] = field(default_factory=list)
    resumed_from: Optional[int] = None
    """Rung index the run was restored at (``None`` for fresh runs)."""


def _sh_checkpoint_key(run_id: str) -> str:
    return f"sh:{run_id}:state"


def _sh_manifest_key(run_id: str) -> str:
    return f"sh:{run_id}:#manifest"


def run_successive_halving(
    *,
    candidates: Sequence[object],
    evaluate: Callable[[int, Optional[int], List[object]], Sequence[object]],
    objectives: Callable[[object], Sequence[float]],
    config: Optional[SuccessiveHalvingConfig] = None,
    store=None,
    run_id: str = "sh",
    token: str = "",
    resume: bool = True,
    on_rung: Optional[Callable[[dict], None]] = None,
) -> SuccessiveHalvingResult:
    """Run (or resume) successive halving over a fidelity ladder.

    ``candidates`` are opaque JSON-serialisable payloads.  Per rung,
    ``evaluate(rung_index, fidelity, cohort)`` returns one JSON-serialisable
    evaluation payload per candidate (in order) and ``objectives(payload)``
    extracts the minimised objective tuple used for survivor selection
    (NSGA-II environmental selection: whole fronts in rank order, the
    overflowing front truncated by crowding distance -- deterministic ties).

    With a ``store`` (any ``get``/``put`` object), the surviving cohort is
    checkpointed after every completed rung under ``run_id`` guarded by a
    ``token`` manifest, exactly like :func:`repro.search.run_nsga2`: a rerun
    with the same ``run_id``/``token`` skips completed rungs, a changed
    token invalidates old state.  The loop consumes no randomness, so a run
    killed *inside* a rung re-evaluates only that rung on resume (cheap when
    evaluation is cached) and finishes identically to an uninterrupted run.
    ``on_rung`` fires with each freshly computed rung's stats dict after its
    checkpoint is persisted (service workers renew their job leases there).
    """
    config = config or SuccessiveHalvingConfig()
    cohort = list(candidates)
    if not cohort:
        raise ValueError("successive halving needs at least one candidate")

    rung = 0
    history: List[dict] = []
    evaluations: List[object] = []
    resumed_from: Optional[int] = None

    expected_manifest = {"token": token, "config": repr(config)}
    checkpoint = None
    if store is not None:
        if resume and store.get(_sh_manifest_key(run_id)) == expected_manifest:
            checkpoint = store.get(_sh_checkpoint_key(run_id))
        store.put(_sh_manifest_key(run_id), expected_manifest)

    if checkpoint is not None and int(checkpoint["rung"]) <= len(config.rungs):
        rung = int(checkpoint["rung"])
        resumed_from = rung
        cohort = list(checkpoint["candidates"])
        evaluations = list(checkpoint["evaluations"])
        history = list(checkpoint["history"])

    while rung < len(config.rungs):
        fidelity = config.rungs[rung]
        fidelity = None if fidelity is None else int(fidelity)
        evaluated = list(evaluate(rung, fidelity, list(cohort)))
        if len(evaluated) != len(cohort):
            raise RuntimeError(
                f"rung {rung} evaluation returned {len(evaluated)} results "
                f"for {len(cohort)} candidates"
            )
        points = np.asarray([objectives(payload) for payload in evaluated], dtype=np.float64)
        if rung == len(config.rungs) - 1:
            keep = list(range(len(cohort)))
        else:
            target = max(config.min_survivors, int(math.ceil(len(cohort) / config.eta)))
            target = min(target, len(cohort))
            keep = sorted(select_next_population(points, target))
        cohort = [cohort[i] for i in keep]
        evaluations = [evaluated[i] for i in keep]
        rung += 1
        history.append(
            {
                "rung": rung - 1,
                "fidelity": fidelity,
                "evaluated": len(evaluated),
                "survivors": len(cohort),
                "objective_minima": [float(v) for v in points.min(axis=0)],
            }
        )
        if store is not None:
            store.put(
                _sh_checkpoint_key(run_id),
                {
                    "rung": rung,
                    "candidates": list(cohort),
                    "evaluations": list(evaluations),
                    "history": list(history),
                },
            )
        if on_rung is not None:
            on_rung(history[-1])

    return SuccessiveHalvingResult(
        survivors=list(cohort),
        evaluations=list(evaluations),
        history=history,
        resumed_from=resumed_from,
    )
