"""Generic population-based NSGA-II search with checkpoint/resume.

The engine is deliberately problem-agnostic: a *genome* is a JSON-roundtrip
tuple (ints/floats), and the problem plugs in through four callables --
``random_genome``, ``mutate``, ``crossover`` and a **batched** ``evaluate``
that maps a whole population to objective vectors in one call.  Batching is
the point: surrogate models predict a generation as one matrix and exact
evaluators amortise shared work (reference outputs, process-pool fan-out)
across the population instead of paying per-candidate overhead, which is
what lets the population strategies beat the sequential hill climber at
equal evaluation budget (see ``benchmarks/test_search_throughput.py``).

Determinism: one seeded generator drives initialisation, selection and
variation; evaluation must be a deterministic function of the genome.  The
per-generation checkpoint stores the population, the archive and the raw
bit-generator state, so a resumed run replays the exact RNG stream and the
final archive is bit-identical to an uninterrupted run (pinned by
``tests/test_search_nsga2.py``).

The AutoAx configuration-space adapter is registered as the ``"nsga2"``
entry of :data:`repro.autoax.SEARCH_STRATEGIES`
(:func:`repro.autoax.search.nsga2_pareto`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from .archive import ParetoArchive, crowding_distances, non_dominated_ranks

__all__ = ["Nsga2Config", "Nsga2Result", "genome_token", "run_nsga2", "select_next_population"]

Genome = Tuple
Objectives = Tuple[float, ...]


def genome_token(genome: Genome) -> str:
    """Canonical archive/checkpoint key of one genome."""
    return ",".join(repr(value) for value in genome)


@dataclass
class Nsga2Config:
    """Knobs of one NSGA-II run.  All randomness derives from ``seed``."""

    population_size: int = 32
    generations: int = 12
    crossover_rate: float = 0.9
    mutation_rate: float = 1.0
    tournament_size: int = 2
    archive_limit: int = 64
    seed: int = 31

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population_size must be at least 2")
        if self.generations < 0:
            raise ValueError("generations must not be negative")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ValueError("crossover_rate must be within [0, 1]")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be within [0, 1]")
        if self.tournament_size < 1:
            raise ValueError("tournament_size must be at least 1")
        if self.archive_limit < 1:
            raise ValueError("archive_limit must be at least 1")


@dataclass
class Nsga2Result:
    """Outcome of one (possibly resumed) NSGA-II run."""

    archive: ParetoArchive
    population: List[Genome]
    objectives: List[Objectives]
    generations_run: int
    evaluations: int
    history: List[dict] = field(default_factory=list)
    resumed_from: Optional[int] = None
    """Generation index the run was restored at (``None`` for fresh runs)."""


# --------------------------------------------------------------------- #
# Selection machinery
# --------------------------------------------------------------------- #
def select_next_population(points: np.ndarray, size: int) -> List[int]:
    """NSGA-II environmental selection: indices of the ``size`` survivors.

    Whole fronts are taken in rank order; the first front that does not fit
    is truncated by descending crowding distance (ties break towards lower
    index, so selection is deterministic).
    """
    points = np.asarray(points, dtype=np.float64)
    if size < 0 or size > points.shape[0]:
        raise ValueError(f"cannot select {size} from {points.shape[0]} points")
    ranks = non_dominated_ranks(points)
    selected: List[int] = []
    for rank in range(int(ranks.max()) + 1 if len(ranks) else 0):
        front = [int(i) for i in np.nonzero(ranks == rank)[0]]
        if len(selected) + len(front) <= size:
            selected.extend(front)
            if len(selected) == size:
                break
            continue
        distances = crowding_distances(points[front])
        order = sorted(range(len(front)), key=lambda i: (-distances[i], front[i]))
        selected.extend(front[i] for i in order[: size - len(selected)])
        break
    return selected


def _tournament(
    rng: np.random.Generator,
    ranks: np.ndarray,
    distances: np.ndarray,
    size: int,
) -> int:
    """Index of the tournament winner: lowest rank, then highest crowding."""
    contenders = rng.integers(0, len(ranks), size=size)
    best = int(contenders[0])
    for raw in contenders[1:]:
        index = int(raw)
        if (ranks[index], -distances[index], index) < (ranks[best], -distances[best], best):
            best = index
    return best


# --------------------------------------------------------------------- #
# Checkpointing
# --------------------------------------------------------------------- #
def _checkpoint_key(run_id: str) -> str:
    return f"nsga2:{run_id}:state"


def _manifest_key(run_id: str) -> str:
    return f"nsga2:{run_id}:#manifest"


def _save_checkpoint(
    store,
    run_id: str,
    *,
    generation: int,
    population: Sequence[Genome],
    objectives: Sequence[Objectives],
    archive: ParetoArchive,
    rng: np.random.Generator,
    evaluations: int,
    history: List[dict],
) -> None:
    store.put(
        _checkpoint_key(run_id),
        {
            "generation": generation,
            "population": [list(genome) for genome in population],
            "objectives": [list(values) for values in objectives],
            "archive": archive.to_payload(),
            "rng_state": rng.bit_generator.state,
            "evaluations": evaluations,
            "history": list(history),
        },
    )


# --------------------------------------------------------------------- #
# The run loop
# --------------------------------------------------------------------- #
def run_nsga2(
    *,
    random_genome: Callable[[np.random.Generator], Genome],
    mutate: Callable[[Genome, np.random.Generator], Genome],
    crossover: Callable[[Genome, Genome, np.random.Generator], Genome],
    evaluate: Callable[[List[Genome]], Sequence[Objectives]],
    config: Optional[Nsga2Config] = None,
    store=None,
    run_id: str = "nsga2",
    token: str = "",
    resume: bool = True,
    on_generation: Optional[Callable[[dict], None]] = None,
) -> Nsga2Result:
    """Run (or resume) NSGA-II and return the final archive and population.

    ``evaluate`` receives the whole generation at once and must return one
    objective tuple (all minimised) per genome, in order.  With a ``store``
    attached (any ``get``/``put`` object, e.g.
    :class:`repro.io.JsonDirectoryStore` or its sharded variant), the full
    search state -- including
    the RNG stream -- is checkpointed after every generation; a rerun with
    the same ``run_id``/``token`` resumes from the stored generation and
    finishes bit-identically to an uninterrupted run.  A different ``token``
    (changed problem or configuration) invalidates old checkpoints.

    ``on_generation`` is called with the per-generation stats dict (see
    ``Nsga2Result.history``) after every *freshly computed* generation, once
    its checkpoint -- when a store is attached -- has been persisted.
    Long-running callers use it for liveness signals (the
    :mod:`repro.service` worker renews its job lease there), which is also
    why it fires after the checkpoint write: a callback that aborts the run
    never loses the generation it was told about.
    """
    config = config or Nsga2Config()
    rng = np.random.default_rng(config.seed)
    archive = ParetoArchive()
    history: List[dict] = []
    evaluations = 0
    generation = 0
    resumed_from: Optional[int] = None

    # The manifest pins everything the RNG stream depends on -- but not the
    # horizon: extending `generations` must resume the shorter run's
    # checkpoint (interrupt-after-generation-N semantics), not restart.
    expected_manifest = {"token": token, "config": repr(replace(config, generations=0))}
    checkpoint = None
    if store is not None:
        if resume and store.get(_manifest_key(run_id)) == expected_manifest:
            checkpoint = store.get(_checkpoint_key(run_id))
        store.put(_manifest_key(run_id), expected_manifest)

    if checkpoint is not None and checkpoint["generation"] <= config.generations:
        generation = int(checkpoint["generation"])
        resumed_from = generation
        population = [tuple(genome) for genome in checkpoint["population"]]
        objectives = [tuple(float(v) for v in values) for values in checkpoint["objectives"]]
        archive = ParetoArchive.from_payload(checkpoint["archive"])
        rng.bit_generator.state = checkpoint["rng_state"]
        evaluations = int(checkpoint["evaluations"])
        history = list(checkpoint["history"])
    else:
        population = [random_genome(rng) for _ in range(config.population_size)]
        objectives = [tuple(float(v) for v in o) for o in evaluate(population)]
        evaluations += len(population)
        for genome, values in zip(population, objectives):
            archive.insert(genome_token(genome), values, item=list(genome))
        archive.truncate_crowding(config.archive_limit)
        history.append(_generation_stats(0, archive, evaluations))
        if store is not None:
            _save_checkpoint(
                store,
                run_id,
                generation=0,
                population=population,
                objectives=objectives,
                archive=archive,
                rng=rng,
                evaluations=evaluations,
                history=history,
            )
        if on_generation is not None:
            on_generation(history[-1])

    while generation < config.generations:
        points = np.array(objectives, dtype=np.float64)
        ranks = non_dominated_ranks(points)
        distances = crowding_distances(points)

        offspring: List[Genome] = []
        for _ in range(config.population_size):
            first = _tournament(rng, ranks, distances, config.tournament_size)
            second = _tournament(rng, ranks, distances, config.tournament_size)
            if rng.random() < config.crossover_rate:
                child = crossover(population[first], population[second], rng)
            else:
                child = population[first]
            if rng.random() < config.mutation_rate:
                child = mutate(child, rng)
            offspring.append(tuple(child))

        child_objectives = [tuple(float(v) for v in o) for o in evaluate(offspring)]
        evaluations += len(offspring)
        for genome, values in zip(offspring, child_objectives):
            archive.insert(genome_token(genome), values, item=list(genome))
        archive.truncate_crowding(config.archive_limit)

        combined = population + offspring
        combined_objectives = objectives + child_objectives
        survivors = select_next_population(
            np.array(combined_objectives, dtype=np.float64), config.population_size
        )
        population = [combined[i] for i in survivors]
        objectives = [combined_objectives[i] for i in survivors]

        generation += 1
        history.append(_generation_stats(generation, archive, evaluations))
        if store is not None:
            _save_checkpoint(
                store,
                run_id,
                generation=generation,
                population=population,
                objectives=objectives,
                archive=archive,
                rng=rng,
                evaluations=evaluations,
                history=history,
            )
        if on_generation is not None:
            on_generation(history[-1])

    return Nsga2Result(
        archive=archive,
        population=list(population),
        objectives=list(objectives),
        generations_run=generation,
        evaluations=evaluations,
        history=history,
        resumed_from=resumed_from,
    )


def _generation_stats(generation: int, archive: ParetoArchive, evaluations: int) -> dict:
    points = archive.objective_array()
    return {
        "generation": generation,
        "evaluations": evaluations,
        "archive_size": len(archive),
        "objective_minima": [float(v) for v in points.min(axis=0)] if len(points) else [],
    }
