"""Content-addressed evaluation cache with an LRU memory layer.

The cache is a plain string-key -> JSON-able-value mapping with two layers:

* an in-memory LRU (:class:`collections.OrderedDict`) bounded by
  ``capacity`` entries, which serves the hot path of a running flow;
* an optional on-disk backend (any object with ``get``/``put``, in practice
  :class:`repro.io.JsonDirectoryStore`) that survives the process, so a
  later session re-running the same libraries starts warm.

Values must be JSON-serialisable when a disk backend is attached; the
evaluation engine stores dataclass field dictionaries (see
:mod:`repro.engine.evaluator`) rather than report objects for exactly this
reason.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union


@dataclass(frozen=True)
class CacheStats:
    """Cumulative counters of one :class:`EvalCache` instance."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int
    disk_hits: int
    corrupt: int = 0
    """Corrupt on-disk entries encountered (counted as misses); non-zero
    only with a disk backend that tracks decode failures, e.g.
    :class:`repro.io.ShardedJsonStore`."""

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "capacity": self.capacity,
            "disk_hits": self.disk_hits,
            "corrupt": self.corrupt,
            "hit_rate": self.hit_rate,
        }

    def since(self, before: "CacheStats") -> "CacheStats":
        """The delta of the cumulative counters relative to ``before``.

        ``size`` and ``capacity`` are instantaneous, not cumulative, so the
        current values are kept.  This is how callers attribute cache
        traffic to one unit of work on a shared cache -- e.g. the
        :mod:`repro.service` worker records per-job (and thereby per-tenant)
        hit rates of the one shared store.

        Deltas are floored at zero: swapping or reopening the disk backend
        mid-session resets its counters (e.g. a fresh
        :class:`repro.io.ShardedJsonStore` starts ``corrupt_count`` at 0),
        which would otherwise report nonsensical negative traffic against a
        snapshot taken before the swap.
        """
        return CacheStats(
            hits=max(self.hits - before.hits, 0),
            misses=max(self.misses - before.misses, 0),
            evictions=max(self.evictions - before.evictions, 0),
            size=self.size,
            capacity=self.capacity,
            disk_hits=max(self.disk_hits - before.disk_hits, 0),
            corrupt=max(self.corrupt - before.corrupt, 0),
        )


class EvalCache:
    """Two-layer (memory LRU + optional disk) evaluation-result cache.

    Parameters
    ----------
    capacity:
        Maximum number of entries held in memory; least-recently-used
        entries are evicted first.  Evicted entries remain retrievable from
        the disk backend when one is attached.
    disk_path:
        Convenience: directory for a :class:`repro.io.JsonDirectoryStore`
        backend.
    store:
        An explicit backend object with ``get(key)`` / ``put(key, value)``;
        takes precedence over ``disk_path``.
    """

    def __init__(
        self,
        capacity: int = 65536,
        disk_path: Optional[Union[str, Path]] = None,
        store: Optional[object] = None,
    ):
        if capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        self.capacity = capacity
        if store is None and disk_path is not None:
            # Imported lazily: repro.io pulls in repro.core, which in turn
            # imports this module through the methodology's engine wiring.
            from ..io.persistence import JsonDirectoryStore

            store = JsonDirectoryStore(disk_path)
        self.store = store
        self._memory: "OrderedDict[str, object]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._disk_hits = 0

    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional[object]:
        """Value for ``key``, or ``None``; counts one hit or one miss."""
        if key in self._memory:
            self._memory.move_to_end(key)
            self._hits += 1
            return self._memory[key]
        if self.store is not None:
            value = self.store.get(key)
            if value is not None:
                self._hits += 1
                self._disk_hits += 1
                self._insert(key, value, write_through=False)
                return value
        self._misses += 1
        return None

    def put(self, key: str, value: object) -> None:
        """Store ``value`` in memory and, when configured, on disk."""
        self._insert(key, value, write_through=True)

    def _insert(self, key: str, value: object, write_through: bool) -> None:
        if key in self._memory:
            self._memory.move_to_end(key)
        self._memory[key] = value
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)
            self._evictions += 1
        if write_through and self.store is not None:
            self.store.put(key, value)

    def __contains__(self, key: str) -> bool:
        """Presence check that does *not* touch the hit/miss counters."""
        if key in self._memory:
            return True
        return self.store is not None and self.store.get(key) is not None

    def __len__(self) -> int:
        return len(self._memory)

    def clear(self, disk: bool = False) -> None:
        """Drop the memory layer (and optionally a clearable disk backend)."""
        self._memory.clear()
        if disk and self.store is not None and hasattr(self.store, "clear"):
            self.store.clear()

    def reset_stats(self) -> None:
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._disk_hits = 0

    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            size=len(self._memory),
            capacity=self.capacity,
            disk_hits=self._disk_hits,
            corrupt=int(getattr(self.store, "corrupt_count", 0)),
        )
