"""Parallel, content-addressed evaluation engine.

The engine is the shared hot path of the whole reproduction: the
ApproxFPGAs flow, the exploration-time accounting and the AutoAx-FPGA
search all route their circuit evaluations through a
:class:`BatchEvaluator` backed by an :class:`EvalCache`, so any circuit
(or accelerator configuration) is simulated and costed at most once per
evaluation context -- per process when the cache is in-memory, ever when
the disk backend is attached.
"""

from .cache import CacheStats, EvalCache
from .evaluator import (
    BatchEvaluator,
    LibraryEvaluation,
    asic_report_from_payload,
    asic_report_to_payload,
    error_report_from_payload,
    error_report_to_payload,
    fpga_report_from_payload,
    fpga_report_to_payload,
)
from .keys import (
    accelerator_context,
    accelerator_token,
    blake_token,
    cache_key,
    configuration_token,
    images_token,
)

__all__ = [
    "CacheStats",
    "EvalCache",
    "BatchEvaluator",
    "LibraryEvaluation",
    "asic_report_from_payload",
    "asic_report_to_payload",
    "error_report_from_payload",
    "error_report_to_payload",
    "fpga_report_from_payload",
    "fpga_report_to_payload",
    "accelerator_context",
    "accelerator_token",
    "blake_token",
    "cache_key",
    "configuration_token",
    "images_token",
]
