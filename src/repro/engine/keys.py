"""Cache-key construction for the evaluation engine.

Every cached value is addressed by ``"<domain>:<context>:<subject>"``:

* the *domain* names what was computed (``err``, ``asic``, ``fpga``,
  ``axq`` for exact accelerator evaluations, ``axe`` for estimated ones),
* the *context* is a digest of everything the computation depends on besides
  the subject itself (the golden reference, sampling seeds, synthesizer
  settings, image sets, ...),
* the *subject* identifies what was evaluated (a netlist fingerprint or an
  accelerator configuration).

Keeping the context explicit makes the cache safe to share across whole
flows and across processes: two evaluations collide only when they would
genuinely produce the same bits.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

import numpy as np


def blake_token(*parts: object) -> str:
    """Short stable digest of a heterogeneous tuple of hashable-ish parts.

    Parts are rendered to bytes: ``bytes`` pass through, ``numpy`` arrays
    contribute shape + dtype + raw data, everything else goes through
    ``repr``.  A type marker and a separator are mixed in per part so that
    e.g. ``("ab", "c")`` and ``("a", "bc")`` cannot collide.
    """
    digest = hashlib.blake2b(digest_size=16)
    for part in parts:
        if isinstance(part, bytes):
            digest.update(b"b")
            digest.update(part)
        elif isinstance(part, np.ndarray):
            digest.update(b"a")
            digest.update(repr((part.shape, str(part.dtype))).encode("utf-8"))
            digest.update(np.ascontiguousarray(part).tobytes())
        else:
            digest.update(b"r")
            digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x1f")
    return digest.hexdigest()


def cache_key(domain: str, context: str, subject: str) -> str:
    """Assemble the canonical three-part cache key."""
    return f"{domain}:{context}:{subject}"


def images_token(images: Iterable[np.ndarray]) -> str:
    """Digest of an image set (used to contextualise accelerator quality)."""
    return blake_token(*[np.asarray(image) for image in images])


def configuration_token(multiplier_indices: Sequence[int], adder_indices: Sequence[int]) -> str:
    """Compact subject token for an accelerator configuration."""
    m = ",".join(str(int(i)) for i in multiplier_indices)
    a = ",".join(str(int(i)) for i in adder_indices)
    return f"m{m}|a{a}"


def accelerator_token(accelerator) -> str:
    """Digest of an accelerator's component sets and workload identity.

    Duck-typed over anything exposing ``multipliers``/``adders`` sequences of
    components with a ``netlist.fingerprint()``; shared by
    :mod:`repro.autoax.search` and the engine's batched configuration
    evaluation so their ``axq`` cache keys can never drift apart.

    When the accelerator exposes a ``workload_token`` (every
    :class:`repro.workloads.ApproxAccelerator` does), it is mixed in: two
    workloads built from the *same* component libraries compute different
    qualities for the same slot assignment, so their cache entries must
    never alias.  Foreign duck-typed accelerators without the attribute
    keep the historical component-only token.
    """
    parts = [
        [component.netlist.fingerprint() for component in accelerator.multipliers],
        [component.netlist.fingerprint() for component in accelerator.adders],
    ]
    workload = getattr(accelerator, "workload_token", None)
    if workload is not None:
        parts.append(workload() if callable(workload) else workload)
    return blake_token(*parts)


def accelerator_context(accelerator, images, fidelity=None) -> str:
    """Cache context of exact accelerator evaluations on one input set.

    Inherits the workload namespacing of :func:`accelerator_token`, so
    ``axq`` entries are scoped to (workload, components, inputs).

    ``fidelity`` namespaces reduced-budget evaluations on a multi-fidelity
    ladder rung: the rung's pixel budget is mixed into the context on top
    of the (already reduced) image set, so a low-fidelity screen can never
    be served for a full-fidelity request even if an unrelated input set
    happened to hash identically.  Full-fidelity evaluations pass ``None``
    and keep the historical token."""
    if fidelity is None:
        return blake_token(accelerator_token(accelerator), images_token(images))
    return blake_token(
        accelerator_token(accelerator), images_token(images), f"fidelity={int(fidelity)}"
    )
