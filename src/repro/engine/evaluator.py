"""Batched, cached evaluation of whole circuit libraries.

:class:`BatchEvaluator` is the single entry point through which the
methodology, the exploration accounting and the AutoAx search evaluate
circuits.  It combines three mechanisms:

* **Batching** -- all circuits of a call share one operand set: the
  reference outputs are simulated once, the stacked operand matrices are
  expanded to input-bit matrices once per word layout, and each circuit is
  evaluated with a single vectorised pass over all patterns (the per-circuit
  work reduces to one simulation-backend call + ``bits_to_words``; the
  backend -- boolean or packed bit-plane -- is selected by the
  ``sim_backend`` knob and never changes results or cache keys).
* **Caching** -- every result is stored in an :class:`~repro.engine.cache.EvalCache`
  under a key derived from the circuit's structural fingerprint and the full
  evaluation context, so repeated evaluations (flow stages, coverage passes,
  later sessions via the disk backend) are served without re-simulation.
* **Fan-out** -- large miss sets can be dispatched to a
  :class:`~concurrent.futures.ProcessPoolExecutor`; results are reassembled
  in input order, so serial and parallel modes are bit-identical.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..asic import AsicReport, AsicSynthesizer
from ..circuits import (
    Netlist,
    bits_to_words,
    pack_bits,
    resolve_sim_backend,
    simulate_bits_compiled,
    simulate_bits_packed,
    simulate_planes,
    simulate_planes_compiled,
    unpack_bits,
    validate_sim_backend,
)
from ..circuits.simulate import expand_operand_bits
from ..error import ErrorEvaluator, ErrorReport
from ..error.metrics import ErrorMetrics, compute_error_metrics
from ..fpga import FpgaReport, FpgaSynthesizer
from .cache import EvalCache
from .keys import accelerator_context, blake_token, cache_key, configuration_token

__all__ = ["BatchEvaluator", "LibraryEvaluation"]


# --------------------------------------------------------------------- #
# Report <-> JSON-able payload conversion (the cache stores payloads so a
# disk backend can serialise them)
# --------------------------------------------------------------------- #
def _error_report_to_payload(report: ErrorReport) -> dict:
    return {
        "circuit_name": report.circuit_name,
        "metrics": report.metrics.as_dict(),
        "num_patterns": report.num_patterns,
        "method": report.method,
    }


def _payload_to_error_report(payload: dict, circuit_name: str) -> ErrorReport:
    return ErrorReport(
        circuit_name=circuit_name,
        metrics=ErrorMetrics(**payload["metrics"]),
        num_patterns=int(payload["num_patterns"]),
        method=str(payload["method"]),
    )


def _asic_report_to_payload(report: AsicReport) -> dict:
    return asdict(report)


def _payload_to_asic_report(payload: dict, circuit_name: str) -> AsicReport:
    fields = dict(payload)
    fields["circuit_name"] = circuit_name
    return AsicReport(**fields)


def _fpga_report_to_payload(report: FpgaReport) -> dict:
    return asdict(report)


def _payload_to_fpga_report(payload: dict, circuit_name: str) -> FpgaReport:
    fields = dict(payload)
    fields["circuit_name"] = circuit_name
    return FpgaReport(**fields)


# --------------------------------------------------------------------- #
# Process-pool workers.  Module-level so they pickle; each worker process
# memoises its heavyweight state (rebuilt evaluator / synthesizer) per
# context token, so a chunked map pays the setup cost once per process.
# --------------------------------------------------------------------- #
_WORKER_STATE: Dict[str, object] = {}


def _worker_errors(
    task: Tuple[str, Netlist, int, int, int, str, Optional[int], Optional[int], List[Netlist]]
) -> List[dict]:
    (
        context,
        reference,
        max_exhaustive_inputs,
        num_samples,
        seed,
        backend,
        chunk,
        fidelity,
        circuits,
    ) = task
    evaluator = _WORKER_STATE.get(context)
    if evaluator is None:
        evaluator = ErrorEvaluator(
            reference,
            max_exhaustive_inputs=max_exhaustive_inputs,
            num_samples=num_samples,
            seed=seed,
            sim_backend=backend,
            chunk_patterns=chunk,
            fidelity=fidelity,
        )
        _WORKER_STATE[context] = evaluator
    return [_error_report_to_payload(evaluator.evaluate(circuit)) for circuit in circuits]


def _worker_asic(task: Tuple[str, AsicSynthesizer, List[Netlist]]) -> List[dict]:
    context, synthesizer, circuits = task
    cached = _WORKER_STATE.setdefault(context, synthesizer)
    return [_asic_report_to_payload(cached.synthesize(circuit)) for circuit in circuits]


def _worker_fpga(task: Tuple[str, FpgaSynthesizer, List[Netlist]]) -> List[dict]:
    context, synthesizer, circuits = task
    cached = _WORKER_STATE.setdefault(context, synthesizer)
    return [_fpga_report_to_payload(cached.synthesize(circuit)) for circuit in circuits]


def _prepare_accelerator_inputs(accelerator, inputs):
    """Prepared per-input planes/references via the workload protocol.

    Prefers the :class:`repro.workloads.ApproxAccelerator` method name
    (``prepare_inputs``) and falls back to the legacy ``prepare_images``
    spelling for foreign duck-typed accelerators.
    """
    prepare = getattr(accelerator, "prepare_inputs", None)
    if prepare is None:
        prepare = accelerator.prepare_images
    return prepare(inputs)


def _worker_configurations(task) -> List[dict]:
    """Exactly evaluate accelerator configurations against prepared images.

    The accelerator is duck-typed (``prepare_inputs``/``evaluate_prepared``);
    the prepared per-image planes and golden references are memoised per
    context so a chunked map pays the image preparation once per process.
    """
    context, accelerator, images, configurations = task
    prepared = _WORKER_STATE.get(context)
    if prepared is None:
        prepared = _prepare_accelerator_inputs(accelerator, images)
        _WORKER_STATE[context] = prepared
    payloads = []
    for configuration in configurations:
        quality, cost = accelerator.evaluate_prepared(prepared, configuration)
        payloads.append(
            {"quality": float(quality), "cost": {name: float(v) for name, v in cost.items()}}
        )
    return payloads


def _chunk(items: List, num_chunks: int) -> List[List]:
    num_chunks = max(1, min(num_chunks, len(items)))
    bounds = np.linspace(0, len(items), num_chunks + 1).round().astype(int)
    return [items[bounds[i]:bounds[i + 1]] for i in range(num_chunks) if bounds[i] < bounds[i + 1]]


@dataclass
class LibraryEvaluation:
    """Reports for every circuit of one library, in library order."""

    names: List[str]
    errors: List[ErrorReport]
    asic: List[AsicReport]
    fpga: Optional[List[FpgaReport]] = None


class BatchEvaluator:
    """Evaluates libraries of circuits with shared operands, caching and fan-out.

    Parameters
    ----------
    reference:
        Golden reference circuit for error evaluation.  Either this or
        ``error_evaluator`` must be provided before calling
        :meth:`evaluate_errors`.
    error_evaluator:
        A pre-built :class:`~repro.error.ErrorEvaluator` to share (the flow
        passes its own so engine results are bit-identical to the legacy
        serial path).
    asic_synthesizer / fpga_synthesizer:
        Cost-model substrates; built with defaults on first use when omitted.
    cache:
        Shared :class:`EvalCache`; a private in-memory cache is created when
        omitted.  Pass an explicit cache to share hits across flows.
    mode:
        ``"serial"``, ``"process"`` or ``"auto"``.  ``auto`` uses a process
        pool only when the miss set is at least ``parallel_threshold`` and
        more than one CPU is available; anything else runs serially.  Both
        modes produce bit-identical, input-ordered results.
    max_workers:
        Process-pool width (defaults to the CPU count).
    sim_backend:
        Simulation backend key for error evaluation (``"bool"``,
        ``"bitplane"`` or ``"auto"``, see
        :data:`repro.circuits.SIM_BACKENDS`).  Backends are bit-identical
        by contract, so the key is deliberately *not* part of cache keys:
        results computed under one backend are served to every other.
        ``None`` inherits from ``error_evaluator`` when one is passed and
        falls back to ``"auto"``.
    fidelity:
        Explicit pattern-budget rung forwarded to the constructed
        :class:`~repro.error.ErrorEvaluator` (see its ``fidelity``
        parameter): the rung caps error evaluation at that many patterns
        for multi-fidelity search ladders.  The evaluator's method and
        pattern count are part of the ``err`` cache context, so reduced
        rungs are namespaced away from exact results automatically.
    """

    def __init__(
        self,
        reference: Optional[Netlist] = None,
        *,
        error_evaluator: Optional[ErrorEvaluator] = None,
        asic_synthesizer: Optional[AsicSynthesizer] = None,
        fpga_synthesizer: Optional[FpgaSynthesizer] = None,
        cache: Optional[EvalCache] = None,
        mode: str = "auto",
        max_workers: Optional[int] = None,
        parallel_threshold: int = 32,
        max_exhaustive_inputs: int = 18,
        num_samples: int = 8192,
        seed: int = 1234,
        sim_backend: Optional[str] = None,
        fidelity: Optional[int] = None,
    ):
        if mode not in ("auto", "serial", "process"):
            raise ValueError(f"unknown engine mode {mode!r}")
        self.mode = mode
        self.max_workers = max_workers
        self.parallel_threshold = parallel_threshold
        self.cache = cache if cache is not None else EvalCache()

        if sim_backend is None:
            sim_backend = (
                error_evaluator.sim_backend if error_evaluator is not None else "auto"
            )
        validate_sim_backend(sim_backend)  # fail fast on unknown keys
        self.sim_backend = sim_backend

        if error_evaluator is None and reference is not None:
            error_evaluator = ErrorEvaluator(
                reference,
                max_exhaustive_inputs=max_exhaustive_inputs,
                num_samples=num_samples,
                seed=seed,
                sim_backend=sim_backend,
                fidelity=fidelity,
            )
        self.error_evaluator = error_evaluator
        self.asic_synthesizer = asic_synthesizer
        self.fpga_synthesizer = fpga_synthesizer

        self._layout_bits: Dict[Tuple, np.ndarray] = {}
        self._layout_planes: Dict[Tuple, np.ndarray] = {}
        self._prepared_images: Dict[str, object] = {}
        self._error_context: Optional[str] = None
        self._asic_context: Optional[str] = None
        self._fpga_context: Optional[str] = None

    # ------------------------------------------------------------------ #
    # Contexts (everything a cached result depends on besides the circuit)
    # ------------------------------------------------------------------ #
    def _require_error_evaluator(self) -> ErrorEvaluator:
        if self.error_evaluator is None:
            raise ValueError(
                "BatchEvaluator needs a reference circuit or an error_evaluator "
                "to evaluate error metrics"
            )
        return self.error_evaluator

    def _error_ctx(self) -> str:
        # The simulation backend is deliberately excluded: backends are
        # bit-identical by contract (enforced by the differential suite), so
        # results cached under one backend must be shared with every other.
        # Streaming (chunk_patterns) is included when active because the
        # accumulator's float metrics can differ from one-shot values in the
        # last ulp; the default one-shot token is unchanged.
        if self._error_context is None:
            evaluator = self._require_error_evaluator()
            parts = [
                evaluator.reference.fingerprint(),
                evaluator.method,
                evaluator.num_patterns,
                evaluator.max_exhaustive_inputs,
                evaluator.num_samples,
                evaluator.seed,
                evaluator.max_output,
            ]
            if evaluator.streaming:
                parts.append(f"chunk={evaluator.chunk_patterns}")
            self._error_context = blake_token(*parts)
        return self._error_context

    def _asic_ctx(self) -> str:
        if self._asic_context is None:
            if self.asic_synthesizer is None:
                self.asic_synthesizer = AsicSynthesizer()
            synth = self.asic_synthesizer
            self._asic_context = blake_token(
                synth.cell_library,
                synth.clock_period_ns,
                synth.activity_samples,
                synth.activity_seed,
            )
        return self._asic_context

    def _fpga_ctx(self) -> str:
        if self._fpga_context is None:
            if self.fpga_synthesizer is None:
                self.fpga_synthesizer = FpgaSynthesizer()
            synth = self.fpga_synthesizer
            self._fpga_context = blake_token(
                synth.device,
                synth.clock_period_ns,
                synth.activity_samples,
                synth.activity_seed,
            )
        return self._fpga_context

    # ------------------------------------------------------------------ #
    # Batched error evaluation: shared operands, one bit-expansion per layout
    # ------------------------------------------------------------------ #
    def _layout_of(self, circuit: Netlist) -> Tuple:
        return tuple(sorted((name, tuple(bits)) for name, bits in circuit.input_words.items()))

    def _input_bits_for(self, circuit: Netlist) -> np.ndarray:
        layout = self._layout_of(circuit)
        bits = self._layout_bits.get(layout)
        if bits is None:
            evaluator = self._require_error_evaluator()
            bits = expand_operand_bits(circuit, evaluator.operands)
            self._layout_bits[layout] = bits
        return bits

    def _input_planes_for(self, circuit: Netlist) -> np.ndarray:
        """Packed input planes, cached per word layout like the bit matrix.

        The packed backend would otherwise re-pack the shared bit matrix on
        every circuit; packing once per layout keeps the per-circuit cost at
        one `simulate_planes` pass.
        """
        layout = self._layout_of(circuit)
        planes = self._layout_planes.get(layout)
        if planes is None:
            planes = pack_bits(self._input_bits_for(circuit).T)
            self._layout_planes[layout] = planes
        return planes

    def _compute_error_report(self, circuit: Netlist) -> ErrorReport:
        evaluator = self._require_error_evaluator()
        if evaluator.streaming:
            # Streaming evaluators bound peak memory by the chunk size; the
            # shared full-size input-bit matrix would defeat that, so
            # delegate to the evaluator's own chunked loop.
            return evaluator.evaluate(circuit)
        evaluator.check_interface(circuit)
        simulate = resolve_sim_backend(self.sim_backend, patterns=evaluator.num_patterns)
        # Plane-level fast paths: both packed backends accept pre-packed
        # input planes, so pack once per word layout and skip the per-circuit
        # pack entirely (the compiled backend additionally reuses its
        # per-fingerprint program cache across evaluations).
        if simulate is simulate_bits_compiled:
            output_planes = simulate_planes_compiled(circuit, self._input_planes_for(circuit))
            output_bits = unpack_bits(output_planes, evaluator.num_patterns).T
        elif simulate is simulate_bits_packed:
            output_planes = simulate_planes(circuit, self._input_planes_for(circuit))
            output_bits = unpack_bits(output_planes, evaluator.num_patterns).T
        else:
            output_bits = simulate(circuit, self._input_bits_for(circuit))
        outputs = bits_to_words(output_bits)
        metrics = compute_error_metrics(
            evaluator.exact_outputs, outputs, evaluator.max_output
        )
        return ErrorReport(
            circuit_name=circuit.name,
            metrics=metrics,
            num_patterns=evaluator.num_patterns,
            method=evaluator.method,
        )

    # ------------------------------------------------------------------ #
    # Generic cached / fanned-out evaluation
    # ------------------------------------------------------------------ #
    def _resolve_workers(self, num_misses: int) -> int:
        if self.mode == "serial" or num_misses == 0:
            return 0
        cpus = os.cpu_count() or 1
        workers = self.max_workers or cpus
        if self.mode == "process":
            return max(1, workers)
        if num_misses >= self.parallel_threshold and cpus > 1 and workers > 1:
            return workers
        return 0

    def _evaluate(
        self,
        circuits: Sequence[Netlist],
        domain: str,
        context: str,
        compute: Callable[[Netlist], object],
        report_to_payload: Callable[[object], dict],
        payload_to_report: Callable[[dict, str], object],
        make_task: Callable[[str, List[Netlist]], tuple],
        worker: Callable[[tuple], List[dict]],
    ) -> List[object]:
        circuits = list(circuits)
        keys = [cache_key(domain, context, circuit.fingerprint()) for circuit in circuits]
        results: List[Optional[object]] = [None] * len(circuits)

        # Cache probe; structurally identical circuits in one call are
        # computed once and fanned back out to every requesting index.
        pending: Dict[str, List[int]] = {}
        for index, key in enumerate(keys):
            if key in pending:
                pending[key].append(index)
                continue
            hit = self.cache.get(key)
            if hit is not None:
                results[index] = payload_to_report(hit, circuits[index].name)
            else:
                pending[key] = [index]

        miss_keys = list(pending)
        miss_circuits = [circuits[pending[key][0]] for key in miss_keys]
        workers = self._resolve_workers(len(miss_circuits))

        payloads: List[dict]
        if workers:
            chunks = _chunk(miss_circuits, workers)
            tasks = [make_task(context, chunk) for chunk in chunks]
            try:
                with ProcessPoolExecutor(max_workers=len(chunks)) as executor:
                    payloads = [
                        payload
                        for chunk_result in executor.map(worker, tasks)
                        for payload in chunk_result
                    ]
            except (OSError, BrokenExecutor):
                # Sandboxed / fork-restricted environments, or a worker dying
                # mid-run (OOM kill => BrokenProcessPool): degrade to serial.
                payloads = [report_to_payload(compute(circuit)) for circuit in miss_circuits]
        else:
            payloads = [report_to_payload(compute(circuit)) for circuit in miss_circuits]

        for key, payload in zip(miss_keys, payloads):
            self.cache.put(key, payload)
            for index in pending[key]:
                results[index] = payload_to_report(payload, circuits[index].name)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def evaluate_errors(self, circuits: Sequence[Netlist]) -> List[ErrorReport]:
        """Error reports for ``circuits``, bit-identical to the serial path."""
        evaluator = self._require_error_evaluator()
        return self._evaluate(
            circuits,
            domain="err",
            context=self._error_ctx(),
            compute=self._compute_error_report,
            report_to_payload=_error_report_to_payload,
            payload_to_report=_payload_to_error_report,
            make_task=lambda ctx, chunk: (
                ctx,
                evaluator.reference,
                evaluator.max_exhaustive_inputs,
                evaluator.num_samples,
                evaluator.seed,
                self.sim_backend,
                evaluator.chunk_patterns,
                getattr(evaluator, "fidelity", None),
                chunk,
            ),
            worker=_worker_errors,
        )

    def evaluate_asic(self, circuits: Sequence[Netlist]) -> List[AsicReport]:
        """ASIC area / timing / power reports for ``circuits``."""
        context = self._asic_ctx()
        return self._evaluate(
            circuits,
            domain="asic",
            context=context,
            compute=self.asic_synthesizer.synthesize,
            report_to_payload=_asic_report_to_payload,
            payload_to_report=_payload_to_asic_report,
            make_task=lambda ctx, chunk: (ctx, self.asic_synthesizer, chunk),
            worker=_worker_asic,
        )

    def evaluate_fpga(self, circuits: Sequence[Netlist]) -> List[FpgaReport]:
        """FPGA reports (#LUTs, latency, power) for ``circuits``."""
        context = self._fpga_ctx()
        return self._evaluate(
            circuits,
            domain="fpga",
            context=context,
            compute=self.fpga_synthesizer.synthesize,
            report_to_payload=_fpga_report_to_payload,
            payload_to_report=_payload_to_fpga_report,
            make_task=lambda ctx, chunk: (ctx, self.fpga_synthesizer, chunk),
            worker=_worker_fpga,
        )

    def evaluate_configurations(
        self, accelerator, images, configurations, fidelity: Optional[int] = None
    ) -> List[dict]:
        """Exact ``{"quality", "cost"}`` payloads for accelerator configurations.

        The generation-batched counterpart of the per-configuration exact
        evaluation in :mod:`repro.autoax.search`: per-image work (shifted
        planes, golden reference outputs) is prepared once and shared by the
        whole batch, repeated configurations within one call are computed
        once, and large miss sets fan out over the process pool.  Results
        are cached under the same ``axq`` keys the serial path uses
        (:func:`repro.engine.keys.accelerator_context`, which namespaces by
        workload identity), so hits flow in both directions and values are
        bit-identical by construction.

        ``fidelity`` is the multi-fidelity ladder rung: a total-pixel
        budget applied by centre-cropping the input images
        (:func:`repro.workloads.fidelity_inputs`) before evaluation.  A
        budget at or above the full pixel count is an identity -- the call
        is *exactly* a full-fidelity evaluation, sharing its cache keys --
        while a reduced budget namespaces the ``axq`` context by both the
        cropped image set and the rung, so screens never alias exact
        results.

        The accelerator only needs ``multipliers``/``adders`` component
        lists plus ``prepare_inputs`` (or the legacy ``prepare_images``
        spelling) and ``evaluate_prepared`` -- the engine stays decoupled
        from the concrete workload classes in :mod:`repro.workloads`.
        """
        configurations = list(configurations)
        images = list(images)
        reduced = False
        if fidelity is not None:
            from ..workloads.inputs import fidelity_inputs

            images, reduced = fidelity_inputs(images, int(fidelity))
        context = accelerator_context(
            accelerator, images, fidelity=int(fidelity) if reduced else None
        )
        keys = [
            cache_key(
                "axq",
                context,
                configuration_token(config.multiplier_indices, config.adder_indices),
            )
            for config in configurations
        ]
        results: List[Optional[dict]] = [None] * len(configurations)

        pending: Dict[str, List[int]] = {}
        for index, key in enumerate(keys):
            if key in pending:
                pending[key].append(index)
                continue
            hit = self.cache.get(key)
            if hit is not None:
                results[index] = hit
            else:
                pending[key] = [index]

        miss_keys = list(pending)
        if not miss_keys:
            # Fully cached batch (e.g. a warm disk-backed cache): skip the
            # image preparation entirely.
            return results  # type: ignore[return-value]
        miss_configs = [configurations[pending[key][0]] for key in miss_keys]
        workers = self._resolve_workers(len(miss_configs))

        def compute_serial() -> List[dict]:
            prepared = self._prepared_images.get(context)
            if prepared is None:
                prepared = _prepare_accelerator_inputs(accelerator, images)
                # Keep the memo tiny: prepared planes are per-image arrays
                # and sessions rarely juggle more than a few image sets.
                if len(self._prepared_images) >= 4:
                    self._prepared_images.clear()
                self._prepared_images[context] = prepared
            payloads = []
            for config in miss_configs:
                quality, cost = accelerator.evaluate_prepared(prepared, config)
                payloads.append(
                    {
                        "quality": float(quality),
                        "cost": {name: float(v) for name, v in cost.items()},
                    }
                )
            return payloads

        if workers:
            chunks = _chunk(miss_configs, workers)
            tasks = [(context, accelerator, images, chunk) for chunk in chunks]
            try:
                with ProcessPoolExecutor(max_workers=len(chunks)) as executor:
                    payloads = [
                        payload
                        for chunk_result in executor.map(_worker_configurations, tasks)
                        for payload in chunk_result
                    ]
            except (OSError, BrokenExecutor, pickle.PicklingError, TypeError):
                # Sandboxed environments, dead workers, or unpicklable
                # accelerators: degrade to the serial batched path.
                payloads = compute_serial()
        else:
            payloads = compute_serial()

        for key, payload in zip(miss_keys, payloads):
            self.cache.put(key, payload)
            for index in pending[key]:
                results[index] = payload
        return results  # type: ignore[return-value]

    def evaluate_library(self, library, include_fpga: bool = False) -> LibraryEvaluation:
        """Errors + ASIC (and optionally FPGA) reports for a whole library."""
        circuits = list(library)
        return LibraryEvaluation(
            names=[circuit.name for circuit in circuits],
            errors=self.evaluate_errors(circuits),
            asic=self.evaluate_asic(circuits),
            fpga=self.evaluate_fpga(circuits) if include_fpga else None,
        )

    def stats(self):
        """Shortcut to the underlying cache statistics."""
        return self.cache.stats()


# --------------------------------------------------------------------- #
# Public aliases: the stage pipelines (repro.api) checkpoint their
# artifacts with the same payload encoding the cache uses on disk.
# --------------------------------------------------------------------- #
error_report_to_payload = _error_report_to_payload
error_report_from_payload = _payload_to_error_report
asic_report_to_payload = _asic_report_to_payload
asic_report_from_payload = _payload_to_asic_report
fpga_report_to_payload = _fpga_report_to_payload
fpga_report_from_payload = _payload_to_fpga_report

__all__ += [
    "error_report_to_payload",
    "error_report_from_payload",
    "asic_report_to_payload",
    "asic_report_from_payload",
    "fpga_report_to_payload",
    "fpga_report_from_payload",
]
