"""Structural Verilog export of gate-level netlists.

The original EvoApproxLib ships every approximate circuit as synthesisable
Verilog.  This module provides the equivalent export so that generated
libraries can be inspected, archived, or fed to an external tool-chain if one
is available.  The export is purely textual -- nothing in the reproduction
pipeline depends on parsing it back.
"""

from __future__ import annotations

from typing import Dict, List

from .gates import GateType
from .netlist import Netlist

_VERILOG_OPERATORS: Dict[GateType, str] = {
    GateType.AND: "&",
    GateType.OR: "|",
    GateType.XOR: "^",
    GateType.NAND: "&",
    GateType.NOR: "|",
    GateType.XNOR: "^",
    GateType.ANDNOT: "&",
    GateType.ORNOT: "|",
}

_NEGATED_RESULT = {GateType.NAND, GateType.NOR, GateType.XNOR}
_NEGATED_SECOND_OPERAND = {GateType.ANDNOT, GateType.ORNOT}


def _sanitize(name: str) -> str:
    """Make an identifier safe for Verilog."""
    safe = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if not safe or safe[0].isdigit():
        safe = "m_" + safe
    return safe


def to_verilog(netlist: Netlist, module_name: str | None = None) -> str:
    """Render the netlist as a single structural Verilog module."""
    module = _sanitize(module_name or netlist.name)
    node_names: List[str] = [""] * netlist.num_nodes
    for word, bits in netlist.input_words.items():
        for position, node_id in enumerate(bits):
            node_names[node_id] = f"{_sanitize(word)}[{position}]"
    for index in range(netlist.num_gates):
        node_names[netlist.num_inputs + index] = f"n{index}"

    lines: List[str] = []
    ports = [_sanitize(word) for word in netlist.input_words] + ["out"]
    lines.append(f"module {module} ({', '.join(ports)});")
    for word, bits in netlist.input_words.items():
        lines.append(f"  input  [{len(bits) - 1}:0] {_sanitize(word)};")
    lines.append(f"  output [{netlist.num_outputs - 1}:0] out;")
    if netlist.num_gates:
        lines.append(f"  wire n0" + "".join(f", n{i}" for i in range(1, netlist.num_gates)) + ";")

    for index, gate in enumerate(netlist.gates):
        target = node_names[netlist.num_inputs + index]
        if gate.gate_type == GateType.CONST0:
            expression = "1'b0"
        elif gate.gate_type == GateType.CONST1:
            expression = "1'b1"
        elif gate.gate_type == GateType.BUF:
            expression = node_names[gate.a]
        elif gate.gate_type == GateType.NOT:
            expression = f"~{node_names[gate.a]}"
        else:
            operator = _VERILOG_OPERATORS[gate.gate_type]
            left = node_names[gate.a]
            right = node_names[gate.b]
            if gate.gate_type in _NEGATED_SECOND_OPERAND:
                right = f"(~{right})"
            expression = f"{left} {operator} {right}"
            if gate.gate_type in _NEGATED_RESULT:
                expression = f"~({expression})"
        lines.append(f"  assign {target} = {expression};")

    for position, bit in enumerate(netlist.output_bits):
        lines.append(f"  assign out[{position}] = {node_names[bit]};")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
