"""Switching-activity estimation.

Both synthesis substrates (ASIC and FPGA) use dynamic-power models of the
form ``energy = activity * capacitance * V^2``.  The per-node switching
activity is estimated by simulating the circuit on uniformly random operands
and converting signal probabilities to toggle rates under the usual temporal
independence assumption: ``alpha = 2 * p * (1 - p)``.
"""

from __future__ import annotations

import numpy as np

from .netlist import Netlist
from .simulate import random_operands, words_to_bits


def node_signal_probabilities(
    netlist: Netlist, num_samples: int = 256, seed: int = 99
) -> np.ndarray:
    """Probability of each node being logic-1 under uniform random inputs."""
    rng = np.random.default_rng(seed)
    operands = random_operands(netlist, num_samples, rng)
    input_bits = np.zeros((num_samples, netlist.num_inputs), dtype=bool)
    for name, bit_ids in netlist.input_words.items():
        word_bits = words_to_bits(np.asarray(operands[name]), len(bit_ids))
        for position, node_id in enumerate(bit_ids):
            input_bits[:, node_id] = word_bits[:, position]

    values = [input_bits[:, i] for i in range(netlist.num_inputs)]
    zeros = np.zeros(num_samples, dtype=bool)
    from .gates import evaluate_gate

    for gate in netlist.gates:
        a = values[gate.a] if gate.a >= 0 else zeros
        b = values[gate.b] if gate.b >= 0 else zeros
        values.append(evaluate_gate(gate.gate_type, a, b))
    return np.array([v.mean() for v in values], dtype=np.float64)


def node_switching_activities(
    netlist: Netlist, num_samples: int = 256, seed: int = 99
) -> np.ndarray:
    """Toggle rate of each node: ``2 * p * (1 - p)`` with p the signal probability."""
    probabilities = node_signal_probabilities(netlist, num_samples=num_samples, seed=seed)
    return 2.0 * probabilities * (1.0 - probabilities)
