"""Convenience builder for constructing gate-level netlists.

Generators express arithmetic circuits in terms of word-level inputs, bit
signals and small reusable blocks (half adders, full adders, multiplexers).
The builder keeps gates in topological order by construction, so any netlist
it produces satisfies :meth:`Netlist.validate`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .gates import GateType
from .netlist import Gate, Netlist


class NetlistBuilder:
    """Incrementally builds a :class:`Netlist`.

    Typical use::

        builder = NetlistBuilder("adder8", kind="adder")
        a = builder.add_input_word("a", 8)
        b = builder.add_input_word("b", 8)
        ... create gates ...
        netlist = builder.finish(sum_bits)
    """

    def __init__(self, name: str, kind: str, meta: Optional[Dict[str, object]] = None):
        self.name = name
        self.kind = kind
        self.meta: Dict[str, object] = dict(meta or {})
        self._input_words: Dict[str, Tuple[int, ...]] = {}
        self._num_inputs = 0
        self._gates: List[Gate] = []
        self._const_cache: Dict[GateType, int] = {}

    # ------------------------------------------------------------------ #
    # Inputs and raw gates
    # ------------------------------------------------------------------ #
    def add_input_word(self, name: str, width: int) -> List[int]:
        """Declare an input word; returns its bit node ids, LSB first."""
        if name in self._input_words:
            raise ValueError(f"input word {name!r} already declared")
        if self._gates:
            raise ValueError("all input words must be declared before any gate")
        bits = tuple(range(self._num_inputs, self._num_inputs + width))
        self._num_inputs += width
        self._input_words[name] = bits
        return list(bits)

    def add_gate(self, gate_type: GateType, a: int = -1, b: int = -1) -> int:
        """Append a gate; returns the node id of its output."""
        node_id = self._num_inputs + len(self._gates)
        for operand in (a, b):
            if operand >= node_id:
                raise ValueError(
                    f"gate operand {operand} is not yet defined (next id {node_id})"
                )
        self._gates.append(Gate(gate_type, a, b))
        return node_id

    # ------------------------------------------------------------------ #
    # Logic helpers
    # ------------------------------------------------------------------ #
    def const0(self) -> int:
        """Node id of a shared constant-0 signal."""
        if GateType.CONST0 not in self._const_cache:
            self._const_cache[GateType.CONST0] = self.add_gate(GateType.CONST0)
        return self._const_cache[GateType.CONST0]

    def const1(self) -> int:
        """Node id of a shared constant-1 signal."""
        if GateType.CONST1 not in self._const_cache:
            self._const_cache[GateType.CONST1] = self.add_gate(GateType.CONST1)
        return self._const_cache[GateType.CONST1]

    def buf(self, a: int) -> int:
        return self.add_gate(GateType.BUF, a)

    def not_(self, a: int) -> int:
        return self.add_gate(GateType.NOT, a)

    def and_(self, a: int, b: int) -> int:
        return self.add_gate(GateType.AND, a, b)

    def or_(self, a: int, b: int) -> int:
        return self.add_gate(GateType.OR, a, b)

    def xor(self, a: int, b: int) -> int:
        return self.add_gate(GateType.XOR, a, b)

    def nand(self, a: int, b: int) -> int:
        return self.add_gate(GateType.NAND, a, b)

    def nor(self, a: int, b: int) -> int:
        return self.add_gate(GateType.NOR, a, b)

    def xnor(self, a: int, b: int) -> int:
        return self.add_gate(GateType.XNOR, a, b)

    def andnot(self, a: int, b: int) -> int:
        return self.add_gate(GateType.ANDNOT, a, b)

    def mux(self, select: int, when_false: int, when_true: int) -> int:
        """2:1 multiplexer built from primitive gates."""
        low = self.andnot(when_false, select)
        high = self.and_(when_true, select)
        return self.or_(low, high)

    # ------------------------------------------------------------------ #
    # Arithmetic blocks
    # ------------------------------------------------------------------ #
    def half_adder(self, a: int, b: int) -> Tuple[int, int]:
        """Exact half adder; returns (sum, carry)."""
        return self.xor(a, b), self.and_(a, b)

    def full_adder(self, a: int, b: int, cin: int) -> Tuple[int, int]:
        """Exact full adder; returns (sum, carry)."""
        partial = self.xor(a, b)
        total = self.xor(partial, cin)
        carry = self.or_(self.and_(a, b), self.and_(partial, cin))
        return total, carry

    def approx_full_adder(self, a: int, b: int, cin: int, variant: int) -> Tuple[int, int]:
        """Approximate full adder; returns (sum, carry).

        Variants follow the classic approximate-mirror-adder style
        simplifications used throughout the approximate-arithmetic
        literature:

        * ``0`` -- exact full adder.
        * ``1`` -- sum approximated as NOT(carry) (AMA-like), exact carry.
        * ``2`` -- carry approximated as ``a`` (propagates one operand),
          sum exact with the approximate carry.
        * ``3`` -- OR-based adder: sum = a OR b OR cin, carry = a AND b.
        * ``4`` -- sum = a XOR b (carry-in ignored), carry = a AND b.
        """
        if variant == 0:
            return self.full_adder(a, b, cin)
        if variant == 1:
            carry = self.or_(self.and_(a, b), self.and_(self.xor(a, b), cin))
            return self.not_(carry), carry
        if variant == 2:
            carry = self.buf(a)
            total = self.xor(self.xor(a, b), cin)
            return total, carry
        if variant == 3:
            total = self.or_(self.or_(a, b), cin)
            carry = self.and_(a, b)
            return total, carry
        if variant == 4:
            return self.xor(a, b), self.and_(a, b)
        raise ValueError(f"unknown approximate full-adder variant {variant}")

    def ripple_chain(
        self, a_bits: Sequence[int], b_bits: Sequence[int], cin: Optional[int] = None
    ) -> Tuple[List[int], int]:
        """Exact ripple-carry addition of two equal-width bit vectors.

        Returns (sum_bits, carry_out).
        """
        if len(a_bits) != len(b_bits):
            raise ValueError("ripple_chain operands must have equal width")
        carry = cin if cin is not None else self.const0()
        sums: List[int] = []
        for a_bit, b_bit in zip(a_bits, b_bits):
            s, carry = self.full_adder(a_bit, b_bit, carry)
            sums.append(s)
        return sums, carry

    # ------------------------------------------------------------------ #
    # Finalisation
    # ------------------------------------------------------------------ #
    def finish(self, output_bits: Sequence[int], meta: Optional[Dict[str, object]] = None) -> Netlist:
        """Assemble the final :class:`Netlist` (validated)."""
        final_meta = dict(self.meta)
        if meta:
            final_meta.update(meta)
        netlist = Netlist(
            name=self.name,
            kind=self.kind,
            input_words=dict(self._input_words),
            output_bits=tuple(output_bits),
            gates=list(self._gates),
            meta=final_meta,
        )
        netlist.validate()
        return netlist
