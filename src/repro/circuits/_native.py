"""Optional native executor for compiled op tapes.

The pure-NumPy tape executor in :mod:`repro.circuits.compiled` is
memory-bandwidth bound: every fused group gathers whole operand rows and
writes whole destination rows through DRAM, so wide circuits stream tens
of megabytes per simulation no matter how few Python calls remain.  This
module removes that wall with a cache-tiled C interpreter for the *same*
flat tape: planes are processed in tiles of :data:`TILE` ``uint64`` lanes
so the entire slot matrix for one tile stays L2-resident, turning the
per-op traffic into cache hits.

The interpreter is a fixed ~40-line C source (no per-circuit code
generation).  On first use it is compiled once per machine with the system
C compiler into a content-addressed shared library under
``~/.cache/repro-netlist/`` (falling back to a temp directory) and loaded
through :mod:`ctypes` -- stdlib only, no new Python dependencies.  If no
compiler is available, compilation fails, or ``REPRO_NO_NATIVE=1`` is set,
everything silently falls back to the NumPy executor, which is always
present and bit-identical; the differential suite pins both paths.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import sys
import tempfile
from typing import Optional

import numpy as np

__all__ = ["TILE", "native_available", "run_tape_native"]

#: Planes (uint64 lanes) per cache tile: 64 planes = 4096 patterns per pass,
#: 512 bytes per slot row, so even multi-thousand-slot tapes stay L2-resident.
TILE = 64

#: Environment variable that disables the native executor when set to a
#: non-empty value (used by tests to pin the NumPy fallback, and as an
#: escape hatch on machines where the cached library misbehaves).
DISABLE_ENV = "REPRO_NO_NATIVE"

_C_SOURCE = """
#include <stdint.h>
#include <string.h>

#define TILE %(tile)dL

void repro_run_tape(
    const int32_t *tape, long num_ops,
    const uint64_t *inputs, long num_inputs, long planes,
    long num_slots, long zero_slot, long one_slot,
    const int64_t *out_index, const uint64_t *out_invert, long num_outputs,
    uint64_t *outputs, uint64_t *scratch)
{
    (void)num_slots;
    for (long t0 = 0; t0 < planes; t0 += TILE) {
        long tw = planes - t0 < TILE ? planes - t0 : TILE;
        for (long i = 0; i < num_inputs; ++i)
            memcpy(scratch + i * TILE, inputs + i * planes + t0,
                   (size_t)tw * sizeof(uint64_t));
        memset(scratch + zero_slot * TILE, 0x00, (size_t)tw * sizeof(uint64_t));
        memset(scratch + one_slot * TILE, 0xFF, (size_t)tw * sizeof(uint64_t));
        const int32_t *op = tape;
        for (long k = 0; k < num_ops; ++k, op += 4) {
            const uint64_t *a = scratch + (long)op[1] * TILE;
            const uint64_t *b = scratch + (long)op[2] * TILE;
            uint64_t *d = scratch + (long)op[3] * TILE;
            long j;
            switch (op[0]) {
            case 0: for (j = 0; j < tw; ++j) d[j] = a[j] & b[j]; break;
            case 1: for (j = 0; j < tw; ++j) d[j] = a[j] | b[j]; break;
            case 2: for (j = 0; j < tw; ++j) d[j] = a[j] ^ b[j]; break;
            case 3: for (j = 0; j < tw; ++j) d[j] = a[j] & ~b[j]; break;
            case 4: for (j = 0; j < tw; ++j) d[j] = a[j] | ~b[j]; break;
            }
        }
        for (long k = 0; k < num_outputs; ++k) {
            const uint64_t *src = scratch + out_index[k] * TILE;
            uint64_t inv = out_invert[k];
            uint64_t *d = outputs + k * planes + t0;
            for (long j = 0; j < tw; ++j) d[j] = src[j] ^ inv;
        }
    }
}
""" % {"tile": TILE}

_lib: Optional[ctypes.CDLL] = None
_load_attempted = False


def _cache_dir() -> str:
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    path = os.path.join(base, "repro-netlist")
    try:
        os.makedirs(path, exist_ok=True)
        return path
    except OSError:
        return tempfile.gettempdir()


def _build_library() -> Optional[str]:
    """Compile the interpreter into a content-addressed .so; None on failure."""
    digest = hashlib.blake2b(_C_SOURCE.encode(), digest_size=8).hexdigest()
    directory = _cache_dir()
    suffix = ".pyd" if sys.platform == "win32" else ".so"
    library_path = os.path.join(directory, f"tape_exec_{digest}{suffix}")
    if os.path.exists(library_path):
        return library_path
    compiler = os.environ.get("CC", "cc")
    try:
        fd, source_path = tempfile.mkstemp(suffix=".c", dir=directory)
        with os.fdopen(fd, "w") as handle:
            handle.write(_C_SOURCE)
        build_path = library_path + f".build-{os.getpid()}"
        for extra in (["-march=native"], []):
            result = subprocess.run(
                [compiler, "-O3", "-fPIC", "-shared", *extra, "-o", build_path, source_path],
                capture_output=True,
                timeout=120,
            )
            if result.returncode == 0:
                os.replace(build_path, library_path)  # atomic under races
                return library_path
        return None
    except (OSError, subprocess.SubprocessError):
        return None
    finally:
        try:
            os.unlink(source_path)
        except (OSError, UnboundLocalError):
            pass


def _load() -> Optional[ctypes.CDLL]:
    global _lib, _load_attempted
    if _load_attempted:
        return _lib
    _load_attempted = True
    if os.environ.get(DISABLE_ENV):
        return None
    library_path = _build_library()
    if library_path is None:
        return None
    try:
        lib = ctypes.CDLL(library_path)
        lib.repro_run_tape.restype = None
        lib.repro_run_tape.argtypes = [
            ctypes.c_void_p, ctypes.c_long,  # tape, num_ops
            ctypes.c_void_p, ctypes.c_long, ctypes.c_long,  # inputs, n_in, planes
            ctypes.c_long, ctypes.c_long, ctypes.c_long,  # n_slots, zero, one
            ctypes.c_void_p, ctypes.c_void_p, ctypes.c_long,  # out_idx, out_inv, n_out
            ctypes.c_void_p, ctypes.c_void_p,  # outputs, scratch
        ]
    except OSError:
        return None
    _lib = lib
    return _lib


def native_available() -> bool:
    """True when the ctypes tape executor compiled, loaded, and is enabled."""
    return _load() is not None


def run_tape_native(
    tape: np.ndarray,
    input_planes: np.ndarray,
    num_slots: int,
    zero_slot: int,
    one_slot: int,
    out_index: np.ndarray,
    out_invert: np.ndarray,
    outputs: np.ndarray,
    scratch: np.ndarray,
) -> bool:
    """Run one compiled tape natively; returns False if unavailable.

    All arrays must be C-contiguous with the dtypes produced by
    ``compile_netlist`` (``tape``: int32 ``(num_ops, 4)``; planes/outputs/
    scratch: uint64; ``out_index``: int64; ``out_invert``: one uint64 mask
    per output).  ``outputs`` is written in place.
    """
    lib = _load()
    if lib is None:
        return False
    lib.repro_run_tape(
        tape.ctypes.data, tape.shape[0],
        input_planes.ctypes.data, input_planes.shape[0], input_planes.shape[1],
        num_slots, zero_slot, one_slot,
        out_index.ctypes.data, out_invert.ctypes.data, out_index.shape[0],
        outputs.ctypes.data, scratch.ctypes.data,
    )
    return True
