"""Primitive gate types used by the gate-level circuit IR.

Every circuit in this project -- exact or approximate, adder or multiplier --
is represented as a directed acyclic graph of two-input (or one-input)
primitive gates.  The gate alphabet deliberately matches what a typical ASIC
standard-cell library and an FPGA LUT mapper both understand, so the same
netlist can be costed by both synthesis substrates.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict

import numpy as np


class GateType(enum.IntEnum):
    """Primitive gate operations.

    ``CONST0``/``CONST1`` take no inputs, ``BUF``/``NOT`` take one input and
    all remaining gates take two inputs.
    """

    CONST0 = 0
    CONST1 = 1
    BUF = 2
    NOT = 3
    AND = 4
    OR = 5
    XOR = 6
    NAND = 7
    NOR = 8
    XNOR = 9
    ANDNOT = 10  # a AND (NOT b)
    ORNOT = 11   # a OR (NOT b)


#: Number of inputs consumed by each gate type.
GATE_ARITY: Dict[GateType, int] = {
    GateType.CONST0: 0,
    GateType.CONST1: 0,
    GateType.BUF: 1,
    GateType.NOT: 1,
    GateType.AND: 2,
    GateType.OR: 2,
    GateType.XOR: 2,
    GateType.NAND: 2,
    GateType.NOR: 2,
    GateType.XNOR: 2,
    GateType.ANDNOT: 2,
    GateType.ORNOT: 2,
}

#: Gate types with exactly two inputs.
TWO_INPUT_GATES = tuple(g for g, arity in GATE_ARITY.items() if arity == 2)

#: Gate types with exactly one input.
ONE_INPUT_GATES = (GateType.BUF, GateType.NOT)

#: Gate types with no inputs.
CONSTANT_GATES = (GateType.CONST0, GateType.CONST1)


def _const0(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.zeros_like(a, dtype=bool)


def _const1(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.ones_like(a, dtype=bool)


#: Vectorised boolean semantics of every gate type.  Unary gates ignore ``b``
#: and constant gates ignore both operands (they receive a reference array so
#: the result has the right shape).
GATE_FUNCTIONS: Dict[GateType, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    GateType.CONST0: _const0,
    GateType.CONST1: _const1,
    GateType.BUF: lambda a, b: a.copy(),
    GateType.NOT: lambda a, b: np.logical_not(a),
    GateType.AND: np.logical_and,
    GateType.OR: np.logical_or,
    GateType.XOR: np.logical_xor,
    GateType.NAND: lambda a, b: np.logical_not(np.logical_and(a, b)),
    GateType.NOR: lambda a, b: np.logical_not(np.logical_or(a, b)),
    GateType.XNOR: lambda a, b: np.logical_not(np.logical_xor(a, b)),
    GateType.ANDNOT: lambda a, b: np.logical_and(a, np.logical_not(b)),
    GateType.ORNOT: lambda a, b: np.logical_or(a, np.logical_not(b)),
}


def evaluate_gate(gate_type: GateType, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Evaluate a single gate on vectorised boolean operands.

    Parameters
    ----------
    gate_type:
        The primitive operation.
    a, b:
        Boolean operand arrays of identical shape.  For unary and constant
        gates ``b`` (and ``a`` for constants) is only used to size the result.
    """
    return GATE_FUNCTIONS[gate_type](a, b)


#: All-ones lane used by the packed (bit-plane) gate semantics.
PLANE_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

#: Packed counterparts of :data:`GATE_FUNCTIONS`: the same truth tables
#: expressed as bitwise operations on ``uint64`` planes, where every lane
#: carries 64 input patterns (see :mod:`repro.circuits.bitplane`).  Padding
#: lanes beyond the real pattern count may hold garbage (e.g. NOT turns
#: zero-padding into ones); consumers must slice after unpacking.  The
#: simulator's allocation-free in-place kernels in ``bitplane.py`` mirror
#: this table; per-gate-type differential tests pin both to
#: :data:`GATE_FUNCTIONS`.
PACKED_GATE_FUNCTIONS: Dict[GateType, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    GateType.CONST0: lambda a, b: np.zeros_like(a),
    GateType.CONST1: lambda a, b: np.full_like(a, PLANE_ONES),
    GateType.BUF: lambda a, b: a.copy(),
    GateType.NOT: lambda a, b: np.bitwise_not(a),
    GateType.AND: np.bitwise_and,
    GateType.OR: np.bitwise_or,
    GateType.XOR: np.bitwise_xor,
    GateType.NAND: lambda a, b: np.bitwise_not(np.bitwise_and(a, b)),
    GateType.NOR: lambda a, b: np.bitwise_not(np.bitwise_or(a, b)),
    GateType.XNOR: lambda a, b: np.bitwise_not(np.bitwise_xor(a, b)),
    GateType.ANDNOT: lambda a, b: np.bitwise_and(a, np.bitwise_not(b)),
    GateType.ORNOT: lambda a, b: np.bitwise_or(a, np.bitwise_not(b)),
}


def evaluate_gate_packed(gate_type: GateType, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Evaluate a single gate on packed ``uint64`` bit-plane operands.

    Operand lanes carry 64 boolean patterns each; the result is the packed
    equivalent of :func:`evaluate_gate` on the unpacked patterns.  As with
    :func:`evaluate_gate`, unary gates ignore ``b`` and constant gates use
    the operands only to size the result.
    """
    return PACKED_GATE_FUNCTIONS[gate_type](a, b)


def gate_truth_table(gate_type: GateType) -> np.ndarray:
    """Return the 4-entry truth table of a two-input gate.

    The entries are ordered by (a, b) = (0,0), (0,1), (1,0), (1,1).  Unary and
    constant gates are broadcast over the unused operand so the table is
    always 4 entries long; this is convenient for LUT mapping.
    """
    a = np.array([False, False, True, True])
    b = np.array([False, True, False, True])
    return evaluate_gate(gate_type, a, b)


#: Gate types whose output is independent of its inputs for at least one
#: operand value; used by the perturbation engine to reason about
#: controllability.
SYMMETRIC_GATES = (
    GateType.AND,
    GateType.OR,
    GateType.XOR,
    GateType.NAND,
    GateType.NOR,
    GateType.XNOR,
)


def is_symmetric(gate_type: GateType) -> bool:
    """Whether swapping the two operands leaves the gate function unchanged."""
    return gate_type in SYMMETRIC_GATES
