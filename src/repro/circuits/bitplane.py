"""Packed bit-plane simulation backend.

The default (``"bool"``) simulation backend spends one NumPy byte per
pattern per net.  This module packs 64 patterns into each lane of a
``uint64`` *bit plane* per net -- the classic bit-parallel trick behind
EvoApproxLib's C models -- so every gate evaluation processes 64 patterns
per machine word: 8x less memory traffic and up to 64x less gate-evaluation
work.  :func:`simulate_bits_packed` is a drop-in, bit-identical replacement
for :func:`repro.circuits.simulate.simulate_bits` and is registered in the
:data:`~repro.circuits.simulate.SIM_BACKENDS` registry under ``"bitplane"``.

Layout: a boolean vector of ``patterns`` values packs into
``num_planes(patterns)`` lanes; pattern ``p`` lives in lane ``p // 64``.
The bit position within a lane follows the platform's byte order (packing
and unpacking are always exact inverses, and the bitwise gate semantics are
position-independent, so simulation results never depend on endianness).
Padding bits beyond the real pattern count are unspecified -- inverting
gates turn zero padding into ones -- and are sliced off by
:func:`unpack_bits`.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from .gates import PLANE_ONES, GateType
from .netlist import Netlist

__all__ = [
    "PLANE_WIDTH",
    "num_planes",
    "pack_bits",
    "unpack_bits",
    "simulate_planes",
    "simulate_bits_packed",
]

#: Patterns carried per ``uint64`` lane.
PLANE_WIDTH = 64


def num_planes(num_patterns: int) -> int:
    """Lanes needed to hold ``num_patterns`` packed patterns."""
    if num_patterns < 0:
        raise ValueError("num_patterns must be non-negative")
    return -(-num_patterns // PLANE_WIDTH)


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack boolean patterns along the last axis into ``uint64`` planes.

    A ``(..., patterns)`` boolean array becomes a
    ``(..., num_planes(patterns))`` ``uint64`` array; the tail of the last
    plane is zero-padded when ``patterns`` is not a multiple of 64.
    """
    bits = np.asarray(bits, dtype=bool)
    patterns = bits.shape[-1]
    padded = num_planes(patterns) * PLANE_WIDTH
    if padded != patterns:
        pad = np.zeros(bits.shape[:-1] + (padded - patterns,), dtype=bool)
        bits = np.concatenate([bits, pad], axis=-1)
    # ``np.packbits`` is ~2.5x slower on strided input; the common caller
    # packs a transposed (net, patterns) view, so make it contiguous first.
    packed_bytes = np.ascontiguousarray(
        np.packbits(np.ascontiguousarray(bits), axis=-1, bitorder="little")
    )
    return packed_bytes.view(np.uint64)


def unpack_bits(packed: np.ndarray, num_patterns: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: planes back to a boolean pattern axis.

    ``num_patterns`` selects how many patterns to keep from the last plane
    (packed arrays carry no pattern count of their own); it must fit the
    plane capacity.
    """
    packed = np.ascontiguousarray(packed, dtype=np.uint64)
    capacity = packed.shape[-1] * PLANE_WIDTH
    if not 0 <= num_patterns <= capacity:
        raise ValueError(
            f"num_patterns {num_patterns} does not fit the packed capacity of "
            f"{capacity} patterns"
        )
    bits = np.unpackbits(packed.view(np.uint8), axis=-1, bitorder="little")
    return bits[..., :num_patterns].astype(bool)


# --------------------------------------------------------------------- #
# In-place gate kernels.  The simulation loop writes every gate's result
# into a preallocated row of the plane matrix, so a full netlist pass does
# no per-gate allocation; inverting gates compute into the output row and
# invert it in place.  Operand rows always have a smaller node id than the
# output row (topological order), so ``out`` never aliases ``a``/``b``.
# These kernels must stay semantically identical to
# ``gates.PACKED_GATE_FUNCTIONS`` (and hence ``gates.GATE_FUNCTIONS``);
# the per-gate-type differential tests in tests/test_sim_backends.py pin
# all three tables to each other.
# --------------------------------------------------------------------- #
def _nand(a: np.ndarray, b: np.ndarray, out: np.ndarray) -> None:
    np.bitwise_and(a, b, out=out)
    np.bitwise_not(out, out=out)


def _nor(a: np.ndarray, b: np.ndarray, out: np.ndarray) -> None:
    np.bitwise_or(a, b, out=out)
    np.bitwise_not(out, out=out)


def _xnor(a: np.ndarray, b: np.ndarray, out: np.ndarray) -> None:
    np.bitwise_xor(a, b, out=out)
    np.bitwise_not(out, out=out)


def _andnot(a: np.ndarray, b: np.ndarray, out: np.ndarray) -> None:
    np.bitwise_not(b, out=out)
    np.bitwise_and(a, out, out=out)


def _ornot(a: np.ndarray, b: np.ndarray, out: np.ndarray) -> None:
    np.bitwise_not(b, out=out)
    np.bitwise_or(a, out, out=out)


_INPLACE_GATE_OPS: Dict[GateType, Callable[[np.ndarray, np.ndarray, np.ndarray], None]] = {
    GateType.CONST0: lambda a, b, out: out.fill(0),
    GateType.CONST1: lambda a, b, out: out.fill(PLANE_ONES),
    GateType.BUF: lambda a, b, out: np.copyto(out, a),
    GateType.NOT: lambda a, b, out: np.bitwise_not(a, out=out),
    GateType.AND: lambda a, b, out: np.bitwise_and(a, b, out=out),
    GateType.OR: lambda a, b, out: np.bitwise_or(a, b, out=out),
    GateType.XOR: lambda a, b, out: np.bitwise_xor(a, b, out=out),
    GateType.NAND: _nand,
    GateType.NOR: _nor,
    GateType.XNOR: _xnor,
    GateType.ANDNOT: _andnot,
    GateType.ORNOT: _ornot,
}


def simulate_planes(netlist: Netlist, input_planes: np.ndarray) -> np.ndarray:
    """Simulate on pre-packed input planes, returning packed output planes.

    ``input_planes`` is a ``(num_inputs, planes)`` ``uint64`` matrix (net
    major, as produced by ``pack_bits(input_bits.T)``); the result is the
    ``(num_outputs, planes)`` packed output.  This is the allocation-free
    core of the backend: callers that evaluate many circuits on the same
    operand set (the batch evaluator) pack once and reuse the planes.
    """
    input_planes = np.ascontiguousarray(input_planes, dtype=np.uint64)
    if input_planes.ndim != 2 or input_planes.shape[0] != netlist.num_inputs:
        raise ValueError(
            f"expected input planes of shape ({netlist.num_inputs}, planes), "
            f"got {input_planes.shape}"
        )
    planes = input_planes.shape[1]
    num_inputs = netlist.num_inputs
    values = np.empty((netlist.num_nodes, planes), dtype=np.uint64)
    values[:num_inputs] = input_planes
    floating = np.zeros(planes, dtype=np.uint64)
    for index, gate in enumerate(netlist.gates):
        out = values[num_inputs + index]
        a = values[gate.a] if gate.a >= 0 else floating
        b = values[gate.b] if gate.b >= 0 else floating
        _INPLACE_GATE_OPS[gate.gate_type](a, b, out)
    return values[list(netlist.output_bits)]


def simulate_bits_packed(netlist: Netlist, input_bits: np.ndarray) -> np.ndarray:
    """Bit-identical packed counterpart of :func:`~repro.circuits.simulate.simulate_bits`.

    Takes the same (patterns, num_inputs) boolean matrix and returns the
    same (patterns, num_outputs) boolean matrix; internally the patterns are
    packed into ``uint64`` planes, simulated 64 patterns per lane and
    unpacked again.
    """
    input_bits = np.asarray(input_bits, dtype=bool)
    if input_bits.ndim != 2 or input_bits.shape[1] != netlist.num_inputs:
        raise ValueError(
            f"expected input matrix of shape (patterns, {netlist.num_inputs}), "
            f"got {input_bits.shape}"
        )
    patterns = input_bits.shape[0]
    output_planes = simulate_planes(netlist, pack_bits(input_bits.T))
    return unpack_bits(output_planes, patterns).T
