"""Structural metrics of gate-level netlists.

These metrics serve two purposes: they are the raw material for the ML
feature vectors (:mod:`repro.features`) and they provide quick sanity checks
in tests (an approximate circuit should never be *larger* than it claims).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from .gates import GateType
from .netlist import Netlist


@dataclass(frozen=True)
class StructuralMetrics:
    """Summary of a netlist's structure."""

    num_inputs: int
    num_outputs: int
    num_gates: int
    live_gates: int
    depth: int
    gate_counts: Dict[str, int]
    max_fanout: int
    mean_fanout: float
    constant_outputs: int
    passthrough_outputs: int

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary form (gate counts prefixed with ``count_``)."""
        flat: Dict[str, float] = {
            "num_inputs": self.num_inputs,
            "num_outputs": self.num_outputs,
            "num_gates": self.num_gates,
            "live_gates": self.live_gates,
            "depth": self.depth,
            "max_fanout": self.max_fanout,
            "mean_fanout": self.mean_fanout,
            "constant_outputs": self.constant_outputs,
            "passthrough_outputs": self.passthrough_outputs,
        }
        for gate_name, count in self.gate_counts.items():
            flat[f"count_{gate_name.lower()}"] = count
        return flat


def gate_type_counts(netlist: Netlist, live_only: bool = True) -> Dict[str, int]:
    """Number of gates of each type, optionally restricted to live logic."""
    counts = {gate_type.name: 0 for gate_type in GateType}
    if live_only:
        mask = netlist.transitive_fanin()
    for index, gate in enumerate(netlist.gates):
        if live_only and not mask[netlist.gate_node_id(index)]:
            continue
        counts[gate.gate_type.name] += 1
    return counts


def structural_metrics(netlist: Netlist) -> StructuralMetrics:
    """Compute the full structural summary of a netlist."""
    fanouts = netlist.fanout_counts()
    live_mask = netlist.transitive_fanin()
    live_fanouts = fanouts[live_mask] if live_mask.any() else np.zeros(1)

    constant_outputs = 0
    passthrough_outputs = 0
    for bit in netlist.output_bits:
        if netlist.is_input_node(bit):
            passthrough_outputs += 1
            continue
        gate = netlist.gate_of_node(bit)
        if gate.gate_type in (GateType.CONST0, GateType.CONST1):
            constant_outputs += 1
        elif gate.gate_type == GateType.BUF and netlist.is_input_node(gate.a):
            passthrough_outputs += 1

    return StructuralMetrics(
        num_inputs=netlist.num_inputs,
        num_outputs=netlist.num_outputs,
        num_gates=netlist.num_gates,
        live_gates=netlist.live_gate_count(),
        depth=netlist.depth(),
        gate_counts=gate_type_counts(netlist, live_only=True),
        max_fanout=int(fanouts.max()) if fanouts.size else 0,
        mean_fanout=float(live_fanouts.mean()) if live_fanouts.size else 0.0,
        constant_outputs=constant_outputs,
        passthrough_outputs=passthrough_outputs,
    )
