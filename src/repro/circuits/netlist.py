"""Gate-level netlist intermediate representation.

A :class:`Netlist` is an immutable-ish DAG of primitive gates together with a
word-level interface (named input words and a single output word, all LSB
first).  Node identifiers are dense integers: ids ``0 .. num_inputs-1`` are
primary inputs, id ``num_inputs + i`` is the output of the ``i``-th gate.
Gates are stored in topological order (a gate may only reference nodes with a
smaller id), which makes simulation, mapping and cost analysis simple linear
passes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .gates import GATE_ARITY, GateType

#: Version tag mixed into every structural fingerprint so cached evaluation
#: results are invalidated if the hashing scheme ever changes.
_FINGERPRINT_VERSION = b"nl-fp-v1"


@dataclass(frozen=True)
class Gate:
    """A single primitive gate instance.

    ``a`` and ``b`` are node ids of the operands; unused operands are ``-1``
    (unary gates use only ``a``, constant gates use neither).
    """

    gate_type: GateType
    a: int = -1
    b: int = -1

    @property
    def arity(self) -> int:
        return GATE_ARITY[self.gate_type]

    def operands(self) -> Tuple[int, ...]:
        """Node ids actually read by this gate."""
        if self.arity == 0:
            return ()
        if self.arity == 1:
            return (self.a,)
        return (self.a, self.b)


class NetlistError(ValueError):
    """Raised when a netlist is structurally invalid."""


@dataclass
class Netlist:
    """A combinational gate-level circuit with a word-level interface.

    Attributes
    ----------
    name:
        Human readable identifier, unique within a circuit library.
    kind:
        Functional class of the circuit, e.g. ``"adder"`` or ``"multiplier"``.
    input_words:
        Mapping from word name to the tuple of primary-input node ids that
        form the word, least-significant bit first.
    output_bits:
        Node ids forming the output word, least-significant bit first.  Any
        node id (input or gate output) may appear here, including repeats.
    gates:
        Gates in topological order.
    meta:
        Free-form metadata (generator family, seed, bit-width, ...).
    """

    name: str
    kind: str
    input_words: Dict[str, Tuple[int, ...]]
    output_bits: Tuple[int, ...]
    gates: List[Gate]
    meta: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Basic structure
    # ------------------------------------------------------------------ #
    @property
    def num_inputs(self) -> int:
        """Number of primary-input bits."""
        return sum(len(bits) for bits in self.input_words.values())

    @property
    def num_gates(self) -> int:
        return len(self.gates)

    @property
    def num_nodes(self) -> int:
        """Total node count (primary inputs + gate outputs)."""
        return self.num_inputs + self.num_gates

    @property
    def num_outputs(self) -> int:
        return len(self.output_bits)

    @property
    def input_names(self) -> Tuple[str, ...]:
        return tuple(self.input_words.keys())

    def gate_node_id(self, gate_index: int) -> int:
        """Node id of the output of gate ``gate_index``."""
        return self.num_inputs + gate_index

    def gate_of_node(self, node_id: int) -> Gate:
        """Gate driving ``node_id``; raises for primary inputs."""
        if node_id < self.num_inputs:
            raise NetlistError(f"node {node_id} is a primary input, not a gate")
        return self.gates[node_id - self.num_inputs]

    def is_input_node(self, node_id: int) -> bool:
        return 0 <= node_id < self.num_inputs

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check structural invariants, raising :class:`NetlistError` if broken."""
        seen_inputs: set = set()
        for word, bits in self.input_words.items():
            for bit in bits:
                if not (0 <= bit < self.num_inputs):
                    raise NetlistError(
                        f"input word {word!r} references node {bit} outside the "
                        f"primary-input range [0, {self.num_inputs})"
                    )
                if bit in seen_inputs:
                    raise NetlistError(f"input node {bit} assigned to two word bits")
                seen_inputs.add(bit)
        if len(seen_inputs) != self.num_inputs:
            raise NetlistError("some primary inputs are not part of any input word")

        for index, gate in enumerate(self.gates):
            node_id = self.gate_node_id(index)
            for operand in gate.operands():
                if not (0 <= operand < node_id):
                    raise NetlistError(
                        f"gate {index} ({gate.gate_type.name}) references node "
                        f"{operand}, which is not defined before node {node_id}; "
                        "gates must be in topological order"
                    )

        for bit in self.output_bits:
            if not (0 <= bit < self.num_nodes):
                raise NetlistError(f"output references undefined node {bit}")

    # ------------------------------------------------------------------ #
    # Graph queries
    # ------------------------------------------------------------------ #
    def fanout_counts(self) -> np.ndarray:
        """Number of gate/output references to each node."""
        counts = np.zeros(self.num_nodes, dtype=np.int64)
        for gate in self.gates:
            for operand in gate.operands():
                counts[operand] += 1
        for bit in self.output_bits:
            counts[bit] += 1
        return counts

    def node_depths(self) -> np.ndarray:
        """Logic depth of each node (primary inputs and constants are depth 0)."""
        depths = np.zeros(self.num_nodes, dtype=np.int64)
        for index, gate in enumerate(self.gates):
            node_id = self.gate_node_id(index)
            operands = gate.operands()
            if operands:
                depths[node_id] = 1 + max(int(depths[o]) for o in operands)
        return depths

    def depth(self) -> int:
        """Logic depth of the deepest output (0 for a wire-only circuit)."""
        if not self.output_bits:
            return 0
        depths = self.node_depths()
        return int(max(depths[bit] for bit in self.output_bits))

    def transitive_fanin(self, roots: Optional[Iterable[int]] = None) -> np.ndarray:
        """Boolean mask of nodes in the transitive fan-in of ``roots``.

        Defaults to the output bits, i.e. the *live* part of the circuit.
        """
        mask = np.zeros(self.num_nodes, dtype=bool)
        if roots is None:
            roots = self.output_bits
        stack = [int(r) for r in roots]
        while stack:
            node = stack.pop()
            if mask[node]:
                continue
            mask[node] = True
            if node >= self.num_inputs:
                stack.extend(self.gates[node - self.num_inputs].operands())
        return mask

    def live_gate_count(self) -> int:
        """Number of gates reachable from the outputs (dead logic excluded)."""
        mask = self.transitive_fanin()
        return int(mask[self.num_inputs:].sum())

    # ------------------------------------------------------------------ #
    # Structural identity
    # ------------------------------------------------------------------ #
    def fingerprint(self) -> str:
        """Stable content hash of the circuit *structure*.

        Two netlists share a fingerprint exactly when they have the same
        input-word layout, the same output-bit wiring and the same gate list
        (types and operand ids).  ``name``, ``kind`` and ``meta`` are
        deliberately excluded: they do not affect the computed function or
        any cost model, so structurally identical circuits can share cached
        evaluation results regardless of how they were generated or named.

        The digest is cached on the instance; netlists are treated as
        immutable once built (all transformations return copies), so the
        cache is never invalidated.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is not None:
            return cached
        digest = hashlib.blake2b(_FINGERPRINT_VERSION, digest_size=20)
        for word in sorted(self.input_words):
            bits = self.input_words[word]
            digest.update(b"w")
            digest.update(word.encode("utf-8"))
            digest.update(b"\x00")
            digest.update(np.asarray(bits, dtype=np.int64).tobytes())
        digest.update(b"o")
        digest.update(np.asarray(self.output_bits, dtype=np.int64).tobytes())
        digest.update(b"g")
        if self.gates:
            table = np.array(
                [(int(g.gate_type.value), g.a, g.b) for g in self.gates],
                dtype=np.int64,
            )
            digest.update(table.tobytes())
        value = digest.hexdigest()
        self.__dict__["_fingerprint"] = value
        return value

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def copy(self, name: Optional[str] = None, meta: Optional[Mapping[str, object]] = None) -> "Netlist":
        """Deep-enough copy; gate tuples are immutable so the list is recreated."""
        new_meta = dict(self.meta)
        if meta:
            new_meta.update(meta)
        return Netlist(
            name=name if name is not None else self.name,
            kind=self.kind,
            input_words={k: tuple(v) for k, v in self.input_words.items()},
            output_bits=tuple(self.output_bits),
            gates=list(self.gates),
            meta=new_meta,
        )

    def pruned(self) -> "Netlist":
        """Return an equivalent netlist with dead gates removed.

        Gate ids are compacted; primary inputs are always retained so the
        word-level interface is unchanged.
        """
        mask = self.transitive_fanin()
        remap: Dict[int, int] = {i: i for i in range(self.num_inputs)}
        new_gates: List[Gate] = []
        for index, gate in enumerate(self.gates):
            node_id = self.gate_node_id(index)
            if not mask[node_id]:
                continue
            operands = tuple(remap[o] for o in gate.operands())
            if gate.arity == 0:
                new_gate = Gate(gate.gate_type)
            elif gate.arity == 1:
                new_gate = Gate(gate.gate_type, operands[0])
            else:
                new_gate = Gate(gate.gate_type, operands[0], operands[1])
            remap[node_id] = self.num_inputs + len(new_gates)
            new_gates.append(new_gate)
        return Netlist(
            name=self.name,
            kind=self.kind,
            input_words={k: tuple(v) for k, v in self.input_words.items()},
            output_bits=tuple(remap[b] for b in self.output_bits),
            gates=new_gates,
            meta=dict(self.meta),
        )

    # ------------------------------------------------------------------ #
    # Evaluation (thin wrappers around repro.circuits.simulate)
    # ------------------------------------------------------------------ #
    def evaluate_bits(self, input_bits: np.ndarray) -> np.ndarray:
        """Evaluate on a (patterns, num_inputs) boolean matrix.

        Returns a (patterns, num_outputs) boolean matrix.
        """
        from .simulate import simulate_bits

        return simulate_bits(self, input_bits)

    def evaluate_words(self, operands: Mapping[str, Sequence[int]]) -> np.ndarray:
        """Evaluate the circuit on integer operand vectors.

        ``operands`` maps each input word name to an array of unsigned
        integers.  Returns the output word as an unsigned integer array.
        """
        from .simulate import simulate_words

        return simulate_words(self, operands)

    def exhaustive_outputs(self) -> np.ndarray:
        """Output word for every input combination (use only for small circuits)."""
        from .simulate import exhaustive_simulate

        return exhaustive_simulate(self)

    # ------------------------------------------------------------------ #
    # Misc
    # ------------------------------------------------------------------ #
    def word_width(self, name: str) -> int:
        return len(self.input_words[name])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        words = ", ".join(f"{k}[{len(v)}]" for k, v in self.input_words.items())
        return (
            f"Netlist(name={self.name!r}, kind={self.kind!r}, inputs=({words}), "
            f"outputs={self.num_outputs}, gates={self.num_gates})"
        )
