"""Compiled netlist backend: lower once into a levelized op tape.

The bit-plane backend (:mod:`repro.circuits.bitplane`) removed the
per-pattern cost of simulation; what remains is per-*gate* Python dispatch,
one interpreter round-trip plus one or two NumPy calls per gate per
simulation.  This module removes most of that too, with the classic
compile-once/simulate-many restructuring:

:func:`compile_netlist` lowers a :class:`~repro.circuits.netlist.Netlist`
into a :class:`CompiledProgram` -- a flat op tape held in contiguous
integer arrays ``(opcode, operand-a, operand-b, destination)`` that
executes over whole packed bit-plane matrices.  Compilation performs

* **dead-node elimination** -- only gates in the
  :meth:`~repro.circuits.netlist.Netlist.transitive_fanin` of the outputs
  are lowered;
* **constant folding** -- ``CONST0``/``CONST1`` gates, gates fed by folded
  constants (and by floating ``-1`` operands, which read as constant 0) and
  same-operand identities (``AND(x, x)``, ``XOR(x, x)``, ...) collapse to
  one of two preloaded constant slots or a zero-cost alias;
* **polarity canonicalization** -- every node is stored in the polarity its
  producing op computes naturally and inversions ride on compile-time
  edge flags: ``NOT``/``BUF`` become free aliases, ``NAND``/``NOR``/
  ``XNOR`` lower to ``AND``/``OR``/``XOR`` with an inverted-output flag,
  and inverted *inputs* are folded into the consuming gate's truth table,
  so the tape contains no inverter ops at all (inverted primary outputs
  are fixed up by one vectorised XOR against a per-output mask);
* **levelized batching** -- a ready-list scheduler groups mutually
  independent same-opcode ops into one fused tape step each, with
  *contiguous destination slots per group*, so execution runs one short
  NumPy call sequence per group (a single combined operand gather plus the
  bitwise kernel into the destination slice) instead of one dispatch per
  gate.  Operand gathers that form contiguous slot ranges degrade to
  zero-copy slices.

Programs are cached per structural fingerprint (:data:`PROGRAM_CACHE_SIZE`
entries, LRU) so repeated evaluations of the same circuit -- Monte-Carlo
inner loops, streamed chunk evaluation, warm engine passes -- pay
compilation exactly once per process.  A :class:`CompiledProgram` contains
only plain integers and NumPy arrays, so it pickles cleanly across process
pools; workers that receive only the netlist rebuild the program through
the same per-process cache.

:func:`simulate_bits_compiled` is the drop-in, bit-identical backend entry
registered in :data:`~repro.circuits.simulate.SIM_BACKENDS` under
``"compiled"`` and preferred by ``"auto"`` at high pattern counts.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ._native import TILE, native_available, run_tape_native
from .bitplane import pack_bits, unpack_bits
from .gates import PLANE_ONES, GateType, gate_truth_table
from .netlist import Netlist

__all__ = [
    "CompiledProgram",
    "OpGroup",
    "PROGRAM_CACHE_SIZE",
    "compile_netlist",
    "clear_program_cache",
    "simulate_planes_compiled",
    "simulate_bits_compiled",
]

#: Compiled programs kept per process, keyed by structural fingerprint (LRU).
PROGRAM_CACHE_SIZE = 256

#: 4-entry truth table per gate type as a bit mask over (a, b) =
#: (00, 01, 10, 11).  Unary and constant gates are broadcast over their
#: unused operands, which read as constant 0 (exactly the floating-operand
#: semantics of the other backends), so lowering treats every gate type
#: uniformly as a two-input truth table.
_TRUTH_MASKS: Dict[GateType, int] = {
    gate_type: sum(int(bool(v)) << i for i, v in enumerate(gate_truth_table(gate_type)))
    for gate_type in GateType
}

# Tape opcodes (deliberately decoupled from GateType: after polarity
# canonicalization only non-inverting kernels survive).
OP_AND = 0
OP_OR = 1
OP_XOR = 2
OP_ANDNOT = 3  # a AND (NOT b)
OP_ORNOT = 4   # a OR (NOT b)

#: Canonical lowering of every non-degenerate two-input truth mask:
#: mask -> (opcode, swap_operands, invert_output).  Masks index bits as
#: 1 << (2*a + b).  Degenerate masks (constants, single-operand functions)
#: never reach this table -- folding handles them first.
_MASK_TO_OP: Dict[int, Tuple[int, bool, bool]] = {
    0b1000: (OP_AND, False, False),    # a AND b
    0b0111: (OP_AND, False, True),     # NAND
    0b1110: (OP_OR, False, False),     # a OR b
    0b0001: (OP_OR, False, True),      # NOR
    0b0110: (OP_XOR, False, False),    # a XOR b
    0b1001: (OP_XOR, False, True),     # XNOR
    0b0100: (OP_ANDNOT, False, False),  # a AND NOT b
    0b1011: (OP_ANDNOT, False, True),   # NOT a OR b == NOT(a AND NOT b)
    0b0010: (OP_ANDNOT, True, False),   # NOT a AND b
    0b1101: (OP_ANDNOT, True, True),    # a OR NOT b == NOT(NOT a AND b)
}


# --------------------------------------------------------------------- #
# Grouped execution kernels.  One entry per tape opcode; every kernel
# writes into ``out`` (the group's contiguous destination slice) and never
# mutates ``a``/``b``, so zero-copy operand slices are always safe.  The
# differential suite pins the whole pipeline against
# ``gates.GATE_FUNCTIONS``.
# --------------------------------------------------------------------- #
def _k_and(a, b, out):
    np.bitwise_and(a, b, out=out)


def _k_or(a, b, out):
    np.bitwise_or(a, b, out=out)


def _k_xor(a, b, out):
    np.bitwise_xor(a, b, out=out)


def _k_andnot(a, b, out):
    np.bitwise_not(b, out=out)
    np.bitwise_and(a, out, out=out)


def _k_ornot(a, b, out):
    np.bitwise_not(b, out=out)
    np.bitwise_or(a, out, out=out)


_KERNELS: Dict[int, Callable[[np.ndarray, np.ndarray, np.ndarray], None]] = {
    OP_AND: _k_and,
    OP_OR: _k_or,
    OP_XOR: _k_xor,
    OP_ANDNOT: _k_andnot,
    OP_ORNOT: _k_ornot,
}


@dataclass(frozen=True)
class OpGroup:
    """One fused tape step: a batch of mutually independent same-opcode ops.

    Destinations are the contiguous slot range ``[dest_start, dest_stop)``
    by construction.  Operands are gathered with one combined ``take`` of
    the ``a`` rows followed by the ``b`` rows (``ab_index``), or -- when
    the combined gather happens to be a contiguous slot range -- with a
    zero-copy ``(start, stop)`` slice (``ab_slice``).
    """

    opcode: int
    dest_start: int
    dest_stop: int
    ab_index: Optional[np.ndarray]
    ab_slice: Optional[Tuple[int, int]]

    @property
    def size(self) -> int:
        return self.dest_stop - self.dest_start


@dataclass
class CompiledProgram:
    """A netlist lowered to a flat, levelized op tape over value slots.

    Slots ``0 .. num_inputs-1`` mirror the primary inputs,
    ``zero_slot``/``one_slot`` hold the preloaded constants, and every tape
    group writes the contiguous slot range it owns.  ``out_index`` gathers
    the output rows and ``out_invert`` marks outputs stored in inverted
    polarity (fixed up by one vectorised XOR).  The program holds only
    integers and NumPy arrays, so it pickles cleanly into process-pool
    workers.
    """

    fingerprint: str
    num_inputs: int
    num_slots: int
    zero_slot: int
    one_slot: int
    tape: np.ndarray  # (num_ops, 4) int32 rows: opcode, a, b, dest
    groups: List[OpGroup]
    out_index: np.ndarray
    out_invert: np.ndarray  # (num_outputs,) uint64 polarity masks (0 or ~0)
    num_outputs: int
    source_gates: int
    live_gates: int
    num_ops: int
    num_levels: int

    @property
    def folded_gates(self) -> int:
        """Live gates that compile to no tape op (constants and aliases)."""
        return self.live_gates - self.num_ops

    def run(self, input_planes: np.ndarray) -> np.ndarray:
        """Execute the tape on ``(num_inputs, planes)`` packed input planes.

        Returns freshly-allocated ``(num_outputs, planes)`` output planes
        (never a view into the internal scratch arena).
        """
        input_planes = np.ascontiguousarray(input_planes, dtype=np.uint64)
        if input_planes.ndim != 2 or input_planes.shape[0] != self.num_inputs:
            raise ValueError(
                f"expected input planes of shape ({self.num_inputs}, planes), "
                f"got {input_planes.shape}"
            )
        planes = input_planes.shape[1]
        if planes:
            outputs = np.empty((self.num_outputs, planes), dtype=np.uint64)
            scratch = _scratch_matrix(self.num_slots, TILE).reshape(-1)
            if run_tape_native(
                self.tape, input_planes, self.num_slots, self.zero_slot,
                self.one_slot, self.out_index, self.out_invert, outputs, scratch,
            ):
                return outputs
        values = _scratch_matrix(self.num_slots, planes)
        values[: self.num_inputs] = input_planes
        values[self.zero_slot] = 0
        values[self.one_slot] = PLANE_ONES
        for group in self.groups:
            size = group.dest_stop - group.dest_start
            out = values[group.dest_start : group.dest_stop]
            if group.ab_slice is not None:
                operands = values[group.ab_slice[0] : group.ab_slice[1]]
            else:
                operands = values.take(group.ab_index, axis=0)
            _KERNELS[group.opcode](operands[:size], operands[size:], out)
        outputs = values.take(self.out_index, axis=0)
        if (self.out_invert != 0).any():
            np.bitwise_xor(outputs, self.out_invert[:, None], out=outputs)
        return outputs

    def simulate_bits(self, input_bits: np.ndarray) -> np.ndarray:
        """Boolean-matrix entry point, bit-identical to ``simulate_bits``."""
        input_bits = np.asarray(input_bits, dtype=bool)
        if input_bits.ndim != 2 or input_bits.shape[1] != self.num_inputs:
            raise ValueError(
                f"expected input matrix of shape (patterns, {self.num_inputs}), "
                f"got {input_bits.shape}"
            )
        patterns = input_bits.shape[0]
        output_planes = self.run(pack_bits(input_bits.T))
        return unpack_bits(output_planes, patterns).T


# --------------------------------------------------------------------- #
# Scratch arena: one grow-only per-process buffer backs the slot matrix of
# every run, so the simulate-many loop does not re-fault a multi-megabyte
# allocation per circuit.  Oversized requests fall back to a fresh
# allocation instead of pinning unbounded memory.
# --------------------------------------------------------------------- #
_SCRATCH_CAP_BYTES = 64 * 1024 * 1024
_scratch_buffer: Optional[np.ndarray] = None


def _scratch_matrix(num_slots: int, planes: int) -> np.ndarray:
    global _scratch_buffer
    needed = num_slots * planes
    if needed * 8 > _SCRATCH_CAP_BYTES:
        return np.empty((num_slots, planes), dtype=np.uint64)
    buffer = _scratch_buffer
    if buffer is None or buffer.size < needed:
        buffer = np.empty(needed, dtype=np.uint64)
        _scratch_buffer = buffer
    return buffer[:needed].reshape(num_slots, planes)


# --------------------------------------------------------------------- #
# Compilation
# --------------------------------------------------------------------- #
@dataclass
class _Lowered:
    """A surviving op before scheduling (destination slots provisional)."""

    opcode: int
    a: int  # provisional operand slots
    b: int
    dest: int
    level: int


def _effective_mask(gate_type: GateType, a_inv: bool, b_inv: bool) -> int:
    """Truth mask of ``gate_type`` with input polarities folded in."""
    mask = _TRUTH_MASKS[gate_type]
    folded = 0
    for a in (0, 1):
        for b in (0, 1):
            if mask >> (2 * (a ^ int(a_inv)) + (b ^ int(b_inv))) & 1:
                folded |= 1 << (2 * a + b)
    return folded


def _compile(netlist: Netlist) -> CompiledProgram:
    num_inputs = netlist.num_inputs
    zero_slot = num_inputs
    one_slot = num_inputs + 1
    first_op_slot = num_inputs + 2

    live = netlist.transitive_fanin()
    live_gates = int(live[num_inputs:].sum())

    # Per-node lowering state: the (provisional) slot holding each node's
    # value, whether the stored polarity is inverted, and the node's
    # constant value when folded; plus each slot's logic level.
    node_slot = list(range(num_inputs)) + [0] * (netlist.num_nodes - num_inputs)
    node_inv = [False] * netlist.num_nodes
    node_const: List[Optional[int]] = [None] * netlist.num_nodes
    slot_level = [0] * first_op_slot

    lowered: List[_Lowered] = []
    const_slots = (zero_slot, one_slot)

    def operand(node: int) -> Tuple[int, bool, Optional[int]]:
        if node < 0:
            return zero_slot, False, 0  # floating operands read as constant 0
        return node_slot[node], node_inv[node], node_const[node]

    for index, gate in enumerate(netlist.gates):
        node_id = num_inputs + index
        if not live[node_id]:
            continue  # dead-node elimination
        a_slot, a_inv, a_const = operand(gate.a)
        b_slot, b_inv, b_const = operand(gate.b)

        mask = _effective_mask(gate.gate_type, a_inv, b_inv)
        # Constant operands (and same-slot operands) restrict the mask to a
        # sub-function of at most one variable.
        if a_const is not None and b_const is not None:
            value = mask >> (2 * a_const + b_const) & 1
            node_const[node_id] = value
            node_slot[node_id] = const_slots[value]
            continue
        if a_const is not None:
            f0 = mask >> (2 * a_const) & 1        # f(b=0)
            f1 = mask >> (2 * a_const + 1) & 1    # f(b=1)
            variable = b_slot
        elif b_const is not None:
            f0 = mask >> b_const & 1              # f(a=0)
            f1 = mask >> (2 + b_const) & 1        # f(a=1)
            variable = a_slot
        elif a_slot == b_slot:
            f0 = mask & 1                         # f(0, 0)
            f1 = mask >> 3 & 1                    # f(1, 1)
            variable = a_slot
        else:
            opcode, swap, out_inv = _MASK_TO_OP[mask]
            dest = first_op_slot + len(lowered)
            level = max(slot_level[a_slot], slot_level[b_slot]) + 1
            if swap:
                a_slot, b_slot = b_slot, a_slot
            lowered.append(_Lowered(opcode, a_slot, b_slot, dest, level))
            slot_level.append(level)
            node_slot[node_id] = dest
            node_inv[node_id] = out_inv
            continue

        if f0 == f1:  # degenerate: constant regardless of the variable
            node_const[node_id] = f0
            node_slot[node_id] = const_slots[f0]
        else:  # buffer (f0=0) or inverter (f0=1): both are free aliases
            node_slot[node_id] = variable
            node_inv[node_id] = bool(f0)

    # Ready-list scheduling: repeatedly take every currently-ready op of the
    # most numerous opcode as one fused group.  Ready ops are mutually
    # independent by construction, destination slots are renumbered in
    # schedule order so each group owns a contiguous destination range, and
    # ops only ever read slots committed by earlier groups, so the schedule
    # is a valid topological order.
    dependents: Dict[int, List[int]] = {}
    blockers = [0] * len(lowered)
    for position, op in enumerate(lowered):
        for slot in (op.a, op.b):
            if slot >= first_op_slot:
                producer = slot - first_op_slot
                dependents.setdefault(producer, []).append(position)
                blockers[position] += 1

    ready: Dict[int, List[int]] = {}  # opcode -> ready op positions
    for position, op in enumerate(lowered):
        if blockers[position] == 0:
            ready.setdefault(op.opcode, []).append(position)

    schedule: List[int] = []
    group_bounds: List[Tuple[int, int, int]] = []  # (opcode, start, stop)
    while ready:
        opcode = max(ready, key=lambda key: len(ready[key]))
        batch = ready.pop(opcode)
        start = len(schedule)
        schedule.extend(batch)
        group_bounds.append((opcode, start, len(schedule)))
        for position in batch:
            for dependent in dependents.get(position, ()):
                blockers[dependent] -= 1
                if blockers[dependent] == 0:
                    ready.setdefault(lowered[dependent].opcode, []).append(dependent)

    slot_remap = np.arange(first_op_slot + len(lowered), dtype=np.int64)
    for new_position, old_position in enumerate(schedule):
        slot_remap[lowered[old_position].dest] = first_op_slot + new_position

    tape = np.empty((len(lowered), 4), dtype=np.int32)
    for new_position, old_position in enumerate(schedule):
        op = lowered[old_position]
        tape[new_position] = (
            op.opcode,
            slot_remap[op.a],
            slot_remap[op.b],
            first_op_slot + new_position,
        )

    groups: List[OpGroup] = []
    for opcode, start, stop in group_bounds:
        members = [lowered[schedule[i]] for i in range(start, stop)]
        ab = slot_remap[
            np.array([op.a for op in members] + [op.b for op in members], dtype=np.int64)
        ]
        if np.array_equal(ab, np.arange(ab[0], ab[0] + ab.size, dtype=np.int64)):
            ab_index, ab_slice = None, (int(ab[0]), int(ab[0]) + int(ab.size))
        else:
            ab_index, ab_slice = np.ascontiguousarray(ab, dtype=np.intp), None
        groups.append(
            OpGroup(
                opcode=opcode,
                dest_start=first_op_slot + start,
                dest_stop=first_op_slot + stop,
                ab_index=ab_index,
                ab_slice=ab_slice,
            )
        )

    if netlist.output_bits:
        out_nodes = list(netlist.output_bits)
        out_index = slot_remap[np.array([node_slot[n] for n in out_nodes], dtype=np.int64)]
        inverted = np.array([node_inv[n] for n in out_nodes], dtype=bool)
    else:
        out_index = np.empty(0, dtype=np.int64)
        inverted = np.empty(0, dtype=bool)
    out_invert = np.where(inverted, np.uint64(PLANE_ONES), np.uint64(0))

    return CompiledProgram(
        fingerprint=netlist.fingerprint(),
        num_inputs=num_inputs,
        num_slots=first_op_slot + len(lowered),
        zero_slot=zero_slot,
        one_slot=one_slot,
        tape=tape,
        groups=groups,
        out_index=np.ascontiguousarray(out_index, dtype=np.int64),
        out_invert=np.ascontiguousarray(out_invert, dtype=np.uint64),
        num_outputs=netlist.num_outputs,
        source_gates=netlist.num_gates,
        live_gates=live_gates,
        num_ops=len(lowered),
        num_levels=max((op.level for op in lowered), default=0),
    )


_PROGRAM_CACHE: "OrderedDict[str, CompiledProgram]" = OrderedDict()


def compile_netlist(netlist: Netlist, use_cache: bool = True) -> CompiledProgram:
    """Lower ``netlist`` to a :class:`CompiledProgram`, cached by fingerprint.

    Structurally identical netlists (same
    :meth:`~repro.circuits.netlist.Netlist.fingerprint`) share one compiled
    program per process; the cache holds :data:`PROGRAM_CACHE_SIZE` entries
    with LRU eviction.  ``use_cache=False`` always recompiles and leaves
    the cache untouched (useful for tests and one-off circuits).
    """
    if not use_cache:
        return _compile(netlist)
    fingerprint = netlist.fingerprint()
    program = _PROGRAM_CACHE.get(fingerprint)
    if program is not None:
        _PROGRAM_CACHE.move_to_end(fingerprint)
        return program
    program = _compile(netlist)
    _PROGRAM_CACHE[fingerprint] = program
    while len(_PROGRAM_CACHE) > PROGRAM_CACHE_SIZE:
        _PROGRAM_CACHE.popitem(last=False)
    return program


def clear_program_cache() -> None:
    """Drop every cached compiled program (and the scratch arena)."""
    global _scratch_buffer
    _PROGRAM_CACHE.clear()
    _scratch_buffer = None


# --------------------------------------------------------------------- #
# Backend entry points
# --------------------------------------------------------------------- #
def simulate_planes_compiled(netlist: Netlist, input_planes: np.ndarray) -> np.ndarray:
    """Compiled counterpart of :func:`~repro.circuits.bitplane.simulate_planes`.

    Compiles (or fetches the cached program for) ``netlist`` and executes
    the tape on pre-packed ``(num_inputs, planes)`` input planes, returning
    ``(num_outputs, planes)`` packed outputs.
    """
    return compile_netlist(netlist).run(input_planes)


def simulate_bits_compiled(netlist: Netlist, input_bits: np.ndarray) -> np.ndarray:
    """Bit-identical compiled counterpart of :func:`~repro.circuits.simulate.simulate_bits`.

    The ``"compiled"`` entry of
    :data:`~repro.circuits.simulate.SIM_BACKENDS`: same
    ``(patterns, num_inputs)`` boolean matrix in, same
    ``(patterns, num_outputs)`` boolean matrix out; internally the cached
    compiled program runs over packed ``uint64`` bit planes.
    """
    return compile_netlist(netlist).simulate_bits(input_bits)
