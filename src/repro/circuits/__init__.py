"""Gate-level circuit intermediate representation and simulation."""

from .gates import (
    GATE_ARITY,
    PACKED_GATE_FUNCTIONS,
    GateType,
    evaluate_gate,
    evaluate_gate_packed,
    gate_truth_table,
)
from .netlist import Gate, Netlist, NetlistError
from .builder import NetlistBuilder
from .metrics import StructuralMetrics, gate_type_counts, structural_metrics
from .bitplane import (
    PLANE_WIDTH,
    num_planes,
    pack_bits,
    simulate_bits_packed,
    simulate_planes,
    unpack_bits,
)
from .compiled import (
    CompiledProgram,
    clear_program_cache,
    compile_netlist,
    simulate_bits_compiled,
    simulate_planes_compiled,
)
from .simulate import (
    AUTO_BACKEND_MIN_PATTERNS,
    AUTO_COMPILED_MIN_PATTERNS,
    DEFAULT_SIM_BACKEND,
    SIM_BACKENDS,
    bits_to_words,
    exhaustive_operands,
    exhaustive_simulate,
    random_operands,
    resolve_sim_backend,
    simulate_bits,
    simulate_words,
    validate_sim_backend,
    words_to_bits,
)
from .verilog import to_verilog

__all__ = [
    "GATE_ARITY",
    "PACKED_GATE_FUNCTIONS",
    "GateType",
    "evaluate_gate",
    "evaluate_gate_packed",
    "gate_truth_table",
    "Gate",
    "Netlist",
    "NetlistError",
    "NetlistBuilder",
    "StructuralMetrics",
    "gate_type_counts",
    "structural_metrics",
    "PLANE_WIDTH",
    "num_planes",
    "pack_bits",
    "simulate_bits_packed",
    "simulate_planes",
    "unpack_bits",
    "CompiledProgram",
    "clear_program_cache",
    "compile_netlist",
    "simulate_bits_compiled",
    "simulate_planes_compiled",
    "AUTO_BACKEND_MIN_PATTERNS",
    "AUTO_COMPILED_MIN_PATTERNS",
    "DEFAULT_SIM_BACKEND",
    "SIM_BACKENDS",
    "bits_to_words",
    "exhaustive_operands",
    "exhaustive_simulate",
    "random_operands",
    "resolve_sim_backend",
    "simulate_bits",
    "simulate_words",
    "validate_sim_backend",
    "words_to_bits",
    "to_verilog",
]
