"""Gate-level circuit intermediate representation and simulation."""

from .gates import GATE_ARITY, GateType, evaluate_gate, gate_truth_table
from .netlist import Gate, Netlist, NetlistError
from .builder import NetlistBuilder
from .metrics import StructuralMetrics, gate_type_counts, structural_metrics
from .simulate import (
    bits_to_words,
    exhaustive_operands,
    exhaustive_simulate,
    random_operands,
    simulate_bits,
    simulate_words,
    words_to_bits,
)
from .verilog import to_verilog

__all__ = [
    "GATE_ARITY",
    "GateType",
    "evaluate_gate",
    "gate_truth_table",
    "Gate",
    "Netlist",
    "NetlistError",
    "NetlistBuilder",
    "StructuralMetrics",
    "gate_type_counts",
    "structural_metrics",
    "bits_to_words",
    "exhaustive_operands",
    "exhaustive_simulate",
    "random_operands",
    "simulate_bits",
    "simulate_words",
    "words_to_bits",
    "to_verilog",
]
