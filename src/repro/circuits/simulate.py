"""Vectorised behavioural simulation of gate-level netlists.

All simulation is bit-parallel over the gate list: a single pass evaluates
the circuit for an arbitrary number of input patterns.  This is the
"behavioural model" counterpart of the C models that ship with EvoApproxLib
in the original paper.

Three interchangeable backends implement the pass, registered in the
:data:`SIM_BACKENDS` registry:

* ``"bool"`` -- :func:`simulate_bits`, one NumPy ``bool`` byte per pattern
  per net (the original implementation, and the default).
* ``"bitplane"`` -- :func:`~repro.circuits.bitplane.simulate_bits_packed`,
  64 patterns packed per ``uint64`` lane; bit-identical outputs, much
  faster on large pattern counts.
* ``"compiled"`` -- :func:`~repro.circuits.compiled.simulate_bits_compiled`,
  lowers the netlist once into a levelized op tape (constant folding,
  dead-node elimination, per-fingerprint program cache) executed over
  packed bit planes; the fastest choice when the same circuit is simulated
  on many patterns, i.e. the Monte-Carlo inner loop.

Backends are *bit-identical by contract*: the differential suite
(``pytest -m sim_backends``) asserts it, and downstream caches rely on it.
Callers pick one by key, or pass ``"auto"`` to let the workload size decide
(:func:`resolve_sim_backend`); use :func:`validate_sim_backend` to fail
fast on unknown keys without selecting a callable.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional, Sequence, Union

import numpy as np

from ..registry import Registry
from .bitplane import simulate_bits_packed
from .compiled import simulate_bits_compiled
from .gates import evaluate_gate
from .netlist import Netlist


def simulate_bits(netlist: Netlist, input_bits: np.ndarray) -> np.ndarray:
    """Simulate ``netlist`` on a (patterns, num_inputs) boolean matrix.

    Returns a (patterns, num_outputs) boolean matrix with the output word,
    column ``j`` being output bit ``j`` (LSB first).
    """
    input_bits = np.asarray(input_bits, dtype=bool)
    if input_bits.ndim != 2 or input_bits.shape[1] != netlist.num_inputs:
        raise ValueError(
            f"expected input matrix of shape (patterns, {netlist.num_inputs}), "
            f"got {input_bits.shape}"
        )
    patterns = input_bits.shape[0]
    values = [input_bits[:, i] for i in range(netlist.num_inputs)]
    zeros = np.zeros(patterns, dtype=bool)
    for gate in netlist.gates:
        a = values[gate.a] if gate.a >= 0 else zeros
        b = values[gate.b] if gate.b >= 0 else zeros
        values.append(evaluate_gate(gate.gate_type, a, b))
    outputs = np.empty((patterns, netlist.num_outputs), dtype=bool)
    for j, bit in enumerate(netlist.output_bits):
        outputs[:, j] = values[bit]
    return outputs


# --------------------------------------------------------------------- #
# Backend registry and selection
# --------------------------------------------------------------------- #
#: Registry of simulation backends: key -> ``(netlist, input_bits) -> output
#: bits``.  All registered backends must be bit-identical; alternative
#: implementations (e.g. a future native kernel) plug in by registering a
#: key here.
SIM_BACKENDS = Registry(
    "simulation backend",
    {
        "bool": simulate_bits,
        "bitplane": simulate_bits_packed,
        "compiled": simulate_bits_compiled,
    },
)

#: Default backend when none is requested (the legacy implementation).
DEFAULT_SIM_BACKEND = "bool"

#: ``"auto"`` picks the packed backend from this many patterns upward; below
#: it the packing overhead is not worth it and the bool backend wins.
AUTO_BACKEND_MIN_PATTERNS = 1024

#: ``"auto"`` upgrades from ``"bitplane"`` to ``"compiled"`` from this many
#: patterns upward, where the compile-once cost amortises within a single
#: simulation even for cache-cold circuits.
AUTO_COMPILED_MIN_PATTERNS = 4096

SimBackend = Union[None, str, Callable[[Netlist, np.ndarray], np.ndarray]]


def resolve_sim_backend(
    backend: SimBackend = None, *, patterns: Optional[int] = None
) -> Callable[[Netlist, np.ndarray], np.ndarray]:
    """Resolve a backend selector to a simulation callable.

    ``backend`` may be ``None`` (the ``"bool"`` default), a
    :data:`SIM_BACKENDS` key, ``"auto"``, or a ready simulation callable,
    which is returned unchanged.  ``"auto"`` picks by workload size:
    ``"bool"`` below :data:`AUTO_BACKEND_MIN_PATTERNS` patterns,
    ``"bitplane"`` from there, and ``"compiled"`` from
    :data:`AUTO_COMPILED_MIN_PATTERNS` upward.  Requesting ``"auto"``
    without a pattern count raises: it used to resolve silently to the
    slowest backend, which punished exactly the callers who wanted speed.
    Unknown keys raise :class:`~repro.registry.RegistryError` listing the
    available backends; use :func:`validate_sim_backend` to check a key
    without selecting.
    """
    if backend is None:
        backend = DEFAULT_SIM_BACKEND
    if callable(backend):
        return backend
    if backend == "auto":
        if patterns is None:
            raise ValueError(
                "resolve_sim_backend('auto') needs patterns= to pick a backend; "
                "pass the pattern count, or use validate_sim_backend() if you "
                "only want to fail fast on unknown backend keys"
            )
        if patterns >= AUTO_COMPILED_MIN_PATTERNS:
            backend = "compiled"
        elif patterns >= AUTO_BACKEND_MIN_PATTERNS:
            backend = "bitplane"
        else:
            backend = DEFAULT_SIM_BACKEND
    return SIM_BACKENDS.get(backend)


def validate_sim_backend(backend: SimBackend) -> SimBackend:
    """Fail fast on unknown backend keys without selecting a callable.

    Constructors that hold a backend *selector* (possibly ``"auto"``) for
    later per-workload resolution call this instead of
    :func:`resolve_sim_backend` so that validation and selection stay
    distinct: ``"auto"`` is accepted as-is, unknown keys raise
    :class:`~repro.registry.RegistryError` immediately.  Returns the
    selector unchanged.
    """
    if backend is not None and not callable(backend) and backend != "auto":
        SIM_BACKENDS.get(backend)
    return backend


def words_to_bits(values: np.ndarray, width: int) -> np.ndarray:
    """Expand unsigned integers into a (n, width) boolean matrix, LSB first.

    Operands must have an integer (or boolean) dtype: floating-point values
    used to slip through and truncate silently, so they are rejected, as are
    values outside the unsigned ``width``-bit range (checked in the original
    dtype, before any conversion could wrap around).
    """
    values = np.asarray(values)
    if values.dtype != np.bool_ and (
        values.dtype == object or not np.issubdtype(values.dtype, np.integer)
    ):
        raise TypeError(
            f"operand values must be integers, got dtype {values.dtype} "
            "(floating-point operands would be truncated silently)"
        )
    if values.size and (int(values.min()) < 0 or int(values.max()) >= (1 << width)):
        raise ValueError(f"operand values out of range for a {width}-bit unsigned word")
    values = values.astype(np.int64, copy=False)
    shifts = np.arange(width, dtype=np.int64)
    return ((values[:, None] >> shifts[None, :]) & 1).astype(bool)


def bits_to_words(bits: np.ndarray) -> np.ndarray:
    """Collapse a (n, width) boolean matrix (LSB first) into unsigned integers.

    Accumulation happens in ``uint64``: the former ``int64`` weights went
    negative at bit 63 (``np.int64(1) << 63``), silently corrupting every
    output word of width >= 64.  Words up to 63 bits return ``int64``
    (unchanged dtype for existing callers), 64-bit words return ``uint64``,
    and wider words fall back to arbitrary-precision Python ints in an
    ``object`` array.
    """
    bits = np.asarray(bits, dtype=bool)
    width = bits.shape[1]
    if width > 64:
        weights = np.array([1 << i for i in range(width)], dtype=object)
        return bits.astype(object) @ weights
    weights = np.uint64(1) << np.arange(width, dtype=np.uint64)
    words = bits.astype(np.uint64) @ weights
    return words if width == 64 else words.astype(np.int64)


def expand_operand_bits(
    netlist: Netlist, operands: Mapping[str, Sequence[int]]
) -> np.ndarray:
    """Expand word-level operand vectors into the netlist's input-bit matrix.

    Returns the (patterns, num_inputs) boolean matrix every simulation
    backend consumes, with each word's bits scattered to its primary-input
    node ids.  This is the single implementation of the word-to-bit layout;
    the batch evaluator and the benchmarks reuse it so they measure exactly
    what production simulates.
    """
    missing = set(netlist.input_words) - set(operands)
    if missing:
        raise ValueError(f"missing operand values for input words: {sorted(missing)}")
    extras = set(operands) - set(netlist.input_words)
    if extras:
        raise ValueError(
            f"unknown operand names: {sorted(extras)}; "
            f"the netlist's input words are {sorted(netlist.input_words)}"
        )
    lengths = {len(np.asarray(operands[name])) for name in netlist.input_words}
    if len(lengths) != 1:
        raise ValueError("all operand arrays must have the same length")
    patterns = lengths.pop()

    input_bits = np.zeros((patterns, netlist.num_inputs), dtype=bool)
    for name, bit_ids in netlist.input_words.items():
        word_bits = words_to_bits(np.asarray(operands[name]), len(bit_ids))
        for position, node_id in enumerate(bit_ids):
            input_bits[:, node_id] = word_bits[:, position]
    return input_bits


def simulate_words(
    netlist: Netlist,
    operands: Mapping[str, Sequence[int]],
    backend: SimBackend = None,
) -> np.ndarray:
    """Simulate the netlist on integer operand vectors.

    ``operands`` must provide a value array for every input word of the
    netlist; all arrays must have the same length.  ``backend`` selects the
    simulation backend (see :func:`resolve_sim_backend`); all backends are
    bit-identical, so this only affects speed.
    """
    input_bits = expand_operand_bits(netlist, operands)
    simulate = resolve_sim_backend(backend, patterns=input_bits.shape[0])
    output_bits = simulate(netlist, input_bits)
    return bits_to_words(output_bits)


def exhaustive_operands(netlist: Netlist) -> Mapping[str, np.ndarray]:
    """All input-word combinations of the netlist, in row-major operand order."""
    names = list(netlist.input_words)
    widths = [len(netlist.input_words[name]) for name in names]
    grids = np.meshgrid(*[np.arange(1 << w, dtype=np.int64) for w in widths], indexing="ij")
    return {name: grid.reshape(-1) for name, grid in zip(names, grids)}


def exhaustive_simulate(netlist: Netlist, backend: SimBackend = None) -> np.ndarray:
    """Output word for every input combination.

    The number of patterns is ``2 ** num_inputs``; callers are expected to use
    this only for circuits with at most ~20 input bits (for wider circuits,
    use sampled simulation, or stream fixed-size pattern blocks through an
    :class:`~repro.error.metrics.ErrorAccumulator`).
    """
    if netlist.num_inputs > 24:
        raise ValueError(
            f"exhaustive simulation of {netlist.num_inputs} input bits is "
            "infeasible; use sampled simulation instead"
        )
    return simulate_words(netlist, exhaustive_operands(netlist), backend=backend)


def random_operands(
    netlist: Netlist, num_samples: int, rng: np.random.Generator
) -> Mapping[str, np.ndarray]:
    """Uniformly random operand vectors for sampled (Monte-Carlo) evaluation."""
    operands = {}
    for name, bit_ids in netlist.input_words.items():
        operands[name] = rng.integers(0, 1 << len(bit_ids), size=num_samples, dtype=np.int64)
    return operands
