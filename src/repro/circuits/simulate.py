"""Vectorised behavioural simulation of gate-level netlists.

All simulation is bit-parallel over NumPy boolean arrays: a single pass over
the gate list evaluates the circuit for an arbitrary number of input
patterns.  This is the "behavioural model" counterpart of the C models that
ship with EvoApproxLib in the original paper.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from .gates import evaluate_gate
from .netlist import Netlist


def simulate_bits(netlist: Netlist, input_bits: np.ndarray) -> np.ndarray:
    """Simulate ``netlist`` on a (patterns, num_inputs) boolean matrix.

    Returns a (patterns, num_outputs) boolean matrix with the output word,
    column ``j`` being output bit ``j`` (LSB first).
    """
    input_bits = np.asarray(input_bits, dtype=bool)
    if input_bits.ndim != 2 or input_bits.shape[1] != netlist.num_inputs:
        raise ValueError(
            f"expected input matrix of shape (patterns, {netlist.num_inputs}), "
            f"got {input_bits.shape}"
        )
    patterns = input_bits.shape[0]
    values = [input_bits[:, i] for i in range(netlist.num_inputs)]
    zeros = np.zeros(patterns, dtype=bool)
    for gate in netlist.gates:
        a = values[gate.a] if gate.a >= 0 else zeros
        b = values[gate.b] if gate.b >= 0 else zeros
        values.append(evaluate_gate(gate.gate_type, a, b))
    outputs = np.empty((patterns, netlist.num_outputs), dtype=bool)
    for j, bit in enumerate(netlist.output_bits):
        outputs[:, j] = values[bit]
    return outputs


def words_to_bits(values: np.ndarray, width: int) -> np.ndarray:
    """Expand unsigned integers into a (n, width) boolean matrix, LSB first."""
    values = np.asarray(values, dtype=np.int64)
    if np.any(values < 0) or np.any(values >= (1 << width)):
        raise ValueError(f"operand values out of range for a {width}-bit unsigned word")
    shifts = np.arange(width, dtype=np.int64)
    return ((values[:, None] >> shifts[None, :]) & 1).astype(bool)


def bits_to_words(bits: np.ndarray) -> np.ndarray:
    """Collapse a (n, width) boolean matrix (LSB first) into unsigned integers."""
    bits = np.asarray(bits, dtype=bool)
    width = bits.shape[1]
    weights = (np.int64(1) << np.arange(width, dtype=np.int64))
    return bits.astype(np.int64) @ weights


def simulate_words(netlist: Netlist, operands: Mapping[str, Sequence[int]]) -> np.ndarray:
    """Simulate the netlist on integer operand vectors.

    ``operands`` must provide a value array for every input word of the
    netlist; all arrays must have the same length.
    """
    missing = set(netlist.input_words) - set(operands)
    if missing:
        raise ValueError(f"missing operand values for input words: {sorted(missing)}")
    lengths = {len(np.asarray(operands[name])) for name in netlist.input_words}
    if len(lengths) != 1:
        raise ValueError("all operand arrays must have the same length")
    patterns = lengths.pop()

    input_bits = np.zeros((patterns, netlist.num_inputs), dtype=bool)
    for name, bit_ids in netlist.input_words.items():
        word_bits = words_to_bits(np.asarray(operands[name]), len(bit_ids))
        for position, node_id in enumerate(bit_ids):
            input_bits[:, node_id] = word_bits[:, position]
    output_bits = simulate_bits(netlist, input_bits)
    return bits_to_words(output_bits)


def exhaustive_operands(netlist: Netlist) -> Mapping[str, np.ndarray]:
    """All input-word combinations of the netlist, in row-major operand order."""
    names = list(netlist.input_words)
    widths = [len(netlist.input_words[name]) for name in names]
    grids = np.meshgrid(*[np.arange(1 << w, dtype=np.int64) for w in widths], indexing="ij")
    return {name: grid.reshape(-1) for name, grid in zip(names, grids)}


def exhaustive_simulate(netlist: Netlist) -> np.ndarray:
    """Output word for every input combination.

    The number of patterns is ``2 ** num_inputs``; callers are expected to use
    this only for circuits with at most ~20 input bits.
    """
    if netlist.num_inputs > 24:
        raise ValueError(
            f"exhaustive simulation of {netlist.num_inputs} input bits is "
            "infeasible; use sampled simulation instead"
        )
    return simulate_words(netlist, exhaustive_operands(netlist))


def random_operands(
    netlist: Netlist, num_samples: int, rng: np.random.Generator
) -> Mapping[str, np.ndarray]:
    """Uniformly random operand vectors for sampled (Monte-Carlo) evaluation."""
    operands = {}
    for name, bit_ids in netlist.input_words.items():
        operands[name] = rng.integers(0, 1 << len(bit_ids), size=num_samples, dtype=np.int64)
    return operands
