"""Approximate arithmetic components that accelerator workloads bind to slots.

An :class:`ApproxComponent` wraps one library circuit (an ApproxFPGAs
product) together with its FPGA cost report and error report -- everything
a workload needs to execute behaviourally and compose costs.  The helpers
here are workload-agnostic: any :class:`repro.workloads.ApproxAccelerator`
consumes the same component objects, so one Pareto-spread component pick
(:func:`components_from_library`) can feed several workloads through a
shared engine cache.

This module is the canonical home of the component machinery;
:mod:`repro.autoax.accelerator` re-exports it for backwards compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..circuits import Netlist
from ..error import ErrorEvaluator, ErrorReport
from ..fpga import FpgaReport, FpgaSynthesizer

__all__ = ["ApproxComponent", "build_component", "components_from_library"]


@dataclass
class ApproxComponent:
    """One approximate arithmetic component available to an accelerator."""

    name: str
    kind: str
    netlist: Netlist
    fpga: FpgaReport
    error: ErrorReport
    _table: Optional[np.ndarray] = None

    @property
    def operand_width(self) -> int:
        return self.netlist.word_width("a")

    def _lookup_table(self) -> np.ndarray:
        """Exhaustive output table (built lazily, only for narrow operands)."""
        if self._table is None:
            self._table = self.netlist.exhaustive_outputs()
        return self._table

    def compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Behaviourally evaluate the component on operand vectors."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        width = self.operand_width
        mask = (1 << width) - 1
        a = a & mask
        b = b & mask
        if width <= 10:
            table = self._lookup_table()
            width_b = self.netlist.word_width("b")
            return table[a * (1 << width_b) + b]
        return self.netlist.evaluate_words({"a": a, "b": b})


def build_component(
    netlist: Netlist,
    fpga_synthesizer: FpgaSynthesizer,
    evaluator: ErrorEvaluator,
    fpga_report: Optional[FpgaReport] = None,
    error_report: Optional[ErrorReport] = None,
) -> ApproxComponent:
    """Wrap a netlist into an :class:`ApproxComponent` with costs and error."""
    return ApproxComponent(
        name=netlist.name,
        kind=netlist.kind,
        netlist=netlist,
        fpga=fpga_report or fpga_synthesizer.synthesize(netlist),
        error=error_report or evaluator.evaluate(netlist),
    )


def components_from_library(
    library,
    count: int,
    fpga_synthesizer: Optional[FpgaSynthesizer] = None,
    parameter: str = "area",
    max_error: float = 0.1,
    seed: int = 5,
    engine: Optional["BatchEvaluator"] = None,  # noqa: F821
) -> List[ApproxComponent]:
    """Pick ``count`` Pareto-spread components from a library.

    The circuits are synthesized, circuits whose MED exceeds ``max_error``
    are discarded (an accelerator built from arbitrarily wrong arithmetic is
    useless, and the paper feeds AutoAx-FPGA only Pareto-optimal components),
    the (error, cost) Pareto front of the remainder is computed and ``count``
    components are taken spread along the front.  If the front is shorter
    than ``count`` the least-error dominated circuits fill in.

    Evaluation is batched through :class:`repro.engine.BatchEvaluator`; pass
    an ``engine`` (e.g. one shared with an ApproxFPGAs flow over the same
    library) to reuse its cached error metrics and FPGA reports.
    """
    from ..core.pareto import pareto_front_indices
    from ..engine import BatchEvaluator

    if engine is None:
        engine = BatchEvaluator(
            library.reference(), fpga_synthesizer=fpga_synthesizer or FpgaSynthesizer()
        )
    elif fpga_synthesizer is not None:
        if engine.fpga_synthesizer is None:
            engine.fpga_synthesizer = fpga_synthesizer
        elif engine.fpga_synthesizer is not fpga_synthesizer:
            raise ValueError(
                "conflicting fpga_synthesizer: the provided engine already has "
                "its own; pass one or the other"
            )
    all_circuits = list(library)
    all_errors = engine.evaluate_errors(all_circuits)
    keep = [i for i, e in enumerate(all_errors) if e.med <= max_error]
    if len(keep) < count:
        # Not enough accurate circuits: fall back to the lowest-error ones.
        keep = sorted(range(len(all_circuits)), key=lambda i: all_errors[i].med)[: max(count, 1)]
    circuits = [all_circuits[i] for i in keep]
    errors = [all_errors[i] for i in keep]
    reports = engine.evaluate_fpga(circuits)

    points = np.column_stack(
        [[e.med for e in errors], [r.parameter(parameter) for r in reports]]
    )
    front = pareto_front_indices(points)
    if len(front) >= count:
        chosen = [front[i] for i in np.linspace(0, len(front) - 1, count).round().astype(int)]
        # linspace rounding may duplicate for short fronts; de-duplicate then top up.
        chosen = list(dict.fromkeys(chosen))
    else:
        chosen = list(front)
    remaining = sorted(
        (i for i in range(len(circuits)) if i not in set(chosen)),
        key=lambda i: errors[i].med,
    )
    while len(chosen) < count and remaining:
        chosen.append(remaining.pop(0))

    return [
        ApproxComponent(
            name=circuits[i].name,
            kind=circuits[i].kind,
            netlist=circuits[i],
            fpga=reports[i],
            error=errors[i],
        )
        for i in chosen[:count]
    ]
