"""Sobel edge-detection accelerator workload.

The 3x3 Sobel operator computes two directional gradients (``Gx``, ``Gy``)
and reports the gradient magnitude ``|Gx| + |Gy|`` (the standard L1
approximation).  The datapath binds every non-zero tap of both kernels to
an approximate multiplier (twelve slots: six per direction, coefficient
magnitudes as the constant operand) and accumulates each direction's
positive and negative tap groups through approximate adder trees (eight
slots: a 2-adder tree per sign per direction).  The signed combination,
absolute values, shift and clip run in exact logic, like the output stage
of the convolution workloads.

Quality is judged with the gradient-magnitude similarity metric
(:func:`repro.workloads.quality.gradient_similarity`): the workload's
outputs *are* gradient-magnitude maps, so the GMS kernel applies to them
directly -- an edge-preservation score rather than the Gaussian case
study's structural similarity.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .base import ApproxAccelerator, SlotConfiguration, WORKLOADS

__all__ = ["SobelAccelerator", "SOBEL_GX_KERNEL", "SOBEL_GY_KERNEL", "SOBEL_SHIFT"]

#: The 1-2-1 Sobel kernels scaled by 32 so the coefficients exercise the
#: upper operand bits of the 8x8 multipliers, like the Gaussian kernel's
#: scaling in the paper's case study.
SOBEL_GX_KERNEL: Tuple[Tuple[int, ...], ...] = ((-32, 0, 32), (-64, 0, 64), (-32, 0, 32))
SOBEL_GY_KERNEL: Tuple[Tuple[int, ...], ...] = ((-32, -64, -32), (0, 0, 0), (32, 64, 32))
#: Right shift of ``|Gx| + |Gy|`` undoing the coefficient scaling.
SOBEL_SHIFT = 5


def _taps(kernel: Tuple[Tuple[int, ...], ...]) -> List[Tuple[int, int, int]]:
    return [
        (dy, dx, kernel[dy][dx])
        for dy in range(3)
        for dx in range(3)
        if kernel[dy][dx] != 0
    ]


@WORKLOADS.register("sobel")
class SobelAccelerator(ApproxAccelerator):
    """3x3 Sobel gradient-magnitude accelerator (twelve multipliers, eight adders)."""

    workload_name = "sobel"
    quality_metric = "gms"
    input_seed = 101
    window_size = 3

    def __init__(self, multipliers, adders):
        # Multiplier slots 0-5 are the Gx taps, 6-11 the Gy taps, both in
        # row-major kernel order; adder slots 0-7 are the four sign trees
        # in (Gx+, Gx-, Gy+, Gy-) order.
        self._gx_taps = _taps(SOBEL_GX_KERNEL)
        self._gy_taps = _taps(SOBEL_GY_KERNEL)
        self._taps = self._gx_taps + self._gy_taps
        self._groups: List[List[int]] = []
        for offset, taps in ((0, self._gx_taps), (len(self._gx_taps), self._gy_taps)):
            for sign in (1, -1):
                self._groups.append(
                    [offset + i for i, (_, _, c) in enumerate(taps) if np.sign(c) == sign]
                )
        super().__init__(multipliers, adders)

    # ------------------------------------------------------------------ #
    # Slot declaration
    # ------------------------------------------------------------------ #
    @property
    def num_multiplier_slots(self) -> int:
        return len(self._taps)

    @property
    def num_adder_slots(self) -> int:
        return sum(max(len(group) - 1, 0) for group in self._groups)

    # ------------------------------------------------------------------ #
    # Datapath (the tap-product, slot-group and latency machinery is
    # shared with the convolution workloads via ApproxAccelerator)
    # ------------------------------------------------------------------ #
    def _slot_groups(self) -> List[List[int]]:
        return self._groups

    def _apply_planes(self, planes: List[np.ndarray], config: SlotConfiguration) -> np.ndarray:
        shape = planes[0].shape
        products = self._tap_products(planes, self._taps, config)
        gx_pos, gx_neg, gy_pos, gy_neg = self._reduce_groups(
            products, self._slot_groups(), self._adder_combine(config)
        )
        magnitude = (np.abs(gx_pos - gx_neg) + np.abs(gy_pos - gy_neg)) >> SOBEL_SHIFT
        return np.clip(magnitude, 0, 255).reshape(shape).astype(np.uint8)

    def _exact_from_planes(self, planes: List[np.ndarray]) -> np.ndarray:
        gx = np.zeros_like(planes[0])
        gy = np.zeros_like(planes[0])
        for dy, dx, coefficient in self._gx_taps:
            gx += planes[dy * 3 + dx] * coefficient
        for dy, dx, coefficient in self._gy_taps:
            gy += planes[dy * 3 + dx] * coefficient
        magnitude = (np.abs(gx) + np.abs(gy)) >> SOBEL_SHIFT
        return np.clip(magnitude, 0, 255).astype(np.uint8)

    def _workload_signature(self) -> Tuple:
        return (SOBEL_GX_KERNEL, SOBEL_GY_KERNEL, SOBEL_SHIFT)
