"""Quality-of-result metrics for accelerator workloads.

Every workload judges the approximate accelerator's output against an
exact golden output with one *quality metric*: a callable
``(reference, test) -> float`` where larger is better and the value lies
in ``[0, 1]`` (``1.0`` means the outputs are identical).  Metrics are
registered in :data:`QUALITY_METRICS` under short string keys so a
workload declares its metric by name (``quality_metric = "ssim"``) and
new metrics plug in without touching the accelerator classes.

Built-in metrics
----------------
* ``"ssim"`` -- structural similarity (Wang et al.), the paper's metric
  for the Gaussian-filter case study;
* ``"psnr"`` -- :func:`psnr_score`, peak signal-to-noise ratio capped at
  ``cap_db`` and normalised to ``[0, 1]`` (raw :func:`psnr` is in dB and
  unbounded, which would break the search's ``1 - quality`` objective);
* ``"gms"`` -- :func:`gradient_similarity`, the mean gradient-magnitude
  similarity used by the Sobel edge-detection workload;
* ``"snr"`` -- :func:`snr_score`, signal-to-noise ratio capped at
  ``cap_db`` and normalised to ``[0, 1]``, the 1-D metric of the MVM /
  FIR / DCT signal workloads (raw :func:`snr` is in dB and unbounded).

Edge-case contract (pinned by ``tests/test_workloads.py`` and
``tests/test_workload_mvm_signal.py``):

* :func:`psnr` on identical images returns ``float("inf")`` explicitly --
  the zero-MSE case is tested *before* any division, so no
  ``RuntimeWarning`` is ever emitted;
* :func:`snr` mirrors that contract on both degenerate branches: zero
  noise returns ``float("inf")`` and an all-zero (flat-at-zero) reference
  with nonzero noise returns ``-inf`` explicitly, both tested before any
  division, so flat or silent signals never emit a ``RuntimeWarning``;
* :func:`ssim` validates the window size against the image size and
  raises a clear :class:`ValueError` instead of silently filtering with a
  window larger than the image.

This module is the canonical home of the metrics; :mod:`repro.autoax.quality`
re-exports them for backwards compatibility.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.ndimage import uniform_filter

from ..registry import Registry

__all__ = [
    "QUALITY_METRICS",
    "gradient_similarity",
    "mean_ssim",
    "psnr",
    "psnr_score",
    "snr",
    "snr_score",
    "ssim",
]

#: Registry of quality metrics: ``key -> (reference, test) -> float`` with
#: larger-is-better values in ``[0, 1]``.  Workloads reference their metric
#: by key (:attr:`repro.workloads.ApproxAccelerator.quality_metric`).
QUALITY_METRICS = Registry("quality metric")


@QUALITY_METRICS.register("ssim")
def ssim(reference: np.ndarray, test: np.ndarray, window: int = 7, data_range: float = 255.0) -> float:
    """Structural similarity index between two grayscale images.

    Standard SSIM (Wang et al.) with a uniform local window, matching what
    the paper uses to judge the Gaussian filter's output quality.

    Raises
    ------
    ValueError
        When the images' shapes differ, are not 2-D, or when ``window`` is
        smaller than 1 or larger than the smallest image dimension (a
        window that does not fit the image would silently average over
        reflected padding only).
    """
    reference = np.asarray(reference, dtype=np.float64)
    test = np.asarray(test, dtype=np.float64)
    if reference.shape != test.shape:
        raise ValueError("images must have the same shape")
    if reference.ndim != 2:
        raise ValueError("ssim expects 2-D grayscale images")
    if window < 1:
        raise ValueError(f"ssim window must be at least 1, got {window}")
    if window > min(reference.shape):
        raise ValueError(
            f"ssim window {window} exceeds the smallest image dimension "
            f"{min(reference.shape)}; pass a smaller window or larger images"
        )

    c1 = (0.01 * data_range) ** 2
    c2 = (0.03 * data_range) ** 2

    mu_x = uniform_filter(reference, size=window)
    mu_y = uniform_filter(test, size=window)
    mu_x_sq = mu_x ** 2
    mu_y_sq = mu_y ** 2
    mu_xy = mu_x * mu_y

    sigma_x = uniform_filter(reference ** 2, size=window) - mu_x_sq
    sigma_y = uniform_filter(test ** 2, size=window) - mu_y_sq
    sigma_xy = uniform_filter(reference * test, size=window) - mu_xy

    numerator = (2 * mu_xy + c1) * (2 * sigma_xy + c2)
    denominator = (mu_x_sq + mu_y_sq + c1) * (sigma_x + sigma_y + c2)
    ssim_map = numerator / denominator
    return float(ssim_map.mean())


def psnr(reference: np.ndarray, test: np.ndarray, data_range: float = 255.0) -> float:
    """Peak signal-to-noise ratio in dB.

    Identical images have zero mean-squared error; that case returns
    ``float("inf")`` *explicitly* -- the MSE is tested before the division,
    so no ``RuntimeWarning`` (divide-by-zero) is ever emitted.  Callers who
    need a bounded, normalised score (the search objectives do) should use
    :func:`psnr_score` instead.
    """
    reference = np.asarray(reference, dtype=np.float64)
    test = np.asarray(test, dtype=np.float64)
    if reference.shape != test.shape:
        raise ValueError("images must have the same shape")
    mse = float(np.mean((reference - test) ** 2))
    if mse == 0.0:
        return float("inf")
    return 10.0 * np.log10(data_range ** 2 / mse)


@QUALITY_METRICS.register("psnr")
def psnr_score(
    reference: np.ndarray, test: np.ndarray, data_range: float = 255.0, cap_db: float = 60.0
) -> float:
    """PSNR capped at ``cap_db`` and normalised to ``[0, 1]``.

    Raw PSNR is unbounded (infinite for identical images), which would
    break the ``1 - quality`` loss convention of the search objectives;
    capping at 60 dB -- far beyond visually lossless -- and dividing by
    the cap maps identical images to exactly ``1.0`` while staying
    strictly monotone in MSE below the cap.
    """
    return float(min(psnr(reference, test, data_range), cap_db) / cap_db)


def snr(reference: np.ndarray, test: np.ndarray) -> float:
    """Signal-to-noise ratio in dB: signal power over error power.

    The 1-D counterpart of :func:`psnr` for the signal workloads, whose
    outputs have no fixed peak value (an MVM's dynamic range depends on
    the weight matrix).  Both degenerate branches are handled explicitly
    *before* any division, so no ``RuntimeWarning`` is ever emitted:

    * zero noise power (identical outputs -- including two identical
      all-zero signals) returns ``float("inf")``;
    * zero signal power (an all-zero reference) with nonzero noise
      returns ``float("-inf")`` -- there is no signal to have a ratio to.

    Callers who need a bounded, normalised score (the search objectives
    do) should use :func:`snr_score` instead.
    """
    reference = np.asarray(reference, dtype=np.float64)
    test = np.asarray(test, dtype=np.float64)
    if reference.shape != test.shape:
        raise ValueError("signals must have the same shape")
    noise_power = float(np.mean((reference - test) ** 2))
    if noise_power == 0.0:
        return float("inf")
    signal_power = float(np.mean(reference ** 2))
    if signal_power == 0.0:
        return float("-inf")
    return 10.0 * np.log10(signal_power / noise_power)


@QUALITY_METRICS.register("snr")
def snr_score(reference: np.ndarray, test: np.ndarray, cap_db: float = 60.0) -> float:
    """SNR capped at ``cap_db`` and normalised to ``[0, 1]``.

    Raw SNR is unbounded in both directions (infinite for identical
    signals, ``-inf`` for an all-zero reference), which would break the
    ``1 - quality`` loss convention of the search objectives; clamping to
    ``[0, cap_db]`` and dividing by the cap maps identical signals to
    exactly ``1.0``, a silent reference with noise to ``0.0``, and stays
    strictly monotone in the error power in between.
    """
    return float(min(max(snr(reference, test), 0.0), cap_db) / cap_db)


@QUALITY_METRICS.register("gms")
def gradient_similarity(reference: np.ndarray, test: np.ndarray, c: float = 170.0) -> float:
    """Mean gradient-magnitude similarity between two gradient maps.

    The pointwise similarity ``(2*r*t + c) / (r**2 + t**2 + c)`` (the GMS
    kernel of Xue et al., with the standard ``c = 170`` stabiliser for
    8-bit ranges) is averaged over the image; identical maps score exactly
    ``1.0``.  The Sobel workload applies it directly to its outputs, which
    *are* gradient-magnitude maps.
    """
    reference = np.asarray(reference, dtype=np.float64)
    test = np.asarray(test, dtype=np.float64)
    if reference.shape != test.shape:
        raise ValueError("gradient maps must have the same shape")
    similarity = (2.0 * reference * test + c) / (reference ** 2 + test ** 2 + c)
    return float(similarity.mean())


def mean_ssim(references: Sequence[np.ndarray], tests: Sequence[np.ndarray]) -> float:
    """Average SSIM over a workload of image pairs."""
    if len(references) != len(tests):
        raise ValueError("reference and test image lists must have the same length")
    if not references:
        raise ValueError("cannot average SSIM over an empty workload")
    return float(np.mean([ssim(ref, test) for ref, test in zip(references, tests)]))
