"""Seeded synthetic input sets for the accelerator workloads.

The paper evaluates its accelerators on image-processing workloads; since
no image set ships with this reproduction, a deterministic set of synthetic
8-bit grayscale images with varied spatial statistics (smooth gradients,
edges, texture, blobs and noise) stands in for it.  The images exercise the
same code path: every pixel flows through the assigned approximate
multipliers and adders.

Every generator is size-parameterised and seeded.  ``seed=0`` reproduces
the historical Gaussian-filter image set bit for bit (the legacy
``repro.autoax.images.default_image_set`` is an alias of
:func:`default_image_set` at its defaults).  Any two distinct seeds
produce distinct *sets*: the blob/texture/noise images derive their RNG
streams from the seed, so two workloads with different
:attr:`~repro.workloads.ApproxAccelerator.input_seed` values can never
silently share identical inputs (and therefore never share image-set
cache tokens).  The structured gradient/checkerboard images also vary
orientation and tiling with the seed, but only modulo small factors (4
and 6), so individual structured images may coincide between far-apart
seeds -- set-level distinctness never depends on them.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = [
    "blob_image",
    "checkerboard_image",
    "default_image_set",
    "gradient_image",
    "noise_image",
    "texture_image",
]


def gradient_image(size: int, seed: int = 0) -> np.ndarray:
    """Smooth diagonal gradient; ``seed`` rotates the orientation."""
    row = np.linspace(0, 255, size)
    image = (row[:, None] + row[None, :]) / 2.0
    image = image.astype(np.uint8)
    if seed % 4:
        image = np.ascontiguousarray(np.rot90(image, k=seed % 4))
    return image


def checkerboard_image(size: int, tile: int = 6, seed: int = 0) -> np.ndarray:
    """High-frequency checkerboard (edge-heavy content).

    The seed varies the tile size and phase so differently-seeded sets get
    distinct edge placements; ``seed=0`` keeps the historical 6-pixel tiles.
    """
    tile = tile + seed % 3
    phase = seed % 2
    indices = np.arange(size)
    pattern = ((indices[:, None] // tile) + (indices[None, :] // tile) + phase) % 2
    return (pattern * 255).astype(np.uint8)


def blob_image(size: int, seed: int = 3) -> np.ndarray:
    """Sum of a few Gaussian blobs (smooth, non-monotone content)."""
    rng = np.random.default_rng(seed)
    ys, xs = np.mgrid[0:size, 0:size]
    image = np.zeros((size, size), dtype=np.float64)
    for _ in range(5):
        cx, cy = rng.uniform(0, size, size=2)
        sigma = rng.uniform(size / 10, size / 4)
        amplitude = rng.uniform(80, 255)
        image += amplitude * np.exp(-((xs - cx) ** 2 + (ys - cy) ** 2) / (2 * sigma ** 2))
    image = 255.0 * image / image.max()
    return image.astype(np.uint8)


def texture_image(size: int, seed: int = 7) -> np.ndarray:
    """Band-limited noise texture."""
    rng = np.random.default_rng(seed)
    noise = rng.normal(0.0, 1.0, size=(size, size))
    # Cheap low-pass: repeated box blur via cumulative sums.
    kernel = np.ones((5, 5)) / 25.0
    padded = np.pad(noise, 2, mode="reflect")
    smoothed = np.zeros_like(noise)
    for dy in range(5):
        for dx in range(5):
            smoothed += kernel[dy, dx] * padded[dy:dy + size, dx:dx + size]
    smoothed -= smoothed.min()
    smoothed /= max(smoothed.max(), 1e-9)
    return (smoothed * 255).astype(np.uint8)


def noise_image(size: int, seed: int = 11) -> np.ndarray:
    """Uniform random noise (worst case for error attenuation)."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(size, size), dtype=np.uint8)


def default_image_set(size: int = 48, seed: int = 0) -> List[np.ndarray]:
    """The five-image input set of one workload.

    ``seed`` is the workload's :attr:`~repro.workloads.ApproxAccelerator.input_seed`
    base; the per-image seeds are derived from it with the historical
    offsets (3, 7, 11), so ``seed=0`` is bit-identical to the image set the
    AutoAx-FPGA benchmarks have always used.
    """
    return [
        gradient_image(size, seed=seed),
        checkerboard_image(size, seed=seed),
        blob_image(size, seed=seed + 3),
        texture_image(size, seed=seed + 7),
        noise_image(size, seed=seed + 11),
    ]
