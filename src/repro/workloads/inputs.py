"""Seeded synthetic input sets for the accelerator workloads.

The paper evaluates its accelerators on image-processing workloads; since
no image set ships with this reproduction, a deterministic set of synthetic
8-bit grayscale images with varied spatial statistics (smooth gradients,
edges, texture, blobs and noise) stands in for it.  The images exercise the
same code path: every pixel flows through the assigned approximate
multipliers and adders.

Every generator is size-parameterised and seeded.  ``seed=0`` reproduces
the historical Gaussian-filter image set bit for bit (the legacy
``repro.autoax.images.default_image_set`` is an alias of
:func:`default_image_set` at its defaults).  Any two distinct seeds
produce distinct *sets*: the blob/texture/noise images derive their RNG
streams from the seed, so two workloads with different
:attr:`~repro.workloads.ApproxAccelerator.input_seed` values can never
silently share identical inputs (and therefore never share image-set
cache tokens).  The structured gradient/checkerboard images also vary
orientation and tiling with the seed, but only modulo small factors (4
and 6), so individual structured images may coincide between far-apart
seeds -- set-level distinctness never depends on them.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "blob_image",
    "checkerboard_image",
    "default_image_set",
    "default_signal_set",
    "fidelity_inputs",
    "gradient_image",
    "noise_image",
    "texture_image",
]

#: Smallest side length :func:`fidelity_inputs` will crop to.  The largest
#: quality-metric window in the registry (SSIM's default 7x7) must still
#: fit, and below this size a quality estimate is statistically useless.
MIN_FIDELITY_SIDE = 8

#: Smallest length :func:`fidelity_inputs` will crop a 1-D signal to.  The
#: MVM/signal workloads consume whole blocks (matrix columns / FIR taps),
#: so a crop must keep at least one block's worth of samples.
MIN_FIDELITY_LENGTH = 32


def fidelity_inputs(
    images: Sequence[np.ndarray], budget: int
) -> Tuple[List[np.ndarray], bool]:
    """Reduce an input set to roughly ``budget`` total samples by centre-cropping.

    The multi-fidelity ladder's reduced-rung transform.  2-D images are
    cropped around their centre by the same linear factor
    ``sqrt(budget / total_pixels)``, preserving the set's content mix
    while cutting evaluation cost proportionally; sides never drop below
    :data:`MIN_FIDELITY_SIDE` (so windowed quality metrics keep working on
    tiny budgets -- the realised pixel count may then exceed ``budget``).
    1-D signals (the MVM / FIR / DCT workloads) crop their centre segment
    by the factor ``budget / total_samples`` directly, with
    :data:`MIN_FIDELITY_LENGTH` as the floor.

    Returns ``(inputs, reduced)``.  A budget at or above the full sample
    count is an identity: the *original* arrays come back with ``reduced``
    False, so full-fidelity rungs share exact-evaluation cache tokens
    bit for bit.
    """
    if budget < 1:
        raise ValueError("fidelity budget must be at least one pixel")
    images = [np.asarray(image) for image in images]
    total = sum(int(image.size) for image in images)
    if total <= budget:
        return images, False
    scale = math.sqrt(budget / total)
    linear_scale = budget / total
    cropped = []
    for image in images:
        if image.ndim == 1:
            length = image.shape[0]
            new_length = min(length, max(MIN_FIDELITY_LENGTH, int(length * linear_scale)))
            start = (length - new_length) // 2
            cropped.append(np.ascontiguousarray(image[start:start + new_length]))
            continue
        rows, cols = image.shape[:2]
        new_rows = min(rows, max(MIN_FIDELITY_SIDE, int(rows * scale)))
        new_cols = min(cols, max(MIN_FIDELITY_SIDE, int(cols * scale)))
        row0 = (rows - new_rows) // 2
        col0 = (cols - new_cols) // 2
        cropped.append(np.ascontiguousarray(image[row0:row0 + new_rows, col0:col0 + new_cols]))
    return cropped, True


def gradient_image(size: int, seed: int = 0) -> np.ndarray:
    """Smooth diagonal gradient; ``seed`` rotates the orientation."""
    row = np.linspace(0, 255, size)
    image = (row[:, None] + row[None, :]) / 2.0
    image = image.astype(np.uint8)
    if seed % 4:
        image = np.ascontiguousarray(np.rot90(image, k=seed % 4))
    return image


def checkerboard_image(size: int, tile: int = 6, seed: int = 0) -> np.ndarray:
    """High-frequency checkerboard (edge-heavy content).

    The seed varies the tile size and phase so differently-seeded sets get
    distinct edge placements; ``seed=0`` keeps the historical 6-pixel tiles.
    """
    tile = tile + seed % 3
    phase = seed % 2
    indices = np.arange(size)
    pattern = ((indices[:, None] // tile) + (indices[None, :] // tile) + phase) % 2
    return (pattern * 255).astype(np.uint8)


def blob_image(size: int, seed: int = 3) -> np.ndarray:
    """Sum of a few Gaussian blobs (smooth, non-monotone content)."""
    rng = np.random.default_rng(seed)
    ys, xs = np.mgrid[0:size, 0:size]
    image = np.zeros((size, size), dtype=np.float64)
    for _ in range(5):
        cx, cy = rng.uniform(0, size, size=2)
        sigma = rng.uniform(size / 10, size / 4)
        amplitude = rng.uniform(80, 255)
        image += amplitude * np.exp(-((xs - cx) ** 2 + (ys - cy) ** 2) / (2 * sigma ** 2))
    image = 255.0 * image / image.max()
    return image.astype(np.uint8)


def texture_image(size: int, seed: int = 7) -> np.ndarray:
    """Band-limited noise texture."""
    rng = np.random.default_rng(seed)
    noise = rng.normal(0.0, 1.0, size=(size, size))
    # Cheap low-pass: repeated box blur via cumulative sums.
    kernel = np.ones((5, 5)) / 25.0
    padded = np.pad(noise, 2, mode="reflect")
    smoothed = np.zeros_like(noise)
    for dy in range(5):
        for dx in range(5):
            smoothed += kernel[dy, dx] * padded[dy:dy + size, dx:dx + size]
    smoothed -= smoothed.min()
    smoothed /= max(smoothed.max(), 1e-9)
    return (smoothed * 255).astype(np.uint8)


def noise_image(size: int, seed: int = 11) -> np.ndarray:
    """Uniform random noise (worst case for error attenuation)."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(size, size), dtype=np.uint8)


def default_image_set(size: int = 48, seed: int = 0) -> List[np.ndarray]:
    """The five-image input set of one workload.

    ``seed`` is the workload's :attr:`~repro.workloads.ApproxAccelerator.input_seed`
    base; the per-image seeds are derived from it with the historical
    offsets (3, 7, 11), so ``seed=0`` is bit-identical to the image set the
    AutoAx-FPGA benchmarks have always used.
    """
    return [
        gradient_image(size, seed=seed),
        checkerboard_image(size, seed=seed),
        blob_image(size, seed=seed + 3),
        texture_image(size, seed=seed + 7),
        noise_image(size, seed=seed + 11),
    ]


def _tone_signal(length: int, seed: int) -> np.ndarray:
    """Sum of a few seeded sinusoids, quantised to 8-bit samples."""
    rng = np.random.default_rng(seed)
    t = np.arange(length, dtype=np.float64)
    signal = np.zeros(length, dtype=np.float64)
    for _ in range(3):
        period = rng.uniform(8.0, length / 2.0)
        amplitude = rng.uniform(30.0, 100.0)
        phase = rng.uniform(0.0, 2.0 * math.pi)
        signal += amplitude * np.sin(2.0 * math.pi * t / period + phase)
    signal -= signal.min()
    signal *= 255.0 / max(signal.max(), 1e-9)
    return signal.astype(np.uint8).astype(np.int64)


def _chirp_signal(length: int, seed: int) -> np.ndarray:
    """Linear chirp sweeping low to high frequency (edge-dense tail)."""
    rng = np.random.default_rng(seed)
    t = np.arange(length, dtype=np.float64) / length
    f0 = rng.uniform(1.0, 4.0)
    f1 = rng.uniform(length / 8.0, length / 4.0)
    signal = 127.5 * (1.0 + np.sin(2.0 * math.pi * (f0 + (f1 - f0) * t / 2.0) * t * length / length))
    return np.clip(signal, 0, 255).astype(np.uint8).astype(np.int64)


def _step_signal(length: int, seed: int) -> np.ndarray:
    """Piecewise-constant steps (the 1-D analogue of the checkerboard)."""
    rng = np.random.default_rng(seed)
    num_steps = int(rng.integers(4, 9))
    edges = np.sort(rng.choice(np.arange(1, length), size=num_steps - 1, replace=False))
    levels = rng.integers(0, 256, size=num_steps)
    signal = np.empty(length, dtype=np.int64)
    start = 0
    for edge, level in zip(list(edges) + [length], levels):
        signal[start:edge] = int(level)
        start = edge
    return signal


def _noise_signal(length: int, seed: int) -> np.ndarray:
    """Uniform random samples (worst case for error attenuation)."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=length).astype(np.int64)


def default_signal_set(size: int = 48, seed: int = 0) -> List[np.ndarray]:
    """The four-signal 1-D input set of one signal-family workload.

    The 1-D counterpart of :func:`default_image_set` for the MVM / FIR /
    DCT workloads: tones, a chirp, steps and noise, each ``4 * size``
    samples long (so ``size`` stays comparable to the image workloads'
    side-length knob while giving block-based datapaths enough full
    blocks).  Samples are non-negative 8-bit values held in ``int64``
    arrays -- what the integer datapaths consume directly.  Per-signal
    seeds derive from ``seed`` with distinct offsets, so two workloads
    with different :attr:`~repro.workloads.ApproxAccelerator.input_seed`
    values never share an identical set (and therefore never share
    input-set cache tokens).
    """
    length = 4 * size
    return [
        _tone_signal(length, seed=seed + 1),
        _chirp_signal(length, seed=seed + 5),
        _step_signal(length, seed=seed + 9),
        _noise_signal(length, seed=seed + 13),
    ]
