"""The accelerator-workload protocol and the ``WORKLOADS`` registry.

A *workload* is one approximate-accelerator case study: a datapath whose
operator slots are bound to approximate arithmetic components, an input
set to run it on, and a quality metric judging the approximate output
against the exact one.  :class:`ApproxAccelerator` is the protocol every
workload implements (as an abstract base class so the slot bookkeeping,
configuration sampling and cost composition are shared); the string-keyed
:data:`WORKLOADS` registry is how flows, sessions and examples look
workloads up by name (``AutoAxConfig(workload="sobel")``).

The evaluation contract mirrors what the engine and the search layers
already consume:

* ``slots()`` declares the component slots by kind and operand width;
* ``prepare_inputs(inputs)`` precomputes the per-input work every
  configuration shares (shifted planes, golden reference outputs);
* ``evaluate_prepared(prepared, config)`` returns the ``(quality,
  hw_cost)`` pair of one configuration against prepared inputs;
* ``quality_metric`` names the :data:`repro.workloads.QUALITY_METRICS`
  entry the workload judges quality with (larger is better, in
  ``[0, 1]``);
* ``workload_token()`` digests the workload's structural identity so
  engine cache keys (:func:`repro.engine.keys.accelerator_token`) can
  never alias two workloads built from the same component libraries.

Built-in workloads register themselves on import of
:mod:`repro.workloads`: the image-convolution trio ``"gaussian"`` (the
paper's 3x3 Gaussian-filter case study, SSIM quality), ``"sobel"`` (3x3
Sobel edge detection, gradient-magnitude-similarity quality) and
``"sharpen"`` (3x3 sharpening convolution, PSNR quality), plus the 1-D
signal family built on :class:`VectorAccelerator`: ``"mvm"`` (bit-sliced
matrix-vector multiply, SNR quality), ``"dct"`` (8-point DCT-II as a
bit-sliced MVM), ``"fir"`` (7-tap low-pass FIR) and ``"fir_mixed"``
(the FIR at swept 6-bit multiplier / 12-bit adder operand widths).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..engine.keys import blake_token
from ..registry import Registry
from .inputs import default_image_set, default_signal_set
from .quality import QUALITY_METRICS

__all__ = [
    "ApproxAccelerator",
    "ComponentSlot",
    "SlotConfiguration",
    "VectorAccelerator",
    "WORKLOADS",
    "build_workload",
    "reduce_balanced",
]

#: Registry of accelerator workloads.  Each entry is a factory
#: ``(multipliers, adders) -> ApproxAccelerator`` (the built-ins are the
#: accelerator classes themselves) carrying the class-level workload
#: declaration (``workload_name``, ``quality_metric``, ``input_seed``,
#: ``default_inputs``).  Flows resolve ``AutoAxConfig.workload`` here, so
#: a new case study plugs in by registering a key instead of editing the
#: flow, stage, engine or session layers.
WORKLOADS = Registry("workload")


def build_workload(key: str, multipliers: Sequence, adders: Sequence) -> "ApproxAccelerator":
    """Instantiate the registered workload ``key`` on the given components.

    Raises :class:`repro.registry.RegistryError` (listing the available
    keys) for unknown workloads.
    """
    return WORKLOADS.get(key)(multipliers, adders)


#: Sentinel distinguishing "no ``empty`` fallback supplied" from an
#: explicit ``empty=None`` (``None`` is a legitimate fallback value).
_NO_EMPTY = object()


def reduce_balanced(values, combine, slot: int = 0, *, empty=_NO_EMPTY):
    """Balanced pairwise reduction threading adder-slot numbers.

    ``combine(slot, left, right)`` merges two values through the adder
    assigned to ``slot``; slots are consumed in breadth-first tree order
    (level by level, left to right), which is exactly the accumulation-tree
    numbering the historical Gaussian-filter accelerator used -- for nine
    products the tree is 4 + 2 + 1 internal adders plus the final addition
    of the ninth product, on slots 0..7.  Returns ``(result, next_slot)``.

    Degenerate cases (contract pinned by ``tests/test_workload_mvm_signal.py``,
    hit by the 1-D MVM/signal workloads whose per-row sign groups can hold
    one or zero operands):

    * a **single value** passes through unchanged without consuming a slot
      and without calling ``combine``;
    * an **empty list** returns ``(empty, slot)`` when the ``empty``
      fallback is given (the group's additive identity -- slot counter
      untouched, ``combine`` never called) and raises the historical
      :class:`ValueError` otherwise, so callers that cannot provide an
      identity still fail loudly instead of crashing on ``values[0]``.
    """
    values = list(values)
    if not values:
        if empty is _NO_EMPTY:
            raise ValueError("cannot reduce an empty value list")
        return empty, slot
    while len(values) > 1:
        reduced = []
        for index in range(0, len(values) - 1, 2):
            reduced.append(combine(slot, values[index], values[index + 1]))
            slot += 1
        if len(values) % 2:
            reduced.append(values[-1])
        values = reduced
    return values[0], slot


@dataclass(frozen=True)
class ComponentSlot:
    """One group of operator slots of an accelerator datapath.

    ``kind`` matches the component kind that may be bound to the slots
    (``"multiplier"`` / ``"adder"``), ``count`` is how many such slots the
    datapath has, and ``operand_width`` is the case study's declared
    operand width in bits.  Narrower components are accepted at
    construction time (operands are masked to the component's own width),
    which keeps small test libraries usable; the declared width documents
    the paper's configuration.
    """

    kind: str
    count: int
    operand_width: int


@dataclass(frozen=True, eq=False)
class SlotConfiguration:
    """Assignment of component indices to an accelerator's operator slots.

    The generic, workload-shape-agnostic configuration: slot counts are
    validated by the accelerator that creates it
    (:meth:`ApproxAccelerator.make_configuration`), not by the class.
    Equality and hashing compare the index tuples only, so workload-pinned
    subclasses (e.g. the legacy 9x8 :class:`repro.autoax.Configuration`)
    compare equal to generic instances with the same assignment.
    """

    multiplier_indices: Tuple[int, ...]
    adder_indices: Tuple[int, ...]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SlotConfiguration):
            return NotImplemented
        return (
            self.multiplier_indices == other.multiplier_indices
            and self.adder_indices == other.adder_indices
        )

    def __hash__(self) -> int:
        return hash((self.multiplier_indices, self.adder_indices))


class ApproxAccelerator(abc.ABC):
    """Base class / protocol of one approximate-accelerator workload.

    Subclasses declare the workload identity as class attributes
    (:attr:`workload_name`, :attr:`quality_metric`, :attr:`input_seed`)
    and implement the datapath (:meth:`prepare_inputs`,
    :meth:`_apply_planes`, :meth:`_latency`).  Everything the search and
    engine layers consume -- configuration sampling and mutation, design
    space size, composed cost, ``(quality, cost)`` evaluation against
    prepared inputs -- is provided here, generic over the slot counts.

    The constructor contract is shared by every workload:
    ``cls(multipliers, adders)`` with components of the matching kinds.
    """

    #: Registry key / human-readable identity of the workload.
    workload_name: str = "workload"
    #: :data:`repro.workloads.QUALITY_METRICS` key judging output quality.
    quality_metric: str = "ssim"
    #: Base seed of :meth:`default_inputs`; unique per workload so no two
    #: workloads silently share identical input sets.
    input_seed: int = 0

    def __init__(self, multipliers: Sequence, adders: Sequence):
        if not multipliers or not adders:
            raise ValueError("at least one multiplier and one adder component are required")
        for component in multipliers:
            if component.kind != "multiplier":
                raise ValueError(f"component {component.name!r} is not a multiplier")
        for component in adders:
            if component.kind != "adder":
                raise ValueError(f"component {component.name!r} is not an adder")
        self.multipliers = list(multipliers)
        self.adders = list(adders)
        # Resolve the metric once; unknown keys fail at construction time
        # with the registry's available-keys message.
        self._quality_fn = QUALITY_METRICS.get(self.quality_metric)

    # ------------------------------------------------------------------ #
    # Slot declaration
    # ------------------------------------------------------------------ #
    @property
    @abc.abstractmethod
    def num_multiplier_slots(self) -> int:
        """Number of multiplier slots of the datapath."""

    @property
    @abc.abstractmethod
    def num_adder_slots(self) -> int:
        """Number of adder slots of the datapath."""

    #: Declared operand widths of the case study (see :class:`ComponentSlot`).
    multiplier_width: int = 8
    adder_width: int = 16

    def slots(self) -> Tuple[ComponentSlot, ...]:
        """The component slots of the datapath, declared by kind and width."""
        return (
            ComponentSlot("multiplier", self.num_multiplier_slots, self.multiplier_width),
            ComponentSlot("adder", self.num_adder_slots, self.adder_width),
        )

    @property
    def design_space_size(self) -> int:
        """Number of distinct component assignments."""
        return (
            len(self.multipliers) ** self.num_multiplier_slots
            * len(self.adders) ** self.num_adder_slots
        )

    # ------------------------------------------------------------------ #
    # Configuration handling (shared by every workload; the RNG call
    # sequence is identical to the historical Gaussian implementation, so
    # seeded Gaussian runs stay bit-identical)
    # ------------------------------------------------------------------ #
    def make_configuration(
        self, multiplier_indices: Sequence[int], adder_indices: Sequence[int]
    ) -> SlotConfiguration:
        """A validated configuration for this workload's slot shape."""
        config = SlotConfiguration(
            tuple(int(i) for i in multiplier_indices),
            tuple(int(i) for i in adder_indices),
        )
        self.validate_configuration(config)
        return config

    def validate_configuration(self, config: SlotConfiguration) -> None:
        if len(config.multiplier_indices) != self.num_multiplier_slots:
            raise ValueError(
                f"{self.workload_name}: expected {self.num_multiplier_slots} "
                f"multiplier slots, got {len(config.multiplier_indices)}"
            )
        if len(config.adder_indices) != self.num_adder_slots:
            raise ValueError(
                f"{self.workload_name}: expected {self.num_adder_slots} "
                f"adder slots, got {len(config.adder_indices)}"
            )

    def exact_configuration(self) -> SlotConfiguration:
        """Configuration using the most accurate available component everywhere."""
        best_multiplier = int(np.argmin([c.error.med for c in self.multipliers]))
        best_adder = int(np.argmin([c.error.med for c in self.adders]))
        return SlotConfiguration(
            multiplier_indices=(best_multiplier,) * self.num_multiplier_slots,
            adder_indices=(best_adder,) * self.num_adder_slots,
        )

    def random_configuration(self, rng: np.random.Generator) -> SlotConfiguration:
        return SlotConfiguration(
            multiplier_indices=tuple(
                int(i)
                for i in rng.integers(0, len(self.multipliers), self.num_multiplier_slots)
            ),
            adder_indices=tuple(
                int(i) for i in rng.integers(0, len(self.adders), self.num_adder_slots)
            ),
        )

    def mutate_configuration(
        self, config: SlotConfiguration, rng: np.random.Generator
    ) -> SlotConfiguration:
        """Change the component of one randomly chosen slot (hill-climbing move)."""
        multiplier_indices = list(config.multiplier_indices)
        adder_indices = list(config.adder_indices)
        num_m = self.num_multiplier_slots
        num_a = self.num_adder_slots
        if rng.random() < num_m / (num_m + num_a):
            slot = int(rng.integers(0, num_m))
            multiplier_indices[slot] = int(rng.integers(0, len(self.multipliers)))
        else:
            slot = int(rng.integers(0, num_a))
            adder_indices[slot] = int(rng.integers(0, len(self.adders)))
        return SlotConfiguration(tuple(multiplier_indices), tuple(adder_indices))

    # ------------------------------------------------------------------ #
    # Inputs
    # ------------------------------------------------------------------ #
    def default_inputs(self, size: int = 48) -> List[np.ndarray]:
        """The workload's default seeded input set.

        Derived from :attr:`input_seed` (including instance-level
        overrides on ad-hoc workloads), so two workloads never share
        identical inputs unless they explicitly share a seed.
        """
        return default_image_set(size, seed=self.input_seed)

    # ------------------------------------------------------------------ #
    # Behavioural execution
    # ------------------------------------------------------------------ #
    #: Side length of the sliding window the datapath consumes (3 for the
    #: built-in 3x3 convolution-style workloads).
    window_size: int = 3

    def _shifted_planes(self, image: np.ndarray) -> List[np.ndarray]:
        """The window's neighbourhood planes of the image (reflect padding)."""
        pad = self.window_size // 2
        padded = np.pad(image.astype(np.int64), pad, mode="reflect")
        height, width = image.shape
        planes = []
        for dy in range(self.window_size):
            for dx in range(self.window_size):
                planes.append(padded[dy:dy + height, dx:dx + width])
        return planes

    @abc.abstractmethod
    def _exact_from_planes(self, planes: List[np.ndarray]) -> np.ndarray:
        """Golden output computed with exact integer arithmetic."""

    @abc.abstractmethod
    def _apply_planes(self, planes: List[np.ndarray], config: SlotConfiguration) -> np.ndarray:
        """Configured datapath output for one prepared input's planes."""

    def exact_filter(self, image: np.ndarray) -> np.ndarray:
        """Golden output of the datapath with exact integer arithmetic."""
        return self._exact_from_planes(self._shifted_planes(image))

    def apply(self, image: np.ndarray, config: SlotConfiguration) -> np.ndarray:
        """Output of the datapath when executed with the configured components."""
        image = np.asarray(image)
        if image.ndim != 2:
            raise ValueError("expected a 2-D grayscale image")
        return self._apply_planes(self._shifted_planes(image), config)

    def prepare_inputs(self, inputs: Sequence[np.ndarray]) -> List[Tuple]:
        """Precompute the per-input work every configuration shares.

        Returns one ``(planes, exact reference output)`` entry per input;
        preparing once and evaluating a whole population against it is
        what makes generation-batched evaluation
        (:meth:`repro.engine.BatchEvaluator.evaluate_configurations`) pay
        the per-input work once instead of once per configuration.
        Results are bit-identical to the unprepared path (:meth:`quality`
        itself runs through it).
        """
        prepared = []
        for image in inputs:
            image = np.asarray(image)
            if image.ndim != 2:
                raise ValueError("expected a 2-D grayscale image")
            planes = self._shifted_planes(image)
            prepared.append((planes, self._exact_from_planes(planes)))
        return prepared

    def prepare_images(self, images: Sequence[np.ndarray]) -> List[Tuple]:
        """Legacy alias of :meth:`prepare_inputs`."""
        return self.prepare_inputs(images)

    def _tap_products(
        self, planes: List[np.ndarray], taps: Sequence[Tuple[int, int, int]],
        config: SlotConfiguration,
    ) -> List[np.ndarray]:
        """Per-tap approximate products (multiplier slot ``i`` <-> tap ``i``).

        Each ``(dy, dx, coefficient)`` tap multiplies its window plane by
        the coefficient *magnitude* through the slot's assigned component;
        signs are applied by the caller's combination stage.
        """
        products: List[np.ndarray] = []
        for slot, (dy, dx, coefficient) in enumerate(taps):
            plane = planes[dy * self.window_size + dx]
            multiplier = self.multipliers[config.multiplier_indices[slot]]
            coefficients = np.full(plane.size, abs(coefficient), dtype=np.int64)
            products.append(multiplier.compute(plane.ravel(), coefficients))
        return products

    def _reduce_groups(self, values: Sequence, groups: Sequence[Sequence[int]], combine) -> List:
        """One balanced :func:`reduce_balanced` tree per slot group.

        Groups are reduced in order with a single running adder-slot
        counter, so the group layout fully determines the slot numbering
        (and with it both the datapath wiring and the latency model).
        """
        slot = 0
        reduced = []
        for group in groups:
            total, slot = reduce_balanced([values[i] for i in group], combine, slot)
            reduced.append(total)
        return reduced

    def _slot_groups(self) -> List[List[int]]:
        """Adder-tree product groups of the datapath, in slot-numbering order.

        The single hook the shared accumulation and latency machinery needs:
        each group of product indices reduces through one balanced adder
        tree, groups in order sharing one running adder-slot counter.
        """
        raise NotImplementedError

    def _adder_combine(self, config: SlotConfiguration):
        """``(slot, left, right) -> sum`` through the slot's assigned adder."""

        def add(slot: int, left: np.ndarray, right: np.ndarray) -> np.ndarray:
            adder = self.adders[config.adder_indices[slot]]
            return adder.compute(left, right)

        return add

    def quality_prepared(self, prepared: Sequence[Tuple], config: SlotConfiguration) -> float:
        """Mean quality-metric score of one configuration against prepared inputs."""
        scores = []
        for planes, reference in prepared:
            approximate = self._apply_planes(planes, config)
            scores.append(self._quality_fn(reference, approximate))
        return float(np.mean(scores))

    def quality(self, inputs: Sequence[np.ndarray], config: SlotConfiguration) -> float:
        """Mean quality of the configured datapath against the exact one."""
        return self.quality_prepared(self.prepare_inputs(inputs), config)

    def evaluate_prepared(
        self, prepared: Sequence[Tuple], config: SlotConfiguration
    ) -> Tuple[float, Dict[str, float]]:
        """(quality, hw cost) of one configuration against prepared inputs."""
        return self.quality_prepared(prepared, config), self.hw_cost(config)

    # ------------------------------------------------------------------ #
    # Cost model
    # ------------------------------------------------------------------ #
    def _latency(self, multiplier_latency: List[float], adder_latency: List[float]) -> float:
        """Critical-path latency through the workload's datapath topology.

        Mirrors the accumulation wiring of :meth:`_slot_groups` exactly:
        every group contributes its tree's critical path, and the slowest
        group bounds the datapath (the exact-logic combination stage is
        excluded, like the historical Gaussian model).  Workloads with a
        topology the group hook cannot express override this.
        """
        def combine(slot: int, left: float, right: float) -> float:
            return max(left, right) + adder_latency[slot]

        return max(self._reduce_groups(multiplier_latency, self._slot_groups(), combine))

    def hw_cost(self, config: SlotConfiguration) -> Dict[str, float]:
        """Composed FPGA cost of a configuration.

        Area and power add up over the component instances; latency follows
        the workload's datapath topology (documented substitution for
        re-synthesising the flat accelerator in Vivado).
        """
        multipliers = [self.multipliers[i] for i in config.multiplier_indices]
        adders = [self.adders[i] for i in config.adder_indices]
        area = sum(c.fpga.area_luts for c in multipliers) + sum(c.fpga.area_luts for c in adders)
        power = sum(c.fpga.total_power_mw for c in multipliers) + sum(
            c.fpga.total_power_mw for c in adders
        )
        latency = self._latency(
            [c.fpga.latency_ns for c in multipliers], [c.fpga.latency_ns for c in adders]
        )
        return {"area": float(area), "power": float(power), "latency": float(latency)}

    # ------------------------------------------------------------------ #
    # Identity
    # ------------------------------------------------------------------ #
    def _workload_signature(self) -> Tuple:
        """Structural parameters distinguishing this workload's computation."""
        return ()

    def workload_token(self) -> str:
        """Digest of the workload's structural identity.

        Mixed into :func:`repro.engine.keys.accelerator_token`, so two
        workloads built from the same component libraries -- which would
        produce *different* quality values for the same slot assignment --
        can never alias each other's engine cache entries.
        """
        return blake_token(
            type(self).__name__, self.workload_name, self.quality_metric,
            *self._workload_signature(),
        )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(workload={self.workload_name!r}, "
            f"multipliers={len(self.multipliers)}, adders={len(self.adders)})"
        )


class VectorAccelerator(ApproxAccelerator):
    """Base class of 1-D signal workloads (MVM, FIR, DCT).

    The image-free half of the protocol: inputs are 1-D sample vectors
    (:func:`repro.workloads.inputs.default_signal_set`), *prepared* form
    is whatever the subclass's :meth:`_prepare_signal` returns (shifted
    tap planes for FIR, sign/slice/block triples for the bit-sliced MVM),
    and the golden reference comes from :meth:`_exact_from_prepared`.
    Everything downstream -- :meth:`prepare_inputs` tuples,
    ``evaluate_prepared``, cost composition, cache-key identity -- is the
    shared :class:`ApproxAccelerator` machinery, so the engine, search
    strategies and service treat 1-D workloads identically to the image
    trio (this family is the first exercise of ``prepare_inputs`` beyond
    image sets).
    """

    def default_inputs(self, size: int = 48) -> List[np.ndarray]:
        """The workload's seeded 1-D signal set (``4 * size`` samples each)."""
        return default_signal_set(size, seed=self.input_seed)

    @abc.abstractmethod
    def _prepare_signal(self, signal: np.ndarray):
        """Per-input precomputation shared by every configuration."""

    @abc.abstractmethod
    def _exact_from_prepared(self, prepared) -> np.ndarray:
        """Golden output computed with exact integer arithmetic."""

    def _check_signal(self, signal: np.ndarray) -> np.ndarray:
        signal = np.asarray(signal)
        if signal.ndim != 1:
            raise ValueError("expected a 1-D signal vector")
        return signal.astype(np.int64)

    # The 2-D plane hooks are meaningless here; route the shared
    # ``quality_prepared`` machinery (which calls ``_apply_planes`` on
    # whatever ``prepare_inputs`` produced) through the signal hooks.
    def _exact_from_planes(self, planes) -> np.ndarray:
        return self._exact_from_prepared(planes)

    def exact_filter(self, signal: np.ndarray) -> np.ndarray:
        """Golden output of the datapath with exact integer arithmetic."""
        return self._exact_from_prepared(self._prepare_signal(self._check_signal(signal)))

    def apply(self, signal: np.ndarray, config: SlotConfiguration) -> np.ndarray:
        """Output of the datapath when executed with the configured components."""
        return self._apply_planes(self._prepare_signal(self._check_signal(signal)), config)

    def prepare_inputs(self, inputs: Sequence[np.ndarray]) -> List[Tuple]:
        """One ``(prepared, exact reference)`` entry per 1-D input signal."""
        prepared = []
        for signal in inputs:
            item = self._prepare_signal(self._check_signal(signal))
            prepared.append((item, self._exact_from_prepared(item)))
        return prepared
