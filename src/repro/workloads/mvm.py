"""Bit-sliced matrix-vector-multiply accelerator workload.

The first workload family structurally unlike the image-convolution trio:
a quantized matrix-vector multiply (the core of dense layers, mixers and
transform codecs) whose *inputs* are split into time-multiplexed bit
slices before they ever reach the approximate multipliers -- the cross-sim
DAC scheme.  Input samples are quantized to ``resolution`` bits in
sign-magnitude representation (so only ``resolution - 1`` magnitude bits
exist; the two zero encodings collapse), the magnitudes are cut into
``ceil((resolution - 1) / slice_width)`` LSB-first slices of
``slice_width`` bits each (the last slice is narrower when the widths do
not divide -- non-divisible widths are a first-class case), and one
partial MVM runs per slice through the approximate multiplier/adder
slots.  The partials recombine in exact logic with shift weights
``slice << (s * slice_width)``, and the sign is applied with each slice,
exactly as a sign-magnitude DAC drives negative array voltages.

:func:`convert_sliced` / :func:`recombine_slices` implement the slicing
as standalone functions so the exact-round-trip property
(``recombine(convert(x)) == clip(x)`` for *every* ``(resolution,
slice_width)`` pair) can be pinned by a hypothesis suite
(``tests/test_workload_mvm_signal.py``) independently of any datapath.

Datapath shape (default :class:`BitSlicedMVMAccelerator`): the signal is
blocked into length-``cols`` vectors and multiplied by a seeded signed
``rows x cols`` weight matrix.  One multiplier slot per matrix *column*
(time-multiplexed over rows, slices and sign phases, like the
convolution workloads time-multiplex their slots over pixels) and a
``cols - 1``-slot balanced accumulation tree.  Approximate adders only
ever see non-negative operands: each slice is split into its
positive-sign and negative-sign input phases (both non-negative), each
phase reduces through one balanced tree per weight-sign group, and all
four signed combinations plus the shift-weight recombination run in
exact logic -- the same exact-combination-stage substitution the
convolution workloads document.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .base import VectorAccelerator, SlotConfiguration, WORKLOADS, reduce_balanced

__all__ = [
    "BitSlicedMVMAccelerator",
    "convert_sliced",
    "num_slices",
    "recombine_slices",
]


def num_slices(resolution: int, slice_width: int) -> int:
    """Number of input bit slices for a resolution / slice-width pair.

    ``ceil((resolution - 1) / slice_width)``: only the magnitude bits of
    the sign-magnitude encoding count toward slices, and a non-divisible
    ``slice_width`` yields a narrower final slice rather than an error.
    """
    if resolution < 2:
        raise ValueError(f"resolution must be at least 2 bits, got {resolution}")
    if not 1 <= slice_width <= resolution - 1:
        raise ValueError(
            f"slice width must be in [1, {resolution - 1}] for a "
            f"{resolution}-bit sign-magnitude input, got {slice_width}"
        )
    return -(-(resolution - 1) // slice_width)


def convert_sliced(
    values: np.ndarray, resolution: int, slice_width: int
) -> Tuple[np.ndarray, List[np.ndarray]]:
    """Quantize signed values and split them into LSB-first bit slices.

    The sign-magnitude DAC conversion: values are clipped to the symmetric
    ``resolution``-bit sign-magnitude range ``[-(2**(resolution-1) - 1),
    2**(resolution-1) - 1]`` (the two encodings of zero collapse, so there
    are ``2**(resolution-1)`` magnitude levels), and the *magnitude* bits
    are cut into ``num_slices(resolution, slice_width)`` slices of
    ``slice_width`` bits, least-significant slice first.  When
    ``slice_width`` does not divide ``resolution - 1`` the last slice
    holds only the remaining high bits.  Only magnitude bits count toward
    the slice size; the sign is returned separately (one ``+1 / -1`` per
    element) and is applied with each slice by the consumer.

    Returns ``(signs, slices)`` with every slice a non-negative array in
    ``[0, 2**slice_width - 1]``.  :func:`recombine_slices` is the exact
    inverse up to the clip: ``recombine_slices(*convert_sliced(x, r, w),
    slice_width=w)`` equals ``clip(x)`` for every ``(r, w)`` pair.
    """
    count = num_slices(resolution, slice_width)
    values = np.asarray(values, dtype=np.int64)
    magnitude_bits = resolution - 1
    limit = (1 << magnitude_bits) - 1
    clipped = np.clip(values, -limit, limit)
    signs = np.where(clipped < 0, -1, 1).astype(np.int64)
    magnitudes = np.abs(clipped)
    slices = []
    for index in range(count):
        low = index * slice_width
        width = min(slice_width, magnitude_bits - low)
        slices.append((magnitudes >> low) & ((1 << width) - 1))
    return signs, slices


def recombine_slices(
    signs: np.ndarray, slices: Sequence[np.ndarray], slice_width: int
) -> np.ndarray:
    """Reassemble sliced magnitudes with shift weights and apply the signs.

    The exact inverse of :func:`convert_sliced` (up to its range clip):
    slice ``s`` carries weight ``2**(s * slice_width)``, and the
    sign-magnitude sign multiplies the recombined magnitude.
    """
    signs = np.asarray(signs, dtype=np.int64)
    if not slices:
        raise ValueError("cannot recombine an empty slice list")
    total = np.zeros_like(signs)
    for index, plane in enumerate(slices):
        total = total + (np.asarray(plane, dtype=np.int64) << (index * slice_width))
    return signs * total


def _seeded_weights(rows: int, cols: int, seed: int) -> Tuple[Tuple[int, ...], ...]:
    """Seeded signed weight matrix with non-zero magnitudes in ``[1, 63]``.

    Zero weights are excluded by construction: a zero-coefficient product
    would still flow through an approximate multiplier, whose
    ``approx(0 * x)`` noise is pure artefact (the convolution workloads
    drop zero taps for the same reason).
    """
    rng = np.random.default_rng(seed)
    magnitudes = rng.integers(1, 64, size=(rows, cols))
    signs = rng.integers(0, 2, size=(rows, cols)) * 2 - 1
    return tuple(tuple(int(v) for v in row) for row in magnitudes * signs)


@WORKLOADS.register("mvm")
class BitSlicedMVMAccelerator(VectorAccelerator):
    """Blocked MVM with sign-magnitude input bit slicing.

    The 1-D input signal is level-shifted to signed samples
    (``sample - 128``), blocked into length-``cols`` vectors (zero-padded
    to a whole number of blocks), quantized/sliced by
    :func:`convert_sliced` and multiplied block by block with the seeded
    ``rows x cols`` :attr:`weights` matrix, one partial MVM per bit slice.
    The output is the row-major flattening of the per-block results,
    arithmetically right-shifted by :attr:`shift`.

    ``slice_width`` is the workload knob (the DAC resolution of the
    cross-sim scheme): it changes how many time-multiplexed passes the
    datapath makes and how large the slice operands are, i.e. how much
    each approximate multiplication error is amplified by its shift
    weight.  The default ``resolution=8, slice_width=3`` pair is
    deliberately non-divisible (7 magnitude bits -> slices of 3 + 3 + 1
    bits).  Quality is the bounded SNR score
    (:func:`repro.workloads.quality.snr_score`).
    """

    workload_name = "mvm"
    quality_metric = "snr"
    input_seed = 303

    #: Shape of the weight matrix (output rows x input block length).
    rows: int = 6
    cols: int = 8
    #: Sign-magnitude input quantization, in bits.
    resolution: int = 8
    #: Bits per input slice; need not divide ``resolution - 1``.
    slice_width: int = 3
    #: Arithmetic right shift of the exact output stage.
    shift: int = 6
    #: Seed of the default weight matrix.
    weight_seed: int = 313

    def __init__(
        self,
        multipliers: Sequence,
        adders: Sequence,
        *,
        slice_width: Optional[int] = None,
        resolution: Optional[int] = None,
        weights: Optional[Sequence[Sequence[int]]] = None,
        workload_name: Optional[str] = None,
        input_seed: Optional[int] = None,
    ):
        # Instance overrides let tests and notebooks spin up ad-hoc MVM
        # workloads (other slice widths, hand-picked matrices) without
        # declaring a subclass -- mirroring ConvolutionAccelerator.
        if slice_width is not None:
            self.slice_width = int(slice_width)
        if resolution is not None:
            self.resolution = int(resolution)
        if workload_name is not None:
            self.workload_name = workload_name
        if input_seed is not None:
            self.input_seed = int(input_seed)
        if weights is not None:
            self.weights = tuple(tuple(int(w) for w in row) for row in weights)
        elif "weights" not in type(self).__dict__:
            self.weights = _seeded_weights(self.rows, self.cols, self.weight_seed)
        self.rows = len(self.weights)
        if not self.rows or any(len(row) != len(self.weights[0]) for row in self.weights):
            raise ValueError("weight matrix must be rectangular and non-empty")
        self.cols = len(self.weights[0])
        if any(w == 0 for row in self.weights for w in row):
            raise ValueError("weight matrix must not contain zero weights")
        # Validates the (resolution, slice_width) pair as a side effect.
        self._num_slices = num_slices(self.resolution, self.slice_width)
        self._weight_matrix = np.asarray(self.weights, dtype=np.int64)
        # Fixed per-row weight-sign groups: each row's products reduce in
        # one tree per weight sign, positive group first (convolution
        # idiom), all rows time-multiplexing the same physical adders.
        self._row_groups: List[List[List[int]]] = [
            [
                group
                for group in (
                    [c for c in range(self.cols) if row[c] > 0],
                    [c for c in range(self.cols) if row[c] < 0],
                )
                if group
            ]
            for row in self.weights
        ]
        super().__init__(multipliers, adders)

    # ------------------------------------------------------------------ #
    # Slot declaration
    # ------------------------------------------------------------------ #
    @property
    def num_multiplier_slots(self) -> int:
        return self.cols

    @property
    def num_adder_slots(self) -> int:
        return self.cols - 1

    def _slot_groups(self) -> List[List[int]]:
        """One full-width tree: the latency bound over all row phases."""
        return [list(range(self.cols))]

    # ------------------------------------------------------------------ #
    # Datapath
    # ------------------------------------------------------------------ #
    def _blocked(self, signal: np.ndarray) -> np.ndarray:
        """Level-shifted signal as a ``(num_blocks, cols)`` matrix."""
        centred = signal.astype(np.int64) - 128
        remainder = centred.size % self.cols
        if remainder:
            centred = np.concatenate(
                [centred, np.zeros(self.cols - remainder, dtype=np.int64)]
            )
        return centred.reshape(-1, self.cols)

    def _prepare_signal(self, signal: np.ndarray):
        """``(signs, slices, quantized blocks)`` of one input signal."""
        blocks = self._blocked(signal)
        signs, slices = convert_sliced(blocks, self.resolution, self.slice_width)
        quantized = recombine_slices(signs, slices, self.slice_width)
        return signs, slices, quantized

    def _exact_from_prepared(self, prepared) -> np.ndarray:
        _, _, quantized = prepared
        return ((quantized @ self._weight_matrix.T) >> self.shift).ravel()

    def _apply_planes(self, prepared, config: SlotConfiguration) -> np.ndarray:
        signs, slices, _ = prepared
        num_blocks = signs.shape[0]
        count = len(slices)
        # Unipolar input phases: approximate adders and multipliers only
        # ever see non-negative operands.  phases[s, 0/1, b, c] is slice
        # ``s`` restricted to the positive / negative input signs.
        phases = np.stack(
            [
                np.stack([np.where(signs > 0, plane, 0), np.where(signs < 0, plane, 0)])
                for plane in slices
            ]
        )
        magnitudes = np.abs(self._weight_matrix)
        # Column slot ``c`` is time-multiplexed over rows, slices and
        # phases; batching those passes into one behavioural call per
        # slot computes identical values (the components are elementwise)
        # at a fraction of the call overhead.  products[c][r] has shape
        # (slices, 2 phases, blocks).
        per_pass = count * 2 * num_blocks
        products = []
        for col in range(self.cols):
            operand = np.tile(phases[..., col].ravel(), self.rows)
            coefficients = np.repeat(magnitudes[:, col], per_pass)
            multiplier = self.multipliers[config.multiplier_indices[col]]
            products.append(
                multiplier.compute(operand, coefficients).reshape(self.rows, count, 2, num_blocks)
            )

        combine = self._adder_combine(config)
        zero = np.zeros(count * 2 * num_blocks, dtype=np.int64)
        accumulator = np.zeros((num_blocks, self.rows), dtype=np.int64)
        shift_weights = (1 << (np.arange(count) * self.slice_width)).astype(np.int64)
        for row in range(self.rows):
            # One balanced tree per weight-sign group, a running slot
            # counter per row pass; a single-sign row leaves one group
            # empty -> the reduce's additive identity.
            slot = 0
            group_sums = []
            for group in self._row_groups[row]:
                total, slot = reduce_balanced(
                    [products[col][row].reshape(-1) for col in group], combine, slot, empty=zero
                )
                group_sums.append(total.reshape(count, 2, num_blocks))
            # Signed combination of the weight-sign groups and the input
            # phases, then the shift-weight recombination: exact logic.
            if len(group_sums) == 2:
                signed = group_sums[0] - group_sums[1]
            elif self.weights[row][self._row_groups[row][0][0]] > 0:
                signed = group_sums[0]
            else:
                signed = -group_sums[0]
            row_partial = signed[:, 0, :] - signed[:, 1, :]
            accumulator[:, row] = (row_partial * shift_weights[:, None]).sum(axis=0)
        return (accumulator >> self.shift).ravel()

    # ------------------------------------------------------------------ #
    # Identity
    # ------------------------------------------------------------------ #
    def _workload_signature(self) -> Tuple:
        return (self.weights, self.resolution, self.slice_width, self.shift)
