"""Pluggable accelerator workloads (the generic half of the case studies).

This package holds everything an approximate-accelerator case study needs
that is *not* specific to one accelerator: the
:class:`~repro.workloads.base.ApproxAccelerator` protocol and its
:data:`WORKLOADS` registry, the shared component machinery
(:class:`ApproxComponent`, :func:`components_from_library`), the
:data:`QUALITY_METRICS` registry with the built-in metrics
(SSIM / bounded PSNR / bounded SNR / gradient-magnitude similarity) and
the seeded synthetic input sets (2-D image sets for the convolution
workloads, 1-D signal sets for the MVM/signal family).

Built-in workloads (registered on import):

* ``"gaussian"`` -- :class:`GaussianFilterAccelerator`, the paper's 3x3
  Gaussian-filter AutoAx-FPGA case study (9 multipliers, 8 adders, SSIM);
* ``"sobel"`` -- :class:`SobelAccelerator`, 3x3 Sobel edge detection
  (12 multipliers, 8 adders, gradient-magnitude similarity);
* ``"sharpen"`` -- :class:`SharpenAccelerator`, a signed 3x3 sharpening
  kernel (5 multipliers, 3 adders, bounded PSNR);
* ``"mvm"`` -- :class:`BitSlicedMVMAccelerator`, a blocked 6x8
  matrix-vector multiply with sign-magnitude input bit slicing
  (``slice_width`` knob; 8 multipliers, 7 adders, bounded SNR);
* ``"dct"`` -- :class:`DctAccelerator`, the 8-point DCT-II through the
  same bit-sliced MVM datapath (8 multipliers, 7 adders, bounded SNR);
* ``"fir"`` -- :class:`FirAccelerator`, a 7-tap low-pass FIR filter
  (7 multipliers, 6 adders, bounded SNR);
* ``"fir_mixed"`` -- :class:`MixedWidthFirAccelerator`, the FIR at a
  swept 6-bit multiplier / 12-bit adder operand-width point.

Registering a custom workload::

    from repro.workloads import ConvolutionAccelerator, WORKLOADS

    @WORKLOADS.register("box")
    class BoxFilterAccelerator(ConvolutionAccelerator):
        workload_name = "box"
        kernel = ((28, 28, 28), (28, 32, 28), (28, 28, 28))
        shift = 8
        quality_metric = "ssim"
        input_seed = 900

    result = session.run_autoax(multipliers, adders,
                                AutoAxConfig(workload="box"))
"""

from .base import (
    ApproxAccelerator,
    ComponentSlot,
    SlotConfiguration,
    VectorAccelerator,
    WORKLOADS,
    build_workload,
    reduce_balanced,
)
from .components import ApproxComponent, build_component, components_from_library
from .convolution import (
    GAUSSIAN_KERNEL_3X3,
    KERNEL_SHIFT,
    NUM_ADDER_SLOTS,
    NUM_MULTIPLIER_SLOTS,
    SHARPEN_KERNEL_3X3,
    SHARPEN_SHIFT,
    ConvolutionAccelerator,
    GaussianFilterAccelerator,
    SharpenAccelerator,
)
from .inputs import (
    MIN_FIDELITY_LENGTH,
    MIN_FIDELITY_SIDE,
    blob_image,
    checkerboard_image,
    default_image_set,
    default_signal_set,
    fidelity_inputs,
    gradient_image,
    noise_image,
    texture_image,
)
from .mvm import (
    BitSlicedMVMAccelerator,
    convert_sliced,
    num_slices,
    recombine_slices,
)
from .quality import (
    QUALITY_METRICS,
    gradient_similarity,
    mean_ssim,
    psnr,
    psnr_score,
    snr,
    snr_score,
    ssim,
)
from .signal import (
    DCT_SCALE,
    FIR_SHIFT,
    FIR_TAPS,
    DctAccelerator,
    FirAccelerator,
    MixedWidthFirAccelerator,
    dct_matrix,
)
from .sobel import SOBEL_GX_KERNEL, SOBEL_GY_KERNEL, SOBEL_SHIFT, SobelAccelerator

__all__ = [
    "ApproxAccelerator",
    "ComponentSlot",
    "SlotConfiguration",
    "VectorAccelerator",
    "WORKLOADS",
    "build_workload",
    "reduce_balanced",
    "ApproxComponent",
    "build_component",
    "components_from_library",
    "ConvolutionAccelerator",
    "GaussianFilterAccelerator",
    "SharpenAccelerator",
    "SobelAccelerator",
    "BitSlicedMVMAccelerator",
    "DctAccelerator",
    "FirAccelerator",
    "MixedWidthFirAccelerator",
    "convert_sliced",
    "num_slices",
    "recombine_slices",
    "dct_matrix",
    "GAUSSIAN_KERNEL_3X3",
    "KERNEL_SHIFT",
    "NUM_MULTIPLIER_SLOTS",
    "NUM_ADDER_SLOTS",
    "SHARPEN_KERNEL_3X3",
    "SHARPEN_SHIFT",
    "SOBEL_GX_KERNEL",
    "SOBEL_GY_KERNEL",
    "SOBEL_SHIFT",
    "DCT_SCALE",
    "FIR_SHIFT",
    "FIR_TAPS",
    "QUALITY_METRICS",
    "gradient_similarity",
    "mean_ssim",
    "psnr",
    "psnr_score",
    "snr",
    "snr_score",
    "ssim",
    "MIN_FIDELITY_LENGTH",
    "MIN_FIDELITY_SIDE",
    "blob_image",
    "checkerboard_image",
    "default_image_set",
    "default_signal_set",
    "fidelity_inputs",
    "gradient_image",
    "noise_image",
    "texture_image",
]
