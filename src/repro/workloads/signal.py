"""1-D signal-processing accelerator workloads (FIR filter, DCT).

The signal half of the workload registry: accelerators consuming seeded
1-D sample vectors (:func:`repro.workloads.inputs.default_signal_set`)
instead of images, judged by the bounded SNR score.

:class:`FirAccelerator` (``"fir"``) is a 7-tap symmetric low-pass FIR
filter -- the 1-D analogue of the convolution trio: one multiplier slot
per tap (coefficient magnitudes as the constant operand), a single
balanced accumulation tree (all taps positive), and the output shift and
clip in exact logic.  :class:`MixedWidthFirAccelerator` (``"fir_mixed"``)
is its mixed-bitwidth sweep variant: the *same* filter evaluated at a
swept operand-width point (6-bit multiplier operands, 12-bit adder
operands by default), with input samples requantized to the multiplier
width and every datapath value masked to the declared adder width -- how
a bitwidth sweep trades quality for narrower components.

:class:`DctAccelerator` (``"dct"``) is the 8-point DCT-II expressed as a
bit-sliced MVM (:class:`repro.workloads.mvm.BitSlicedMVMAccelerator`
subclass): its weight matrix is the quantized DCT basis, so the transform
inherits the whole sign-magnitude input-slicing scheme including the
``slice_width`` knob.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .base import VectorAccelerator, SlotConfiguration, WORKLOADS
from .mvm import BitSlicedMVMAccelerator

__all__ = [
    "DCT_SCALE",
    "DctAccelerator",
    "FIR_TAPS",
    "FIR_SHIFT",
    "FirAccelerator",
    "MixedWidthFirAccelerator",
    "dct_matrix",
]

#: Integer 7-tap symmetric low-pass kernel (binomial-ish, sum = 32, i.e. a
#: 5-bit right shift keeps unity DC gain).
FIR_TAPS: Tuple[int, ...] = (1, 3, 7, 10, 7, 3, 1)
FIR_SHIFT = 5

#: Magnitude scale of the quantized DCT-II basis: ``round(63 * cos(...))``
#: keeps every coefficient inside the multipliers' constant-operand range
#: while never rounding a basis entry to zero (the smallest ``|cos|`` of
#: the 8-point basis is ~0.195 -> 12).
DCT_SCALE = 63


@WORKLOADS.register("fir")
class FirAccelerator(VectorAccelerator):
    """7-tap FIR filter with configurable approximate operators.

    The sliding window is realised exactly like the convolution
    workloads' shifted planes, one dimension down: the signal is
    reflect-padded and shifted into one plane per tap, each plane
    multiplies its coefficient through the tap's multiplier slot, and the
    products reduce through a single balanced adder tree (all
    coefficients positive).  The right shift and 8-bit clip of the output
    stage run in exact logic.
    """

    workload_name = "fir"
    quality_metric = "snr"
    input_seed = 404

    taps: Tuple[int, ...] = FIR_TAPS
    shift: int = FIR_SHIFT

    def __init__(
        self,
        multipliers: Sequence,
        adders: Sequence,
        *,
        taps: Optional[Sequence[int]] = None,
        shift: Optional[int] = None,
        workload_name: Optional[str] = None,
        input_seed: Optional[int] = None,
    ):
        if taps is not None:
            self.taps = tuple(int(t) for t in taps)
        if shift is not None:
            self.shift = int(shift)
        if workload_name is not None:
            self.workload_name = workload_name
        if input_seed is not None:
            self.input_seed = int(input_seed)
        if not self.taps:
            raise ValueError("FIR filter needs at least one tap")
        if any(t <= 0 for t in self.taps):
            raise ValueError("FIR taps must be positive integers")
        super().__init__(multipliers, adders)

    # ------------------------------------------------------------------ #
    # Slot declaration
    # ------------------------------------------------------------------ #
    @property
    def num_multiplier_slots(self) -> int:
        return len(self.taps)

    @property
    def num_adder_slots(self) -> int:
        return max(len(self.taps) - 1, 0)

    def _slot_groups(self) -> List[List[int]]:
        """All taps accumulate through one balanced tree."""
        return [list(range(len(self.taps)))]

    # ------------------------------------------------------------------ #
    # Datapath
    # ------------------------------------------------------------------ #
    def _quantize_samples(self, signal: np.ndarray) -> np.ndarray:
        """Input conditioning hook; the plain FIR consumes 8-bit samples as-is."""
        return signal

    def _mask_value(self, value: np.ndarray) -> np.ndarray:
        """Datapath-width hook; the plain FIR runs at full component width."""
        return value

    @property
    def _output_shift(self) -> int:
        """Right shift of the exact output stage."""
        return self.shift

    def _tap_planes(self, signal: np.ndarray) -> List[np.ndarray]:
        """One shifted plane per tap (reflect padding, like the 2-D planes)."""
        pad = len(self.taps) // 2
        padded = np.pad(signal, pad, mode="reflect")
        return [padded[k:k + signal.size] for k in range(len(self.taps))]

    def _prepare_signal(self, signal: np.ndarray):
        return self._tap_planes(self._quantize_samples(signal))

    def _exact_from_prepared(self, prepared) -> np.ndarray:
        # The masks are value-preserving on the exact datapath (validated
        # at construction by the mixed-width variant), so accumulation
        # order cannot change the result.
        accumulator = np.zeros_like(prepared[0])
        for tap, plane in zip(self.taps, prepared):
            accumulator = self._mask_value(accumulator + self._mask_value(plane * tap))
        return np.clip(accumulator >> self._output_shift, 0, 255)

    def _apply_planes(self, prepared, config: SlotConfiguration) -> np.ndarray:
        products = [
            self._mask_value(
                self.multipliers[config.multiplier_indices[slot]].compute(
                    plane, np.full(plane.size, tap, dtype=np.int64)
                )
            )
            for slot, (tap, plane) in enumerate(zip(self.taps, prepared))
        ]

        def add(slot: int, left: np.ndarray, right: np.ndarray) -> np.ndarray:
            adder = self.adders[config.adder_indices[slot]]
            return self._mask_value(adder.compute(left, right))

        sums = self._reduce_groups(products, self._slot_groups(), add)
        return np.clip(sums[0] >> self._output_shift, 0, 255)

    # ------------------------------------------------------------------ #
    # Identity
    # ------------------------------------------------------------------ #
    def _workload_signature(self) -> Tuple:
        return (self.taps, self.shift)


@WORKLOADS.register("fir_mixed")
class MixedWidthFirAccelerator(FirAccelerator):
    """The 7-tap FIR at a swept mixed operand-width point.

    One point of an adder+multiplier bitwidth sweep: input samples are
    requantized to :attr:`multiplier_width` bits (dropping
    ``8 - multiplier_width`` LSBs), every product and partial sum is
    masked to :attr:`adder_width` bits, and the output shift shrinks by
    the dropped input bits so the filter keeps unity DC gain.  With the
    default 6/12-bit point the masks are value-preserving for *exact*
    components (max accumulator value ``63 * 32 = 2016 < 2**12``), so the
    quality loss against ``"fir"`` measures the requantization plus the
    approximate components' behaviour at narrower operands -- exactly
    what a bitwidth sweep isolates.  Construction-time sweeps pass other
    width pairs (``MixedWidthFirAccelerator(m, a, multiplier_width=5,
    adder_width=10)``); widths are validated against the taps so a masked
    exact datapath can never overflow silently.
    """

    workload_name = "fir_mixed"
    quality_metric = "snr"
    input_seed = 505

    multiplier_width = 6
    adder_width = 12

    def __init__(
        self,
        multipliers: Sequence,
        adders: Sequence,
        *,
        multiplier_width: Optional[int] = None,
        adder_width: Optional[int] = None,
        **kwargs,
    ):
        if multiplier_width is not None:
            self.multiplier_width = int(multiplier_width)
        if adder_width is not None:
            self.adder_width = int(adder_width)
        if not 1 <= self.multiplier_width <= 8:
            raise ValueError(
                f"multiplier width must be in [1, 8] for 8-bit samples, "
                f"got {self.multiplier_width}"
            )
        super().__init__(multipliers, adders, **kwargs)
        max_sample = (1 << self.multiplier_width) - 1
        if max_sample * sum(self.taps) >= (1 << self.adder_width):
            raise ValueError(
                f"adder width {self.adder_width} cannot hold the exact "
                f"accumulator maximum {max_sample * sum(self.taps)}"
            )
        self._sample_shift = 8 - self.multiplier_width
        if self.shift < self._sample_shift:
            raise ValueError(
                f"output shift {self.shift} cannot absorb the "
                f"{self._sample_shift}-bit sample requantization"
            )

    def _quantize_samples(self, signal: np.ndarray) -> np.ndarray:
        return signal >> self._sample_shift

    def _mask_value(self, value: np.ndarray) -> np.ndarray:
        return value & ((1 << self.adder_width) - 1)

    @property
    def _output_shift(self) -> int:
        # The dropped input LSBs shrink the output shift, so the exact
        # mixed-width filter tracks the full-width one's DC gain.
        return self.shift - self._sample_shift

    def _workload_signature(self) -> Tuple:
        return (self.taps, self.shift, self.multiplier_width, self.adder_width)


def dct_matrix(size: int = 8, scale: int = DCT_SCALE) -> Tuple[Tuple[int, ...], ...]:
    """Quantized ``size``-point DCT-II basis matrix.

    ``round(scale * cos(pi * (n + 1/2) * k / size))`` -- the orthogonal
    normalisation is dropped (it is a per-row constant absorbed by the
    output shift), keeping every weight an integer for the MVM datapath.
    """
    matrix = []
    for k in range(size):
        row = []
        for n in range(size):
            value = int(round(scale * math.cos(math.pi * (n + 0.5) * k / size)))
            row.append(value)
        matrix.append(tuple(row))
    return tuple(matrix)


@WORKLOADS.register("dct")
class DctAccelerator(BitSlicedMVMAccelerator):
    """8-point DCT-II through the bit-sliced MVM datapath.

    The weight matrix is the quantized DCT basis (:func:`dct_matrix`), so
    blocking the level-shifted signal into length-8 vectors and running
    the MVM computes one 8-point transform per block -- the standard
    block-transform front end of image/audio codecs, here fed by 1-D
    signals.  Everything else (sign-magnitude slicing, the
    ``slice_width`` knob, the unipolar adder-tree phases) is inherited
    from :class:`~repro.workloads.mvm.BitSlicedMVMAccelerator`.
    """

    workload_name = "dct"
    quality_metric = "snr"
    input_seed = 606

    weights = dct_matrix()
    rows = 8
    cols = 8
    shift = 7
