"""Convolution-style accelerator workloads (Gaussian filter, sharpening).

:class:`ConvolutionAccelerator` models a single-kernel 2-D integer
convolution whose multiplications and accumulation additions are bound to
approximate components: one multiplier slot per non-zero kernel tap
(operating on the tap's coefficient magnitude) and one balanced
accumulation tree per coefficient sign, with the final
``positive - negative`` combination and the output shift/clip in exact
logic (documented substitution for the accelerator's output stage).

:class:`GaussianFilterAccelerator` -- the paper's AutoAx-FPGA case study
-- is the first registered workload (``"gaussian"``); its all-positive
3x3 kernel reduces the generic datapath to exactly the historical 9
multipliers + 8-adder tree, and its seeded behaviour is bit-identical to
the pre-refactor implementation (pinned by
``tests/test_search_regression.py``).  :class:`SharpenAccelerator`
(``"sharpen"``) is a signed 3x3 sharpening kernel judged by PSNR, with a
different slot shape (5 multipliers, 3 adders).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .base import ApproxAccelerator, SlotConfiguration, WORKLOADS

__all__ = [
    "ConvolutionAccelerator",
    "GaussianFilterAccelerator",
    "SharpenAccelerator",
    "GAUSSIAN_KERNEL_3X3",
    "KERNEL_SHIFT",
    "NUM_MULTIPLIER_SLOTS",
    "NUM_ADDER_SLOTS",
    "SHARPEN_KERNEL_3X3",
    "SHARPEN_SHIFT",
]

#: Integer 3x3 Gaussian kernel.  The classic 1-2-1 kernel is scaled by 16 so
#: the coefficients exercise the upper operand bits of the 8x8 multipliers
#: (sum = 256, i.e. an 8-bit right shift at the end), matching how fixed-point
#: filter coefficients are quantised in the AutoAx case study.
GAUSSIAN_KERNEL_3X3: Tuple[Tuple[int, ...], ...] = ((16, 32, 16), (32, 64, 32), (16, 32, 16))
KERNEL_SHIFT = 8

#: Slot counts of the Gaussian-filter datapath (legacy public constants).
NUM_MULTIPLIER_SLOTS = 9
NUM_ADDER_SLOTS = 8

#: Integer 3x3 sharpening kernel: ``5*center - neighbours`` scaled by 16
#: (coefficient sum = 16, i.e. a 4-bit right shift keeps unity DC gain).
SHARPEN_KERNEL_3X3: Tuple[Tuple[int, ...], ...] = ((0, -16, 0), (-16, 80, -16), (0, -16, 0))
SHARPEN_SHIFT = 4


class ConvolutionAccelerator(ApproxAccelerator):
    """Single-kernel 2-D convolution with configurable approximate operators.

    Subclasses (or ad-hoc instances) declare the integer ``kernel``, the
    output ``shift`` and the ``quality_metric``; the datapath is derived:
    one multiplier slot per non-zero tap (row-major order, coefficient
    magnitudes as the constant operand) and one balanced accumulation tree
    per coefficient sign, positive tree first, numbered breadth-first.
    The signed combination, right shift and 8-bit clip run in exact logic.
    """

    kernel: Tuple[Tuple[int, ...], ...] = GAUSSIAN_KERNEL_3X3
    shift: int = KERNEL_SHIFT

    def __init__(
        self,
        multipliers: Sequence,
        adders: Sequence,
        *,
        kernel: Optional[Tuple[Tuple[int, ...], ...]] = None,
        shift: Optional[int] = None,
        quality_metric: Optional[str] = None,
        workload_name: Optional[str] = None,
        input_seed: Optional[int] = None,
    ):
        # Instance overrides let tests and notebooks spin up ad-hoc
        # convolution workloads without declaring a subclass.
        if kernel is not None:
            self.kernel = tuple(tuple(int(c) for c in row) for row in kernel)
        if shift is not None:
            self.shift = int(shift)
        if quality_metric is not None:
            self.quality_metric = quality_metric
        if workload_name is not None:
            self.workload_name = workload_name
        if input_seed is not None:
            self.input_seed = int(input_seed)
        rows = len(self.kernel)
        if any(len(row) != rows for row in self.kernel):
            raise ValueError("convolution kernel must be square")
        self.window_size = rows
        self._taps: List[Tuple[int, int, int]] = [
            (dy, dx, self.kernel[dy][dx])
            for dy in range(rows)
            for dx in range(rows)
            if self.kernel[dy][dx] != 0
        ]
        if not self._taps:
            raise ValueError("convolution kernel has no non-zero taps")
        self._pos_slots = [i for i, (_, _, c) in enumerate(self._taps) if c > 0]
        self._neg_slots = [i for i, (_, _, c) in enumerate(self._taps) if c < 0]
        super().__init__(multipliers, adders)

    # ------------------------------------------------------------------ #
    # Slot declaration
    # ------------------------------------------------------------------ #
    @property
    def num_multiplier_slots(self) -> int:
        return len(self._taps)

    @property
    def num_adder_slots(self) -> int:
        pos = max(len(self._pos_slots) - 1, 0)
        neg = max(len(self._neg_slots) - 1, 0)
        return pos + neg

    # ------------------------------------------------------------------ #
    # Datapath
    # ------------------------------------------------------------------ #
    def _slot_groups(self) -> List[List[int]]:
        """Non-empty per-sign slot groups, positive tree first."""
        return [group for group in (self._pos_slots, self._neg_slots) if group]

    def _apply_planes(self, planes: List[np.ndarray], config: SlotConfiguration) -> np.ndarray:
        shape = planes[0].shape
        products = self._tap_products(planes, self._taps, config)
        sums = self._reduce_groups(products, self._slot_groups(), self._adder_combine(config))
        if not self._neg_slots:
            total = sums[0]
        elif not self._pos_slots:
            total = -sums[0]
        else:
            total = sums[0] - sums[1]

        result = np.clip(total >> self.shift, 0, 255)
        return result.reshape(shape).astype(np.uint8)

    def _exact_from_planes(self, planes: List[np.ndarray]) -> np.ndarray:
        accumulator = np.zeros_like(planes[0])
        for dy, dx, coefficient in self._taps:
            accumulator += planes[dy * self.window_size + dx] * coefficient
        return np.clip(accumulator >> self.shift, 0, 255).astype(np.uint8)

    def _workload_signature(self) -> Tuple:
        return (self.kernel, self.shift)


@WORKLOADS.register("gaussian")
class GaussianFilterAccelerator(ConvolutionAccelerator):
    """3x3 Gaussian-filter accelerator with configurable approximate operators.

    The paper's AutoAx-FPGA case study: a 3x3 Gaussian filter whose nine
    constant-coefficient multiplications and eight accumulation additions
    are each bound to one approximate component from the
    ApproxFPGAs-produced libraries (8x8 multipliers and 16-bit adders).
    The behavioural model applies the filter to images through the
    components' gate-level behavioural models, and the hardware cost of a
    configuration is composed from the components' FPGA reports.

    ``input_seed=0`` keeps the historical image workload; every seeded
    trajectory through this class is bit-identical to the pre-workload
    implementation.
    """

    workload_name = "gaussian"
    kernel = GAUSSIAN_KERNEL_3X3
    shift = KERNEL_SHIFT
    quality_metric = "ssim"
    input_seed = 0


@WORKLOADS.register("sharpen")
class SharpenAccelerator(ConvolutionAccelerator):
    """3x3 sharpening (Laplacian-boost) accelerator judged by PSNR.

    The signed kernel exercises the generic convolution datapath with a
    slot shape different from the Gaussian case study: five multiplier
    slots (the non-zero taps) and three adder slots (the single positive
    product passes straight through; the four negative products reduce in
    a 2 + 1 tree), with the positive-minus-negative combination in exact
    logic.  Quality is the bounded PSNR score
    (:func:`repro.workloads.quality.psnr_score`), the standard metric for
    sharpening/denoising-style kernels where structural similarity is
    deliberately altered.
    """

    workload_name = "sharpen"
    kernel = SHARPEN_KERNEL_3X3
    shift = SHARPEN_SHIFT
    quality_metric = "psnr"
    input_seed = 202
