"""Data-splitting and validation utilities."""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from .base import Regressor, check_X_y
from .metrics import r2_score


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    test_size: float = 0.2,
    random_state: int = 0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split into train / test partitions.

    Mirrors the paper's 80/20 split of the synthesized subset into training
    and validation sets.
    """
    if not (0.0 < test_size < 1.0):
        raise ValueError("test_size must be in (0, 1)")
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64).ravel()
    if X.shape[0] != y.shape[0]:
        raise ValueError("X and y must have the same number of samples")
    n_samples = X.shape[0]
    n_test = max(1, int(round(test_size * n_samples)))
    if n_test >= n_samples:
        raise ValueError("test_size leaves no training samples")
    rng = np.random.default_rng(random_state)
    order = rng.permutation(n_samples)
    test_indices = order[:n_test]
    train_indices = order[n_test:]
    return X[train_indices], X[test_indices], y[train_indices], y[test_indices]


def k_fold_indices(
    n_samples: int, n_splits: int = 5, random_state: int = 0
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield (train_indices, test_indices) for shuffled K-fold cross validation."""
    if n_splits < 2:
        raise ValueError("n_splits must be at least 2")
    if n_splits > n_samples:
        raise ValueError("n_splits cannot exceed the number of samples")
    rng = np.random.default_rng(random_state)
    order = rng.permutation(n_samples)
    folds = np.array_split(order, n_splits)
    for index in range(n_splits):
        test_indices = folds[index]
        train_indices = np.concatenate([folds[j] for j in range(n_splits) if j != index])
        yield train_indices, test_indices


def cross_val_score(
    model: Regressor,
    X: np.ndarray,
    y: np.ndarray,
    n_splits: int = 5,
    random_state: int = 0,
) -> List[float]:
    """R^2 score of a fresh clone of ``model`` on each fold."""
    X, y = check_X_y(X, y)
    scores: List[float] = []
    for train_indices, test_indices in k_fold_indices(X.shape[0], n_splits, random_state):
        fold_model = model.clone()
        fold_model.fit(X[train_indices], y[train_indices])
        predictions = fold_model.predict(X[test_indices])
        scores.append(r2_score(y[test_indices], predictions))
    return scores
