"""Multi-layer perceptron regressor (ML17) trained with Adam."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .base import Regressor


class MLPRegressor(Regressor):
    """Fully-connected feed-forward network with ReLU hidden layers.

    Weights are trained with mini-batch Adam on the squared loss.  Inputs and
    targets are expected to be roughly standardised (the model zoo wraps the
    MLP in a :class:`~repro.ml.preprocessing.ScaledRegressor` with target
    scaling enabled).
    """

    def __init__(
        self,
        hidden_layer_sizes: Tuple[int, ...] = (32, 16),
        learning_rate: float = 0.01,
        max_iter: int = 300,
        batch_size: int = 16,
        alpha: float = 1e-4,
        random_state: int = 0,
    ):
        super().__init__()
        if not hidden_layer_sizes:
            raise ValueError("at least one hidden layer is required")
        self.hidden_layer_sizes = tuple(int(size) for size in hidden_layer_sizes)
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.batch_size = batch_size
        self.alpha = alpha
        self.random_state = random_state

    # ------------------------------------------------------------------ #
    def _initialise(self, n_features: int, rng: np.random.Generator) -> None:
        sizes = [n_features, *self.hidden_layer_sizes, 1]
        self._weights: List[np.ndarray] = []
        self._biases: List[np.ndarray] = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            limit = np.sqrt(6.0 / (fan_in + fan_out))
            self._weights.append(rng.uniform(-limit, limit, size=(fan_in, fan_out)))
            self._biases.append(np.zeros(fan_out))

    def _forward(self, X: np.ndarray) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        """Return (pre-activations, activations); activations[0] is the input."""
        activations = [X]
        pre_activations = []
        current = X
        last = len(self._weights) - 1
        for index, (weight, bias) in enumerate(zip(self._weights, self._biases)):
            z = current @ weight + bias
            pre_activations.append(z)
            current = z if index == last else np.maximum(z, 0.0)
            activations.append(current)
        return pre_activations, activations

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = np.random.default_rng(self.random_state)
        n_samples, n_features = X.shape
        self._initialise(n_features, rng)
        y = y.reshape(-1, 1)

        # Adam state.
        m_w = [np.zeros_like(w) for w in self._weights]
        v_w = [np.zeros_like(w) for w in self._weights]
        m_b = [np.zeros_like(b) for b in self._biases]
        v_b = [np.zeros_like(b) for b in self._biases]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0

        for _ in range(self.max_iter):
            order = rng.permutation(n_samples)
            for start in range(0, n_samples, self.batch_size):
                batch = order[start:start + self.batch_size]
                xb, yb = X[batch], y[batch]
                pre_activations, activations = self._forward(xb)

                # Backward pass.
                delta = (activations[-1] - yb) / len(batch)
                grads_w = [np.zeros_like(w) for w in self._weights]
                grads_b = [np.zeros_like(b) for b in self._biases]
                for layer in reversed(range(len(self._weights))):
                    grads_w[layer] = activations[layer].T @ delta + self.alpha * self._weights[layer]
                    grads_b[layer] = delta.sum(axis=0)
                    if layer > 0:
                        delta = (delta @ self._weights[layer].T) * (pre_activations[layer - 1] > 0)

                step += 1
                for layer in range(len(self._weights)):
                    m_w[layer] = beta1 * m_w[layer] + (1 - beta1) * grads_w[layer]
                    v_w[layer] = beta2 * v_w[layer] + (1 - beta2) * grads_w[layer] ** 2
                    m_b[layer] = beta1 * m_b[layer] + (1 - beta1) * grads_b[layer]
                    v_b[layer] = beta2 * v_b[layer] + (1 - beta2) * grads_b[layer] ** 2
                    m_w_hat = m_w[layer] / (1 - beta1 ** step)
                    v_w_hat = v_w[layer] / (1 - beta2 ** step)
                    m_b_hat = m_b[layer] / (1 - beta1 ** step)
                    v_b_hat = v_b[layer] / (1 - beta2 ** step)
                    self._weights[layer] -= self.learning_rate * m_w_hat / (np.sqrt(v_w_hat) + eps)
                    self._biases[layer] -= self.learning_rate * m_b_hat / (np.sqrt(v_b_hat) + eps)

    def _predict(self, X: np.ndarray) -> np.ndarray:
        _, activations = self._forward(X)
        return activations[-1].ravel()
