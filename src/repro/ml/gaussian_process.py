"""Gaussian process regression (ML8) with an RBF kernel and white noise."""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import linalg

from .base import Regressor
from .kernel import rbf_kernel


class GaussianProcessRegressor(Regressor):
    """GP regression with a fixed-form RBF kernel and a small length-scale search.

    The posterior mean/variance follow the standard cholesky formulation
    (Rasmussen & Williams, Alg. 2.1).  Rather than full marginal-likelihood
    optimisation, the length scale is selected from a small grid by the log
    marginal likelihood -- enough to adapt to the feature scales used here
    while keeping the model cheap, in line with the paper's "light-weight
    models" framing.
    """

    def __init__(
        self,
        noise: float = 1e-2,
        length_scales: Tuple[float, ...] = (0.5, 1.0, 2.0, 4.0),
        signal_variance: float = 1.0,
    ):
        super().__init__()
        if noise <= 0:
            raise ValueError("noise must be positive")
        self.noise = noise
        self.length_scales = tuple(length_scales)
        self.signal_variance = signal_variance

    def _kernel(self, A: np.ndarray, B: np.ndarray, length_scale: float) -> np.ndarray:
        gamma = 1.0 / (2.0 * length_scale ** 2)
        return self.signal_variance * rbf_kernel(A, B, gamma=gamma)

    def _log_marginal_likelihood(self, X: np.ndarray, y: np.ndarray, length_scale: float) -> float:
        K = self._kernel(X, X, length_scale) + self.noise * np.eye(X.shape[0])
        try:
            chol = linalg.cholesky(K, lower=True)
        except linalg.LinAlgError:
            return -np.inf
        alpha = linalg.cho_solve((chol, True), y)
        return float(
            -0.5 * y @ alpha - np.sum(np.log(np.diag(chol))) - 0.5 * len(y) * np.log(2 * np.pi)
        )

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        self._y_mean = float(y.mean())
        centered = y - self._y_mean

        best_scale = self.length_scales[0]
        best_lml = -np.inf
        for scale in self.length_scales:
            lml = self._log_marginal_likelihood(X, centered, scale)
            if lml > best_lml:
                best_lml = lml
                best_scale = scale
        self.length_scale_ = best_scale

        K = self._kernel(X, X, best_scale) + self.noise * np.eye(X.shape[0])
        self._chol = linalg.cholesky(K, lower=True)
        self._alpha = linalg.cho_solve((self._chol, True), centered)
        self._X_train = X.copy()

    def _predict(self, X: np.ndarray) -> np.ndarray:
        K_star = self._kernel(X, self._X_train, self.length_scale_)
        return K_star @ self._alpha + self._y_mean

    def predict_with_std(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation."""
        mean = self.predict(X)
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        K_star = self._kernel(X, self._X_train, self.length_scale_)
        v = linalg.solve_triangular(self._chol, K_star.T, lower=True)
        prior_var = self.signal_variance + self.noise
        variance = np.maximum(prior_var - np.sum(v ** 2, axis=0), 1e-12)
        return mean, np.sqrt(variance)
