"""Gaussian process regression (ML8) with an RBF kernel and white noise."""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import linalg

from .base import Regressor
from .kernel import rbf_kernel


class GaussianProcessRegressor(Regressor):
    """GP regression with a fixed-form RBF kernel and a small length-scale search.

    The posterior mean/variance follow the standard cholesky formulation
    (Rasmussen & Williams, Alg. 2.1).  Rather than full marginal-likelihood
    optimisation, the length scale is selected from a small grid by the log
    marginal likelihood -- enough to adapt to the feature scales used here
    while keeping the model cheap, in line with the paper's "light-weight
    models" framing.
    """

    def __init__(
        self,
        noise: float = 1e-2,
        length_scales: Tuple[float, ...] = (0.5, 1.0, 2.0, 4.0),
        signal_variance: float = 1.0,
    ):
        super().__init__()
        if noise <= 0:
            raise ValueError("noise must be positive")
        self.noise = noise
        self.length_scales = tuple(length_scales)
        self.signal_variance = signal_variance

    def _kernel(self, A: np.ndarray, B: np.ndarray, length_scale: float) -> np.ndarray:
        gamma = 1.0 / (2.0 * length_scale ** 2)
        return self.signal_variance * rbf_kernel(A, B, gamma=gamma)

    def _cholesky_with_jitter(self, K: np.ndarray) -> Tuple[np.ndarray, float]:
        """Lower Cholesky of ``K``, escalating diagonal jitter on failure.

        Degenerate training sets -- duplicate or near-duplicate rows, large
        feature magnitudes whose squared-distance computation cancels --
        can leave the kernel matrix numerically indefinite even though the
        white-noise term makes it PD in exact arithmetic.  Rather than
        crash, retry with exponentially growing diagonal jitter (relative
        to the kernel's own diagonal scale, from 1e-10 up to 1e-3); the
        amount actually used is recorded in ``jitter_``.
        """
        scale = float(np.mean(np.diag(K))) or 1.0
        for jitter in [0.0] + [scale * 10.0 ** -exponent for exponent in range(10, 2, -1)]:
            try:
                chol = linalg.cholesky(K + jitter * np.eye(K.shape[0]), lower=True)
            except linalg.LinAlgError:
                continue
            return chol, jitter
        raise linalg.LinAlgError(
            "kernel matrix is not positive definite even with maximum jitter; "
            "check the training data for non-finite or absurdly scaled features"
        )

    def _log_marginal_likelihood(self, X: np.ndarray, y: np.ndarray, length_scale: float) -> float:
        K = self._kernel(X, X, length_scale) + self.noise * np.eye(X.shape[0])
        try:
            chol, _ = self._cholesky_with_jitter(K)
        except linalg.LinAlgError:
            return -np.inf
        alpha = linalg.cho_solve((chol, True), y)
        return float(
            -0.5 * y @ alpha - np.sum(np.log(np.diag(chol))) - 0.5 * len(y) * np.log(2 * np.pi)
        )

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        self._y_mean = float(y.mean())
        centered = y - self._y_mean

        best_scale = self.length_scales[0]
        best_lml = -np.inf
        for scale in self.length_scales:
            lml = self._log_marginal_likelihood(X, centered, scale)
            if lml > best_lml:
                best_lml = lml
                best_scale = scale
        self.length_scale_ = best_scale

        K = self._kernel(X, X, best_scale) + self.noise * np.eye(X.shape[0])
        self._chol, self.jitter_ = self._cholesky_with_jitter(K)
        self._alpha = linalg.cho_solve((self._chol, True), centered)
        self._X_train = X.copy()

    def _predict(self, X: np.ndarray) -> np.ndarray:
        K_star = self._kernel(X, self._X_train, self.length_scale_)
        return K_star @ self._alpha + self._y_mean

    def predict_with_std(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation.

        Defined for every fit the model accepts, including the degenerate
        single-sample case: with one training point ``(x0, y0)`` the
        posterior mean interpolates between ``y0`` (at ``x0``) and the
        training mean (far away), while the standard deviation grows from
        ``~sqrt(noise)`` at ``x0`` to the prior
        ``sqrt(signal_variance + noise)`` far away.
        """
        mean = self.predict(X)
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        K_star = self._kernel(X, self._X_train, self.length_scale_)
        v = linalg.solve_triangular(self._chol, K_star.T, lower=True)
        prior_var = self.signal_variance + self.noise
        variance = np.maximum(prior_var - np.sum(v ** 2, axis=0), 1e-12)
        return mean, np.sqrt(variance)
