"""Feature preprocessing transformers."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .base import Regressor, check_array


class StandardScaler:
    """Zero-mean, unit-variance feature scaling (constant features left at 0)."""

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = check_array(X)
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        X = check_array(X)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        X = check_array(X)
        return X * self.scale_ + self.mean_


class MinMaxScaler:
    """Scale features to the [0, 1] range (constant features map to 0)."""

    def fit(self, X: np.ndarray) -> "MinMaxScaler":
        X = check_array(X)
        self.min_ = X.min(axis=0)
        span = X.max(axis=0) - self.min_
        span[span == 0.0] = 1.0
        self.span_ = span
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        X = check_array(X)
        return (X - self.min_) / self.span_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


class ScaledRegressor(Regressor):
    """Wraps a regressor with input standardisation (and optional target scaling).

    Several models in the zoo (SGD, MLP, kernel methods) are sensitive to
    feature scales; wrapping them keeps the zoo's public interface uniform.
    """

    def __init__(self, inner: Regressor, scale_target: bool = False):
        super().__init__()
        self.inner = inner
        self.scale_target = scale_target
        self._scaler: Optional[StandardScaler] = None

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        self._scaler = StandardScaler().fit(X)
        X_scaled = self._scaler.transform(X)
        if self.scale_target:
            self._y_mean = float(y.mean())
            self._y_scale = float(y.std()) or 1.0
            y = (y - self._y_mean) / self._y_scale
        self.inner.fit(X_scaled, y)

    def _predict(self, X: np.ndarray) -> np.ndarray:
        predictions = self.inner.predict(self._scaler.transform(X))
        if self.scale_target:
            predictions = predictions * self._y_scale + self._y_mean
        return predictions

    def predict_with_std(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Mean/std forwarded from the inner model, in target units.

        Inner models without predictive uncertainty (Ridge, SGD, ...)
        report zero standard deviation -- deterministic predictions, not
        an error -- so uncertainty-aware consumers can treat every wrapped
        model uniformly.
        """
        if not self._fitted:
            raise RuntimeError(
                f"{type(self).__name__} must be fitted before calling predict_with_std()"
            )
        X = check_array(X)
        inner_with_std = getattr(self.inner, "predict_with_std", None)
        if inner_with_std is None:
            return self.predict(X), np.zeros(X.shape[0], dtype=np.float64)
        mean, std = inner_with_std(self._scaler.transform(X))
        mean = np.asarray(mean, dtype=np.float64).ravel()
        std = np.asarray(std, dtype=np.float64).ravel()
        if self.scale_target:
            mean = mean * self._y_scale + self._y_mean
            std = std * self._y_scale
        return mean, std


class FeatureSubsetRegressor(Regressor):
    """Restricts a regressor to a subset of feature columns.

    Used to implement the paper's ML1-ML3 ("regression w.r.t. the ASIC
    power/latency/area"), which predict an FPGA parameter from a single ASIC
    parameter.
    """

    def __init__(self, inner: Regressor, feature_indices):
        super().__init__()
        self.inner = inner
        self.feature_indices = tuple(int(i) for i in feature_indices)

    def _select(self, X: np.ndarray) -> np.ndarray:
        for index in self.feature_indices:
            if index >= X.shape[1]:
                raise ValueError(
                    f"feature index {index} out of range for {X.shape[1]} features"
                )
        return X[:, list(self.feature_indices)]

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        self.inner.fit(self._select(X), y)

    def _predict(self, X: np.ndarray) -> np.ndarray:
        return self.inner.predict(self._select(X))
