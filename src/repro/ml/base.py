"""Base classes and input validation for the S/ML model library.

scikit-learn is not available in the offline reproduction environment, so
:mod:`repro.ml` implements the Table I models from scratch on top of NumPy.
The interface intentionally mirrors scikit-learn's ``fit`` / ``predict``
regressor contract so the methodology code reads the same as the paper's
description.
"""

from __future__ import annotations

import copy
from typing import Dict, Optional, Tuple

import numpy as np


def check_array(X: np.ndarray, name: str = "X") -> np.ndarray:
    """Coerce to a 2-D float array and reject NaN/inf."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.ndim != 2:
        raise ValueError(f"{name} must be a 2-D array, got shape {X.shape}")
    if not np.all(np.isfinite(X)):
        raise ValueError(f"{name} contains NaN or infinite values")
    return X


def check_X_y(X: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Validate a feature matrix / target vector pair."""
    X = check_array(X, "X")
    y = np.asarray(y, dtype=np.float64).ravel()
    if not np.all(np.isfinite(y)):
        raise ValueError("y contains NaN or infinite values")
    if X.shape[0] != y.shape[0]:
        raise ValueError(
            f"X and y have inconsistent sample counts: {X.shape[0]} vs {y.shape[0]}"
        )
    if X.shape[0] == 0:
        raise ValueError("cannot fit a model on zero samples")
    return X, y


class Regressor:
    """Base class of every regression model in the zoo.

    Subclasses implement ``_fit`` and ``_predict``; the public ``fit`` /
    ``predict`` wrappers handle validation and bookkeeping.
    """

    def __init__(self) -> None:
        self.n_features_in_: Optional[int] = None
        self._fitted = False

    # -- public API ----------------------------------------------------- #
    def fit(self, X: np.ndarray, y: np.ndarray) -> "Regressor":
        """Fit the model to training data and return ``self``."""
        X, y = check_X_y(X, y)
        self.n_features_in_ = X.shape[1]
        self._fit(X, y)
        self._fitted = True
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets for ``X``."""
        if not self._fitted:
            raise RuntimeError(f"{type(self).__name__} must be fitted before calling predict()")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"{type(self).__name__} was fitted with {self.n_features_in_} features, "
                f"got {X.shape[1]}"
            )
        return np.asarray(self._predict(X), dtype=np.float64).ravel()

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Coefficient of determination R^2 on the given data."""
        from .metrics import r2_score

        return r2_score(np.asarray(y, dtype=np.float64).ravel(), self.predict(X))

    def clone(self) -> "Regressor":
        """Unfitted deep copy with the same hyper-parameters."""
        fresh = copy.deepcopy(self)
        fresh._fitted = False
        fresh.n_features_in_ = None
        return fresh

    def get_params(self) -> Dict[str, object]:
        """Hyper-parameters (public constructor-style attributes)."""
        return {
            key: value
            for key, value in vars(self).items()
            if not key.startswith("_") and not key.endswith("_")
        }

    # -- subclass hooks -------------------------------------------------- #
    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        raise NotImplementedError

    def _predict(self, X: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(self.get_params().items()))
        return f"{type(self).__name__}({params})"


class MeanRegressor(Regressor):
    """Predicts the training mean; the baseline every real model must beat."""

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        self.mean_ = float(y.mean())

    def _predict(self, X: np.ndarray) -> np.ndarray:
        return np.full(X.shape[0], self.mean_)
