"""Tree ensembles: Random Forest (ML5), Gradient Boosting (ML6), AdaBoost.R2 (ML7)."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .base import Regressor, check_array
from .tree import DecisionTreeRegressor


class RandomForestRegressor(Regressor):
    """Bagged regression trees with per-split feature subsampling."""

    def __init__(
        self,
        n_estimators: int = 60,
        max_depth: int = 10,
        min_samples_leaf: int = 1,
        max_features: float = 0.7,
        random_state: int = 0,
    ):
        super().__init__()
        if n_estimators < 1:
            raise ValueError("n_estimators must be at least 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = np.random.default_rng(self.random_state)
        n_samples = X.shape[0]
        self.estimators_: List[DecisionTreeRegressor] = []
        for index in range(self.n_estimators):
            sample = rng.integers(0, n_samples, size=n_samples)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=2 * self.min_samples_leaf,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[sample], y[sample])
            self.estimators_.append(tree)

    def _predict(self, X: np.ndarray) -> np.ndarray:
        predictions = np.stack([tree.predict(X) for tree in self.estimators_], axis=0)
        return predictions.mean(axis=0)

    def predict_with_std(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Ensemble mean and member-disagreement standard deviation.

        The spread of the bagged trees is the forest's epistemic
        uncertainty: zero where every bootstrap replica agrees, large in
        regions they disagree on.  This is what feeds the EHVI acquisition
        in :mod:`repro.search.multifidelity` for forest-backed estimators.
        """
        if not self._fitted:
            raise RuntimeError(
                f"{type(self).__name__} must be fitted before calling predict_with_std()"
            )
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"{type(self).__name__} was fitted with {self.n_features_in_} features, "
                f"got {X.shape[1]}"
            )
        predictions = np.stack([tree.predict(X) for tree in self.estimators_], axis=0)
        return predictions.mean(axis=0), predictions.std(axis=0)


class GradientBoostingRegressor(Regressor):
    """Stage-wise boosting of shallow trees on squared-loss residuals."""

    def __init__(
        self,
        n_estimators: int = 120,
        learning_rate: float = 0.08,
        max_depth: int = 3,
        min_samples_leaf: int = 2,
        subsample: float = 1.0,
        random_state: int = 0,
    ):
        super().__init__()
        if not (0.0 < subsample <= 1.0):
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.random_state = random_state

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = np.random.default_rng(self.random_state)
        n_samples = X.shape[0]
        self.initial_prediction_ = float(y.mean())
        self.estimators_: List[DecisionTreeRegressor] = []

        current = np.full(n_samples, self.initial_prediction_)
        for _ in range(self.n_estimators):
            residual = y - current
            if self.subsample < 1.0:
                size = max(2, int(round(self.subsample * n_samples)))
                sample = rng.choice(n_samples, size=size, replace=False)
            else:
                sample = np.arange(n_samples)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=2 * self.min_samples_leaf,
                min_samples_leaf=self.min_samples_leaf,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[sample], residual[sample])
            update = tree.predict(X)
            current = current + self.learning_rate * update
            self.estimators_.append(tree)

    def _predict(self, X: np.ndarray) -> np.ndarray:
        prediction = np.full(X.shape[0], self.initial_prediction_)
        for tree in self.estimators_:
            prediction += self.learning_rate * tree.predict(X)
        return prediction


class AdaBoostRegressor(Regressor):
    """AdaBoost.R2 (Drucker, 1997) with regression-tree weak learners."""

    def __init__(
        self,
        n_estimators: int = 60,
        max_depth: int = 4,
        learning_rate: float = 1.0,
        random_state: int = 0,
    ):
        super().__init__()
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.random_state = random_state

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = np.random.default_rng(self.random_state)
        n_samples = X.shape[0]
        weights = np.full(n_samples, 1.0 / n_samples)
        self.estimators_: List[DecisionTreeRegressor] = []
        self.estimator_weights_: List[float] = []

        for _ in range(self.n_estimators):
            sample = rng.choice(n_samples, size=n_samples, replace=True, p=weights)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[sample], y[sample])
            predictions = tree.predict(X)

            error = np.abs(predictions - y)
            max_error = error.max()
            if max_error <= 1e-12:
                self.estimators_.append(tree)
                self.estimator_weights_.append(10.0)
                break
            relative_error = error / max_error
            weighted_error = float(np.sum(weights * relative_error))
            if weighted_error >= 0.5:
                # Weak learner no better than chance: stop early (standard R2 rule).
                if not self.estimators_:
                    self.estimators_.append(tree)
                    self.estimator_weights_.append(1.0)
                break
            beta = weighted_error / (1.0 - weighted_error)
            self.estimators_.append(tree)
            self.estimator_weights_.append(self.learning_rate * np.log(1.0 / max(beta, 1e-12)))
            weights = weights * beta ** ((1.0 - relative_error) * self.learning_rate)
            weights /= weights.sum()

    def _predict(self, X: np.ndarray) -> np.ndarray:
        if not self.estimators_:
            return np.zeros(X.shape[0])
        predictions = np.stack([tree.predict(X) for tree in self.estimators_], axis=0)
        weights = np.asarray(self.estimator_weights_)

        # Weighted median over estimators (the AdaBoost.R2 combination rule).
        order = np.argsort(predictions, axis=0)
        sorted_predictions = np.take_along_axis(predictions, order, axis=0)
        sorted_weights = weights[order]
        cumulative = np.cumsum(sorted_weights, axis=0)
        threshold = 0.5 * cumulative[-1]
        median_index = np.argmax(cumulative >= threshold, axis=0)
        return sorted_predictions[median_index, np.arange(X.shape[0])]
