"""Linear regression models: OLS, Ridge, Bayesian Ridge, Lasso, LARS and SGD.

These cover the statistical half of Table I (ML1-ML3 are single-feature OLS
regressions built from :class:`LinearRegression` by the model zoo; ML11-ML15
are the regularised / iterative linear variants).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import Regressor


def _add_intercept(X: np.ndarray) -> np.ndarray:
    return np.hstack([np.ones((X.shape[0], 1)), X])


class LinearRegression(Regressor):
    """Ordinary least squares via the pseudo-inverse (numerically via lstsq)."""

    def __init__(self, fit_intercept: bool = True):
        super().__init__()
        self.fit_intercept = fit_intercept

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        design = _add_intercept(X) if self.fit_intercept else X
        coefficients, *_ = np.linalg.lstsq(design, y, rcond=None)
        if self.fit_intercept:
            self.intercept_ = float(coefficients[0])
            self.coef_ = coefficients[1:]
        else:
            self.intercept_ = 0.0
            self.coef_ = coefficients

    def _predict(self, X: np.ndarray) -> np.ndarray:
        return X @ self.coef_ + self.intercept_


class RidgeRegression(Regressor):
    """L2-regularised least squares (closed form, intercept unpenalised)."""

    def __init__(self, alpha: float = 1.0):
        super().__init__()
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        x_mean = X.mean(axis=0)
        y_mean = float(y.mean())
        Xc = X - x_mean
        yc = y - y_mean
        gram = Xc.T @ Xc + self.alpha * np.eye(X.shape[1])
        self.coef_ = np.linalg.solve(gram, Xc.T @ yc)
        self.intercept_ = y_mean - float(x_mean @ self.coef_)

    def _predict(self, X: np.ndarray) -> np.ndarray:
        return X @ self.coef_ + self.intercept_


class BayesianRidgeRegression(Regressor):
    """Bayesian ridge regression with evidence-approximation hyper-parameter updates.

    Follows the classic MacKay / Tipping iterative scheme also used by
    scikit-learn: precision of the weights (``lambda``) and of the noise
    (``alpha``) are re-estimated from the data until convergence.
    """

    def __init__(
        self,
        max_iter: int = 300,
        tol: float = 1e-4,
        alpha_init: float = 1.0,
        lambda_init: float = 1.0,
    ):
        super().__init__()
        self.max_iter = max_iter
        self.tol = tol
        self.alpha_init = alpha_init
        self.lambda_init = lambda_init

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        n_samples, n_features = X.shape
        x_mean = X.mean(axis=0)
        y_mean = float(y.mean())
        Xc = X - x_mean
        yc = y - y_mean

        alpha = self.alpha_init  # noise precision
        lam = self.lambda_init   # weight precision
        XtX = Xc.T @ Xc
        Xty = Xc.T @ yc
        eye = np.eye(n_features)
        coef = np.zeros(n_features)

        for _ in range(self.max_iter):
            posterior_precision = alpha * XtX + lam * eye
            posterior_cov = np.linalg.inv(posterior_precision)
            new_coef = alpha * posterior_cov @ Xty

            gamma = float(n_features - lam * np.trace(posterior_cov))
            gamma = min(max(gamma, 1e-9), n_features)
            residual = float(np.sum((yc - Xc @ new_coef) ** 2))
            lam = gamma / max(float(new_coef @ new_coef), 1e-12)
            alpha = max(n_samples - gamma, 1e-9) / max(residual, 1e-12)

            if np.max(np.abs(new_coef - coef)) < self.tol:
                coef = new_coef
                break
            coef = new_coef

        self.coef_ = coef
        self.intercept_ = y_mean - float(x_mean @ coef)
        self.alpha_ = alpha
        self.lambda_ = lam

    def _predict(self, X: np.ndarray) -> np.ndarray:
        return X @ self.coef_ + self.intercept_


class LassoRegression(Regressor):
    """L1-regularised least squares solved by cyclic coordinate descent (ML12)."""

    def __init__(self, alpha: float = 0.01, max_iter: int = 1000, tol: float = 1e-6):
        super().__init__()
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha
        self.max_iter = max_iter
        self.tol = tol

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        n_samples, n_features = X.shape
        x_mean = X.mean(axis=0)
        y_mean = float(y.mean())
        Xc = X - x_mean
        yc = y - y_mean

        coef = np.zeros(n_features)
        column_norms = (Xc ** 2).sum(axis=0)
        residual = yc.copy()
        threshold = self.alpha * n_samples

        for _ in range(self.max_iter):
            max_update = 0.0
            for j in range(n_features):
                if column_norms[j] == 0.0:
                    continue
                residual += Xc[:, j] * coef[j]
                rho = float(Xc[:, j] @ residual)
                new_value = np.sign(rho) * max(abs(rho) - threshold, 0.0) / column_norms[j]
                residual -= Xc[:, j] * new_value
                max_update = max(max_update, abs(new_value - coef[j]))
                coef[j] = new_value
            if max_update < self.tol:
                break

        self.coef_ = coef
        self.intercept_ = y_mean - float(x_mean @ coef)

    def _predict(self, X: np.ndarray) -> np.ndarray:
        return X @ self.coef_ + self.intercept_


class LeastAngleRegression(Regressor):
    """Least Angle Regression (LARS) with a bounded number of active features (ML13).

    Implements the standard LARS walk: at each step the feature most
    correlated with the residual joins the active set and the coefficients
    move along the equiangular direction until another feature ties.
    """

    def __init__(self, n_nonzero_coefs: Optional[int] = None):
        super().__init__()
        self.n_nonzero_coefs = n_nonzero_coefs

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        n_samples, n_features = X.shape
        x_mean = X.mean(axis=0)
        x_scale = X.std(axis=0)
        x_scale[x_scale == 0.0] = 1.0
        y_mean = float(y.mean())
        Xs = (X - x_mean) / x_scale
        yc = y - y_mean

        max_active = self.n_nonzero_coefs or min(n_features, max(1, n_samples - 1))
        coef = np.zeros(n_features)
        residual = yc.copy()
        active: list[int] = []

        for _ in range(max_active):
            correlations = Xs.T @ residual
            correlations[active] = 0.0
            candidate = int(np.argmax(np.abs(correlations)))
            if abs(correlations[candidate]) < 1e-12:
                break
            active.append(candidate)

            # Least-squares fit restricted to the active set (LARS step limit
            # collapsed to the full OLS step, i.e. the LARS/OLS hybrid).
            Xa = Xs[:, active]
            sub_coef, *_ = np.linalg.lstsq(Xa, yc, rcond=None)
            coef = np.zeros(n_features)
            coef[active] = sub_coef
            residual = yc - Xs @ coef
            if float(residual @ residual) < 1e-12:
                break

        self.coef_ = coef / x_scale
        self.intercept_ = y_mean - float(x_mean @ self.coef_)
        self.active_ = list(active)

    def _predict(self, X: np.ndarray) -> np.ndarray:
        return X @ self.coef_ + self.intercept_


class SGDRegressor(Regressor):
    """Linear model trained with mini-batch stochastic gradient descent (ML15).

    Squared loss with L2 penalty and an inverse-scaling learning-rate
    schedule.  Inputs are expected to be standardised (the model zoo wraps
    this class in a :class:`~repro.ml.preprocessing.ScaledRegressor`).
    """

    def __init__(
        self,
        alpha: float = 1e-4,
        learning_rate: float = 0.05,
        max_iter: int = 400,
        batch_size: int = 16,
        random_state: int = 0,
    ):
        super().__init__()
        self.alpha = alpha
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.batch_size = batch_size
        self.random_state = random_state

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = np.random.default_rng(self.random_state)
        n_samples, n_features = X.shape
        coef = np.zeros(n_features)
        intercept = float(y.mean())
        step = 0
        for epoch in range(self.max_iter):
            order = rng.permutation(n_samples)
            for start in range(0, n_samples, self.batch_size):
                batch = order[start:start + self.batch_size]
                step += 1
                eta = self.learning_rate / (1.0 + 0.01 * step)
                predictions = X[batch] @ coef + intercept
                error = predictions - y[batch]
                grad_coef = X[batch].T @ error / len(batch) + self.alpha * coef
                grad_intercept = float(error.mean())
                coef -= eta * grad_coef
                intercept -= eta * grad_intercept
        self.coef_ = coef
        self.intercept_ = intercept

    def _predict(self, X: np.ndarray) -> np.ndarray:
        return X @ self.coef_ + self.intercept_
