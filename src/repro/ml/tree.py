"""CART regression trees (ML18) -- also the base learner of the ensembles."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .base import Regressor


@dataclass
class _Node:
    """One node of the regression tree."""

    value: float
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class DecisionTreeRegressor(Regressor):
    """Binary regression tree grown by greedy variance reduction.

    Supports depth / sample-count stopping rules and per-split random feature
    subsampling (``max_features``), which the random forest uses for
    decorrelation.
    """

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
        max_features: Optional[float] = None,
        random_state: int = 0,
    ):
        super().__init__()
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state

    # ------------------------------------------------------------------ #
    def _best_split(self, X: np.ndarray, y: np.ndarray, feature_indices: np.ndarray):
        """Best (feature, threshold) by weighted-variance reduction, or None."""
        n_samples = X.shape[0]
        parent_score = float(np.sum((y - y.mean()) ** 2))
        best = None
        best_score = parent_score - 1e-12

        for feature in feature_indices:
            order = np.argsort(X[:, feature], kind="mergesort")
            x_sorted = X[order, feature]
            y_sorted = y[order]

            # Prefix sums let every split position be scored in O(1).
            prefix = np.cumsum(y_sorted)
            prefix_sq = np.cumsum(y_sorted ** 2)
            total = prefix[-1]
            total_sq = prefix_sq[-1]

            for split in range(self.min_samples_leaf, n_samples - self.min_samples_leaf + 1):
                if split < 1 or split >= n_samples:
                    continue
                if x_sorted[split - 1] == x_sorted[split]:
                    continue
                left_sum = prefix[split - 1]
                left_sq = prefix_sq[split - 1]
                right_sum = total - left_sum
                right_sq = total_sq - left_sq
                left_score = left_sq - left_sum ** 2 / split
                right_score = right_sq - right_sum ** 2 / (n_samples - split)
                score = left_score + right_score
                if score < best_score:
                    best_score = score
                    threshold = 0.5 * (x_sorted[split - 1] + x_sorted[split])
                    best = (int(feature), float(threshold))
        return best

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int, rng: np.random.Generator) -> _Node:
        node = _Node(value=float(y.mean()))
        if (
            depth >= self.max_depth
            or X.shape[0] < self.min_samples_split
            or np.all(y == y[0])
        ):
            return node

        n_features = X.shape[1]
        if self.max_features is None:
            feature_indices = np.arange(n_features)
        else:
            count = max(1, int(round(self.max_features * n_features)))
            feature_indices = rng.choice(n_features, size=count, replace=False)

        split = self._best_split(X, y, feature_indices)
        if split is None:
            return node
        feature, threshold = split
        mask = X[:, feature] <= threshold
        if mask.sum() < self.min_samples_leaf or (~mask).sum() < self.min_samples_leaf:
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], y[mask], depth + 1, rng)
        node.right = self._grow(X[~mask], y[~mask], depth + 1, rng)
        return node

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = np.random.default_rng(self.random_state)
        self.tree_ = self._grow(X, y, depth=0, rng=rng)

    def _predict_one(self, x: np.ndarray) -> float:
        node = self.tree_
        while not node.is_leaf:
            node = node.left if x[node.feature] <= node.threshold else node.right
        return node.value

    def _predict(self, X: np.ndarray) -> np.ndarray:
        # Small batches walk the tree per row; larger ones partition the
        # whole index set through each node with vectorised comparisons --
        # identical splits and leaf values, so both paths are bit-identical,
        # but population-sized batches stop paying a Python traversal per
        # sample (the per-generation scoring hot path of the NSGA-II search).
        if X.shape[0] <= 4:
            return np.array([self._predict_one(row) for row in X])
        out = np.empty(X.shape[0], dtype=np.float64)
        stack = [(self.tree_, np.arange(X.shape[0]))]
        while stack:
            node, indices = stack.pop()
            if indices.size == 0:
                continue
            if node.is_leaf:
                out[indices] = node.value
                continue
            mask = X[indices, node.feature] <= node.threshold
            stack.append((node.left, indices[mask]))
            stack.append((node.right, indices[~mask]))
        return out

    def depth(self) -> int:
        """Actual depth of the grown tree."""

        def walk(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.tree_)
