"""Symbolic regression (ML9) by small-scale genetic programming.

Expressions are trees over ``{+, -, *, protected /}`` with feature and
constant leaves.  The population is evolved with tournament selection,
subtree crossover and point mutation against an RMSE fitness with a mild
parsimony pressure.  The defaults are deliberately small -- the paper uses
symbolic regression as one of its "light-weight" models, not as a heavy DSE
engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .base import Regressor


@dataclass
class _Expr:
    """Expression-tree node: an operator, a feature leaf or a constant leaf."""

    op: str
    feature: int = -1
    constant: float = 0.0
    left: Optional["_Expr"] = None
    right: Optional["_Expr"] = None

    def size(self) -> int:
        if self.op in ("feature", "const"):
            return 1
        return 1 + self.left.size() + self.right.size()

    def evaluate(self, X: np.ndarray) -> np.ndarray:
        if self.op == "feature":
            return X[:, self.feature]
        if self.op == "const":
            return np.full(X.shape[0], self.constant)
        left = self.left.evaluate(X)
        right = self.right.evaluate(X)
        if self.op == "add":
            return left + right
        if self.op == "sub":
            return left - right
        if self.op == "mul":
            return left * right
        if self.op == "div":
            return left / np.where(np.abs(right) < 1e-6, 1.0, right)
        raise ValueError(f"unknown operator {self.op!r}")

    def copy(self) -> "_Expr":
        return _Expr(
            op=self.op,
            feature=self.feature,
            constant=self.constant,
            left=self.left.copy() if self.left else None,
            right=self.right.copy() if self.right else None,
        )

    def nodes(self) -> list:
        result = [self]
        if self.left is not None:
            result.extend(self.left.nodes())
        if self.right is not None:
            result.extend(self.right.nodes())
        return result

    def to_string(self, feature_names: Optional[list] = None) -> str:
        if self.op == "feature":
            if feature_names and self.feature < len(feature_names):
                return feature_names[self.feature]
            return f"x{self.feature}"
        if self.op == "const":
            return f"{self.constant:.3g}"
        symbol = {"add": "+", "sub": "-", "mul": "*", "div": "/"}[self.op]
        return f"({self.left.to_string(feature_names)} {symbol} {self.right.to_string(feature_names)})"


_OPERATORS = ("add", "sub", "mul", "div")


class SymbolicRegressor(Regressor):
    """Genetic-programming symbolic regression."""

    def __init__(
        self,
        population_size: int = 80,
        generations: int = 25,
        tournament_size: int = 4,
        max_depth: int = 4,
        parsimony: float = 1e-3,
        random_state: int = 0,
    ):
        super().__init__()
        self.population_size = population_size
        self.generations = generations
        self.tournament_size = tournament_size
        self.max_depth = max_depth
        self.parsimony = parsimony
        self.random_state = random_state

    # ------------------------------------------------------------------ #
    def _random_expr(self, rng: np.random.Generator, n_features: int, depth: int) -> _Expr:
        if depth >= self.max_depth or rng.random() < 0.3:
            if rng.random() < 0.7:
                return _Expr(op="feature", feature=int(rng.integers(0, n_features)))
            return _Expr(op="const", constant=float(rng.normal(0.0, 1.0)))
        op = _OPERATORS[int(rng.integers(0, len(_OPERATORS)))]
        return _Expr(
            op=op,
            left=self._random_expr(rng, n_features, depth + 1),
            right=self._random_expr(rng, n_features, depth + 1),
        )

    def _fitness(self, expr: _Expr, X: np.ndarray, y: np.ndarray) -> float:
        predictions = expr.evaluate(X)
        if not np.all(np.isfinite(predictions)):
            return np.inf
        rmse = float(np.sqrt(np.mean((predictions - y) ** 2)))
        return rmse + self.parsimony * expr.size()

    def _tournament(self, rng, population, fitnesses) -> _Expr:
        contenders = rng.integers(0, len(population), size=self.tournament_size)
        best = min(contenders, key=lambda index: fitnesses[index])
        return population[best]

    def _crossover(self, rng, parent_a: _Expr, parent_b: _Expr) -> _Expr:
        child = parent_a.copy()
        nodes = child.nodes()
        target = nodes[int(rng.integers(0, len(nodes)))]
        donor_nodes = parent_b.nodes()
        donor = donor_nodes[int(rng.integers(0, len(donor_nodes)))].copy()
        target.op = donor.op
        target.feature = donor.feature
        target.constant = donor.constant
        target.left = donor.left
        target.right = donor.right
        return child

    def _mutate(self, rng, expr: _Expr, n_features: int) -> _Expr:
        mutant = expr.copy()
        nodes = mutant.nodes()
        target = nodes[int(rng.integers(0, len(nodes)))]
        replacement = self._random_expr(rng, n_features, depth=self.max_depth - 1)
        target.op = replacement.op
        target.feature = replacement.feature
        target.constant = replacement.constant
        target.left = replacement.left
        target.right = replacement.right
        return mutant

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = np.random.default_rng(self.random_state)
        n_features = X.shape[1]

        # Standardise internally; symbolic expressions behave poorly on raw scales.
        self._x_mean = X.mean(axis=0)
        x_scale = X.std(axis=0)
        x_scale[x_scale == 0.0] = 1.0
        self._x_scale = x_scale
        self._y_mean = float(y.mean())
        self._y_scale = float(y.std()) or 1.0
        Xs = (X - self._x_mean) / self._x_scale
        ys = (y - self._y_mean) / self._y_scale

        population = [
            self._random_expr(rng, n_features, depth=0) for _ in range(self.population_size)
        ]
        fitnesses = [self._fitness(expr, Xs, ys) for expr in population]

        for _ in range(self.generations):
            next_population = []
            # Elitism: keep the best individual.
            best_index = int(np.argmin(fitnesses))
            next_population.append(population[best_index].copy())
            while len(next_population) < self.population_size:
                roll = rng.random()
                if roll < 0.6:
                    parent_a = self._tournament(rng, population, fitnesses)
                    parent_b = self._tournament(rng, population, fitnesses)
                    child = self._crossover(rng, parent_a, parent_b)
                elif roll < 0.9:
                    parent = self._tournament(rng, population, fitnesses)
                    child = self._mutate(rng, parent, n_features)
                else:
                    child = self._random_expr(rng, n_features, depth=0)
                next_population.append(child)
            population = next_population
            fitnesses = [self._fitness(expr, Xs, ys) for expr in population]

        best_index = int(np.argmin(fitnesses))
        self.expression_ = population[best_index]
        self.fitness_ = float(fitnesses[best_index])

    def _predict(self, X: np.ndarray) -> np.ndarray:
        Xs = (X - self._x_mean) / self._x_scale
        predictions = self.expression_.evaluate(Xs)
        predictions = np.where(np.isfinite(predictions), predictions, 0.0)
        return predictions * self._y_scale + self._y_mean

    def expression_string(self, feature_names: Optional[list] = None) -> str:
        """Human-readable form of the evolved expression."""
        return self.expression_.to_string(feature_names)
