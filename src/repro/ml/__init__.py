"""From-scratch statistical / machine-learning model library (Table I zoo)."""

from .base import MeanRegressor, Regressor, check_array, check_X_y
from .metrics import (
    mean_absolute_error,
    mean_absolute_percentage_error,
    mean_squared_error,
    pearson_correlation,
    r2_score,
    root_mean_squared_error,
    spearman_correlation,
)
from .preprocessing import FeatureSubsetRegressor, MinMaxScaler, ScaledRegressor, StandardScaler
from .linear import (
    BayesianRidgeRegression,
    LassoRegression,
    LeastAngleRegression,
    LinearRegression,
    RidgeRegression,
    SGDRegressor,
)
from .kernel import KernelRidge, linear_kernel, polynomial_kernel, rbf_kernel
from .gaussian_process import GaussianProcessRegressor
from .pls import PLSRegression
from .neighbors import KNeighborsRegressor
from .tree import DecisionTreeRegressor
from .ensemble import AdaBoostRegressor, GradientBoostingRegressor, RandomForestRegressor
from .mlp import MLPRegressor
from .symbolic import SymbolicRegressor
from .validation import cross_val_score, k_fold_indices, train_test_split
from .model_zoo import (
    ASIC_FEATURE_FOR_MODEL,
    MODEL_DESCRIPTIONS,
    MODEL_IDS,
    MODELS,
    ModelZooError,
    build_model,
    build_model_zoo,
)

__all__ = [
    "MeanRegressor",
    "Regressor",
    "check_array",
    "check_X_y",
    "mean_absolute_error",
    "mean_absolute_percentage_error",
    "mean_squared_error",
    "pearson_correlation",
    "r2_score",
    "root_mean_squared_error",
    "spearman_correlation",
    "FeatureSubsetRegressor",
    "MinMaxScaler",
    "ScaledRegressor",
    "StandardScaler",
    "BayesianRidgeRegression",
    "LassoRegression",
    "LeastAngleRegression",
    "LinearRegression",
    "RidgeRegression",
    "SGDRegressor",
    "KernelRidge",
    "linear_kernel",
    "polynomial_kernel",
    "rbf_kernel",
    "GaussianProcessRegressor",
    "PLSRegression",
    "KNeighborsRegressor",
    "DecisionTreeRegressor",
    "AdaBoostRegressor",
    "GradientBoostingRegressor",
    "RandomForestRegressor",
    "MLPRegressor",
    "SymbolicRegressor",
    "cross_val_score",
    "k_fold_indices",
    "train_test_split",
    "ASIC_FEATURE_FOR_MODEL",
    "MODEL_DESCRIPTIONS",
    "MODEL_IDS",
    "MODELS",
    "ModelZooError",
    "build_model",
    "build_model_zoo",
]
