"""Regression quality metrics."""

from __future__ import annotations

import numpy as np


def _pair(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=np.float64).ravel()
    y_pred = np.asarray(y_pred, dtype=np.float64).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same length")
    if y_true.size == 0:
        raise ValueError("cannot compute a metric on empty vectors")
    return y_true, y_pred


def mean_squared_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true, y_pred = _pair(y_true, y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


def root_mean_squared_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    return float(np.sqrt(mean_squared_error(y_true, y_pred)))


def mean_absolute_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true, y_pred = _pair(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def mean_absolute_percentage_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true, y_pred = _pair(y_true, y_pred)
    denominator = np.maximum(np.abs(y_true), 1e-12)
    return float(np.mean(np.abs(y_true - y_pred) / denominator))


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination; 0 for a constant predictor on constant data."""
    y_true, y_pred = _pair(y_true, y_pred)
    residual = float(np.sum((y_true - y_pred) ** 2))
    total = float(np.sum((y_true - y_true.mean()) ** 2))
    if total == 0.0:
        return 0.0 if residual > 0 else 1.0
    return 1.0 - residual / total


def pearson_correlation(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Pearson correlation coefficient (0 when either vector is constant)."""
    y_true, y_pred = _pair(y_true, y_pred)
    std_true = y_true.std()
    std_pred = y_pred.std()
    if std_true == 0.0 or std_pred == 0.0:
        return 0.0
    return float(np.corrcoef(y_true, y_pred)[0, 1])


def spearman_correlation(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Spearman rank correlation (Pearson correlation of the ranks)."""
    y_true, y_pred = _pair(y_true, y_pred)

    def ranks(values: np.ndarray) -> np.ndarray:
        order = np.argsort(values, kind="mergesort")
        rank = np.empty_like(order, dtype=np.float64)
        rank[order] = np.arange(len(values), dtype=np.float64)
        # average ties
        unique, inverse, counts = np.unique(values, return_inverse=True, return_counts=True)
        if len(unique) != len(values):
            sums = np.zeros(len(unique))
            np.add.at(sums, inverse, rank)
            rank = (sums / counts)[inverse]
        return rank

    return pearson_correlation(ranks(y_true), ranks(y_pred))
