"""The Table I model zoo: ML1 - ML18.

Each entry constructs a fresh, unfitted regressor.  The three "regression
w.r.t. ASIC-AC <parameter>" entries (ML1-ML3) are ordinary least squares fits
restricted to the corresponding single ASIC feature column, exactly as the
paper uses the ASIC reports as standalone predictors of the FPGA cost.
Models that are sensitive to feature scaling are wrapped in a
:class:`~repro.ml.preprocessing.ScaledRegressor`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..registry import Registry, RegistryError
from .base import Regressor
from .ensemble import AdaBoostRegressor, GradientBoostingRegressor, RandomForestRegressor
from .gaussian_process import GaussianProcessRegressor
from .kernel import KernelRidge
from .linear import (
    BayesianRidgeRegression,
    LassoRegression,
    LeastAngleRegression,
    LinearRegression,
    RidgeRegression,
    SGDRegressor,
)
from .mlp import MLPRegressor
from .neighbors import KNeighborsRegressor
from .pls import PLSRegression
from .preprocessing import FeatureSubsetRegressor, ScaledRegressor
from .symbolic import SymbolicRegressor
from .tree import DecisionTreeRegressor

#: Registry of model factories in the order of Table I of the paper.  Each
#: entry maps a model id to ``factory(feature_names, random_state) ->
#: Regressor``.  Custom models plug in with ``MODELS.register("my-model",
#: factory)`` and can then be listed in ``ApproxFpgasConfig.model_ids``.
MODELS = Registry("model")

#: Backwards-compatible alias: historical code iterated ``MODEL_IDS`` as a
#: tuple of ids; the registry iterates, sizes and compares like that tuple.
MODEL_IDS = MODELS

#: Human-readable names matching Table I.
MODEL_DESCRIPTIONS: Dict[str, str] = {
    "ML1": "Regression w.r.t. ASIC-AC Power",
    "ML2": "Regression w.r.t. ASIC-AC Latency",
    "ML3": "Regression w.r.t. ASIC-AC Area",
    "ML4": "PLS Regression",
    "ML5": "Random Forest",
    "ML6": "Gradient Boosting",
    "ML7": "Adaptive Boosting (AdaBoost)",
    "ML8": "Gaussian Process",
    "ML9": "Symbolic Regression",
    "ML10": "Kernel Ridge",
    "ML11": "Bayesian Ridge",
    "ML12": "Coordinate Descent (Lasso)",
    "ML13": "Least Angle Regression",
    "ML14": "Ridge Regression",
    "ML15": "Stochastic Gradient Descent",
    "ML16": "K-Nearest Neighbours",
    "ML17": "Multi-Layer Perceptron (MLP)",
    "ML18": "Decision Tree",
}

#: ASIC feature column names consumed by ML1-ML3 (defined by repro.features).
ASIC_FEATURE_FOR_MODEL: Dict[str, str] = {
    "ML1": "asic_power_mw",
    "ML2": "asic_latency_ns",
    "ML3": "asic_area_um2",
}


class ModelZooError(RegistryError):
    """Raised when a model id is unknown or required features are missing."""


def _feature_index(feature_names: Sequence[str], name: str) -> int:
    try:
        return list(feature_names).index(name)
    except ValueError as error:
        raise ModelZooError(
            f"feature {name!r} is required by an ASIC-regression model but is not "
            f"present in the feature set {list(feature_names)}"
        ) from error


def _asic_regression_factory(model_id: str) -> Callable[[Sequence[str], int], Regressor]:
    """ML1-ML3: ordinary least squares on one ASIC feature column."""

    def factory(feature_names: Sequence[str], random_state: int) -> Regressor:
        index = _feature_index(feature_names, ASIC_FEATURE_FOR_MODEL[model_id])
        return FeatureSubsetRegressor(LinearRegression(), [index])

    return factory


def _register_builtin_models() -> None:
    for model_id in ASIC_FEATURE_FOR_MODEL:
        MODELS.register(model_id, _asic_regression_factory(model_id))
    builders: Dict[str, Callable[[Sequence[str], int], Regressor]] = {
        "ML4": lambda names, seed: PLSRegression(n_components=4),
        "ML5": lambda names, seed: RandomForestRegressor(
            n_estimators=60, max_depth=10, random_state=seed
        ),
        "ML6": lambda names, seed: GradientBoostingRegressor(
            n_estimators=120, learning_rate=0.08, max_depth=3, random_state=seed
        ),
        "ML7": lambda names, seed: AdaBoostRegressor(
            n_estimators=50, max_depth=4, random_state=seed
        ),
        "ML8": lambda names, seed: ScaledRegressor(
            GaussianProcessRegressor(noise=1e-2), scale_target=True
        ),
        "ML9": lambda names, seed: SymbolicRegressor(
            population_size=60, generations=20, random_state=seed
        ),
        "ML10": lambda names, seed: ScaledRegressor(
            KernelRidge(alpha=0.1, kernel="rbf"), scale_target=True
        ),
        "ML11": lambda names, seed: ScaledRegressor(BayesianRidgeRegression(), scale_target=False),
        "ML12": lambda names, seed: ScaledRegressor(LassoRegression(alpha=0.01), scale_target=False),
        "ML13": lambda names, seed: LeastAngleRegression(),
        "ML14": lambda names, seed: ScaledRegressor(RidgeRegression(alpha=1.0), scale_target=False),
        "ML15": lambda names, seed: ScaledRegressor(
            SGDRegressor(random_state=seed), scale_target=True
        ),
        "ML16": lambda names, seed: ScaledRegressor(
            KNeighborsRegressor(n_neighbors=5), scale_target=False
        ),
        "ML17": lambda names, seed: ScaledRegressor(
            MLPRegressor(hidden_layer_sizes=(32, 16), max_iter=200, random_state=seed),
            scale_target=True,
        ),
        "ML18": lambda names, seed: DecisionTreeRegressor(max_depth=8, random_state=seed),
    }
    for model_id, factory in builders.items():
        MODELS.register(model_id, factory)


_register_builtin_models()


def build_model(model_id: str, feature_names: Sequence[str], random_state: int = 0) -> Regressor:
    """Construct a fresh, unfitted instance of one registered model.

    Parameters
    ----------
    model_id:
        A key of :data:`MODELS` (the built-in Table I zoo registers
        ``"ML1"`` .. ``"ML18"``).
    feature_names:
        Column names of the feature matrix the model will be fitted on; used
        by ML1-ML3 to locate their ASIC feature column.
    random_state:
        Seed forwarded to the stochastic models.
    """
    try:
        factory = MODELS.get(model_id)
    except RegistryError:
        raise ModelZooError(
            f"unknown model id {model_id!r}; available: {MODELS.keys()}"
        ) from None
    return factory(feature_names, random_state)


def build_model_zoo(
    feature_names: Sequence[str],
    include: Optional[Iterable[str]] = None,
    random_state: int = 0,
) -> Dict[str, Regressor]:
    """Construct every requested registered model (all of Table I by default)."""
    ids: List[str] = list(include) if include is not None else list(MODELS)
    for model_id in ids:
        if model_id not in MODELS:
            raise ModelZooError(f"unknown model id {model_id!r}; available: {MODELS.keys()}")
    return {model_id: build_model(model_id, feature_names, random_state) for model_id in ids}
