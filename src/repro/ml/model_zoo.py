"""The Table I model zoo: ML1 - ML18.

Each entry constructs a fresh, unfitted regressor.  The three "regression
w.r.t. ASIC-AC <parameter>" entries (ML1-ML3) are ordinary least squares fits
restricted to the corresponding single ASIC feature column, exactly as the
paper uses the ASIC reports as standalone predictors of the FPGA cost.
Models that are sensitive to feature scaling are wrapped in a
:class:`~repro.ml.preprocessing.ScaledRegressor`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from .base import Regressor
from .ensemble import AdaBoostRegressor, GradientBoostingRegressor, RandomForestRegressor
from .gaussian_process import GaussianProcessRegressor
from .kernel import KernelRidge
from .linear import (
    BayesianRidgeRegression,
    LassoRegression,
    LeastAngleRegression,
    LinearRegression,
    RidgeRegression,
    SGDRegressor,
)
from .mlp import MLPRegressor
from .neighbors import KNeighborsRegressor
from .pls import PLSRegression
from .preprocessing import FeatureSubsetRegressor, ScaledRegressor
from .symbolic import SymbolicRegressor
from .tree import DecisionTreeRegressor

#: Model identifiers in the order of Table I of the paper.
MODEL_IDS = tuple(f"ML{i}" for i in range(1, 19))

#: Human-readable names matching Table I.
MODEL_DESCRIPTIONS: Dict[str, str] = {
    "ML1": "Regression w.r.t. ASIC-AC Power",
    "ML2": "Regression w.r.t. ASIC-AC Latency",
    "ML3": "Regression w.r.t. ASIC-AC Area",
    "ML4": "PLS Regression",
    "ML5": "Random Forest",
    "ML6": "Gradient Boosting",
    "ML7": "Adaptive Boosting (AdaBoost)",
    "ML8": "Gaussian Process",
    "ML9": "Symbolic Regression",
    "ML10": "Kernel Ridge",
    "ML11": "Bayesian Ridge",
    "ML12": "Coordinate Descent (Lasso)",
    "ML13": "Least Angle Regression",
    "ML14": "Ridge Regression",
    "ML15": "Stochastic Gradient Descent",
    "ML16": "K-Nearest Neighbours",
    "ML17": "Multi-Layer Perceptron (MLP)",
    "ML18": "Decision Tree",
}

#: ASIC feature column names consumed by ML1-ML3 (defined by repro.features).
ASIC_FEATURE_FOR_MODEL: Dict[str, str] = {
    "ML1": "asic_power_mw",
    "ML2": "asic_latency_ns",
    "ML3": "asic_area_um2",
}


class ModelZooError(KeyError):
    """Raised when a model id is unknown or required features are missing."""


def _feature_index(feature_names: Sequence[str], name: str) -> int:
    try:
        return list(feature_names).index(name)
    except ValueError as error:
        raise ModelZooError(
            f"feature {name!r} is required by an ASIC-regression model but is not "
            f"present in the feature set {list(feature_names)}"
        ) from error


def build_model(model_id: str, feature_names: Sequence[str], random_state: int = 0) -> Regressor:
    """Construct a fresh, unfitted instance of one Table I model.

    Parameters
    ----------
    model_id:
        One of ``"ML1"`` .. ``"ML18"``.
    feature_names:
        Column names of the feature matrix the model will be fitted on; used
        by ML1-ML3 to locate their ASIC feature column.
    random_state:
        Seed forwarded to the stochastic models.
    """
    if model_id not in MODEL_DESCRIPTIONS:
        raise ModelZooError(f"unknown model id {model_id!r}; expected one of {MODEL_IDS}")

    if model_id in ASIC_FEATURE_FOR_MODEL:
        index = _feature_index(feature_names, ASIC_FEATURE_FOR_MODEL[model_id])
        return FeatureSubsetRegressor(LinearRegression(), [index])

    factories: Dict[str, Callable[[], Regressor]] = {
        "ML4": lambda: PLSRegression(n_components=4),
        "ML5": lambda: RandomForestRegressor(n_estimators=60, max_depth=10, random_state=random_state),
        "ML6": lambda: GradientBoostingRegressor(
            n_estimators=120, learning_rate=0.08, max_depth=3, random_state=random_state
        ),
        "ML7": lambda: AdaBoostRegressor(n_estimators=50, max_depth=4, random_state=random_state),
        "ML8": lambda: ScaledRegressor(
            GaussianProcessRegressor(noise=1e-2), scale_target=True
        ),
        "ML9": lambda: SymbolicRegressor(
            population_size=60, generations=20, random_state=random_state
        ),
        "ML10": lambda: ScaledRegressor(KernelRidge(alpha=0.1, kernel="rbf"), scale_target=True),
        "ML11": lambda: ScaledRegressor(BayesianRidgeRegression(), scale_target=False),
        "ML12": lambda: ScaledRegressor(LassoRegression(alpha=0.01), scale_target=False),
        "ML13": lambda: LeastAngleRegression(),
        "ML14": lambda: ScaledRegressor(RidgeRegression(alpha=1.0), scale_target=False),
        "ML15": lambda: ScaledRegressor(
            SGDRegressor(random_state=random_state), scale_target=True
        ),
        "ML16": lambda: ScaledRegressor(KNeighborsRegressor(n_neighbors=5), scale_target=False),
        "ML17": lambda: ScaledRegressor(
            MLPRegressor(hidden_layer_sizes=(32, 16), max_iter=200, random_state=random_state),
            scale_target=True,
        ),
        "ML18": lambda: DecisionTreeRegressor(max_depth=8, random_state=random_state),
    }
    return factories[model_id]()


def build_model_zoo(
    feature_names: Sequence[str],
    include: Optional[Iterable[str]] = None,
    random_state: int = 0,
) -> Dict[str, Regressor]:
    """Construct every requested Table I model (all 18 by default)."""
    ids: List[str] = list(include) if include is not None else list(MODEL_IDS)
    for model_id in ids:
        if model_id not in MODEL_DESCRIPTIONS:
            raise ModelZooError(f"unknown model id {model_id!r}")
    return {model_id: build_model(model_id, feature_names, random_state) for model_id in ids}
