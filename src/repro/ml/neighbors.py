"""K-nearest-neighbours regression (ML16)."""

from __future__ import annotations

import numpy as np

from .base import Regressor


class KNeighborsRegressor(Regressor):
    """KNN regression with uniform or inverse-distance weighting."""

    def __init__(self, n_neighbors: int = 5, weights: str = "distance"):
        super().__init__()
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be at least 1")
        if weights not in ("uniform", "distance"):
            raise ValueError("weights must be 'uniform' or 'distance'")
        self.n_neighbors = n_neighbors
        self.weights = weights

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        self._X_train = X.copy()
        self._y_train = y.copy()

    def _predict(self, X: np.ndarray) -> np.ndarray:
        k = min(self.n_neighbors, self._X_train.shape[0])
        # Pairwise squared distances, computed blockwise for memory safety.
        predictions = np.empty(X.shape[0])
        train_sq = np.sum(self._X_train ** 2, axis=1)
        for start in range(0, X.shape[0], 1024):
            block = X[start:start + 1024]
            distances = (
                np.sum(block ** 2, axis=1)[:, None]
                + train_sq[None, :]
                - 2.0 * block @ self._X_train.T
            )
            distances = np.maximum(distances, 0.0)
            neighbor_idx = np.argpartition(distances, k - 1, axis=1)[:, :k]
            neighbor_dist = np.take_along_axis(distances, neighbor_idx, axis=1)
            neighbor_y = self._y_train[neighbor_idx]
            if self.weights == "uniform":
                block_pred = neighbor_y.mean(axis=1)
            else:
                weights = 1.0 / (np.sqrt(neighbor_dist) + 1e-9)
                block_pred = np.sum(weights * neighbor_y, axis=1) / np.sum(weights, axis=1)
            predictions[start:start + 1024] = block_pred
        return predictions
