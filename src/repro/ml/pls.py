"""Partial Least Squares regression (ML4) via the NIPALS algorithm."""

from __future__ import annotations

import numpy as np

from .base import Regressor


class PLSRegression(Regressor):
    """PLS1 regression (single response) with ``n_components`` latent vectors.

    Classic NIPALS deflation: each component maximises the covariance between
    the projected features and the residual target; features and target are
    internally standardised.
    """

    def __init__(self, n_components: int = 4, max_iter: int = 200, tol: float = 1e-8):
        super().__init__()
        if n_components < 1:
            raise ValueError("n_components must be at least 1")
        self.n_components = n_components
        self.max_iter = max_iter
        self.tol = tol

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        self._x_mean = X.mean(axis=0)
        x_scale = X.std(axis=0)
        x_scale[x_scale == 0.0] = 1.0
        self._x_scale = x_scale
        self._y_mean = float(y.mean())
        y_scale = float(y.std()) or 1.0
        self._y_scale = y_scale

        E = (X - self._x_mean) / self._x_scale
        f = (y - self._y_mean) / self._y_scale

        n_samples, n_features = E.shape
        components = min(self.n_components, n_features, max(1, n_samples - 1))

        weights = np.zeros((n_features, components))
        loadings = np.zeros((n_features, components))
        scores_reg = np.zeros(components)

        for component in range(components):
            w = E.T @ f
            norm = np.linalg.norm(w)
            if norm < self.tol:
                components = component
                break
            w /= norm
            t = E @ w
            tt = float(t @ t)
            if tt < self.tol:
                components = component
                break
            p = E.T @ t / tt
            q = float(f @ t / tt)
            E = E - np.outer(t, p)
            f = f - q * t
            weights[:, component] = w
            loadings[:, component] = p
            scores_reg[component] = q

        weights = weights[:, :components]
        loadings = loadings[:, :components]
        scores_reg = scores_reg[:components]
        if components == 0:
            self.coef_ = np.zeros(n_features)
        else:
            # Rotation matrix mapping X (scaled) directly to scores.
            rotation = weights @ np.linalg.pinv(loadings.T @ weights)
            self.coef_ = rotation @ scores_reg
        self.n_components_ = components

    def _predict(self, X: np.ndarray) -> np.ndarray:
        X_scaled = (X - self._x_mean) / self._x_scale
        return (X_scaled @ self.coef_) * self._y_scale + self._y_mean
