"""Kernel methods: kernel functions and Kernel Ridge Regression (ML10)."""

from __future__ import annotations

import numpy as np

from .base import Regressor


def linear_kernel(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    return A @ B.T


def polynomial_kernel(A: np.ndarray, B: np.ndarray, degree: int = 3, coef0: float = 1.0) -> np.ndarray:
    return (A @ B.T + coef0) ** degree


def rbf_kernel(A: np.ndarray, B: np.ndarray, gamma: float = 1.0) -> np.ndarray:
    """Gaussian radial-basis-function kernel exp(-gamma * ||a - b||^2)."""
    a_sq = np.sum(A ** 2, axis=1)[:, None]
    b_sq = np.sum(B ** 2, axis=1)[None, :]
    distances = np.maximum(a_sq + b_sq - 2.0 * (A @ B.T), 0.0)
    return np.exp(-gamma * distances)


def make_kernel(kind: str, gamma: float = 1.0, degree: int = 3, coef0: float = 1.0):
    """Kernel factory used by KernelRidge and the Gaussian process."""
    if kind == "linear":
        return lambda A, B: linear_kernel(A, B)
    if kind == "poly":
        return lambda A, B: polynomial_kernel(A, B, degree=degree, coef0=coef0)
    if kind == "rbf":
        return lambda A, B: rbf_kernel(A, B, gamma=gamma)
    raise ValueError(f"unknown kernel {kind!r}")


class KernelRidge(Regressor):
    """Kernel ridge regression: ridge regression in the RKHS of a kernel.

    Solves ``(K + alpha I) dual = y`` and predicts with ``k(x, X_train) @ dual``.
    """

    def __init__(
        self,
        alpha: float = 1.0,
        kernel: str = "rbf",
        gamma: float | None = None,
        degree: int = 3,
        coef0: float = 1.0,
    ):
        super().__init__()
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.alpha = alpha
        self.kernel = kernel
        self.gamma = gamma
        self.degree = degree
        self.coef0 = coef0

    def _effective_gamma(self, n_features: int) -> float:
        return self.gamma if self.gamma is not None else 1.0 / max(n_features, 1)

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        self._kernel_fn = make_kernel(
            self.kernel,
            gamma=self._effective_gamma(X.shape[1]),
            degree=self.degree,
            coef0=self.coef0,
        )
        self._X_train = X.copy()
        self._y_mean = float(y.mean())
        K = self._kernel_fn(X, X)
        K = K + self.alpha * np.eye(X.shape[0])
        self.dual_coef_ = np.linalg.solve(K, y - self._y_mean)

    def _predict(self, X: np.ndarray) -> np.ndarray:
        K = self._kernel_fn(X, self._X_train)
        return K @ self.dual_coef_ + self._y_mean
