"""Service-level throughput: cross-tenant cache amortisation + crash-resume.

The service argument in numbers, recorded to ``BENCH_service.json``:

* **Two tenants, one cache** -- tenant *alice* pays the cold cost of an
  AutoAx study; tenants *bob* and *carol* submit the *identical* job and a
  **fresh** worker (cold in-memory cache, warm shared disk store) completes
  it at least :data:`WARM_SPEEDUP_FLOOR`x faster, because every exact
  evaluation is served from the shared content-addressed sharded store.
  This is the paper's amortisation argument -- estimate once, reuse
  everywhere -- lifted from one flow run to a multi-tenant service.
* **Crash-resume identity** -- a worker killed mid-job loses no work: the
  reclaimed job resumes from its checkpoints and its payload digest equals
  an uninterrupted run's, bit for bit.
* **Warm job throughput** -- jobs/second through one worker when the cache
  is fully warm (the queue-overhead regime).

Set ``REPRO_BENCH_QUICK=1`` (the CI jobs do) to shrink the study sizes.
The speedup floor is asserted on the best of two attempts: individual runs
are ~100ms-scale in quick mode, so one attempt can be distorted by machine
load; a genuine regression fails both.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.service import JobClient, JobRegistry, Worker

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: Enforced floor on cold/warm wall-clock (measured margin: quick ~3.3-4.4x,
#: full ~3.8-4.2x on an idle machine).
WARM_SPEEDUP_FLOOR = 3.0

BENCH_JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_service.json"

#: One AutoAx study, sized so exact (cacheable) evaluation dominates the
#: cold run: evaluation cost scales with image size, while the per-run
#: overhead every tenant pays (library netlist construction, estimator
#: fitting, estimated-evaluation search) stays modest.
JOB_PARAMS = dict(
    parameters=["area"],
    num_training_samples=12 if QUICK else 16,
    num_random_baseline=12 if QUICK else 16,
    hill_climb_iterations=20 if QUICK else 40,
    image_size=48,
    multiplier_bits=4 if QUICK else 8,
    multiplier_library_size=16 if QUICK else 24,
    num_multipliers=4 if QUICK else 6,
    adder_bits=8 if QUICK else 16,
    adder_library_size=12 if QUICK else 20,
    num_adders=3 if QUICK else 5,
)


def _record_section(section: str, payload: dict) -> None:
    """Merge one benchmark section into ``BENCH_service.json``."""
    try:
        document = json.loads(BENCH_JSON_PATH.read_text(encoding="utf-8"))
    except (FileNotFoundError, json.JSONDecodeError):
        document = {"benchmark": "service_throughput"}
    document["quick"] = QUICK
    document["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    document[section] = payload
    BENCH_JSON_PATH.write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {BENCH_JSON_PATH} [{section}]")


# --------------------------------------------------------------------- #
# Two tenants, one shared cache
# --------------------------------------------------------------------- #
def _two_tenant_attempt(root) -> dict:
    """Cold tenant + two warm tenants, each through a *fresh* worker."""
    registry = JobRegistry(root)
    for tenant in ("alice", "bob", "carol"):
        JobClient(registry, tenant=tenant).submit("autoax", JOB_PARAMS)
    records = [Worker(registry, engine_mode="serial").run_once() for _ in range(3)]
    assert all(record.state == "done" for record in records)
    # Identical work => identical payloads, cold or warm.
    assert len({record.digest for record in records}) == 1
    cold, warm = records[0], records[1:]
    # The cold tenant built the cache; the warm tenants ride it.
    assert cold.cache["hit_rate"] < 0.5
    assert all(record.cache["hit_rate"] > 0.5 for record in warm)
    best_warm = min(record.elapsed_s for record in warm)
    return {
        "cold_s": cold.elapsed_s,
        "warm_s": [record.elapsed_s for record in warm],
        "speedup": cold.elapsed_s / best_warm,
        "cold_hit_rate": cold.cache["hit_rate"],
        "cross_tenant_hit_rate": warm[0].cache["hit_rate"],
        "corrupt_entries": sum(record.cache["corrupt"] for record in records),
    }


def test_second_tenant_rides_the_first_tenants_cache(tmp_path):
    attempts = [_two_tenant_attempt(tmp_path / "attempt-0")]
    if attempts[0]["speedup"] < WARM_SPEEDUP_FLOOR:  # absorb machine-load noise
        attempts.append(_two_tenant_attempt(tmp_path / "attempt-1"))
    best = max(attempts, key=lambda outcome: outcome["speedup"])

    print(
        f"two tenants: cold {best['cold_s'] * 1000:.0f}ms, "
        f"warm {min(best['warm_s']) * 1000:.0f}ms "
        f"({best['speedup']:.1f}x, hit rate {best['cross_tenant_hit_rate']:.0%})"
    )
    _record_section(
        "two_tenant",
        {**best, "attempts": len(attempts), "speedup_floor": WARM_SPEEDUP_FLOOR},
    )
    assert best["corrupt_entries"] == 0
    assert best["cross_tenant_hit_rate"] >= 0.5
    assert best["speedup"] >= WARM_SPEEDUP_FLOOR, (
        f"warm tenant speedup {best['speedup']:.2f}x below the "
        f"{WARM_SPEEDUP_FLOOR}x floor (cold {best['cold_s']:.3f}s, "
        f"warm {min(best['warm_s']):.3f}s)"
    )


# --------------------------------------------------------------------- #
# Kill a worker, reclaim the job, finish bit-identically
# --------------------------------------------------------------------- #
class _DiesAfterFirstStage(Worker):
    def _heartbeat(self, record):
        super()._heartbeat(record)
        progress = record.progress or {}
        if progress.get("stage") == "collect-samples" and progress.get("status") == "completed":
            raise KeyboardInterrupt("simulated worker death")


def test_killed_then_resumed_job_reproduces_the_digest(tmp_path):
    # Reference: the same job, uninterrupted, in a pristine root.
    reference_registry = JobRegistry(tmp_path / "reference")
    JobClient(reference_registry).submit("autoax", JOB_PARAMS, job_id="reference")
    reference = Worker(reference_registry, engine_mode="serial").run_once()
    assert reference.state == "done"

    registry = JobRegistry(tmp_path / "service", lease_ttl=0.05)
    JobClient(registry).submit("autoax", JOB_PARAMS, job_id="victim")
    try:
        _DiesAfterFirstStage(registry, engine_mode="serial").run_once()
        raise AssertionError("the killer worker should have died")
    except KeyboardInterrupt:
        pass
    assert registry.get("victim").state == "running"  # dead, not failed
    time.sleep(0.1)  # let the orphaned lease expire

    resumed = Worker(registry, engine_mode="serial").run_once()
    assert resumed.job_id == "victim" and resumed.state == "done"

    print(
        f"crash-resume: attempt {resumed.attempts}, "
        f"restored {resumed.resumed_stages}, digest match "
        f"{resumed.digest == reference.digest}"
    )
    _record_section(
        "crash_resume",
        {
            "reference_digest": reference.digest,
            "resumed_digest": resumed.digest,
            "digest_match": resumed.digest == reference.digest,
            "attempts": resumed.attempts,
            "resumed_stages": resumed.resumed_stages,
        },
    )
    assert resumed.attempts == 2
    assert "collect-samples" in resumed.resumed_stages
    assert resumed.digest == reference.digest, "resumed job diverged from the reference run"


# --------------------------------------------------------------------- #
# Warm-queue throughput
# --------------------------------------------------------------------- #
def test_warm_job_throughput(tmp_path):
    registry = JobRegistry(tmp_path)
    client = JobClient(registry)
    client.submit("autoax", JOB_PARAMS)  # cold primer
    worker = Worker(registry, engine_mode="serial")
    assert worker.run_once().state == "done"

    num_jobs = 4 if QUICK else 8
    for _ in range(num_jobs):
        client.submit("autoax", JOB_PARAMS)
    start = time.perf_counter()
    executed = worker.run_forever(max_jobs=num_jobs, poll_interval=0.01)
    elapsed = time.perf_counter() - start

    assert executed == num_jobs
    done = client.jobs(state="done")
    assert len(done) == num_jobs + 1
    assert len({record.digest for record in done}) == 1

    jobs_per_s = num_jobs / elapsed
    print(f"warm throughput: {num_jobs} jobs in {elapsed:.2f}s ({jobs_per_s:.1f} jobs/s)")
    _record_section(
        "throughput",
        {"jobs": num_jobs, "elapsed_s": elapsed, "jobs_per_s": jobs_per_s},
    )
    assert jobs_per_s > 0.5  # sanity floor only; this is telemetry, not a race
