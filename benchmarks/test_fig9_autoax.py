"""Fig. 9 -- AutoAx-FPGA vs random search for the Gaussian-filter accelerator.

Nine Pareto-optimal 8x8 approximate multipliers and eight 16-bit approximate
adders feed the modified AutoAx flow; per FPGA parameter the hill-climbing /
estimator search is compared against plain random search in the
(SSIM, parameter) plane.  The paper's claims: AutoAx-FPGA beats random
search, the design space shrinks from ~1e14 configurations to a few hundred
synthesized candidates, and optimising for area or power transfers to the
other parameters better than optimising for latency does.
"""

from __future__ import annotations

import pytest

from repro.autoax import AutoAxConfig, AutoAxFpgaFlow


@pytest.fixture(scope="module")
def autoax_result(autoax_components):
    multipliers, adders = autoax_components
    config = AutoAxConfig(
        parameters=("latency", "power", "area"),
        num_training_samples=70,
        num_random_baseline=70,
        hill_climb_iterations=300,
        image_size=48,
        seed=17,
    )
    return AutoAxFpgaFlow(multipliers, adders, config=config).run()


def test_fig9_autoax_vs_random_search(benchmark, autoax_result):
    def comparisons():
        return {
            parameter: autoax_result.hypervolume_comparison(parameter)
            for parameter in ("latency", "power", "area")
        }

    comparison = benchmark.pedantic(comparisons, rounds=1, iterations=1)

    print("\n=== Fig. 9: AutoAx-FPGA vs random search (Gaussian filter, SSIM vs FPGA cost) ===")
    print(f"design space size                : {autoax_result.design_space_size:.2e} configurations")
    print(f"exactly evaluated by AutoAx-FPGA : training {autoax_result.training_size} + candidates "
          f"{sum(s.num_candidates for s in autoax_result.scenarios.values())}")
    print(f"{'scenario':<12}{'candidates':>12}{'front size':>12}{'HV autoax':>14}{'HV random':>14}")
    wins = 0
    for parameter in ("latency", "power", "area"):
        scenario = autoax_result.scenarios[parameter]
        values = comparison[parameter]
        if values["autoax"] >= values["random"] * 0.98:
            wins += 1
        print(
            f"{parameter:<12}{scenario.num_candidates:>12}{len(scenario.front):>12}"
            f"{values['autoax']:>14.4f}{values['random']:>14.4f}"
        )

    best_ssim = {
        parameter: max(entry.quality for entry in autoax_result.scenarios[parameter].candidates)
        for parameter in ("latency", "power", "area")
    }
    print("best candidate SSIM per scenario :", {k: round(v, 3) for k, v in best_ssim.items()})

    # Claim 1: the explored candidate count is vanishingly small next to the space.
    total_evaluated = autoax_result.training_size + sum(
        scenario.num_candidates for scenario in autoax_result.scenarios.values()
    )
    assert total_evaluated < 1e-6 * autoax_result.design_space_size

    # Claim 2: AutoAx-FPGA matches or beats random search on most scenarios
    # (the latency estimator is the weak one in the paper as well).
    assert wins >= 2, f"AutoAx-FPGA should win on at least two of three scenarios (won {wins})"

    # Claim 3: the search still reaches high-quality configurations.
    assert max(best_ssim.values()) > 0.9
