"""Fig. 1 -- Motivational analysis.

The paper's opening observation: the Pareto front of approximate 8x8
multipliers computed from ASIC costs differs from the front computed from
FPGA costs -- an AC that is Pareto-optimal for ASICs is not necessarily
Pareto-optimal for FPGAs.  The benchmark regenerates both fronts over the
same library and reports their sizes and overlap.
"""

from __future__ import annotations

import numpy as np


def _fronts(errors, asic_reports, fpga_reports):
    from repro.core import pareto_front_indices

    asic_points = np.column_stack([errors, [r.area_um2 for r in asic_reports]])
    fpga_points = np.column_stack([errors, [float(r.luts) for r in fpga_reports]])
    return set(pareto_front_indices(asic_points)), set(pareto_front_indices(fpga_points))


def test_fig1_asic_pareto_differs_from_fpga_pareto(benchmark, mult8_library, mult8_measurements):
    errors, asic_reports, fpga_reports = mult8_measurements

    asic_front, fpga_front = benchmark.pedantic(
        _fronts, args=(errors, asic_reports, fpga_reports), rounds=1, iterations=1
    )

    overlap = asic_front & fpga_front
    only_asic = asic_front - fpga_front
    only_fpga = fpga_front - asic_front

    print("\n=== Fig. 1: ASIC vs FPGA Pareto fronts (8x8 approximate multipliers) ===")
    print(f"library size                      : {len(mult8_library)}")
    print(f"ASIC Pareto-optimal circuits      : {len(asic_front)}")
    print(f"FPGA Pareto-optimal circuits      : {len(fpga_front)}")
    print(f"Pareto-optimal on both platforms  : {len(overlap)}")
    print(f"ASIC-optimal but FPGA-dominated   : {len(only_asic)}")
    print(f"FPGA-optimal but ASIC-dominated   : {len(only_fpga)}")
    names = mult8_library.names()
    sample = sorted(only_fpga)[:5]
    print("examples of FPGA-only Pareto circuits:", [names[i] for i in sample])

    # Paper claim: the two fronts are not the same set.
    assert only_asic or only_fpga, "ASIC and FPGA Pareto fronts should differ"
    # Both fronts must be non-trivial.
    assert len(asic_front) >= 3
    assert len(fpga_front) >= 3


def test_fig1_state_of_the_art_style_designs_dominated(benchmark, mult8_library, mult8_measurements):
    """The manual FPGA-oriented designs (here: the OR-partial-product family,
    playing the role of the SoA hand-optimised multipliers) are largely
    dominated by the evolutionary-style library, as the paper observes."""
    errors, _, fpga_reports = mult8_measurements
    from repro.core import pareto_front_indices

    points = np.column_stack([errors, [float(r.luts) for r in fpga_reports]])

    def analysis():
        front = set(pareto_front_indices(points))
        manual = {
            index
            for index, circuit in enumerate(mult8_library)
            if circuit.meta.get("family") == "or_pp" and not circuit.meta.get("exact")
        }
        return front, manual

    front, manual = benchmark.pedantic(analysis, rounds=1, iterations=1)
    dominated_fraction = 1.0 - len(front & manual) / max(len(manual), 1)
    print("\n=== Fig. 1 inset: hand-style multipliers vs the library ===")
    print(f"hand-style (or_pp) designs        : {len(manual)}")
    print(f"fraction dominated by the library : {dominated_fraction:.2f}")
    assert len(manual) > 0
    assert dominated_fraction >= 0.5
