"""Search throughput: generation-batched NSGA-II vs the sequential hill climber.

The workload is the seeded AutoAx Gaussian-filter scenario (8x8 multiplier /
16-bit adder components, ``area`` vs SSIM): both strategies get the same
surrogate-evaluation budget (``iterations``), the same archive bound and the
same exact re-evaluation treatment of their final front, so the comparison
isolates *how* the budget is spent:

* ``hill_climb`` scores one configuration at a time -- one feature walk and
  one regressor ``predict`` call per evaluation;
* ``nsga2`` scores whole generations through one vectorised feature gather
  and one batched ``predict``, and its surviving front is exactly
  re-evaluated as one generation batch through
  :meth:`repro.engine.BatchEvaluator.evaluate_configurations`.

Asserted (full mode): NSGA-II finishes the same budget >= 1.5x faster
wall-clock and its final exact front's 2-D hypervolume matches or dominates
the hill climber's against a shared reference point.

Set ``REPRO_BENCH_QUICK=1`` (the CI jobs do) to shrink the budget and skip
the wall-clock floor, which is meaningless on loaded shared runners.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.autoax import (
    GaussianFilterAccelerator,
    HwCostEstimator,
    QorEstimator,
    collect_training_samples,
    components_from_library,
    default_image_set,
    exact_reevaluation,
)
from repro.autoax.search import SEARCH_STRATEGIES
from repro.core.pareto import hypervolume_2d
from repro.engine import BatchEvaluator, EvalCache
from repro.generators import build_adder_library, build_multiplier_library

pytestmark = pytest.mark.search

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
ITERATIONS = 300 if QUICK else 1500
POPULATION = 32 if QUICK else 48
ARCHIVE_LIMIT = 16
SEED = 23


@pytest.fixture(scope="module")
def workload():
    """Accelerator + fitted estimators of the seeded benchmark scenario."""
    from types import SimpleNamespace

    multipliers = components_from_library(
        build_multiplier_library(8, size=30, seed=2), 6, max_error=0.1
    )
    adders = components_from_library(
        build_adder_library(16, size=24, seed=4), 5, max_error=0.02
    )
    accelerator = GaussianFilterAccelerator(multipliers, adders)
    images = default_image_set(32)[:3]
    samples = collect_training_samples(
        accelerator,
        images,
        40,
        seed=17,
        engine=BatchEvaluator(cache=EvalCache(), mode="serial"),
    )
    return SimpleNamespace(
        accelerator=accelerator,
        images=images,
        qor=QorEstimator().fit(samples),
        hw=HwCostEstimator("area").fit(samples),
    )


def _points(entries) -> np.ndarray:
    return np.array([[entry.cost["area"], 1.0 - entry.quality] for entry in entries])


def test_nsga2_beats_sequential_hill_climb_at_equal_budget(benchmark, workload):
    accelerator, images = workload.accelerator, workload.images

    def run_both():
        timings = {}

        # -- sequential baseline: hill climb + serial exact re-evaluation -- #
        start = time.perf_counter()
        hill = SEARCH_STRATEGIES.get("hill_climb")(
            accelerator, workload.qor, workload.hw,
            iterations=ITERATIONS, archive_limit=ARCHIVE_LIMIT, seed=SEED,
        )
        hill_exact = exact_reevaluation(accelerator, images, hill)
        timings["hill_s"] = time.perf_counter() - start

        # -- generation-batched NSGA-II: batched surrogates + engine exact -- #
        engine = BatchEvaluator(cache=EvalCache(), mode="serial")
        start = time.perf_counter()
        nsga = SEARCH_STRATEGIES.get("nsga2")(
            accelerator, workload.qor, workload.hw,
            iterations=ITERATIONS, archive_limit=ARCHIVE_LIMIT, seed=SEED,
            population_size=POPULATION, images=images, engine=engine,
        )
        timings["nsga2_s"] = time.perf_counter() - start
        return timings, hill_exact, nsga

    timings, hill_exact, nsga = benchmark.pedantic(run_both, rounds=1, iterations=1)

    # --- equal budgets ---------------------------------------------------- #
    # Surrogate budget: both strategies were handed the same `iterations`;
    # NSGA-II's population sizing guarantees it never exceeds it.
    # Exact budget: both fronts are bounded by the same archive limit and
    # fully re-evaluated.
    assert len(hill_exact) <= ARCHIVE_LIMIT
    assert len(nsga) <= ARCHIVE_LIMIT

    # --- both fronts are exactly evaluated (quality is a real SSIM) ------- #
    for entry in list(hill_exact) + list(nsga):
        assert 0.0 <= entry.quality <= 1.0
        assert set(entry.cost) == {"area", "power", "latency"}

    # --- quality: hypervolume against a shared reference point ------------ #
    combined = np.vstack([_points(hill_exact), _points(nsga)])
    reference = combined.max(axis=0) * 1.05 + 1e-9
    hv_hill = hypervolume_2d(_points(hill_exact), reference)
    hv_nsga = hypervolume_2d(_points(nsga), reference)

    speedup = timings["hill_s"] / max(timings["nsga2_s"], 1e-9)
    print("\n=== Search throughput: sequential hill climb vs batched NSGA-II ===")
    print(f"budget: {ITERATIONS} surrogate evaluations, archive limit {ARCHIVE_LIMIT}")
    print(f"{'hill climb (sequential)':<28}{timings['hill_s'] * 1000:>10.1f} ms  "
          f"front {len(hill_exact):>3}  hypervolume {hv_hill:>10.2f}")
    print(f"{'nsga2 (generation-batched)':<28}{timings['nsga2_s'] * 1000:>10.1f} ms  "
          f"front {len(nsga):>3}  hypervolume {hv_nsga:>10.2f}")
    print(f"{'wall-clock speedup':<28}{speedup:>10.2f} x")
    print(f"{'hypervolume ratio':<28}{hv_nsga / max(hv_hill, 1e-12):>10.2f} x")

    # The front must match or dominate the sequential baseline's in both
    # modes; the seeded workload gives NSGA-II a comfortable margin.
    assert hv_nsga >= hv_hill, (hv_nsga, hv_hill)
    if not QUICK:
        assert speedup >= 1.5, timings


def test_generation_batched_exact_evaluation_amortises(benchmark, workload):
    """`evaluate_configurations`: per-image work shared across a generation,
    repeats served from the cache at a 100% hit rate."""
    accelerator, images = workload.accelerator, workload.images
    rng = np.random.default_rng(5)
    population = [accelerator.random_configuration(rng) for _ in range(24 if QUICK else 48)]
    engine = BatchEvaluator(cache=EvalCache(), mode="serial")

    def run():
        timings = {}
        start = time.perf_counter()
        serial = [
            (accelerator.quality(images, config), accelerator.hw_cost(config))
            for config in population
        ]
        timings["serial_s"] = time.perf_counter() - start

        start = time.perf_counter()
        cold = engine.evaluate_configurations(accelerator, images, population)
        timings["engine_cold_s"] = time.perf_counter() - start

        start = time.perf_counter()
        warm = engine.evaluate_configurations(accelerator, images, population)
        timings["engine_warm_s"] = time.perf_counter() - start
        return timings, serial, cold, warm

    timings, serial, cold, warm = benchmark.pedantic(run, rounds=1, iterations=1)

    # Bit-identical to the per-configuration path, and stable across repeats.
    for (quality, cost), payload in zip(serial, cold):
        assert payload["quality"] == quality
        assert payload["cost"] == {name: float(v) for name, v in cost.items()}
    assert warm == cold

    stats = engine.stats()
    print("\n=== Generation-batched exact evaluation ===")
    print(f"{'serial loop':<24}{timings['serial_s'] * 1000:>10.1f} ms")
    print(f"{'engine cold (batched)':<24}{timings['engine_cold_s'] * 1000:>10.1f} ms")
    print(f"{'engine warm (cached)':<24}{timings['engine_warm_s'] * 1000:>10.1f} ms")
    print(f"{'cache hit rate':<24}{stats.hit_rate * 100:>10.1f} %")

    # The warm pass is pure cache hits; the cold batched pass must not be
    # slower than the serial loop it replaces (it shares the per-image
    # preparation across the whole generation).
    assert timings["engine_warm_s"] <= timings["engine_cold_s"]
    if not QUICK:
        assert timings["engine_cold_s"] <= timings["serial_s"] * 1.05, timings
