"""Table II -- Top-3 S/ML models per FPGA parameter (plus the ASIC-regression row).

The paper reports the three best models per FPGA parameter by validation
fidelity, together with the best "regression w.r.t. the corresponding ASIC
parameter" baseline (ML1-ML3).
"""

from __future__ import annotations

ASIC_BASELINE = {"latency": "ML2", "power": "ML1", "area": "ML3"}


def test_table2_top_three_models_per_parameter(benchmark, mult8_flow_result):
    def build_table():
        table = {}
        fidelity_table = mult8_flow_result.fidelity_table()
        for parameter in ("latency", "power", "area"):
            top = mult8_flow_result.top_models(parameter, k=3)
            baseline_id = ASIC_BASELINE[parameter]
            table[parameter] = {
                "top": top,
                "baseline": (baseline_id, fidelity_table[parameter][baseline_id]),
            }
        return table

    table = benchmark.pedantic(build_table, rounds=1, iterations=1)

    print("\n=== Table II: top-3 models per FPGA parameter (validation fidelity) ===")
    for parameter, entry in table.items():
        rows = ", ".join(f"{model_id}={score:.2f}" for model_id, score in entry["top"])
        baseline_id, baseline_score = entry["baseline"]
        print(f"{parameter:<8} top-3: {rows}   |  ASIC regression {baseline_id}={baseline_score:.2f}")

    for parameter, entry in table.items():
        top = entry["top"]
        assert len(top) == 3
        scores = [score for _, score in top]
        assert scores == sorted(scores, reverse=True)
        # Paper range: top models achieve ~84-91% fidelity; require a sane floor.
        assert scores[0] >= 0.7
        # The best learned model should not be (much) worse than the ASIC-only
        # regression baseline for the same parameter.
        assert scores[0] >= entry["baseline"][1] - 0.05
