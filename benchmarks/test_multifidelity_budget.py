"""Multi-fidelity search benchmark: sh_ehvi vs NSGA-II at half the budget.

The multi-fidelity argument in numbers, recorded to
``BENCH_multifidelity.json``: on the seeded AutoAx Gaussian-filter scenario
(8x8 multiplier / 16-bit adder components, ``area`` vs SSIM), the
EHVI-screened successive-halving strategy must reach **>= 95% of NSGA-II's
final-front hypervolume** (shared reference point) while spending **<= 50%
of its exact-evaluation pattern budget**:

* NSGA-II's exact budget is its final front exactly evaluated at full
  fidelity (``front size x total pixels``);
* sh_ehvi's is the realised pattern total over every rung of its ladder --
  the cheap 8x8-crop screen plus the full-fidelity survivors -- as
  reported by the strategy's ``telemetry["exact_pattern_budget"]``.

Both strategies are seeded and deterministic, so the measured ratios are
reproducible bit for bit; the committed ``baseline`` section of the JSON
pins them, and a run that degrades hypervolume-per-budget against that
baseline beyond a small float-drift tolerance fails (CI runs this gate).

Set ``REPRO_BENCH_QUICK=1`` (the CI jobs do) to shrink the surrogate
budget; both gates are asserted in both modes.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.autoax import (
    GaussianFilterAccelerator,
    HwCostEstimator,
    QorEstimator,
    collect_training_samples,
    components_from_library,
    default_image_set,
)
from repro.autoax.search import SEARCH_STRATEGIES
from repro.core.pareto import hypervolume_2d
from repro.engine import BatchEvaluator, EvalCache
from repro.generators import build_adder_library, build_multiplier_library

pytestmark = pytest.mark.multifidelity

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
ITERATIONS = 300 if QUICK else 1500
POPULATION = 32
ARCHIVE_LIMIT = 16
SEED = 23

#: The acceptance gates: hypervolume parity and budget advantage.
HYPERVOLUME_FLOOR = 0.95
BUDGET_CEILING = 0.5

#: Allowed drift of the deterministic ratios against the committed baseline
#: (different BLAS/numpy builds move SSIM in the last ulps).
BASELINE_TOLERANCE = 0.02

BENCH_JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_multifidelity.json"

#: sh_ehvi knobs behind the recorded numbers: one 96-pixel screening rung
#: (an 8x8 centre crop of each input), 16 screened candidates, 7 promoted
#: to full fidelity -- 16*192 + 7*3072 = 24576 patterns, exactly half of
#: NSGA-II's 16 * 3072.
SH_KNOBS = dict(
    initial_cohort=16,
    eta=2.5,
    min_survivors=4,
    fidelity_ladder=(96,),
)


def _record_section(section: str, payload: dict) -> None:
    """Merge one benchmark section into ``BENCH_multifidelity.json``."""
    try:
        document = json.loads(BENCH_JSON_PATH.read_text(encoding="utf-8"))
    except (FileNotFoundError, json.JSONDecodeError):
        document = {"benchmark": "multifidelity"}
    document["quick"] = QUICK
    document["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    document[section] = payload
    BENCH_JSON_PATH.write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {BENCH_JSON_PATH} [{section}]")


@pytest.fixture(scope="module")
def workload():
    """Accelerator + fitted estimators of the seeded benchmark scenario."""
    from types import SimpleNamespace

    multipliers = components_from_library(
        build_multiplier_library(8, size=30, seed=2), 6, max_error=0.1
    )
    adders = components_from_library(
        build_adder_library(16, size=24, seed=4), 5, max_error=0.02
    )
    accelerator = GaussianFilterAccelerator(multipliers, adders)
    images = default_image_set(32)[:3]
    samples = collect_training_samples(
        accelerator,
        images,
        40,
        seed=17,
        engine=BatchEvaluator(cache=EvalCache(), mode="serial"),
    )
    return SimpleNamespace(
        accelerator=accelerator,
        images=images,
        qor=QorEstimator().fit(samples),
        hw=HwCostEstimator("area").fit(samples),
    )


def _points(entries) -> np.ndarray:
    return np.array([[entry.cost["area"], 1.0 - entry.quality] for entry in entries])


def test_sh_ehvi_matches_nsga2_hypervolume_at_half_the_exact_budget(benchmark, workload):
    accelerator, images = workload.accelerator, workload.images
    full_patterns = sum(image.size for image in images)

    def run_both():
        timings = {}

        start = time.perf_counter()
        nsga = SEARCH_STRATEGIES.get("nsga2")(
            accelerator, workload.qor, workload.hw,
            iterations=ITERATIONS, archive_limit=ARCHIVE_LIMIT, seed=SEED,
            population_size=POPULATION, images=images,
            engine=BatchEvaluator(cache=EvalCache(), mode="serial"),
        )
        timings["nsga2_s"] = time.perf_counter() - start

        telemetry = {}
        start = time.perf_counter()
        sh = SEARCH_STRATEGIES.get("sh_ehvi")(
            accelerator, workload.qor, workload.hw,
            iterations=ITERATIONS, archive_limit=ARCHIVE_LIMIT, seed=SEED,
            images=images, engine=BatchEvaluator(cache=EvalCache(), mode="serial"),
            telemetry=telemetry, **SH_KNOBS,
        )
        timings["sh_ehvi_s"] = time.perf_counter() - start
        return timings, nsga, sh, telemetry

    timings, nsga, sh, telemetry = benchmark.pedantic(run_both, rounds=1, iterations=1)

    # Both fronts carry exact measurements (a real SSIM, a composed cost).
    for entry in list(nsga) + list(sh):
        assert 0.0 <= entry.quality <= 1.0
        assert set(entry.cost) == {"area", "power", "latency"}

    # --- budgets ---------------------------------------------------------- #
    nsga_budget = len(nsga) * full_patterns
    sh_budget = telemetry["exact_pattern_budget"]
    budget_ratio = sh_budget / nsga_budget

    # --- quality: hypervolume against a shared reference point ------------ #
    combined = np.vstack([_points(nsga), _points(sh)])
    reference = combined.max(axis=0) * 1.05 + 1e-9
    hv_nsga = hypervolume_2d(_points(nsga), reference)
    hv_sh = hypervolume_2d(_points(sh), reference)
    hv_ratio = hv_sh / max(hv_nsga, 1e-12)

    print("\n=== Multi-fidelity search: sh_ehvi vs NSGA-II ===")
    print(f"budget: {ITERATIONS} surrogate evaluations, archive limit {ARCHIVE_LIMIT}")
    print(f"{'nsga2 (exact front)':<26}{timings['nsga2_s'] * 1000:>10.1f} ms  "
          f"front {len(nsga):>3}  hypervolume {hv_nsga:>10.2f}  "
          f"patterns {nsga_budget:>8}")
    print(f"{'sh_ehvi (ladder)':<26}{timings['sh_ehvi_s'] * 1000:>10.1f} ms  "
          f"front {len(sh):>3}  hypervolume {hv_sh:>10.2f}  "
          f"patterns {sh_budget:>8}")
    for rung in telemetry["rungs"]:
        print(f"  rung {rung['rung']}: {rung['evaluated']:>3} configs at "
              f"{rung['patterns']:>5} patterns -> {rung['survivors']} survivors")
    print(f"{'hypervolume ratio':<26}{hv_ratio:>10.3f}  (floor {HYPERVOLUME_FLOOR})")
    print(f"{'exact-budget ratio':<26}{budget_ratio:>10.3f}  (ceiling {BUDGET_CEILING})")

    section = {
        "iterations": ITERATIONS,
        "nsga2": {
            "front": len(nsga),
            "hypervolume": hv_nsga,
            "pattern_budget": nsga_budget,
            "elapsed_s": timings["nsga2_s"],
        },
        "sh_ehvi": {
            "front": len(sh),
            "hypervolume": hv_sh,
            "pattern_budget": sh_budget,
            "elapsed_s": timings["sh_ehvi_s"],
            "rungs": telemetry["rungs"],
            "knobs": {k: list(v) if isinstance(v, tuple) else v for k, v in SH_KNOBS.items()},
        },
        "hypervolume_ratio": hv_ratio,
        "budget_ratio": budget_ratio,
        "hypervolume_floor": HYPERVOLUME_FLOOR,
        "budget_ceiling": BUDGET_CEILING,
    }

    # --- regression gate vs the committed baseline ------------------------ #
    # The ratios are deterministic; the committed baseline pins them so a
    # strategy change cannot silently trade hypervolume for budget.
    baseline_key = "baseline_quick" if QUICK else "baseline"
    try:
        document = json.loads(BENCH_JSON_PATH.read_text(encoding="utf-8"))
        baseline = document.get(baseline_key)
    except (FileNotFoundError, json.JSONDecodeError):
        baseline = None
    if baseline is not None:
        assert hv_ratio >= baseline["hypervolume_ratio"] - BASELINE_TOLERANCE, (
            f"hypervolume ratio regressed: {hv_ratio:.3f} vs committed "
            f"baseline {baseline['hypervolume_ratio']:.3f}"
        )
        assert budget_ratio <= baseline["budget_ratio"] + BASELINE_TOLERANCE, (
            f"budget ratio regressed: {budget_ratio:.3f} vs committed "
            f"baseline {baseline['budget_ratio']:.3f}"
        )
    else:
        # First run in a pristine checkout: pin the measured ratios.
        section_baseline = {"hypervolume_ratio": hv_ratio, "budget_ratio": budget_ratio}
        _record_section(baseline_key, section_baseline)
    _record_section("comparison_quick" if QUICK else "comparison", section)

    # --- the acceptance gates --------------------------------------------- #
    assert hv_ratio >= HYPERVOLUME_FLOOR, (
        f"sh_ehvi hypervolume {hv_sh:.2f} is below {HYPERVOLUME_FLOOR:.0%} of "
        f"NSGA-II's {hv_nsga:.2f} (ratio {hv_ratio:.3f})"
    )
    assert budget_ratio <= BUDGET_CEILING, (
        f"sh_ehvi spent {sh_budget} exact patterns, more than "
        f"{BUDGET_CEILING:.0%} of NSGA-II's {nsga_budget} (ratio {budget_ratio:.3f})"
    )
