"""Simulation throughput: bool vs bit-plane vs compiled backends.

The workload is the paper's Monte-Carlo error-evaluation inner loop: one
vectorised simulation pass of an exact multiplier over a seeded operand
sample, at 8/12/16-bit operand widths.  Two timings are recorded per width
and backend:

* **kernel** -- the per-circuit marginal cost inside
  :class:`~repro.engine.evaluator.BatchEvaluator`, which expands the
  operand matrix once per word layout, packs it once per layout, and keeps
  the compiled-program cache warm across the loop.  That is
  ``simulate_bits`` on the shared bit matrix for ``"bool"``, and the
  plane-level passes (``simulate_planes`` / ``simulate_planes_compiled``)
  on the shared packed planes for the packed backends.
* **end-to-end** -- ``simulate_words`` (word expansion + simulation +
  word collapse) under each backend key, nothing shared.

All backends must be bit-identical.  In full mode the 16-bit kernel floors
are enforced: bitplane >= 4x over bool, compiled >= 3x over bitplane.  The
measured table is also written to ``BENCH_simulation.json`` at the repo
root (per-backend seconds, throughput and speedups) as the first artifact
of the ROADMAP's perf-trajectory item.  Set ``REPRO_BENCH_QUICK=1`` to
shrink the workload and drop the wall-clock floors (CI smoke / loaded
machines).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.circuits import (
    bits_to_words,
    compile_netlist,
    pack_bits,
    random_operands,
    simulate_bits,
    simulate_planes,
    simulate_planes_compiled,
    simulate_words,
    unpack_bits,
)
from repro.circuits.simulate import expand_operand_bits
from repro.generators import array_multiplier

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
NUM_SAMPLES = 4096 if QUICK else 65536
WIDTHS = (8,) if QUICK else (8, 12, 16)

#: Enforced 16-bit kernel floors in full mode (measured margin ~2x each on
#: an idle machine: bitplane ~11x over bool, compiled ~6x over bitplane).
BITPLANE_VS_BOOL_FLOOR = 4.0
COMPILED_VS_BITPLANE_FLOOR = 3.0
END_TO_END_SPEEDUP_FLOOR = 1.8

BENCH_JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_simulation.json"


def _best_of(callable_, repeats=2):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_simulation_throughput_across_backends(benchmark):
    rng = np.random.default_rng(97)
    rows = []

    def run_workload():
        for width in WIDTHS:
            multiplier = array_multiplier(width)
            operands = random_operands(multiplier, NUM_SAMPLES, rng)
            input_bits = expand_operand_bits(multiplier, operands)
            input_planes = pack_bits(input_bits.T)

            compile_start = time.perf_counter()
            compile_netlist(multiplier)  # warm the per-fingerprint cache
            compile_s = time.perf_counter() - compile_start

            bool_kernel_s, bool_bits = _best_of(lambda: simulate_bits(multiplier, input_bits))
            packed_kernel_s, packed_planes = _best_of(
                lambda: simulate_planes(multiplier, input_planes)
            )
            compiled_kernel_s, compiled_planes = _best_of(
                lambda: simulate_planes_compiled(multiplier, input_planes)
            )
            assert np.array_equal(unpack_bits(packed_planes, NUM_SAMPLES).T, bool_bits)
            assert np.array_equal(unpack_bits(compiled_planes, NUM_SAMPLES).T, bool_bits)

            e2e_s, e2e_words = {}, {}
            for backend in ("bool", "bitplane", "compiled"):
                e2e_s[backend], e2e_words[backend] = _best_of(
                    lambda backend=backend: simulate_words(
                        multiplier, operands, backend=backend
                    )
                )
            assert np.array_equal(e2e_words["bool"], e2e_words["bitplane"])
            assert np.array_equal(e2e_words["bool"], e2e_words["compiled"])
            assert np.array_equal(bits_to_words(bool_bits), e2e_words["bool"])

            kernel_s = {
                "bool": bool_kernel_s,
                "bitplane": packed_kernel_s,
                "compiled": compiled_kernel_s,
            }
            rows.append(
                {
                    "width": width,
                    "gates": multiplier.num_gates,
                    "patterns": NUM_SAMPLES,
                    "compile_s": compile_s,
                    "backends": {
                        backend: {
                            "kernel_s": kernel_s[backend],
                            "kernel_patterns_per_s": NUM_SAMPLES / max(kernel_s[backend], 1e-9),
                            "kernel_speedup_vs_bool": bool_kernel_s / max(kernel_s[backend], 1e-9),
                            "e2e_s": e2e_s[backend],
                            "e2e_speedup_vs_bool": e2e_s["bool"] / max(e2e_s[backend], 1e-9),
                        }
                        for backend in kernel_s
                    },
                    "compiled_vs_bitplane_kernel_speedup": packed_kernel_s
                    / max(compiled_kernel_s, 1e-9),
                }
            )
        return rows

    benchmark.pedantic(run_workload, rounds=1, iterations=1)

    print(f"\n=== Simulation throughput ({NUM_SAMPLES} MC patterns, kernel = per-circuit marginal) ===")
    print(
        f"{'width':>6} {'gates':>6} {'bool':>9} {'bitplane':>9} {'compiled':>9} "
        f"{'bp/bool':>8} {'cc/bp':>7} {'compile':>8}"
    )
    for row in rows:
        backends = row["backends"]
        print(
            f"{row['width']:>5}b {row['gates']:>6} "
            f"{backends['bool']['kernel_s'] * 1000:>7.1f}ms "
            f"{backends['bitplane']['kernel_s'] * 1000:>7.2f}ms "
            f"{backends['compiled']['kernel_s'] * 1000:>7.2f}ms "
            f"{backends['bitplane']['kernel_speedup_vs_bool']:>7.1f}x "
            f"{row['compiled_vs_bitplane_kernel_speedup']:>6.1f}x "
            f"{row['compile_s'] * 1000:>6.1f}ms"
        )

    BENCH_JSON_PATH.write_text(
        json.dumps(
            {
                "benchmark": "simulation_throughput",
                "workload": "monte_carlo_array_multiplier",
                "quick": QUICK,
                "num_samples": NUM_SAMPLES,
                "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
                "rows": rows,
            },
            indent=2,
        )
        + "\n"
    )
    print(f"wrote {BENCH_JSON_PATH}")

    if not QUICK:
        by_width = {row["width"]: row for row in rows}
        row16 = by_width[16]
        assert (
            row16["backends"]["bitplane"]["kernel_speedup_vs_bool"] >= BITPLANE_VS_BOOL_FLOOR
        ), row16
        assert (
            row16["compiled_vs_bitplane_kernel_speedup"] >= COMPILED_VS_BITPLANE_FLOOR
        ), row16
        assert (
            row16["backends"]["bitplane"]["e2e_speedup_vs_bool"] >= END_TO_END_SPEEDUP_FLOOR
        ), row16
        assert (
            row16["backends"]["compiled"]["e2e_speedup_vs_bool"] >= END_TO_END_SPEEDUP_FLOOR
        ), row16


def test_streaming_evaluation_memory_and_equivalence():
    """Chunked Monte-Carlo evaluation bounds the bit-matrix footprint.

    A 16-bit multiplier over 65536 patterns needs a ~patterns x nodes
    boolean working set per simulation in one-shot mode; streaming in 4096
    pattern blocks caps it at 1/16th while reproducing the one-shot MED /
    WCE / error-rate exactly.
    """
    from repro.error import ErrorEvaluator
    from repro.generators import perturb_netlist, truncated_multiplier

    width = 8 if QUICK else 16
    num_samples = 2048 if QUICK else 65536
    chunk = 256 if QUICK else 4096
    reference = array_multiplier(width)
    circuits = [truncated_multiplier(width, width // 2), perturb_netlist(reference, seed=3)]

    one_shot = ErrorEvaluator(
        reference, max_exhaustive_inputs=10, num_samples=num_samples, sim_backend="bitplane"
    )
    streaming = ErrorEvaluator(
        reference,
        max_exhaustive_inputs=10,
        num_samples=num_samples,
        sim_backend="bitplane",
        chunk_patterns=chunk,
    )
    start = time.perf_counter()
    for circuit in circuits:
        full = one_shot.evaluate(circuit).metrics
        chunked = streaming.evaluate(circuit).metrics
        for field in ("med", "mae", "wce", "wce_relative", "error_probability", "mse"):
            assert getattr(chunked, field) == getattr(full, field), field
        assert chunked.mre == pytest.approx(full.mre, rel=1e-12)
    elapsed = time.perf_counter() - start

    one_shot_bytes = num_samples * reference.num_nodes
    streaming_bytes = chunk * reference.num_nodes
    print(
        f"\nstreaming evaluation ({width}-bit multiplier, {num_samples} patterns, "
        f"chunk={chunk}): working set {one_shot_bytes / 1e6:.0f} MB -> "
        f"{streaming_bytes / 1e6:.1f} MB, both passes in {elapsed * 1000:.0f} ms"
    )
