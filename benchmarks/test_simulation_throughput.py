"""Simulation throughput: boolean backend vs packed bit-plane backend.

The workload is the paper's Monte-Carlo error-evaluation inner loop: one
vectorised simulation pass of an exact multiplier over a seeded operand
sample, at 8/12/16-bit operand widths.  Two timings are recorded per width:

* **kernel** -- ``simulate_bits`` vs ``simulate_bits_packed`` on the shared
  input-bit matrix.  This is the per-circuit marginal cost inside
  :class:`~repro.engine.evaluator.BatchEvaluator`, which expands the operand
  matrix once per word layout and reuses it for every circuit.
* **end-to-end** -- ``simulate_words`` (word expansion + simulation +
  word collapse) under each backend key.

Both backends must be bit-identical; the 16-bit kernel must show at least
the 4x speedup the packed representation is for.  Set
``REPRO_BENCH_QUICK=1`` to shrink the workload and drop the wall-clock
floors (CI smoke / loaded machines).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.circuits import (
    bits_to_words,
    random_operands,
    simulate_bits,
    simulate_bits_packed,
    simulate_words,
)
from repro.circuits.simulate import expand_operand_bits
from repro.generators import array_multiplier

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
NUM_SAMPLES = 4096 if QUICK else 65536
WIDTHS = (8,) if QUICK else (8, 12, 16)

#: Enforced floors (width -> kernel speedup) in full mode; the measured
#: margin is ~2x on an idle machine (the 16-bit kernel runs at ~8x).
KERNEL_SPEEDUP_FLOORS = {16: 4.0}
END_TO_END_SPEEDUP_FLOOR = 1.8


def _best_of(callable_, repeats=2):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_simulation_throughput_bool_vs_bitplane(benchmark):
    rng = np.random.default_rng(97)
    rows = []

    def run_workload():
        for width in WIDTHS:
            multiplier = array_multiplier(width)
            operands = random_operands(multiplier, NUM_SAMPLES, rng)
            input_bits = expand_operand_bits(multiplier, operands)

            bool_kernel_s, bool_bits = _best_of(lambda: simulate_bits(multiplier, input_bits))
            packed_kernel_s, packed_bits = _best_of(
                lambda: simulate_bits_packed(multiplier, input_bits)
            )
            assert np.array_equal(bool_bits, packed_bits)

            bool_words_s, bool_words = _best_of(
                lambda: simulate_words(multiplier, operands, backend="bool")
            )
            packed_words_s, packed_words = _best_of(
                lambda: simulate_words(multiplier, operands, backend="bitplane")
            )
            assert np.array_equal(bool_words, packed_words)
            assert np.array_equal(bits_to_words(bool_bits), bool_words)

            rows.append(
                {
                    "width": width,
                    "gates": multiplier.num_gates,
                    "bool_kernel_s": bool_kernel_s,
                    "packed_kernel_s": packed_kernel_s,
                    "kernel_speedup": bool_kernel_s / max(packed_kernel_s, 1e-9),
                    "bool_words_s": bool_words_s,
                    "packed_words_s": packed_words_s,
                    "words_speedup": bool_words_s / max(packed_words_s, 1e-9),
                }
            )
        return rows

    benchmark.pedantic(run_workload, rounds=1, iterations=1)

    print(f"\n=== Simulation throughput: bool vs bitplane ({NUM_SAMPLES} MC patterns) ===")
    header = (
        f"{'width':>6} {'gates':>6} {'bool kern':>10} {'packed kern':>12} "
        f"{'speedup':>8} {'bool e2e':>10} {'packed e2e':>11} {'speedup':>8}"
    )
    print(header)
    for row in rows:
        print(
            f"{row['width']:>5}b {row['gates']:>6} "
            f"{row['bool_kernel_s'] * 1000:>8.1f}ms {row['packed_kernel_s'] * 1000:>10.1f}ms "
            f"{row['kernel_speedup']:>7.1f}x "
            f"{row['bool_words_s'] * 1000:>8.1f}ms {row['packed_words_s'] * 1000:>9.1f}ms "
            f"{row['words_speedup']:>7.1f}x"
        )

    if not QUICK:
        by_width = {row["width"]: row for row in rows}
        for width, floor in KERNEL_SPEEDUP_FLOORS.items():
            assert by_width[width]["kernel_speedup"] >= floor, by_width[width]
        assert by_width[16]["words_speedup"] >= END_TO_END_SPEEDUP_FLOOR, by_width[16]


def test_streaming_evaluation_memory_and_equivalence():
    """Chunked Monte-Carlo evaluation bounds the bit-matrix footprint.

    A 16-bit multiplier over 65536 patterns needs a ~patterns x nodes
    boolean working set per simulation in one-shot mode; streaming in 4096
    pattern blocks caps it at 1/16th while reproducing the one-shot MED /
    WCE / error-rate exactly.
    """
    from repro.error import ErrorEvaluator
    from repro.generators import perturb_netlist, truncated_multiplier

    width = 8 if QUICK else 16
    num_samples = 2048 if QUICK else 65536
    chunk = 256 if QUICK else 4096
    reference = array_multiplier(width)
    circuits = [truncated_multiplier(width, width // 2), perturb_netlist(reference, seed=3)]

    one_shot = ErrorEvaluator(
        reference, max_exhaustive_inputs=10, num_samples=num_samples, sim_backend="bitplane"
    )
    streaming = ErrorEvaluator(
        reference,
        max_exhaustive_inputs=10,
        num_samples=num_samples,
        sim_backend="bitplane",
        chunk_patterns=chunk,
    )
    start = time.perf_counter()
    for circuit in circuits:
        full = one_shot.evaluate(circuit).metrics
        chunked = streaming.evaluate(circuit).metrics
        for field in ("med", "mae", "wce", "wce_relative", "error_probability", "mse"):
            assert getattr(chunked, field) == getattr(full, field), field
        assert chunked.mre == pytest.approx(full.mre, rel=1e-12)
    elapsed = time.perf_counter() - start

    one_shot_bytes = num_samples * reference.num_nodes
    streaming_bytes = chunk * reference.num_nodes
    print(
        f"\nstreaming evaluation ({width}-bit multiplier, {num_samples} patterns, "
        f"chunk={chunk}): working set {one_shot_bytes / 1e6:.0f} MB -> "
        f"{streaming_bytes / 1e6:.1f} MB, both passes in {elapsed * 1000:.0f} ms"
    )
