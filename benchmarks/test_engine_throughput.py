"""Engine throughput: serial per-circuit loops vs the batched/cached engine.

The workload mirrors what the ApproxFPGAs flow does to a library: evaluate
every circuit's error metrics once for the records stage, then again for a
later stage (re-synthesis selection, coverage, or a re-run over the same
library).  The serial baseline pays full simulation cost on every pass; the
engine pays it once (batched, with shared operand matrices) and serves the
repeat pass from the content-addressed cache.

Set ``REPRO_BENCH_QUICK=1`` (the CI smoke job does) to shrink the library
and relax the wall-clock assertions, which are meaningless on loaded
shared runners.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.engine import BatchEvaluator, EvalCache
from repro.error import ErrorEvaluator, evaluate_error
from repro.generators import build_multiplier_library

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
LIBRARY_SIZE = 16 if QUICK else 50
BIT_WIDTH = 4 if QUICK else 8


@pytest.fixture(scope="module")
def throughput_library():
    return build_multiplier_library(BIT_WIDTH, size=LIBRARY_SIZE, seed=41)


def test_engine_throughput_serial_vs_batched_cached(benchmark, throughput_library):
    library = throughput_library
    circuits = list(library)
    reference = library.reference()

    def run_workload():
        timings = {}

        # -- serial baseline: the pre-engine per-circuit loop ------------- #
        shared_evaluator = ErrorEvaluator(reference)
        start = time.perf_counter()
        serial_pass_one = [shared_evaluator.evaluate(circuit) for circuit in circuits]
        timings["serial_pass_s"] = time.perf_counter() - start
        start = time.perf_counter()
        [shared_evaluator.evaluate(circuit) for circuit in circuits]
        timings["serial_repeat_s"] = time.perf_counter() - start

        # -- fully naive variant: one-shot evaluator per circuit ---------- #
        start = time.perf_counter()
        [evaluate_error(circuit, reference) for circuit in circuits[: max(4, len(circuits) // 5)]]
        naive_sample = time.perf_counter() - start
        timings["naive_per_circuit_s"] = naive_sample / max(4, len(circuits) // 5)

        # -- engine: batched cold pass + cached repeat pass --------------- #
        engine = BatchEvaluator(
            error_evaluator=shared_evaluator, cache=EvalCache(), mode="serial"
        )
        start = time.perf_counter()
        batched = engine.evaluate_errors(circuits)
        timings["engine_cold_s"] = time.perf_counter() - start
        stats_before_repeat = engine.stats()
        start = time.perf_counter()
        cached = engine.evaluate_errors(circuits)
        timings["engine_warm_s"] = time.perf_counter() - start
        stats_after_repeat = engine.stats()

        repeat_lookups = stats_after_repeat.lookups - stats_before_repeat.lookups
        repeat_hits = stats_after_repeat.hits - stats_before_repeat.hits
        timings["repeat_hit_rate"] = repeat_hits / max(repeat_lookups, 1)
        timings["overall_hit_rate"] = stats_after_repeat.hit_rate
        return timings, serial_pass_one, batched, cached

    timings, serial_reports, batched_reports, cached_reports = benchmark.pedantic(
        run_workload, rounds=1, iterations=1
    )

    # --- correctness: batched and cached results are bit-identical ------- #
    for serial, batched, cached in zip(serial_reports, batched_reports, cached_reports):
        assert batched.metrics == serial.metrics
        assert cached.metrics == serial.metrics
        assert batched.circuit_name == serial.circuit_name

    # --- cache effectiveness --------------------------------------------- #
    assert timings["repeat_hit_rate"] >= 0.90, timings

    serial_workload = timings["serial_pass_s"] + timings["serial_repeat_s"]
    engine_workload = timings["engine_cold_s"] + timings["engine_warm_s"]
    workload_speedup = serial_workload / max(engine_workload, 1e-9)
    cold_speedup = timings["serial_pass_s"] / max(timings["engine_cold_s"], 1e-9)
    warm_speedup = timings["serial_repeat_s"] / max(timings["engine_warm_s"], 1e-9)

    print("\n=== Engine throughput: serial loop vs batched/cached engine ===")
    print(f"library: {library.name} ({len(circuits)} circuits)")
    print(f"{'serial pass':<28}{timings['serial_pass_s'] * 1000:>10.1f} ms")
    print(f"{'serial repeat pass':<28}{timings['serial_repeat_s'] * 1000:>10.1f} ms")
    print(f"{'naive per circuit':<28}{timings['naive_per_circuit_s'] * 1000:>10.1f} ms")
    print(f"{'engine cold (batched)':<28}{timings['engine_cold_s'] * 1000:>10.1f} ms")
    print(f"{'engine warm (cached)':<28}{timings['engine_warm_s'] * 1000:>10.1f} ms")
    print(f"{'cold speedup':<28}{cold_speedup:>10.2f} x")
    print(f"{'warm speedup':<28}{warm_speedup:>10.2f} x")
    print(f"{'workload speedup':<28}{workload_speedup:>10.2f} x")
    print(f"{'repeat-pass hit rate':<28}{timings['repeat_hit_rate'] * 100:>10.1f} %")

    if not QUICK:
        # The batched+cached engine must beat the serial loop by >= 2x on the
        # two-pass workload, and the cold batched pass must not be slower
        # than the serial loop it replaces.
        assert workload_speedup >= 2.0, timings
        assert timings["engine_cold_s"] <= timings["serial_pass_s"] * 1.10, timings


def test_engine_cost_models_cached_across_repeats(benchmark, throughput_library):
    """ASIC + FPGA cost models through the engine: repeat passes are ~free."""
    library = throughput_library
    circuits = list(library)[: 12 if QUICK else 25]
    engine = BatchEvaluator(library.reference(), cache=EvalCache(), mode="serial")

    def run():
        engine.evaluate_asic(circuits)
        engine.evaluate_fpga(circuits)
        return engine.stats()

    benchmark.pedantic(run, rounds=1, iterations=1)
    before = engine.stats()
    start = time.perf_counter()
    engine.evaluate_asic(circuits)
    engine.evaluate_fpga(circuits)
    warm_s = time.perf_counter() - start
    after = engine.stats()
    repeat_lookups = after.lookups - before.lookups
    repeat_hits = after.hits - before.hits
    print(f"\ncost-model repeat pass: {warm_s * 1000:.1f} ms, "
          f"hit rate {repeat_hits / max(repeat_lookups, 1) * 100:.1f} %")
    assert repeat_hits / max(repeat_lookups, 1) >= 0.90
