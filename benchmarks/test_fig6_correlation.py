"""Fig. 6 -- Correlation between estimated and measured FPGA parameters.

The paper inspects the top-3 models on the 16x16 multiplier library and
plots estimated vs measured values.  The benchmark reproduces the numbers
behind that plot: the Pearson correlation (and relative bias) of each
model's estimates against the measured values on held-out circuits.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.features import feature_matrix
from repro.fpga import FPGA_PARAMETERS
from repro.ml import build_model, pearson_correlation, train_test_split

CANDIDATE_MODELS = ("ML2", "ML4", "ML10", "ML11")  # ASIC regression, PLS, Kernel Ridge, Bayesian Ridge


@pytest.fixture(scope="module")
def mult16_dataset(mult16_library, fpga_synth, asic_synth):
    circuits = list(mult16_library)
    asic_reports = [asic_synth.synthesize(circuit) for circuit in circuits]
    fpga_reports = [fpga_synth.synthesize(circuit) for circuit in circuits]
    X, names = feature_matrix(circuits, asic_reports=asic_reports)
    targets = {
        parameter: np.array([report.parameter(parameter) for report in fpga_reports])
        for parameter in FPGA_PARAMETERS
    }
    return X, names, targets


def test_fig6_estimated_vs_measured_correlation(benchmark, mult16_dataset):
    X, feature_names, targets = mult16_dataset

    def correlations():
        results = {}
        for parameter, y in targets.items():
            X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.3, random_state=1)
            for model_id in CANDIDATE_MODELS:
                model = build_model(model_id, feature_names, random_state=0)
                model.fit(X_train, y_train)
                estimates = model.predict(X_test)
                bias = float(np.mean(estimates - y_test) / max(np.mean(y_test), 1e-9))
                results[(parameter, model_id)] = (
                    pearson_correlation(y_test, estimates),
                    bias,
                )
        return results

    results = benchmark.pedantic(correlations, rounds=1, iterations=1)

    print("\n=== Fig. 6: estimated vs measured FPGA parameters (16x16 multipliers, held-out) ===")
    print(f"{'parameter':<10}" + "".join(f"{model_id:>18}" for model_id in CANDIDATE_MODELS))
    for parameter in ("latency", "power", "area"):
        cells = []
        for model_id in CANDIDATE_MODELS:
            correlation, bias = results[(parameter, model_id)]
            cells.append(f"r={correlation:+.2f} b={bias:+.0%}")
        print(f"{parameter:<10}" + "".join(f"{cell:>18}" for cell in cells))

    # Paper claims: Bayesian Ridge and PLS work as standalone estimators for
    # all three parameters (positive, reasonably strong correlation).
    for parameter in ("latency", "power", "area"):
        for model_id in ("ML4", "ML11"):
            correlation, _ = results[(parameter, model_id)]
            assert correlation > 0.5, f"{model_id} correlation for {parameter} too low"
    # Every reported correlation is at least positive for some model per parameter.
    for parameter in ("latency", "power", "area"):
        assert max(results[(parameter, model_id)][0] for model_id in CANDIDATE_MODELS) > 0.6
