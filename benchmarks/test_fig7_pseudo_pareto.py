"""Fig. 7 -- Effect of constructing multiple pseudo-Pareto fronts (FPGA latency).

For the 8x8 multiplier library and the FPGA-latency axis the benchmark
reports, for 1, 2 and 3 pseudo-Pareto fronts and for several estimators, how
many circuits would have to be (re-)synthesized and what fraction of the
true latency Pareto front those circuits cover.  The paper's observations:
ML-based estimates need far fewer re-synthesized circuits than the
regression w.r.t. the ASIC latency, and taking the union of fronts from
multiple models works best.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import pareto_coverage, pareto_front_indices, pareto_union, successive_pareto_fronts

MODELS_UNDER_STUDY = ("ML11", "ML4", "ML10", "ML2")  # Bayesian Ridge, PLS, Kernel Ridge, ASIC-latency regression


@pytest.fixture(scope="module")
def latency_study(mult8_flow_result, mult8_library, mult8_measurements):
    """Estimates of the FPGA latency of every circuit by each studied model."""
    from repro.ml import build_model
    from repro.features import feature_matrix

    errors, asic_reports, fpga_reports = mult8_measurements
    circuits = list(mult8_library)
    X, feature_names = feature_matrix(circuits, asic_reports=asic_reports)
    measured_latency = np.array([report.latency_ns for report in fpga_reports])

    training_names = set(mult8_flow_result.training_names) | set(mult8_flow_result.validation_names)
    training_idx = [i for i, circuit in enumerate(circuits) if circuit.name in training_names]

    estimates = {}
    for model_id in MODELS_UNDER_STUDY:
        model = build_model(model_id, feature_names, random_state=0)
        model.fit(X[training_idx], measured_latency[training_idx])
        estimates[model_id] = model.predict(X)
    return errors, measured_latency, estimates, training_idx


def test_fig7_multiple_pseudo_pareto_fronts(benchmark, latency_study, mult8_library):
    errors, measured_latency, estimates, training_idx = latency_study
    true_front = pareto_front_indices(np.column_stack([errors, measured_latency]))

    def study():
        rows = {}
        for model_id, estimated in estimates.items():
            points = np.column_stack([errors, estimated])
            fronts = successive_pareto_fronts(points, 3)
            for num_fronts in (1, 2, 3):
                selected = pareto_union(fronts[:num_fronts])
                synthesized = sorted(set(selected) | set(training_idx))
                rows[(model_id, num_fronts)] = (
                    len(selected),
                    len(synthesized),
                    pareto_coverage(true_front, synthesized),
                )
        # Union of the three ML models (excluding the ASIC regression), 3 fronts each.
        union_selected = set(training_idx)
        for model_id in ("ML11", "ML4", "ML10"):
            points = np.column_stack([errors, estimates[model_id]])
            union_selected |= set(pareto_union(successive_pareto_fronts(points, 3)))
        rows[("union", 3)] = (
            len(union_selected - set(training_idx)),
            len(union_selected),
            pareto_coverage(true_front, sorted(union_selected)),
        )
        return rows

    rows = benchmark.pedantic(study, rounds=1, iterations=1)

    print("\n=== Fig. 7: pseudo-Pareto fronts for FPGA latency (8x8 multipliers) ===")
    print(f"library: {len(mult8_library)} circuits, true latency front: {len(true_front)} circuits")
    print(f"{'estimator':<10}{'#fronts':>8}{'candidates':>12}{'synthesized':>13}{'coverage':>10}")
    for (model_id, num_fronts), (candidates, synthesized, coverage) in sorted(rows.items()):
        print(f"{model_id:<10}{num_fronts:>8}{candidates:>12}{synthesized:>13}{coverage:>10.2f}")

    # Coverage must be non-decreasing in the number of fronts for every model.
    for model_id in MODELS_UNDER_STUDY:
        coverages = [rows[(model_id, k)][2] for k in (1, 2, 3)]
        assert coverages == sorted(coverages)
        # And the selection must stay well below exhaustive synthesis.
        assert rows[(model_id, 3)][1] < len(mult8_library)

    # The union of multiple models covers at least as much as any single model.
    best_single = max(rows[(model_id, 3)][2] for model_id in ("ML11", "ML4", "ML10"))
    assert rows[("union", 3)][2] >= best_single - 1e-9
