"""Section IV observation -- cross-bit-width generalisation of the models.

The paper notes that a model trained on 8-bit circuits estimates 12-/16-bit
circuits poorly: average fidelity drops from ~88% (same bit-width training)
to ~53% (cross bit-width training).  The benchmark reproduces that
comparison with the adder libraries and the Bayesian Ridge / PLS models.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import fidelity
from repro.features import feature_matrix
from repro.ml import build_model


@pytest.fixture(scope="module")
def adder_datasets(adder8_library, adder16_library, fpga_synth, asic_synth):
    datasets = {}
    for name, library in (("8bit", adder8_library), ("16bit", adder16_library)):
        circuits = list(library)
        asic_reports = [asic_synth.synthesize(circuit) for circuit in circuits]
        fpga_reports = [fpga_synth.synthesize(circuit) for circuit in circuits]
        X, feature_names = feature_matrix(circuits, asic_reports=asic_reports)
        y = np.array([report.latency_ns for report in fpga_reports])
        datasets[name] = (X, y, feature_names)
    return datasets


def test_crossbitwidth_generalization_drop(benchmark, adder_datasets):
    X8, y8, feature_names = adder_datasets["8bit"]
    X16, y16, _ = adder_datasets["16bit"]
    rng = np.random.default_rng(3)

    def study():
        # The paper observes the drop for its model zoo at large; the effect is
        # carried by the local / piecewise learners (trees, forests, KNN), which
        # cannot extrapolate beyond the feature ranges seen at the training
        # bit-width.  Smooth linear models (ridge family) transfer much better,
        # which the printed table also shows via the ML11 contrast row.
        results = {}
        for model_id in ("ML5", "ML16", "ML18", "ML11"):
            # Same-bit-width: train on half of the 16-bit library, test on the rest.
            order = rng.permutation(len(y16))
            half = len(order) // 2
            train_idx, test_idx = order[:half], order[half:]
            same_model = build_model(model_id, feature_names, random_state=0)
            same_model.fit(X16[train_idx], y16[train_idx])
            same_fidelity = fidelity(y16[test_idx], same_model.predict(X16[test_idx]))

            # Cross-bit-width: train on the full 8-bit library, test on the same split.
            cross_model = build_model(model_id, feature_names, random_state=0)
            cross_model.fit(X8, y8)
            cross_fidelity = fidelity(y16[test_idx], cross_model.predict(X16[test_idx]))
            results[model_id] = (same_fidelity, cross_fidelity)
        return results

    results = benchmark.pedantic(study, rounds=1, iterations=1)

    print("\n=== Cross-bit-width generalisation (FPGA latency of 16-bit adders) ===")
    print(f"{'model':<8}{'same-bitwidth fidelity':>25}{'trained on 8-bit fidelity':>28}")
    for model_id, (same, cross) in results.items():
        print(f"{model_id:<8}{same:>25.2f}{cross:>28.2f}")
    print("(paper: ~88% same-bit-width vs ~53% cross-bit-width on average)")

    local_models = ("ML5", "ML16", "ML18")
    same_avg = np.mean([results[m][0] for m in local_models])
    cross_avg = np.mean([results[m][1] for m in local_models])
    assert same_avg > cross_avg, "training on the same bit-width must beat cross-bit-width training"
    assert same_avg >= 0.7
