"""Fig. 3 -- Exhaustive vs ApproxFPGAs exploration time.

For each of the six libraries (8/12/16-bit adders and multipliers) the
benchmark accounts the modeled synthesis time of exhaustive exploration
against the ApproxFPGAs flow (training subset + pseudo-Pareto re-synthesis +
model training) and prints the per-library and cumulative rows of Fig. 3.
"""

from __future__ import annotations

import pytest

from repro.core import ApproxFpgasFlow, ExplorationSummary, seconds_to_days


@pytest.fixture(scope="module")
def exploration_summary(
    flow_config_factory,
    adder8_library,
    adder12_library,
    adder16_library,
    mult8_flow_result,
    mult12_library,
    mult16_library,
):
    """Run the flow (without the oracle coverage pass) on all six libraries."""
    summary = ExplorationSummary()
    config = flow_config_factory(evaluate_coverage=False, model_ids=["ML2", "ML4", "ML11", "ML14"])
    for library in (adder8_library, adder12_library, adder16_library):
        summary.add(ApproxFpgasFlow(library, config=config).run().exploration_cost)
    # The 8x8 multiplier flow already ran with the full zoo; reuse its accounting.
    summary.add(mult8_flow_result.exploration_cost)
    for library in (mult12_library, mult16_library):
        summary.add(ApproxFpgasFlow(library, config=config).run().exploration_cost)
    return summary


def test_fig3_exploration_time_reduction(benchmark, exploration_summary):
    def rows():
        return exploration_summary.cumulative_rows()

    table = benchmark.pedantic(rows, rounds=1, iterations=1)

    print("\n=== Fig. 3: exploration time, exhaustive vs ApproxFPGAs (modeled synthesis time) ===")
    header = f"{'library':<22}{'exhaustive':>14}{'approxfpgas':>14}{'speedup':>10}"
    print(header)
    for row, cost in zip(table, exploration_summary.costs):
        print(
            f"{row['library']:<22}"
            f"{row['exhaustive_time_s'] / 3600:>12.1f} h"
            f"{row['approxfpgas_time_s'] / 3600:>12.1f} h"
            f"{cost.speedup:>10.2f}"
        )
    print(
        f"{'CUMULATIVE':<22}"
        f"{seconds_to_days(exploration_summary.exhaustive_total_s):>11.2f} d"
        f"{seconds_to_days(exploration_summary.approxfpgas_total_s):>11.2f} d"
        f"{exploration_summary.overall_speedup:>10.2f}"
    )
    print(
        "(paper: 82.4 days exhaustive vs 8.2 days ApproxFPGAs, ~10x; at this reduced"
        " library scale the training subset and Pareto candidates are a larger fraction"
        " of the library, so the factor is smaller but the ordering is unchanged)"
    )

    # Qualitative claims: ApproxFPGAs is cheaper for every library and meaningfully
    # cheaper overall.  The paper reports ~10x at EvoApproxLib scale; the factor
    # shrinks with library size because the training subset and the Pareto
    # candidates become a larger *fraction* of a small library.
    for cost in exploration_summary.costs:
        assert cost.approxfpgas_time_s < cost.exhaustive_time_s
    assert exploration_summary.overall_speedup > 1.4
    # Exhaustive exploration of the full set is in the "100s of hours" regime.
    assert exploration_summary.exhaustive_total_s / 3600.0 > 20.0
