"""Cross-workload matrix: every built-in workload through one shared session.

The scenario-diversity counterpart of the Fig. 9 benchmark: the same
component libraries drive the AutoAx-FPGA flow on each registered workload
(``gaussian`` / ``sobel`` / ``sharpen``) inside **one**
:class:`repro.api.ExplorationSession`, demonstrating that

* the staged flow, the estimators and the batched engine are
  workload-agnostic (different slot shapes and quality metrics end to end);
* circuit-level evaluations (error metrics, FPGA reports) are paid once and
  shared across workloads through the session cache, while accelerator
  configuration entries stay namespaced per workload (re-running a workload
  is served from cache; a different workload is not);
* every workload completes with a non-empty exact Pareto front and a
  well-formed hypervolume comparison against its random baseline.

Set ``REPRO_BENCH_QUICK=1`` (the CI jobs do) to shrink the study sizes.
No wall-clock floors are asserted: the benchmark pins structural and
cache-accounting properties only, so it is stable on loaded machines.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.api import ExplorationSession
from repro.autoax import AutoAxConfig, components_from_library
from repro.generators import build_adder_library, build_multiplier_library
from repro.workloads import WORKLOADS

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

STUDY = dict(
    parameters=("area",),
    num_training_samples=8 if QUICK else 20,
    num_random_baseline=6 if QUICK else 16,
    hill_climb_iterations=30 if QUICK else 120,
    image_size=16 if QUICK else 32,
    seed=11,
    search_strategy="nsga2",
)


@pytest.fixture(scope="module")
def components():
    multipliers = components_from_library(
        build_multiplier_library(8, size=24 if QUICK else 40, seed=31), 6, max_error=0.1
    )
    adders = components_from_library(
        build_adder_library(16, size=18 if QUICK else 28, seed=37), 5, max_error=0.02
    )
    return multipliers, adders


def test_cross_workload_matrix(components):
    session = ExplorationSession(seed=11)
    rows = []
    for workload in WORKLOADS.keys():
        started = time.perf_counter()
        result = session.run_autoax(
            *components, AutoAxConfig(workload=workload, **STUDY)
        )
        elapsed = time.perf_counter() - started
        scenario = result.scenarios["area"]
        comparison = result.hypervolume_comparison("area")
        rows.append(
            (
                workload,
                result.design_space_size,
                len(scenario.front),
                comparison["autoax"],
                comparison["random"],
                elapsed,
            )
        )

    print("\n=== cross-workload AutoAx matrix (shared session, NSGA-II) ===")
    print(f"{'workload':<10} {'design space':>14} {'front':>6} "
          f"{'HV autoax':>12} {'HV random':>12} {'time s':>8}")
    for workload, space, front, hv_autoax, hv_random, elapsed in rows:
        print(f"{workload:<10} {space:>14.2e} {front:>6d} "
              f"{hv_autoax:>12.2f} {hv_random:>12.2f} {elapsed:>8.2f}")

    stats = session.stats()
    print(f"shared cache: {stats.lookups} lookups, {stats.hit_rate:.0%} hit rate, "
          f"{stats.size} entries")

    # Structural floors: every workload completes with a non-empty exact
    # front and a sane hypervolume comparison.
    assert len(rows) >= 3
    for workload, _, front, hv_autoax, hv_random, _ in rows:
        assert front >= 1, f"{workload}: empty exact Pareto front"
        assert hv_autoax >= 0.0 and hv_random >= 0.0


def test_repeat_workload_run_is_served_from_cache(components):
    """Re-running one workload in the same session hits the accelerator
    cache for every exact configuration evaluation; the second run's new
    misses stay at zero while a *different* workload still misses."""
    session = ExplorationSession(seed=11)
    config = AutoAxConfig(workload="sobel", **STUDY)
    session.run_autoax(*components, config)
    cold = session.stats()
    session.run_autoax(*components, config)
    warm = session.stats()
    repeat_lookups = warm.lookups - cold.lookups
    repeat_hits = warm.hits - cold.hits
    assert repeat_lookups > 0
    assert repeat_hits / repeat_lookups == pytest.approx(1.0)
    print(f"\nsobel repeat run: {repeat_lookups} lookups, 100% served from cache")

    session.run_autoax(*components, AutoAxConfig(workload="sharpen", **STUDY))
    cross = session.stats()
    assert cross.misses > warm.misses, "a different workload must not alias the cache"
    print(f"sharpen after sobel: {cross.misses - warm.misses} fresh evaluations "
          "(no cross-workload aliasing)")
