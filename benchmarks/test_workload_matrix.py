"""Scenario-matrix gate: every workload x every strategy x both sim backends.

The scenario-diversity claim ("the flow is workload-agnostic") used to
rest on three convolution workloads through one strategy; this benchmark
turns it into an *enforced* matrix.  Every cell of

    registered workload  x  registered search strategy  x  {bitplane, compiled}

runs the AutoAx-FPGA flow twice (cold + warm repeat) through a fresh
:class:`repro.api.ExplorationSession` sharing one per-backend cache, and
the gate pins

* a non-empty exact Pareto front and a sane hypervolume comparison per
  cell;
* a 100 % warm-repeat hit rate per cell on the **exact-evaluation cache
  domain** (``axq:`` keys).  Only that domain is gated: the estimator
  cache domain (``axe:``) is *designed* to miss across runs, because
  estimators mint a fresh ``cache_token`` per ``fit()`` (estimates from a
  differently-trained surrogate must never be reused);
* zero cross-workload cache aliasing: every workload's engine cache
  namespace (``accelerator_token``) is distinct, and re-running workload
  A after workload B never creates new exact-domain misses for A;
* **coverage by construction**: the matrix iterates the pinned cell
  tables below, and :func:`test_matrix_covers_registries` fails the run
  if a registered workload or strategy is missing from them (register a
  new one -> add it to the matrix, or the gate goes red).

The measured cell table is written to ``BENCH_workload_matrix.json`` at
the repo root (uploaded as a CI artifact by the ``workload-matrix`` job).
Set ``REPRO_BENCH_QUICK=1`` (the CI jobs do) to shrink the study sizes.
No wall-clock floors are asserted: the gate pins structural and
cache-accounting properties only, so it is stable on loaded machines.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.api import ExplorationSession
from repro.autoax import SEARCH_STRATEGIES, AutoAxConfig, components_from_library
from repro.engine import EvalCache, accelerator_token
from repro.generators import build_adder_library, build_multiplier_library
from repro.workloads import WORKLOADS, build_workload

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

BENCH_JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_workload_matrix.json"

#: The pinned matrix axes.  These are deliberately literal tuples, not
#: ``WORKLOADS.keys()``: the coverage test compares them against the live
#: registries, so registering a new workload or strategy *without* adding
#: it here fails the gate instead of silently shrinking coverage.
MATRIX_WORKLOADS = ("dct", "fir", "fir_mixed", "gaussian", "mvm", "sharpen", "sobel")
MATRIX_STRATEGIES = ("hill_climb", "nsga2", "random_archive", "sh_ehvi")
MATRIX_BACKENDS = ("bitplane", "compiled")

STUDY = dict(
    parameters=("area",),
    num_training_samples=6 if QUICK else 10,
    num_random_baseline=4 if QUICK else 8,
    hill_climb_iterations=16 if QUICK else 40,
    image_size=12 if QUICK else 16,
    seed=11,
)


class DomainCountingCache(EvalCache):
    """EvalCache that additionally counts lookups/hits per key domain.

    Cache keys are ``"<domain>:<context>:<subject>"``; the warm-repeat
    gate must measure the exact-evaluation domain (``axq``) in isolation,
    because the estimator domain (``axe``) misses across runs by design
    (fresh per-fit ``cache_token``).
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.domain_lookups: dict = {}
        self.domain_hits: dict = {}

    def get(self, key: str):
        value = super().get(key)
        domain = key.split(":", 1)[0]
        self.domain_lookups[domain] = self.domain_lookups.get(domain, 0) + 1
        if value is not None:
            self.domain_hits[domain] = self.domain_hits.get(domain, 0) + 1
        return value

    def snapshot(self):
        return dict(self.domain_lookups), dict(self.domain_hits)


@pytest.fixture(scope="module")
def components():
    multipliers = components_from_library(
        build_multiplier_library(8, size=24 if QUICK else 40, seed=31), 6, max_error=0.1
    )
    adders = components_from_library(
        build_adder_library(16, size=18 if QUICK else 28, seed=37), 5, max_error=0.02
    )
    return multipliers, adders


def test_matrix_covers_registries():
    """Registering a workload or strategy without adding it to the matrix
    is a gate failure, not a silent coverage gap."""
    missing_workloads = set(WORKLOADS.keys()) - set(MATRIX_WORKLOADS)
    assert not missing_workloads, (
        f"workloads registered but missing from the scenario matrix: "
        f"{sorted(missing_workloads)}; add them to MATRIX_WORKLOADS in "
        f"{__file__}"
    )
    missing_strategies = set(SEARCH_STRATEGIES.keys()) - set(MATRIX_STRATEGIES)
    assert not missing_strategies, (
        f"search strategies registered but missing from the scenario matrix: "
        f"{sorted(missing_strategies)}; add them to MATRIX_STRATEGIES in "
        f"{__file__}"
    )
    # The matrix may not claim cells that do not exist either.
    assert set(MATRIX_WORKLOADS) == set(WORKLOADS.keys())
    assert set(MATRIX_STRATEGIES) == set(SEARCH_STRATEGIES.keys())


def test_unregistered_matrix_entry_fails_the_gate():
    """The coverage check actually trips: a workload registered behind the
    matrix's back turns the gate red."""

    class _Phantom:  # pragma: no cover - never instantiated
        pass

    WORKLOADS.register("phantom-matrix-probe")(_Phantom)
    try:
        with pytest.raises(AssertionError, match="phantom-matrix-probe"):
            test_matrix_covers_registries()
    finally:
        WORKLOADS.unregister("phantom-matrix-probe")
    # ... and the registry is clean again afterwards.
    test_matrix_covers_registries()


def test_workload_tokens_are_pairwise_distinct(components):
    """Zero cross-workload aliasing at the key level: every registered
    workload gets its own engine cache namespace."""
    tokens = {
        workload: accelerator_token(build_workload(workload, *components))
        for workload in MATRIX_WORKLOADS
    }
    assert len(set(tokens.values())) == len(MATRIX_WORKLOADS), tokens


def test_scenario_matrix_gate(components):
    cells = []
    for backend in MATRIX_BACKENDS:
        # One shared cache per backend: entries may flow between cells
        # (cache hits never change results -- pinned by the determinism
        # suite) but never between backends, so each backend column
        # genuinely executes its own simulation path.
        cache = DomainCountingCache()
        for workload in MATRIX_WORKLOADS:
            for strategy in MATRIX_STRATEGIES:
                config = AutoAxConfig(workload=workload, search_strategy=strategy, **STUDY)
                session = ExplorationSession(seed=11, cache=cache, sim_backend=backend)
                started = time.perf_counter()
                result = session.run_autoax(*components, config)
                cold_elapsed = time.perf_counter() - started
                mid_lookups, mid_hits = cache.snapshot()

                warm_result = session.run_autoax(*components, config)
                end_lookups, end_hits = cache.snapshot()

                front = result.scenarios["area"].front
                comparison = result.hypervolume_comparison("area")
                warm_axq_lookups = end_lookups.get("axq", 0) - mid_lookups.get("axq", 0)
                warm_axq_hits = end_hits.get("axq", 0) - mid_hits.get("axq", 0)

                label = f"{workload} x {strategy} x {backend}"
                assert len(front) >= 1, f"{label}: empty exact Pareto front"
                assert len(warm_result.scenarios["area"].front) == len(front), (
                    f"{label}: warm repeat changed the front"
                )
                assert comparison["autoax"] >= 0.0 and comparison["random"] >= 0.0
                assert warm_axq_lookups > 0, f"{label}: warm repeat did no exact lookups"
                assert warm_axq_hits == warm_axq_lookups, (
                    f"{label}: warm repeat missed the exact-evaluation cache "
                    f"({warm_axq_hits}/{warm_axq_lookups} hits)"
                )
                cells.append(
                    {
                        "workload": workload,
                        "strategy": strategy,
                        "backend": backend,
                        "front": len(front),
                        "hv_autoax": comparison["autoax"],
                        "hv_random": comparison["random"],
                        "warm_axq_lookups": warm_axq_lookups,
                        "warm_axq_hit_rate": warm_axq_hits / warm_axq_lookups,
                        "cold_s": round(cold_elapsed, 4),
                    }
                )

        # Zero cross-workload aliasing, observed at the cache-accounting
        # level: after the whole backend sweep, repeating any workload's
        # nsga2 study creates no new exact-domain misses (everything it
        # needs is namespaced under its own token and already cached).
        before_lookups, before_hits = cache.snapshot()
        for workload in MATRIX_WORKLOADS:
            session = ExplorationSession(seed=11, cache=cache, sim_backend=backend)
            session.run_autoax(
                *components,
                AutoAxConfig(workload=workload, search_strategy="nsga2", **STUDY),
            )
        after_lookups, after_hits = cache.snapshot()
        sweep_lookups = after_lookups.get("axq", 0) - before_lookups.get("axq", 0)
        sweep_hits = after_hits.get("axq", 0) - before_hits.get("axq", 0)
        assert sweep_lookups > 0
        assert sweep_hits == sweep_lookups, (
            f"{backend}: repeating every workload after the sweep missed the "
            f"exact cache ({sweep_hits}/{sweep_lookups}) -- cross-workload "
            "entries would have to be missing or aliased for that to happen"
        )

    assert len(cells) == (
        len(MATRIX_WORKLOADS) * len(MATRIX_STRATEGIES) * len(MATRIX_BACKENDS)
    )

    print("\n=== scenario matrix (workload x strategy x backend) ===")
    print(f"{'workload':<10} {'strategy':<15} {'backend':<9} {'front':>6} "
          f"{'warm axq':>9} {'hit rate':>9} {'cold s':>8}")
    for cell in cells:
        print(f"{cell['workload']:<10} {cell['strategy']:<15} {cell['backend']:<9} "
              f"{cell['front']:>6d} {cell['warm_axq_lookups']:>9d} "
              f"{cell['warm_axq_hit_rate']:>9.0%} {cell['cold_s']:>8.2f}")

    BENCH_JSON_PATH.write_text(
        json.dumps(
            {
                "benchmark": "workload_matrix",
                "quick": QUICK,
                "study": {k: (list(v) if isinstance(v, tuple) else v) for k, v in STUDY.items()},
                "workloads": list(MATRIX_WORKLOADS),
                "strategies": list(MATRIX_STRATEGIES),
                "backends": list(MATRIX_BACKENDS),
                "cells": cells,
            },
            indent=2,
        )
        + "\n"
    )
    print(f"wrote {BENCH_JSON_PATH}")


def test_repeat_workload_run_is_served_from_cache(components):
    """The historical single-cell sanity check: re-running one workload in
    the same session serves every exact configuration evaluation from the
    cache, while a *different* workload still misses (no aliasing)."""
    session = ExplorationSession(seed=11)
    config = AutoAxConfig(workload="sobel", search_strategy="nsga2", **STUDY)
    session.run_autoax(*components, config)
    cold = session.stats()
    session.run_autoax(*components, config)
    warm = session.stats()
    repeat_lookups = warm.lookups - cold.lookups
    repeat_hits = warm.hits - cold.hits
    assert repeat_lookups > 0
    assert repeat_hits / repeat_lookups == pytest.approx(1.0)
    print(f"\nsobel repeat run: {repeat_lookups} lookups, 100% served from cache")

    session.run_autoax(
        *components, AutoAxConfig(workload="sharpen", search_strategy="nsga2", **STUDY)
    )
    cross = session.stats()
    assert cross.misses > warm.misses, "a different workload must not alias the cache"
    print(f"sharpen after sobel: {cross.misses - warm.misses} fresh evaluations "
          "(no cross-workload aliasing)")
