"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The circuit
libraries and the main ApproxFPGAs flow result are session-scoped because
they are shared by several figures (Fig. 1, 3, 5, 7, 8 and Table II all draw
on the 8x8 multiplier library).

Library sizes are scaled down from EvoApproxLib (tens of thousands of
circuits) to laptop scale (tens to hundreds); EXPERIMENTS.md discusses how
this affects the absolute speedup numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.asic import AsicSynthesizer
from repro.autoax import components_from_library
from repro.core import ApproxFpgasConfig, ApproxFpgasFlow
from repro.error import ErrorEvaluator
from repro.fpga import FpgaSynthesizer
from repro.generators import build_adder_library, build_multiplier_library


@pytest.fixture(scope="session")
def fpga_synth() -> FpgaSynthesizer:
    return FpgaSynthesizer()


@pytest.fixture(scope="session")
def asic_synth() -> AsicSynthesizer:
    return AsicSynthesizer()


# --------------------------------------------------------------------- #
# Circuit libraries (the paper's six libraries, at reduced scale)
# --------------------------------------------------------------------- #
@pytest.fixture(scope="session")
def mult8_library():
    return build_multiplier_library(8, size=280, seed=11)


@pytest.fixture(scope="session")
def mult12_library():
    return build_multiplier_library(12, size=90, seed=13)


@pytest.fixture(scope="session")
def mult16_library():
    return build_multiplier_library(16, size=80, seed=17)


@pytest.fixture(scope="session")
def adder8_library():
    return build_adder_library(8, size=150, seed=19)


@pytest.fixture(scope="session")
def adder12_library():
    return build_adder_library(12, size=110, seed=23)


@pytest.fixture(scope="session")
def adder16_library():
    return build_adder_library(16, size=110, seed=29)


# --------------------------------------------------------------------- #
# Measured data for the 8x8 multiplier library (Fig. 1)
# --------------------------------------------------------------------- #
@pytest.fixture(scope="session")
def mult8_measurements(mult8_library, fpga_synth, asic_synth):
    """(errors, asic reports, fpga reports) for every 8x8 multiplier."""
    evaluator = ErrorEvaluator(mult8_library.reference())
    errors = [evaluator.evaluate(circuit).med for circuit in mult8_library]
    asic_reports = [asic_synth.synthesize(circuit) for circuit in mult8_library]
    fpga_reports = [fpga_synth.synthesize(circuit) for circuit in mult8_library]
    return np.array(errors), asic_reports, fpga_reports


# --------------------------------------------------------------------- #
# The main ApproxFPGAs flow result on the 8x8 multiplier library
# (Fig. 5, Table II, Fig. 7, Fig. 8 column, exploration accounting)
# --------------------------------------------------------------------- #
def _flow_config(**overrides) -> ApproxFpgasConfig:
    base = dict(
        training_fraction=0.12,
        min_training_circuits=14,
        validation_fraction=0.25,
        num_pseudo_fronts=2,
        top_k_models=2,
        seed=42,
        evaluate_coverage=True,
    )
    base.update(overrides)
    return ApproxFpgasConfig(**base)


@pytest.fixture(scope="session")
def flow_config_factory():
    return _flow_config


@pytest.fixture(scope="session")
def mult8_flow_result(mult8_library):
    return ApproxFpgasFlow(mult8_library, config=_flow_config()).run()


# --------------------------------------------------------------------- #
# AutoAx-FPGA components (Fig. 9): 9 multipliers + 8 adders, as in the paper
# --------------------------------------------------------------------- #
@pytest.fixture(scope="session")
def autoax_components(fpga_synth):
    multiplier_library = build_multiplier_library(8, size=60, seed=31)
    adder_library = build_adder_library(16, size=40, seed=37)
    multipliers = components_from_library(
        multiplier_library, 9, fpga_synthesizer=fpga_synth, max_error=0.05
    )
    adders = components_from_library(
        adder_library, 8, fpga_synthesizer=fpga_synth, max_error=0.02
    )
    return multipliers, adders
