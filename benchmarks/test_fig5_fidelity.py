"""Fig. 5 -- Fidelity of the 18 S/ML models for the three FPGA parameters.

The benchmark prints the full fidelity matrix (model x parameter) measured on
the validation split of the synthesized subset, i.e. the data behind Fig. 5.
"""

from __future__ import annotations

from repro.ml import MODEL_DESCRIPTIONS, MODEL_IDS


def test_fig5_fidelity_of_all_models(benchmark, mult8_flow_result):
    def table():
        return mult8_flow_result.fidelity_table()

    fidelity_table = benchmark.pedantic(table, rounds=1, iterations=1)

    print("\n=== Fig. 5: fidelity of the S/ML models (8x8 multipliers, validation split) ===")
    print(f"{'model':<6}{'description':<38}{'latency':>9}{'power':>9}{'area':>9}")
    for model_id in MODEL_IDS:
        row = [fidelity_table[parameter].get(model_id, float('nan')) for parameter in ("latency", "power", "area")]
        print(
            f"{model_id:<6}{MODEL_DESCRIPTIONS[model_id]:<38}"
            f"{row[0]:>9.2f}{row[1]:>9.2f}{row[2]:>9.2f}"
        )

    # Structural checks: every model evaluated on every parameter, fidelities valid.
    for parameter in ("latency", "power", "area"):
        assert set(fidelity_table[parameter]) == set(MODEL_IDS)
        for value in fidelity_table[parameter].values():
            assert 0.0 <= value <= 1.0

    # Paper claims (qualitatively): the best models reach high fidelity
    # (~85-90% in the paper), and tree-based methods are above average.
    for parameter in ("latency", "power", "area"):
        values = fidelity_table[parameter]
        best = max(values.values())
        average = sum(values.values()) / len(values)
        assert best >= 0.7, f"best fidelity for {parameter} unexpectedly low: {best:.2f}"
        tree_based = (values["ML5"] + values["ML18"]) / 2
        assert tree_based >= average - 0.1, "tree-based models should be near or above average"
