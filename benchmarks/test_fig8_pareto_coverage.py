"""Fig. 8 -- Final Pareto-optimal FPGA-ACs across four libraries.

The paper runs the full methodology on the 8- and 16-bit adder libraries and
the 8x8 and 16x16 multiplier libraries, reporting that ~10x less synthesis
recovers on average ~71% of the true Pareto-optimal designs.  The benchmark
runs the full flow (with the oracle coverage evaluation) on the same four
libraries and prints coverage and speedup per library and parameter.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ApproxFpgasFlow


@pytest.fixture(scope="module")
def fig8_results(flow_config_factory, adder8_library, adder16_library, mult8_flow_result, mult16_library):
    config = flow_config_factory(model_ids=["ML2", "ML4", "ML5", "ML10", "ML11", "ML14", "ML18"])
    results = {
        "adders_8bit": ApproxFpgasFlow(adder8_library, config=config).run(),
        "adders_16bit": ApproxFpgasFlow(adder16_library, config=config).run(),
        "multipliers_8x8": mult8_flow_result,
        "multipliers_16x16": ApproxFpgasFlow(mult16_library, config=config).run(),
    }
    return results


def test_fig8_pareto_coverage_and_speedup(benchmark, fig8_results):
    def summarise():
        rows = []
        for name, result in fig8_results.items():
            coverages = [
                outcome.coverage for outcome in result.parameter_outcomes.values()
            ]
            rows.append(
                {
                    "library": name,
                    "circuits": len(result.records),
                    "synthesized_by_flow": int(
                        round(
                            (result.exploration_cost.training_time_s + result.exploration_cost.resynthesis_time_s)
                            / max(result.exploration_cost.exhaustive_time_s, 1e-9)
                            * len(result.records)
                        )
                    ),
                    "coverage_latency": result.parameter_outcomes["latency"].coverage,
                    "coverage_power": result.parameter_outcomes["power"].coverage,
                    "coverage_area": result.parameter_outcomes["area"].coverage,
                    "mean_coverage": float(np.mean(coverages)),
                    "speedup": result.exploration_cost.speedup,
                }
            )
        return rows

    rows = benchmark.pedantic(summarise, rounds=1, iterations=1)

    print("\n=== Fig. 8: Pareto-optimal FPGA-ACs recovered by the methodology ===")
    print(
        f"{'library':<20}{'circuits':>9}{'~synth':>8}{'cov lat':>9}{'cov pwr':>9}"
        f"{'cov area':>10}{'mean cov':>10}{'speedup':>9}"
    )
    for row in rows:
        print(
            f"{row['library']:<20}{row['circuits']:>9}{row['synthesized_by_flow']:>8}"
            f"{row['coverage_latency']:>9.2f}{row['coverage_power']:>9.2f}"
            f"{row['coverage_area']:>10.2f}{row['mean_coverage']:>10.2f}{row['speedup']:>9.2f}"
        )
    overall_coverage = float(np.mean([row["mean_coverage"] for row in rows]))
    print(f"average Pareto coverage over the four libraries: {overall_coverage:.2f} (paper: ~0.71)")

    # Qualitative claims of Fig. 8.
    for row in rows:
        assert row["speedup"] > 1.05, "the flow must be cheaper than exhaustive synthesis"
        assert row["mean_coverage"] >= 0.4, f"coverage collapsed for {row['library']}"
    assert overall_coverage >= 0.55, "average coverage should be in the ballpark of the paper's 71%"
