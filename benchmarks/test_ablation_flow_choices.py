"""Ablations of the methodology's design choices (DESIGN.md section "Design choices").

Two ablations on the 8x8 multiplier library:

* training-subset fraction (5% / 12% / 25%): more synthesized training data
  costs exploration time but buys estimator fidelity / coverage;
* feature set for the estimators: ASIC-metrics-only vs structural-only vs the
  combined default feature vector.
"""

from __future__ import annotations

import numpy as np

from repro.core import ApproxFpgasConfig, ApproxFpgasFlow, fidelity
from repro.features import ASIC_FEATURE_NAMES, STRUCTURAL_FEATURE_NAMES, feature_matrix
from repro.ml import BayesianRidgeRegression, ScaledRegressor, train_test_split


def test_ablation_training_fraction(benchmark, mult8_library):
    def study():
        rows = []
        for fraction in (0.05, 0.12, 0.25):
            config = ApproxFpgasConfig(
                training_fraction=fraction,
                min_training_circuits=10,
                num_pseudo_fronts=2,
                top_k_models=2,
                model_ids=["ML4", "ML11", "ML14"],
                seed=7,
                evaluate_coverage=True,
            )
            result = ApproxFpgasFlow(mult8_library, config=config).run()
            coverage = float(
                np.mean([outcome.coverage for outcome in result.parameter_outcomes.values()])
            )
            rows.append((fraction, coverage, result.exploration_cost.speedup))
        return rows

    rows = benchmark.pedantic(study, rounds=1, iterations=1)

    print("\n=== Ablation: training-subset fraction (8x8 multipliers) ===")
    print(f"{'fraction':>10}{'mean coverage':>16}{'speedup':>10}")
    for fraction, coverage, speedup in rows:
        print(f"{fraction:>10.2f}{coverage:>16.2f}{speedup:>10.2f}")

    # A larger synthesized subset cannot make exploration (much) faster; a small
    # tolerance absorbs differences between the runs' candidate sets.
    speedups = [speedup for _, _, speedup in rows]
    assert speedups[0] >= speedups[-1] - 0.05
    # All fractions should still recover a sizeable part of the front.
    assert all(coverage >= 0.35 for _, coverage, _ in rows)


def test_ablation_feature_sets(benchmark, mult8_measurements, mult8_library, asic_synth):
    errors, asic_reports, fpga_reports = mult8_measurements
    circuits = list(mult8_library)
    X, names = feature_matrix(circuits, asic_reports=asic_reports)
    y = np.array([report.latency_ns for report in fpga_reports])

    structural_idx = [names.index(name) for name in STRUCTURAL_FEATURE_NAMES]
    asic_idx = [names.index(name) for name in ASIC_FEATURE_NAMES]

    def study():
        results = {}
        for label, columns in (
            ("asic_only", asic_idx),
            ("structural_only", structural_idx),
            ("combined", list(range(X.shape[1]))),
        ):
            X_train, X_test, y_train, y_test = train_test_split(
                X[:, columns], y, test_size=0.3, random_state=5
            )
            model = ScaledRegressor(BayesianRidgeRegression())
            model.fit(X_train, y_train)
            results[label] = fidelity(y_test, model.predict(X_test))
        return results

    results = benchmark.pedantic(study, rounds=1, iterations=1)

    print("\n=== Ablation: feature set for the latency estimator (Bayesian Ridge) ===")
    for label, value in results.items():
        print(f"{label:<18}{value:>8.2f}")

    assert results["combined"] >= results["asic_only"] - 0.1
    assert all(0.0 <= value <= 1.0 for value in results.values())
