#!/usr/bin/env python3
"""Explore an approximate-multiplier library with both synthesis substrates.

This example reproduces the paper's motivational analysis (Fig. 1) in
miniature: every circuit of an 8x8 multiplier library is evaluated for error
(MED), synthesized for ASIC and for FPGA, and the two Pareto fronts are
compared.  It also exports the Verilog of a few Pareto-optimal circuits, the
way the released FPGA-AC library ships RTL.

Run with:  python examples/explore_multiplier_library.py
"""

from __future__ import annotations

import numpy as np

from repro.asic import AsicSynthesizer
from repro.circuits import to_verilog
from repro.core import pareto_front_indices
from repro.error import ErrorEvaluator
from repro.fpga import FpgaSynthesizer
from repro.generators import build_multiplier_library


def main() -> None:
    library = build_multiplier_library(8, size=150, seed=3)
    evaluator = ErrorEvaluator(library.reference())
    asic = AsicSynthesizer()
    fpga = FpgaSynthesizer()

    print(f"Evaluating {len(library)} approximate 8x8 multipliers ...")
    errors, asic_area, fpga_luts, fpga_latency = [], [], [], []
    for circuit in library:
        errors.append(evaluator.evaluate(circuit).med)
        asic_area.append(asic.synthesize(circuit).area_um2)
        report = fpga.synthesize(circuit)
        fpga_luts.append(report.luts)
        fpga_latency.append(report.latency_ns)

    errors = np.array(errors)
    asic_front = set(pareto_front_indices(np.column_stack([errors, asic_area])))
    fpga_front = set(pareto_front_indices(np.column_stack([errors, fpga_luts])))

    print(f"\nASIC Pareto front : {len(asic_front)} circuits")
    print(f"FPGA Pareto front : {len(fpga_front)} circuits")
    print(f"on both fronts    : {len(asic_front & fpga_front)} circuits")
    print("-> an AC that is Pareto-optimal for ASICs is not necessarily Pareto-optimal for FPGAs")

    print("\nFPGA Pareto-optimal circuits (error vs LUTs):")
    names = library.names()
    for index in sorted(fpga_front, key=lambda i: errors[i])[:10]:
        print(
            f"  {names[index]:<32} MED={errors[index]:.4f}  LUTs={fpga_luts[index]:>4}"
            f"  latency={fpga_latency[index]:.2f} ns"
        )

    # Export the RTL of the three lowest-error FPGA-Pareto circuits.
    chosen = sorted(fpga_front, key=lambda i: errors[i])[:3]
    for index in chosen:
        path = f"fpga_ac_{names[index]}.v"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(to_verilog(library[index]))
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
