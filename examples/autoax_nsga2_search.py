#!/usr/bin/env python3
"""Population-based NSGA-II search over the Gaussian-filter design space.

The same AutoAx-FPGA case study as ``autoax_gaussian_filter.py``, but the
per-scenario search is the population-based ``"nsga2"`` strategy from the
:mod:`repro.search` subsystem: whole generations are scored through the
estimators in one batched call (vectorised feature gather + one regressor
``predict``), the global front accumulates in a shared
:class:`repro.search.ParetoArchive`, and the surviving candidates are
re-evaluated exactly as one generation batch through the session's
:meth:`repro.engine.BatchEvaluator.evaluate_configurations`.

The script runs hill climbing and NSGA-II on the identical seeded scenario
and prints a wall-clock + hypervolume comparison (the benchmark version
with asserted floors lives in ``benchmarks/test_search_throughput.py``).

Run with:  python examples/autoax_nsga2_search.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.api import ExplorationSession
from repro.autoax import AutoAxConfig, components_from_library
from repro.core import hypervolume_2d
from repro.generators import build_adder_library, build_multiplier_library


def front_points(result, parameter: str) -> np.ndarray:
    scenario = result.scenarios[parameter]
    return np.array(
        [[entry.cost[parameter], 1.0 - entry.quality] for entry in scenario.candidates]
    )


def main() -> None:
    print("Building component libraries ...")
    multipliers = components_from_library(
        build_multiplier_library(8, size=60, seed=31), 9, max_error=0.05
    )
    adders = components_from_library(
        build_adder_library(16, size=40, seed=37), 8, max_error=0.02
    )

    results = {}
    for strategy in ("hill_climb", "nsga2"):
        config = AutoAxConfig(
            parameters=("area",),
            num_training_samples=60,
            num_random_baseline=60,
            hill_climb_iterations=800,     # the shared surrogate budget
            image_size=48,
            seed=17,
            search_strategy=strategy,      # a repro.autoax.SEARCH_STRATEGIES key
        )
        session = ExplorationSession(seed=config.seed)
        print(f"\nRunning AutoAx-FPGA with search_strategy={strategy!r} ...")
        started = time.perf_counter()
        result = session.run_autoax(multipliers, adders, config)
        elapsed = time.perf_counter() - started
        results[strategy] = (result, elapsed)
        scenario = result.scenarios["area"]
        print(f"  {elapsed:.2f} s, {scenario.num_candidates} candidates, "
              f"{len(scenario.front)} on the exact Pareto front")

    combined = np.vstack([front_points(results[s][0], "area") for s in results])
    reference = combined.max(axis=0) * 1.05 + 1e-9
    print("\n=== hill climb vs NSGA-II (area scenario, equal budget) ===")
    for strategy, (result, elapsed) in results.items():
        volume = hypervolume_2d(front_points(result, "area"), reference)
        comparison = result.hypervolume_comparison("area")
        print(f"{strategy:<12} {elapsed:>7.2f} s   hypervolume {volume:>12.2f}   "
              f"(vs random baseline: {comparison['autoax']:.2f} / {comparison['random']:.2f})")

    best = results["nsga2"][0].scenarios["area"].front
    print("\nNSGA-II exact front (area vs SSIM):")
    for entry in sorted(best, key=lambda e: e.cost["area"]):
        print(f"  area {entry.cost['area']:>7.1f} LUTs   SSIM {entry.quality:.4f}   "
              f"multipliers {entry.config.multiplier_indices} adders {entry.config.adder_indices}")


if __name__ == "__main__":
    main()
