#!/usr/bin/env python3
"""AutoAx-FPGA case study: approximate Gaussian-filter accelerator.

Nine Pareto-optimal approximate 8x8 multipliers and eight approximate 16-bit
adders (as in the paper) are fed to the AutoAx-FPGA flow, which searches the
~1e14-configuration design space with estimator-driven hill climbing and
compares the result against random search.  The flow runs as a staged
pipeline inside an :class:`repro.api.ExplorationSession`: the accelerator is
resolved from the :data:`repro.workloads.WORKLOADS` registry (``"gaussian"``
here -- ``"sobel"`` and ``"sharpen"`` ship alongside it, see
``autoax_sobel_search.py``), exact evaluations are shared between scenarios
through the session cache, and the search strategy is picked from the
:data:`repro.autoax.SEARCH_STRATEGIES` registry (``"hill_climb"`` here; try
``"random_archive"`` for the mutation-free ablation).

Run with:  python examples/autoax_gaussian_filter.py

Back-compat note: the legacy entry point is still supported and produces
bit-identical seeded results --

    from repro.autoax import AutoAxConfig, AutoAxFpgaFlow
    result = AutoAxFpgaFlow(multipliers, adders, config=config).run()
"""

from __future__ import annotations

from repro.api import ExplorationSession
from repro.autoax import AutoAxConfig, components_from_library
from repro.generators import build_adder_library, build_multiplier_library


def main() -> None:
    print("Building component libraries ...")
    multiplier_library = build_multiplier_library(8, size=60, seed=31)
    adder_library = build_adder_library(16, size=40, seed=37)
    multipliers = components_from_library(multiplier_library, 9, max_error=0.05)
    adders = components_from_library(adder_library, 8, max_error=0.02)
    print(f"  multipliers: {[c.name for c in multipliers]}")
    print(f"  adders     : {[c.name for c in adders]}")

    config = AutoAxConfig(
        parameters=("latency", "power", "area"),
        num_training_samples=60,
        num_random_baseline=60,
        hill_climb_iterations=250,
        image_size=48,
        seed=17,
        search_strategy="hill_climb",   # a repro.autoax.SEARCH_STRATEGIES key
        workload="gaussian",            # a repro.workloads.WORKLOADS key
    )
    session = ExplorationSession(seed=config.seed)

    print("\nRunning AutoAx-FPGA (QoR estimator + hill climbing per FPGA parameter) ...")

    def report(event) -> None:
        if event.status != "started":
            print(f"  [{event.index + 1}/{event.total}] {event.stage:<20} "
                  f"{event.status} ({event.elapsed_s:.2f} s)")

    result = session.run_autoax(multipliers, adders, config, progress=report)

    print(f"\ndesign space: {result.design_space_size:.2e} configurations")
    print(f"exactly evaluated: {result.training_size} training + "
          f"{sum(s.num_candidates for s in result.scenarios.values())} candidates")

    for parameter, scenario in result.scenarios.items():
        comparison = result.hypervolume_comparison(parameter)
        winner = "AutoAx-FPGA" if comparison["autoax"] >= comparison["random"] else "random search"
        print(f"\n--- scenario: SSIM vs {parameter} ---")
        print(f"  hypervolume AutoAx-FPGA = {comparison['autoax']:.4f}, "
              f"random = {comparison['random']:.4f}  ->  {winner} wins")
        print("  Pareto-front configurations (cost, SSIM):")
        for entry in sorted(scenario.front, key=lambda e: e.cost[parameter])[:6]:
            print(f"    {parameter}={entry.cost[parameter]:8.2f}   SSIM={entry.quality:.4f}")

    stats = session.stats()
    print(f"\nShared evaluation cache: {stats.lookups} lookups, "
          f"{stats.hit_rate:.0%} served from cache")


if __name__ == "__main__":
    main()
