#!/usr/bin/env python3
"""Quickstart: run the ApproxFPGAs methodology on a small multiplier library.

The script builds a library of 8x8 approximate multipliers and drives the
full ML-driven exploration flow (synthesize a subset, train the Table I
models, build pseudo-Pareto fronts, re-synthesize the candidates) through an
:class:`repro.api.ExplorationSession` -- the public stage-pipeline API that
owns the shared evaluation cache, reports per-stage progress and, when a
``workspace`` directory is passed, checkpoints every stage so an interrupted
run resumes where it left off.

Run with:  python examples/quickstart.py

Back-compat note: the legacy entry points are still supported and produce
bit-identical seeded results --

    from repro.core import ApproxFpgasConfig, ApproxFpgasFlow
    result = ApproxFpgasFlow(library, config=config).run()
"""

from __future__ import annotations

from repro.api import ExplorationSession
from repro.core import ApproxFpgasConfig
from repro.generators import build_multiplier_library


def main() -> None:
    print("Building a library of 8x8 approximate multipliers ...")
    library = build_multiplier_library(8, size=120, seed=7)
    print(f"  {len(library)} circuits, families: {library.families()}")

    config = ApproxFpgasConfig(
        training_fraction=0.15,     # fraction of the library synthesized for training
        num_pseudo_fronts=3,        # successive pseudo-Pareto fronts per model
        top_k_models=3,             # models whose fronts are unioned
        model_ids=["ML2", "ML4", "ML5", "ML10", "ML11", "ML14", "ML18"],
        seed=42,
        evaluate_coverage=True,     # also synthesize everything to measure coverage
    )

    # One session owns the evaluation cache, the synthesizers and the RNG
    # seeding; pass workspace="runs/quickstart" to checkpoint every stage
    # and make the run resumable.
    session = ExplorationSession(seed=config.seed)

    print("Running the ApproxFPGAs flow (staged pipeline) ...")

    def report(event) -> None:
        if event.status != "started":
            print(f"  [{event.index + 1}/{event.total}] {event.stage:<28} "
                  f"{event.status} ({event.elapsed_s:.2f} s)")

    result = session.run_approxfpgas(library, config, progress=report)

    print("\nTop models per FPGA parameter (validation fidelity):")
    for parameter in ("latency", "power", "area"):
        top = ", ".join(f"{m} ({f:.2f})" for m, f in result.top_models(parameter))
        print(f"  {parameter:<8}: {top}")

    cost = result.exploration_cost
    print("\nExploration-time accounting (modeled synthesis time):")
    print(f"  exhaustive exploration : {cost.exhaustive_time_s / 3600:.1f} h")
    print(f"  ApproxFPGAs flow       : {cost.approxfpgas_time_s / 3600:.1f} h")
    print(f"  speedup                : {cost.speedup:.2f}x")

    print("\nPareto-optimal FPGA-ACs (error vs #LUTs):")
    outcome = result.parameter_outcomes["area"]
    for name in outcome.final_front_names[:12]:
        record = result.records[name]
        print(
            f"  {name:<32} MED={record.error.med:.4f}  LUTs={record.fpga.luts:>4}"
            f"  latency={record.fpga.latency_ns:.2f} ns  power={record.fpga.total_power_mw:.2f} mW"
        )
    print(f"\nCoverage of the true Pareto front: "
          + ", ".join(f"{p}={o.coverage:.0%}" for p, o in result.parameter_outcomes.items()))

    stats = session.stats()
    print(f"\nShared evaluation cache: {stats.lookups} lookups, "
          f"{stats.hit_rate:.0%} served from cache")


if __name__ == "__main__":
    main()
