#!/usr/bin/env python3
"""Exploration as a service: two tenants, one shared sharded cache.

Two tenants submit the *identical* AutoAx study to one service root.  A
worker runs tenant alice's job cold, paying for every exact evaluation;
a **fresh** worker (empty in-memory cache) then runs tenant bob's job and
finishes several times faster, because every evaluation is served from
the shared content-addressed :class:`repro.io.ShardedJsonStore` -- the
paper's "estimate once, reuse everywhere" amortisation argument lifted to
a multi-tenant job service.  Both payloads are bit-identical (equal
content digests).

The same root also demonstrates fault tolerance: job state lives in
atomic JSON records, workers own jobs through heartbeated lease files,
and a job whose worker dies is reclaimed and resumed from its last
checkpoint (see ``pytest -m service`` and
``benchmarks/test_service_throughput.py``).

Run with:  python examples/autoax_service_jobs.py

Long-running deployments run workers as processes instead:

    python -m repro.service.worker --root runs/service
"""

from __future__ import annotations

import tempfile

from repro.service import JobClient, JobRegistry, Worker

STUDY = {
    "workload": "gaussian",
    "search_strategy": "hill_climb",
    "parameters": ["area"],
    "num_training_samples": 14,
    "num_random_baseline": 10,
    "hill_climb_iterations": 60,
    "image_size": 32,
    "multiplier_bits": 8,
    "multiplier_library_size": 30,
    "num_multipliers": 6,
    "adder_bits": 16,
    "adder_library_size": 22,
    "num_adders": 5,
}


def main() -> None:
    root = tempfile.mkdtemp(prefix="repro-service-")
    print(f"Service root: {root}")
    registry = JobRegistry(root)

    print("\nSubmitting the identical study for tenants alice and bob ...")
    alice = JobClient(registry, tenant="alice")
    bob = JobClient(registry, tenant="bob")
    alice.submit("autoax", STUDY)
    job_bob = bob.submit("autoax", STUDY)
    for record in alice.jobs():
        print(f"  {record.job_id}  [{record.spec.tenant}]  {record.state}")

    print("\nWorker 1 runs alice's job cold ...")
    cold = Worker(registry).run_once()
    print(
        f"  {cold.job_id}: {cold.state} in {cold.elapsed_s:.2f}s, "
        f"cache hit rate {cold.cache['hit_rate']:.0%} "
        f"({cold.cache['misses']} evaluations paid)"
    )

    print("\nA fresh Worker 2 runs bob's job on the shared warm store ...")
    warm = Worker(registry).run_once()
    print(
        f"  {warm.job_id}: {warm.state} in {warm.elapsed_s:.2f}s, "
        f"cache hit rate {warm.cache['hit_rate']:.0%}"
    )

    speedup = cold.elapsed_s / warm.elapsed_s
    print(f"\nCross-tenant amortisation: bob's identical job ran {speedup:.1f}x faster.")
    print(f"  alice's digest: {cold.digest}")
    print(f"  bob's digest  : {warm.digest}")
    assert cold.digest == warm.digest, "identical jobs must produce identical payloads"
    print("  identical payloads, computed once.")

    front = bob.result(job_bob)["scenarios"]["area"]["front"]
    print(f"\nbob's Pareto front ({len(front)} configurations):")
    for entry in front[:5]:
        print(
            f"  quality {entry['quality']:.4f}  area {entry['cost']['area']:8.1f}  "
            f"muls {entry['multipliers']}  adds {entry['adders']}"
        )


if __name__ == "__main__":
    main()
