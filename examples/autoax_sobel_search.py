#!/usr/bin/env python3
"""NSGA-II component selection for a Sobel edge-detection accelerator.

The same AutoAx-FPGA machinery as ``autoax_gaussian_filter.py``, but on a
*different workload* from the :data:`repro.workloads.WORKLOADS` registry:
the ``"sobel"`` accelerator computes the 3x3 Sobel gradient magnitude
through twelve approximate multipliers and eight approximate adders, and
judges quality with the gradient-magnitude-similarity metric (``"gms"``)
instead of the Gaussian case study's SSIM.  The per-scenario search is the
population-based ``"nsga2"`` strategy; the surviving candidates are
re-evaluated exactly as generation batches through the session's engine,
under cache keys namespaced by workload (a Gaussian study in the same
session would share the components' circuit-level evaluations but never
the accelerator entries).

Run with:  python examples/autoax_sobel_search.py
"""

from __future__ import annotations

from repro.api import ExplorationSession
from repro.autoax import AutoAxConfig, components_from_library
from repro.generators import build_adder_library, build_multiplier_library
from repro.workloads import WORKLOADS, build_workload


def main() -> None:
    print("Building component libraries ...")
    multipliers = components_from_library(
        build_multiplier_library(8, size=60, seed=31), 9, max_error=0.05
    )
    adders = components_from_library(
        build_adder_library(16, size=40, seed=37), 8, max_error=0.02
    )

    workload = build_workload("sobel", multipliers, adders)
    print(f"registered workloads: {WORKLOADS.keys()}")
    print(f"sobel slots: {workload.slots()}")
    print(f"sobel design space: {workload.design_space_size:.2e} configurations")

    config = AutoAxConfig(
        parameters=("area", "power"),
        num_training_samples=60,
        num_random_baseline=60,
        hill_climb_iterations=600,     # the surrogate budget per scenario
        image_size=48,
        seed=17,
        search_strategy="nsga2",       # a repro.autoax.SEARCH_STRATEGIES key
        workload="sobel",              # a repro.workloads.WORKLOADS key
    )
    session = ExplorationSession(seed=config.seed)

    print("\nRunning AutoAx-FPGA on the Sobel workload (NSGA-II per scenario) ...")

    def report(event) -> None:
        if event.status != "started":
            print(f"  [{event.index + 1}/{event.total}] {event.stage:<20} "
                  f"{event.status} ({event.elapsed_s:.2f} s)")

    result = session.run_autoax(multipliers, adders, config, progress=report)

    for parameter, scenario in result.scenarios.items():
        comparison = result.hypervolume_comparison(parameter)
        winner = "AutoAx-FPGA" if comparison["autoax"] >= comparison["random"] else "random search"
        print(f"\n--- scenario: gradient similarity vs {parameter} ---")
        print(f"  hypervolume AutoAx-FPGA = {comparison['autoax']:.4f}, "
              f"random = {comparison['random']:.4f}  ->  {winner} wins")
        print("  exact Pareto-front configurations (cost, GMS):")
        for entry in sorted(scenario.front, key=lambda e: e.cost[parameter])[:6]:
            print(f"    {parameter}={entry.cost[parameter]:8.2f}   GMS={entry.quality:.4f}")

    stats = session.stats()
    print(f"\nShared evaluation cache: {stats.lookups} lookups, "
          f"{stats.hit_rate:.0%} served from cache")


if __name__ == "__main__":
    main()
