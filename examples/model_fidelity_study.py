#!/usr/bin/env python3
"""Fidelity study of the 18 S/ML models (the data behind Fig. 5 / Table II).

The script synthesizes a training subset of an approximate-adder library,
trains every Table I model for each FPGA parameter and prints the fidelity
matrix, so you can see which estimators preserve the circuit ordering best.

Run with:  python examples/model_fidelity_study.py
"""

from __future__ import annotations

import numpy as np

from repro.asic import AsicSynthesizer
from repro.core import fidelity
from repro.features import feature_matrix
from repro.fpga import FPGA_PARAMETERS, FpgaSynthesizer
from repro.generators import build_adder_library
from repro.ml import MODEL_DESCRIPTIONS, MODEL_IDS, build_model, train_test_split


def main() -> None:
    library = build_adder_library(12, size=90, seed=5)
    asic = AsicSynthesizer()
    fpga = FpgaSynthesizer()

    circuits = list(library)
    print(f"Synthesizing {len(circuits)} approximate 12-bit adders ...")
    asic_reports = [asic.synthesize(circuit) for circuit in circuits]
    fpga_reports = [fpga.synthesize(circuit) for circuit in circuits]
    X, feature_names = feature_matrix(circuits, asic_reports=asic_reports)

    print("\nFidelity on a held-out validation split:")
    print(f"{'model':<6}{'description':<38}" + "".join(f"{p:>10}" for p in FPGA_PARAMETERS))
    for model_id in MODEL_IDS:
        row = []
        for parameter in FPGA_PARAMETERS:
            y = np.array([report.parameter(parameter) for report in fpga_reports])
            X_train, X_val, y_train, y_val = train_test_split(X, y, test_size=0.25, random_state=11)
            model = build_model(model_id, feature_names, random_state=0)
            model.fit(X_train, y_train)
            row.append(fidelity(y_val, model.predict(X_val)))
        print(f"{model_id:<6}{MODEL_DESCRIPTIONS[model_id]:<38}" + "".join(f"{v:>10.2f}" for v in row))

    print("\nHigher is better; 1.0 means the estimator orders every pair of circuits correctly.")


if __name__ == "__main__":
    main()
