"""Setup shim for environments without wheel/PEP-517 editable support."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.6.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.20", "scipy>=1.7"],
    extras_require={
        # `pip install -e .[test]` + `python -m pytest -x -q` runs the suite
        # (pytest.ini supplies pythonpath/testpaths for non-installed use).
        "test": [
            "pytest>=7.0",
            "pytest-benchmark>=4.0",
            "pytest-cov>=4.0",
            "hypothesis>=6.0",
        ],
    },
)
