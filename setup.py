"""Setup shim for environments without wheel/PEP-517 editable support."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.20", "scipy>=1.7"],
)
