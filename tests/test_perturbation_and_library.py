"""Tests of the perturbation engine and the circuit-library builders."""

import numpy as np
import pytest

from repro.generators import (
    CircuitLibrary,
    PerturbationConfig,
    array_multiplier,
    build_adder_library,
    build_library,
    build_multiplier_library,
    default_library_plan,
    perturb_netlist,
    perturbation_sweep,
    ripple_carry_adder,
)


def test_perturbation_preserves_interface():
    base = ripple_carry_adder(8)
    mutated = perturb_netlist(base, seed=1)
    mutated.validate()
    assert mutated.input_words == base.input_words
    assert mutated.num_outputs == base.num_outputs


def test_perturbation_is_deterministic_per_seed():
    base = array_multiplier(4)
    first = perturb_netlist(base, seed=42)
    second = perturb_netlist(base, seed=42)
    assert first.gates == second.gates
    assert first.output_bits == second.output_bits


def test_perturbation_changes_something():
    base = array_multiplier(4)
    mutated = perturb_netlist(base, seed=7, config=PerturbationConfig(num_mutations=6))
    assert mutated.gates != base.gates or mutated.output_bits != base.output_bits


def test_perturbation_meta_records_provenance():
    base = ripple_carry_adder(4)
    mutated = perturb_netlist(base, seed=9)
    assert mutated.meta["exact"] is False
    assert mutated.meta["perturbation_seed"] == 9


def test_perturbation_sweep_counts_and_unique_names():
    base = array_multiplier(4)
    variants = perturbation_sweep(base, count=20, seed=3)
    assert len(variants) == 20
    assert len({v.name for v in variants}) == 20


def test_perturbation_sweep_rejects_negative_count():
    with pytest.raises(ValueError):
        perturbation_sweep(ripple_carry_adder(4), count=-1, seed=0)


# --------------------------------------------------------------------- #
def test_adder_library_size_and_uniqueness(small_adder_library):
    assert len(small_adder_library) == 50
    assert len(set(small_adder_library.names())) == 50
    assert small_adder_library.kind == "adder"


def test_multiplier_library_contains_exact_circuit(small_multiplier_library):
    exact_names = [c.name for c in small_multiplier_library.exact_circuits]
    assert exact_names, "library must contain at least one exact circuit"


def test_library_lookup_and_indexing(small_multiplier_library):
    first = small_multiplier_library[0]
    assert small_multiplier_library.get(first.name) is first


def test_library_rejects_duplicate_names(small_multiplier_library):
    library = CircuitLibrary(name="dup", kind="multiplier", bitwidth=4)
    circuit = array_multiplier(4)
    library.add(circuit)
    with pytest.raises(ValueError):
        library.add(circuit.copy())


def test_random_subset_fraction(small_multiplier_library):
    subset = small_multiplier_library.random_subset(0.25, seed=1)
    assert len(subset) == round(0.25 * len(small_multiplier_library))
    assert len({c.name for c in subset}) == len(subset)
    with pytest.raises(ValueError):
        small_multiplier_library.random_subset(0.0, seed=1)


def test_library_families_counts_sum_to_size(small_multiplier_library):
    families = small_multiplier_library.families()
    assert sum(families.values()) == len(small_multiplier_library)
    assert len(families) >= 3


def test_library_reference_is_exact(small_multiplier_library, rng):
    reference = small_multiplier_library.reference()
    a = rng.integers(0, 16, 100)
    b = rng.integers(0, 16, 100)
    assert np.array_equal(reference.evaluate_words({"a": a, "b": b}), a * b)


def test_build_library_dispatch():
    assert build_library("adder", 4, size=10).kind == "adder"
    assert build_library("multiplier", 4, size=10).kind == "multiplier"
    with pytest.raises(ValueError):
        build_library("divider", 4, size=10)


def test_build_library_rejects_bad_size():
    with pytest.raises(ValueError):
        build_adder_library(8, size=0)
    with pytest.raises(ValueError):
        build_multiplier_library(8, size=0)


def test_default_library_plan_matches_paper_structure():
    plan = default_library_plan()
    kinds = [(entry["kind"], entry["width"]) for entry in plan]
    assert ("adder", 8) in kinds and ("adder", 12) in kinds and ("adder", 16) in kinds
    assert ("multiplier", 8) in kinds and ("multiplier", 12) in kinds and ("multiplier", 16) in kinds


def test_library_circuits_all_validate(small_multiplier_library):
    for circuit in small_multiplier_library:
        circuit.validate()


def test_library_error_spread(small_multiplier_library, multiplier4_evaluator):
    meds = [multiplier4_evaluator.evaluate(c).med for c in small_multiplier_library]
    assert min(meds) == 0.0
    assert max(meds) > 0.01
    assert len({round(m, 6) for m in meds}) > 5
