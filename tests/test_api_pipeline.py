"""Tests of the public API layer: registries, pipelines, sessions, resume.

The end-to-end seeded-equivalence tests between the session/pipeline path
and the legacy wrapper classes live in ``tests/test_backcompat.py``; this
module covers the API machinery itself.
"""

from __future__ import annotations

import json

import pytest

from repro.api import (
    ERROR_METRICS,
    MODELS,
    SYNTHESIZERS,
    ExplorationSession,
    FunctionStage,
    Pipeline,
    PipelineError,
    Registry,
    RegistryError,
)
from repro.autoax import SEARCH_STRATEGIES
from repro.core import ApproxFpgasConfig
from repro.io import JsonDirectoryStore, result_to_dict
from repro.ml import MODEL_IDS, ModelZooError, build_model

# --------------------------------------------------------------------- #
# Registry semantics
# --------------------------------------------------------------------- #
class TestRegistry:
    def test_register_get_and_order(self):
        registry = Registry("thing")
        registry.register("b", 2)
        registry.register("a", 1)
        assert registry.get("a") == 1
        assert registry["b"] == 2
        assert registry.keys() == ["b", "a"]  # insertion order, not sorted

    def test_register_decorator(self):
        registry = Registry("thing")

        @registry.register("fn")
        def fn():
            return 42

        assert registry.get("fn") is fn

    def test_unknown_key_lists_available(self):
        registry = Registry("widget", {"left": 1, "right": 2})
        with pytest.raises(RegistryError) as excinfo:
            registry.get("middle")
        message = str(excinfo.value)
        assert "unknown widget 'middle'" in message
        assert "left" in message and "right" in message

    def test_duplicate_registration_rejected_unless_overwrite(self):
        registry = Registry("thing", {"a": 1})
        with pytest.raises(RegistryError):
            registry.register("a", 2)
        registry.register("a", 2, overwrite=True)
        assert registry.get("a") == 2

    def test_unregister(self):
        registry = Registry("thing", {"a": 1})
        registry.unregister("a")
        assert "a" not in registry
        with pytest.raises(RegistryError):
            registry.unregister("a")

    def test_sequence_compatibility(self):
        registry = Registry("thing", {"a": 1, "b": 2})
        assert list(registry) == ["a", "b"]
        assert len(registry) == 2
        assert registry == ("a", "b")
        assert registry == ["a", "b"]
        assert registry != ("b", "a")
        assert "a" in registry

    def test_tuple_style_indexing_and_concatenation(self):
        registry = Registry("thing", {"a": 1, "b": 2, "c": 3})
        assert registry[0] == "a"
        assert registry[-1] == "c"
        assert registry[:2] == ("a", "b")
        assert registry + ("d",) == ("a", "b", "c", "d")
        assert ["z"] + registry == ["z", "a", "b", "c"]
        assert MODEL_IDS[0] == "ML1" and MODEL_IDS[:3] == ("ML1", "ML2", "ML3")


# --------------------------------------------------------------------- #
# The built-in registries and their error paths
# --------------------------------------------------------------------- #
class TestBuiltinRegistries:
    def test_model_ids_is_the_registry(self):
        assert MODEL_IDS is MODELS
        assert tuple(MODEL_IDS) == tuple(f"ML{i}" for i in range(1, 19))

    def test_unknown_model_lists_available(self):
        with pytest.raises(ModelZooError) as excinfo:
            build_model("ML99", ["x"], random_state=0)
        assert "ML1" in str(excinfo.value)
        assert isinstance(excinfo.value, RegistryError)

    def test_custom_model_pluggable(self):
        from repro.ml import MeanRegressor

        MODELS.register("test-mean", lambda names, seed: MeanRegressor())
        try:
            model = build_model("test-mean", ["x"])
            assert isinstance(model, MeanRegressor)
        finally:
            MODELS.unregister("test-mean")

    def test_error_metric_keys_cover_metrics_fields(self):
        assert set(ERROR_METRICS.keys()) == {
            "med", "mae", "wce", "wce_relative", "mre", "error_probability", "mse",
        }
        with pytest.raises(RegistryError) as excinfo:
            ERROR_METRICS.get("nope")
        assert "med" in str(excinfo.value)

    def test_unknown_error_metric_rejected_by_config(self):
        with pytest.raises(ValueError) as excinfo:
            ApproxFpgasConfig(error_metric="typo")
        assert "med" in str(excinfo.value)

    def test_unknown_search_strategy_rejected_by_config(self):
        from repro.autoax import AutoAxConfig

        with pytest.raises(ValueError) as excinfo:
            AutoAxConfig(search_strategy="simulated-annealing")
        assert "hill_climb" in str(excinfo.value)
        assert "hill_climb" in SEARCH_STRATEGIES and "random_archive" in SEARCH_STRATEGIES

    def test_unknown_synthesizer_rejected_by_session(self):
        with pytest.raises(RegistryError) as excinfo:
            ExplorationSession(fpga_synthesizer="quantum")
        assert "fpga" in str(excinfo.value)

    def test_config_validates_min_training_circuits(self):
        with pytest.raises(ValueError):
            ApproxFpgasConfig(min_training_circuits=1)
        assert ApproxFpgasConfig(min_training_circuits=2).min_training_circuits == 2


# --------------------------------------------------------------------- #
# Pipeline machinery on synthetic stages
# --------------------------------------------------------------------- #
def _counter_stage(name, calls, checkpoint=True):
    """A stage that appends to ``calls`` on compute and sums into the state."""

    def compute(state):
        calls.append(name)
        return {"value": state["base"] + len(name)}

    def absorb(state, payload):
        state[name] = payload["value"]

    return FunctionStage(name, compute, absorb, checkpoint=checkpoint)


class TestPipeline:
    def test_duplicate_stage_names_rejected(self):
        calls = []
        with pytest.raises(PipelineError):
            Pipeline([_counter_stage("a", calls), _counter_stage("a", calls)])

    def test_runs_stages_in_order_with_timings(self):
        calls = []
        pipeline = Pipeline([_counter_stage("a", calls), _counter_stage("bb", calls)])
        run = pipeline.run({"base": 1})
        assert calls == ["a", "bb"]
        assert run.state["a"] == 2 and run.state["bb"] == 3
        assert set(run.timings()) == {"a", "bb"}
        assert run.resumed_stages == []

    def test_progress_events(self):
        events = []
        pipeline = Pipeline([_counter_stage("a", [])], progress=events.append)
        pipeline.run({"base": 0})
        assert [(e.stage, e.status) for e in events] == [("a", "started"), ("a", "completed")]

    def test_checkpoints_resume_from_store(self, tmp_path):
        store = JsonDirectoryStore(tmp_path / "artifacts")
        calls_first: list = []
        stages = [_counter_stage("a", calls_first), _counter_stage("bb", calls_first)]
        Pipeline(stages, store=store, run_id="r", token="t").run({"base": 1})
        assert calls_first == ["a", "bb"]

        calls_second: list = []
        stages = [_counter_stage("a", calls_second), _counter_stage("bb", calls_second)]
        run = Pipeline(stages, store=store, run_id="r", token="t").run({"base": 1})
        assert calls_second == []  # everything restored
        assert run.resumed_stages == ["a", "bb"]
        assert run.state["a"] == 2 and run.state["bb"] == 3

    def test_changed_token_invalidates_checkpoints(self, tmp_path):
        store = JsonDirectoryStore(tmp_path / "artifacts")
        calls: list = []
        Pipeline([_counter_stage("a", calls)], store=store, run_id="r", token="t1").run({"base": 1})
        Pipeline([_counter_stage("a", calls)], store=store, run_id="r", token="t2").run({"base": 1})
        assert calls == ["a", "a"]  # second run did not resume

    def test_resume_false_recomputes(self, tmp_path):
        store = JsonDirectoryStore(tmp_path / "artifacts")
        calls: list = []
        Pipeline([_counter_stage("a", calls)], store=store, run_id="r", token="t").run({"base": 1})
        Pipeline([_counter_stage("a", calls)], store=store, run_id="r", token="t").run(
            {"base": 1}, resume=False
        )
        assert calls == ["a", "a"]

    def test_resume_false_still_stamps_the_manifest(self, tmp_path):
        """A fresh run under a new token must not leave a stale manifest that
        would let a later run resume the old token's checkpoints."""
        store = JsonDirectoryStore(tmp_path / "artifacts")
        calls: list = []
        Pipeline([_counter_stage("a", calls)], store=store, run_id="r", token="t1").run({"base": 1})
        Pipeline([_counter_stage("a", calls)], store=store, run_id="r", token="t2").run(
            {"base": 2}, resume=False
        )
        calls.clear()
        run = Pipeline(
            [_counter_stage("a", calls)], store=store, run_id="r", token="t1"
        ).run({"base": 1})
        assert calls == ["a"]  # manifest says t2, so the t1 run cannot resume
        assert run.resumed_stages == []

    def test_non_checkpoint_stage_recomputes_on_resume(self, tmp_path):
        store = JsonDirectoryStore(tmp_path / "artifacts")
        calls: list = []
        stages = [
            _counter_stage("a", calls),
            _counter_stage("fit", calls, checkpoint=False),
            _counter_stage("bb", calls),
        ]
        Pipeline(stages, store=store, run_id="r", token="t").run({"base": 1})
        calls.clear()
        run = Pipeline(
            [
                _counter_stage("a", calls),
                _counter_stage("fit", calls, checkpoint=False),
                _counter_stage("bb", calls),
            ],
            store=store,
            run_id="r",
            token="t",
        ).run({"base": 1})
        assert calls == ["fit"]  # only the unserialisable stage re-ran
        assert run.resumed_stages == ["a", "bb"]


# --------------------------------------------------------------------- #
# Checkpoint/resume of the real ApproxFPGAs pipeline
# --------------------------------------------------------------------- #
DETERMINISTIC_COST_FIELDS = (
    "num_circuits",
    "exhaustive_time_s",
    "training_time_s",
    "resynthesis_time_s",
)


def canonical_result(result) -> str:
    """JSON dump of a flow result with the wall-clock fields removed."""
    payload = result_to_dict(result)
    payload["exploration_cost"] = {
        key: payload["exploration_cost"][key] for key in DETERMINISTIC_COST_FIELDS
    }
    for evaluation in payload["model_evaluations"]:
        evaluation.pop("train_time_s", None)
    return json.dumps(payload, sort_keys=True)


@pytest.fixture(scope="module")
def api_config():
    return ApproxFpgasConfig(
        training_fraction=0.25,
        min_training_circuits=12,
        num_pseudo_fronts=2,
        top_k_models=2,
        model_ids=["ML2", "ML14", "ML18"],
        seed=11,
        evaluate_coverage=True,
    )


class _InterruptAfter(Exception):
    pass


class TestApproxFpgasResume:
    def test_interrupted_run_resumes_identically(
        self, tmp_path, small_multiplier_library, api_config
    ):
        reference = ExplorationSession(seed=11).run_approxfpgas(
            small_multiplier_library, api_config
        )

        # Kill the run right after stage 3 of 6 completes ...
        def interrupt(event):
            if event.status == "completed" and event.stage == "fit-and-select":
                raise _InterruptAfter(event.stage)

        workspace = tmp_path / "ws"
        interrupted = ExplorationSession(seed=11, workspace=workspace)
        with pytest.raises(_InterruptAfter):
            interrupted.run_approxfpgas(
                small_multiplier_library, api_config, progress=interrupt
            )

        # ... then resume with a brand-new session over the same workspace.
        events = []
        resumed_session = ExplorationSession(seed=11, workspace=workspace)
        resumed = resumed_session.run_approxfpgas(
            small_multiplier_library, api_config, progress=events.append
        )
        restored = [event.stage for event in events if event.status == "restored"]
        assert restored == [
            "evaluate-library",
            "synthesize-training-subset",
            "fit-and-select",
        ]
        assert canonical_result(resumed) == canonical_result(reference)

    def test_completed_run_restores_every_stage(
        self, tmp_path, small_multiplier_library, api_config
    ):
        workspace = tmp_path / "ws"
        first = ExplorationSession(seed=11, workspace=workspace)
        reference = first.run_approxfpgas(small_multiplier_library, api_config)

        second = ExplorationSession(seed=11, workspace=workspace)
        rerun = second.run_approxfpgas(small_multiplier_library, api_config)
        run = second.runs[f"approxfpgas-{small_multiplier_library.name}"]
        assert run.resumed_stages == [stage.name for stage in _approxfpgas_stage_list(api_config)]
        assert canonical_result(rerun) == canonical_result(reference)

    def test_changed_config_does_not_resume(
        self, tmp_path, small_multiplier_library, api_config
    ):
        workspace = tmp_path / "ws"
        ExplorationSession(seed=11, workspace=workspace).run_approxfpgas(
            small_multiplier_library, api_config
        )
        other = ApproxFpgasConfig(
            training_fraction=0.25,
            min_training_circuits=12,
            num_pseudo_fronts=2,
            top_k_models=2,
            model_ids=["ML2", "ML14", "ML18"],
            seed=12,  # different seed => different token
            evaluate_coverage=True,
        )
        session = ExplorationSession(seed=12, workspace=workspace)
        session.run_approxfpgas(small_multiplier_library, other)
        run = session.runs[f"approxfpgas-{small_multiplier_library.name}"]
        assert run.resumed_stages == []


def _approxfpgas_stage_list(config):
    from repro.core import approxfpgas_stages

    return approxfpgas_stages(config)


# --------------------------------------------------------------------- #
# Session plumbing
# --------------------------------------------------------------------- #
class TestExplorationSession:
    def test_engines_are_shared_per_reference(self, small_multiplier_library):
        session = ExplorationSession(seed=3)
        reference = small_multiplier_library.reference()
        assert session.engine_for(reference) is session.engine_for(reference)
        assert session.engine_for(reference).cache is session.cache

    def test_session_seed_seeds_default_configs(self):
        session = ExplorationSession(seed=123)
        assert session.rng(0).integers(0, 100) == session.rng(0).integers(0, 100)

    def test_synthesizer_instances_accepted(self):
        from repro.fpga import FpgaSynthesizer

        synthesizer = FpgaSynthesizer()
        session = ExplorationSession(fpga_synthesizer=synthesizer)
        assert session.fpga_synthesizer is synthesizer
        assert "fpga" in SYNTHESIZERS and "asic" in SYNTHESIZERS

    def test_cache_shared_across_flows(self, tmp_path, small_multiplier_library, api_config):
        session = ExplorationSession(seed=11)
        session.run_approxfpgas(small_multiplier_library, api_config)
        first_stats = session.stats()
        session.run_approxfpgas(small_multiplier_library, api_config)
        second_stats = session.stats()
        # The second run is served from the shared cache: no new misses.
        assert second_stats.misses == first_stats.misses
        assert second_stats.hits > first_stats.hits
