"""Tests of the AutoAx-FPGA case study: images, SSIM, accelerator, search, flow."""

import numpy as np
import pytest

from repro.autoax import (
    AutoAxConfig,
    AutoAxFpgaFlow,
    Configuration,
    GaussianFilterAccelerator,
    HwCostEstimator,
    NUM_ADDER_SLOTS,
    NUM_MULTIPLIER_SLOTS,
    QorEstimator,
    collect_training_samples,
    components_from_library,
    configuration_features,
    default_image_set,
    exact_reevaluation,
    hill_climb_pareto,
    mean_ssim,
    psnr,
    random_search,
    ssim,
)
from repro.generators import build_adder_library, build_multiplier_library


# ------------------------------ fixtures ------------------------------- #
@pytest.fixture(scope="module")
def components():
    multiplier_library = build_multiplier_library(8, size=30, seed=2)
    adder_library = build_adder_library(16, size=24, seed=4)
    multipliers = components_from_library(multiplier_library, 6, max_error=0.1)
    adders = components_from_library(adder_library, 5, max_error=0.02)
    return multipliers, adders


@pytest.fixture(scope="module")
def accelerator(components):
    multipliers, adders = components
    return GaussianFilterAccelerator(multipliers, adders)


@pytest.fixture(scope="module")
def images():
    return default_image_set(32)


# ------------------------------- images -------------------------------- #
def test_image_set_properties(images):
    assert len(images) == 5
    for image in images:
        assert image.shape == (32, 32)
        assert image.dtype == np.uint8


# -------------------------------- ssim ---------------------------------- #
def test_ssim_identical_images_is_one(images):
    assert ssim(images[0], images[0]) == pytest.approx(1.0)


def test_ssim_degrades_with_noise(images):
    rng = np.random.default_rng(0)
    noisy = np.clip(images[0].astype(int) + rng.integers(-60, 60, images[0].shape), 0, 255)
    score = ssim(images[0], noisy.astype(np.uint8))
    assert 0.0 < score < 0.95


def test_ssim_shape_mismatch_raises(images):
    with pytest.raises(ValueError):
        ssim(images[0], images[0][:16, :16])


def test_psnr_identical_infinite(images):
    assert psnr(images[0], images[0]) == float("inf")
    assert psnr(images[0], 255 - images[0]) < 30.0


def test_mean_ssim_validation(images):
    assert mean_ssim(images, images) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        mean_ssim(images, images[:2])
    with pytest.raises(ValueError):
        mean_ssim([], [])


# ----------------------------- components -------------------------------- #
def test_components_have_costs_and_error(components):
    multipliers, adders = components
    assert len(multipliers) == 6
    assert len(adders) == 5
    for component in multipliers + adders:
        assert component.fpga.luts >= 0
        assert component.error.med <= 0.1 + 1e-9


def test_component_compute_matches_netlist(components, rng):
    multipliers, _ = components
    component = multipliers[0]
    a = rng.integers(0, 256, 100)
    b = rng.integers(0, 256, 100)
    direct = component.netlist.evaluate_words({"a": a, "b": b})
    assert np.array_equal(component.compute(a, b), direct)


# ----------------------------- accelerator ------------------------------- #
def test_configuration_slot_counts():
    with pytest.raises(ValueError):
        Configuration((0,) * 5, (0,) * NUM_ADDER_SLOTS)
    with pytest.raises(ValueError):
        Configuration((0,) * NUM_MULTIPLIER_SLOTS, (0,) * 3)


def test_exact_configuration_reproduces_exact_filter(accelerator, images):
    config = accelerator.exact_configuration()
    for image in images[:2]:
        assert np.array_equal(accelerator.apply(image, config), accelerator.exact_filter(image))
    assert accelerator.quality(images, config) == pytest.approx(1.0)


def test_exact_filter_is_a_smoother(accelerator, images):
    noisy = images[4].astype(np.int64)
    filtered = accelerator.exact_filter(images[4]).astype(np.int64)
    assert filtered.std() < noisy.std()


def test_random_configuration_quality_below_exact(accelerator, images, rng):
    config = accelerator.random_configuration(rng)
    assert accelerator.quality(images[:2], config) <= 1.0


def test_mutate_changes_exactly_one_slot(accelerator, rng):
    config = accelerator.exact_configuration()
    mutated = accelerator.mutate_configuration(config, rng)
    differences = sum(
        a != b for a, b in zip(config.multiplier_indices, mutated.multiplier_indices)
    ) + sum(a != b for a, b in zip(config.adder_indices, mutated.adder_indices))
    assert differences <= 1


def test_hw_cost_composition(accelerator):
    config = accelerator.exact_configuration()
    cost = accelerator.hw_cost(config)
    multiplier = accelerator.multipliers[config.multiplier_indices[0]]
    adder = accelerator.adders[config.adder_indices[0]]
    expected_area = 9 * multiplier.fpga.area_luts + 8 * adder.fpga.area_luts
    assert cost["area"] == pytest.approx(expected_area)
    assert cost["latency"] >= multiplier.fpga.latency_ns + 4 * adder.fpga.latency_ns - 1e-9
    assert cost["power"] > 0.0


def test_design_space_size(accelerator):
    expected = len(accelerator.multipliers) ** 9 * len(accelerator.adders) ** 8
    assert accelerator.design_space_size == expected


# ------------------------- estimators and search -------------------------- #
def test_configuration_features_length(accelerator):
    config = accelerator.exact_configuration()
    features = configuration_features(accelerator, config)
    assert features.shape == ((NUM_MULTIPLIER_SLOTS + NUM_ADDER_SLOTS) * 4 + 8,)


def test_estimators_learn_from_samples(accelerator, images):
    samples = collect_training_samples(accelerator, images[:2], num_samples=20, seed=3)
    qor = QorEstimator().fit(samples)
    hw = HwCostEstimator("area").fit(samples)
    config = samples[0].config
    assert 0.0 <= qor.estimate(accelerator, config) <= 1.5
    assert hw.estimate(accelerator, config) == pytest.approx(samples[0].cost["area"], rel=0.3)


def test_random_search_returns_requested_count(accelerator, images):
    results = random_search(accelerator, images[:2], num_samples=10, seed=1)
    assert len(results) == 10
    for entry in results:
        assert 0.0 <= entry.quality <= 1.0
        assert set(entry.cost) == {"area", "power", "latency"}


def test_hill_climb_archive_is_nondominated(accelerator, images):
    from repro.core import dominates

    samples = collect_training_samples(accelerator, images[:2], num_samples=15, seed=5)
    qor = QorEstimator().fit(samples)
    hw = HwCostEstimator("area").fit(samples)
    archive = hill_climb_pareto(accelerator, qor, hw, iterations=40, seed=2)
    assert archive
    points = [(entry.cost["area"], 1.0 - entry.quality) for entry in archive]
    for i, point_i in enumerate(points):
        for j, point_j in enumerate(points):
            if i != j:
                assert not dominates(point_j, point_i) or point_i == point_j


def test_exact_reevaluation_replaces_estimates(accelerator, images):
    samples = collect_training_samples(accelerator, images[:2], num_samples=8, seed=9)
    qor = QorEstimator().fit(samples)
    hw = HwCostEstimator("latency").fit(samples)
    archive = hill_climb_pareto(accelerator, qor, hw, iterations=20, seed=3)
    exact = exact_reevaluation(accelerator, images[:2], archive)
    assert len(exact) == len(archive)
    for entry in exact:
        assert 0.0 <= entry.quality <= 1.0


# -------------------------------- flow ------------------------------------ #
def test_autoax_flow_end_to_end(components):
    multipliers, adders = components
    config = AutoAxConfig(
        parameters=("area",),
        num_training_samples=15,
        num_random_baseline=15,
        hill_climb_iterations=40,
        image_size=32,
        seed=11,
    )
    result = AutoAxFpgaFlow(multipliers, adders, config=config).run()
    assert set(result.scenarios) == {"area"}
    scenario = result.scenarios["area"]
    assert scenario.front
    assert scenario.num_candidates >= len(scenario.front)
    assert result.design_space_size == 6 ** 9 * 5 ** 8
    comparison = result.hypervolume_comparison("area")
    assert comparison["autoax"] >= 0.0 and comparison["random"] >= 0.0
    assert len(result.baseline_front("area")) >= 1


def test_autoax_config_validation():
    with pytest.raises(ValueError):
        AutoAxConfig(num_training_samples=1)
    with pytest.raises(ValueError):
        AutoAxConfig(num_random_baseline=0)
