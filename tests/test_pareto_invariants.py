"""Invariant tests for the Pareto machinery (core.pareto and autoax.search)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autoax import Configuration, EvaluatedConfiguration
from repro.autoax.search import _non_dominated
from repro.core.pareto import (
    dominates,
    pareto_front_indices,
    pareto_union,
    successive_pareto_fronts,
)


def _random_points(seed: int, n: int, d: int, duplicates: bool = False) -> np.ndarray:
    rng = np.random.default_rng(seed)
    points = rng.random((n, d))
    if duplicates and n >= 4:
        points[n // 2] = points[0]
        points[-1] = points[1]
    return points


class TestParetoFrontInvariants:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("dims", [2, 3])
    def test_no_returned_point_is_dominated_by_any_input(self, seed, dims):
        points = _random_points(seed, 60, dims, duplicates=seed % 2 == 0)
        front = pareto_front_indices(points)
        assert front, "front of a non-empty set cannot be empty"
        for kept in front:
            for other in range(len(points)):
                assert not dominates(points[other], points[kept]), (
                    f"front point {kept} is dominated by input point {other}"
                )

    @pytest.mark.parametrize("seed", range(4))
    def test_every_dropped_point_is_dominated(self, seed):
        points = _random_points(seed, 40, 2)
        front = set(pareto_front_indices(points))
        for index in range(len(points)):
            if index in front:
                continue
            assert any(dominates(points[kept], points[index]) for kept in front)

    def test_idempotent(self):
        points = _random_points(3, 50, 2, duplicates=True)
        front = pareto_front_indices(points)
        again = pareto_front_indices(points[front])
        assert sorted(again) == list(range(len(front)))

    def test_duplicates_all_kept(self):
        points = np.array([[0.0, 0.0], [0.0, 0.0], [1.0, 1.0]])
        assert pareto_front_indices(points) == [0, 1]

    def test_empty_input(self):
        assert pareto_front_indices(np.empty((0, 2))) == []


class TestSuccessiveFrontsInvariants:
    @pytest.mark.parametrize("seed", range(4))
    def test_fronts_partition_and_do_not_interleave(self, seed):
        points = _random_points(seed, 30, 2)
        fronts = successive_pareto_fronts(points, 30)
        flattened = [index for front in fronts for index in front]
        assert sorted(flattened) == list(range(len(points)))
        # A point in front k+1 cannot dominate any point of front k.
        for earlier, later in zip(fronts, fronts[1:]):
            for late_point in later:
                for early_point in earlier:
                    assert not dominates(points[late_point], points[early_point])

    def test_union_deduplicates_and_sorts(self):
        assert pareto_union([[3, 1], [1, 2], []]) == [1, 2, 3]


def _entry(cost: float, quality: float, parameter: str = "area") -> EvaluatedConfiguration:
    config = Configuration(multiplier_indices=(0,) * 9, adder_indices=(0,) * 8)
    return EvaluatedConfiguration(config=config, quality=quality, cost={parameter: cost})


class TestNonDominatedArchive:
    def test_empty_archive(self):
        assert _non_dominated([], "area") == []

    @pytest.mark.parametrize("seed", range(5))
    def test_no_survivor_dominated_by_any_input(self, seed):
        rng = np.random.default_rng(seed)
        archive = [
            _entry(float(cost), float(quality))
            for cost, quality in zip(rng.random(40) * 100, rng.random(40))
        ]
        pruned = _non_dominated(archive, "area")
        assert pruned
        for survivor in pruned:
            for entry in archive:
                a = np.array(entry.objectives("area"))
                b = np.array(survivor.objectives("area"))
                assert not dominates(a, b)

    @pytest.mark.parametrize("seed", range(5))
    def test_pruning_idempotent(self, seed):
        rng = np.random.default_rng(100 + seed)
        archive = [
            _entry(float(cost), float(quality))
            for cost, quality in zip(rng.random(25) * 10, rng.random(25))
        ]
        once = _non_dominated(archive, "area")
        twice = _non_dominated(once, "area")
        assert [id(e) for e in twice] == [id(e) for e in once]


class TestArchiveLimit:
    def test_hill_climb_respects_archive_limit(self, autoax_searchables):
        from repro.autoax import hill_climb_pareto

        searchables = autoax_searchables
        for limit in (4, 8):
            archive = hill_climb_pareto(
                searchables.accelerator,
                searchables.qor,
                searchables.hw,
                iterations=60,
                archive_limit=limit,
                seed=3,
            )
            assert 1 <= len(archive) <= limit
            # The returned archive itself must be non-dominated.
            assert len(_non_dominated(archive, searchables.hw.parameter)) == len(archive)
