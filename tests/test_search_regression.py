"""Regression pins for the shared-archive search refactor.

``tests/fixtures/search_golden.json`` was generated from the pre-refactor
list-based strategy implementations (PR 2/3 era); these tests rebuild the
identical seeded setup and assert the strategies still produce
**bit-identical** results now that archives, memoisation and batched
evaluation sit underneath.  The dedupe tests pin the fix for the hill
climber's duplicate re-evaluation of unchanged configurations.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.autoax import (
    GaussianFilterAccelerator,
    HwCostEstimator,
    QorEstimator,
    collect_training_samples,
    components_from_library,
    default_image_set,
    exact_reevaluation,
    random_search,
)
from repro.autoax.search import SEARCH_STRATEGIES, _estimated_evaluator
from repro.engine import BatchEvaluator, EvalCache
from repro.generators import build_adder_library, build_multiplier_library

pytestmark = pytest.mark.search

GOLDEN_PATH = Path(__file__).parent / "fixtures" / "search_golden.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def setup():
    """The exact setup the golden fixture was generated with."""
    from types import SimpleNamespace

    multipliers = components_from_library(
        build_multiplier_library(4, size=20, seed=2), 4, max_error=0.2
    )
    adders = components_from_library(
        build_adder_library(8, size=16, seed=4), 3, max_error=0.1
    )
    accelerator = GaussianFilterAccelerator(multipliers, adders)
    images = default_image_set(24)[:2]
    samples = collect_training_samples(accelerator, images, 12, seed=17)
    return SimpleNamespace(
        accelerator=accelerator,
        images=images,
        qor=QorEstimator().fit(samples),
        hw=HwCostEstimator("area").fit(samples),
    )


def signature(entries):
    return [
        {
            "multipliers": list(entry.config.multiplier_indices),
            "adders": list(entry.config.adder_indices),
            "quality": repr(entry.quality),
            "cost": {name: repr(value) for name, value in sorted(entry.cost.items())},
        }
        for entry in entries
    ]


def digest(entries) -> str:
    blob = json.dumps(signature(entries), sort_keys=True).encode()
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


# --------------------------------------------------------------------- #
# Golden pins: seeded strategies are bit-identical to the pre-refactor code
# --------------------------------------------------------------------- #
class TestGoldenPins:
    def test_random_search_bit_identical(self, setup, golden):
        results = random_search(setup.accelerator, setup.images, 10, seed=23)
        assert digest(results) == golden["random_search"]

    @pytest.mark.parametrize("key", ["hill_climb", "random_archive"])
    def test_strategy_bit_identical(self, setup, golden, key):
        strategy = SEARCH_STRATEGIES.get(key)
        archive = strategy(setup.accelerator, setup.qor, setup.hw, iterations=60, seed=31)
        assert digest(archive) == golden[key]
        reevaluated = exact_reevaluation(setup.accelerator, setup.images, archive)
        assert digest(reevaluated) == golden[f"{key}_reevaluated"]

    @pytest.mark.parametrize("key", ["hill_climb", "random_archive"])
    def test_strategy_bit_identical_with_cache(self, setup, golden, key):
        """Attaching a cache (and re-running warm) never changes results."""
        strategy = SEARCH_STRATEGIES.get(key)
        cache = EvalCache()
        cold = strategy(setup.accelerator, setup.qor, setup.hw, iterations=60, seed=31, cache=cache)
        warm = strategy(setup.accelerator, setup.qor, setup.hw, iterations=60, seed=31, cache=cache)
        assert digest(cold) == golden[key]
        assert digest(warm) == golden[key]


# --------------------------------------------------------------------- #
# Engine-batched exact evaluation is bit-identical to the serial path
# --------------------------------------------------------------------- #
class TestBatchedExactEvaluation:
    def test_random_search_engine_path_bit_identical(self, setup, golden):
        engine = BatchEvaluator(cache=EvalCache(), mode="serial")
        results = random_search(setup.accelerator, setup.images, 10, seed=23, engine=engine)
        assert digest(results) == golden["random_search"]

    def test_exact_reevaluation_engine_path_bit_identical(self, setup, golden):
        archive = SEARCH_STRATEGIES.get("hill_climb")(
            setup.accelerator, setup.qor, setup.hw, iterations=60, seed=31
        )
        engine = BatchEvaluator(cache=EvalCache(), mode="serial")
        batched = exact_reevaluation(setup.accelerator, setup.images, archive, engine=engine)
        assert digest(batched) == golden["hill_climb_reevaluated"]

    def test_collect_training_samples_engine_path_bit_identical(self, setup):
        serial = collect_training_samples(setup.accelerator, setup.images, 8, seed=3)
        engine = BatchEvaluator(cache=EvalCache(), mode="serial")
        batched = collect_training_samples(setup.accelerator, setup.images, 8, seed=3, engine=engine)
        for a, b in zip(serial, batched):
            assert a.config == b.config
            assert a.quality == b.quality
            assert a.cost == b.cost
            assert np.array_equal(a.features, b.features)

    def test_engine_cache_shared_with_serial_axq_keys(self, setup):
        """Values cached by the engine serve the serial path and vice versa."""
        cache = EvalCache()
        engine = BatchEvaluator(cache=cache, mode="serial")
        batched = random_search(setup.accelerator, setup.images, 6, seed=23, engine=engine)
        before = cache.stats()
        serial = random_search(setup.accelerator, setup.images, 6, seed=23, cache=cache)
        after = cache.stats()
        assert after.misses == before.misses  # every serial lookup was a hit
        assert digest(serial) == digest(batched)

    def test_process_mode_configurations_bit_identical(self, setup):
        """Process-pool fan-out (or its fallback) matches serial bits."""
        serial_engine = BatchEvaluator(cache=EvalCache(), mode="serial")
        process_engine = BatchEvaluator(
            cache=EvalCache(), mode="process", max_workers=2, parallel_threshold=1
        )
        rng = np.random.default_rng(41)
        configs = [setup.accelerator.random_configuration(rng) for _ in range(6)]
        serial = serial_engine.evaluate_configurations(setup.accelerator, setup.images, configs)
        parallel = process_engine.evaluate_configurations(setup.accelerator, setup.images, configs)
        assert serial == parallel

    def test_duplicate_configurations_computed_once(self, setup):
        engine = BatchEvaluator(cache=EvalCache(), mode="serial")
        rng = np.random.default_rng(12)
        config = setup.accelerator.random_configuration(rng)
        payloads = engine.evaluate_configurations(
            setup.accelerator, setup.images, [config, config, config]
        )
        assert payloads[0] == payloads[1] == payloads[2]
        assert engine.stats().size == 1  # one cache entry for three requests


# --------------------------------------------------------------------- #
# Hill-climb dedupe: unchanged configurations are never re-scored
# --------------------------------------------------------------------- #
class TestEstimatorDedupe:
    def test_memo_serves_revisited_configurations(self, setup):
        evaluate = _estimated_evaluator(setup.accelerator, setup.qor, setup.hw, cache=None)
        rng = np.random.default_rng(3)
        config = setup.accelerator.random_configuration(rng)
        first = evaluate(config)
        second = evaluate(config)
        assert second.quality == first.quality and second.cost == first.cost
        stats = evaluate.stats
        assert stats.evaluations == 2
        assert stats.computed == 1
        assert stats.memo_hits == 1
        assert stats.memo_hit_rate == pytest.approx(0.5)

    def test_hill_climb_computes_each_distinct_config_once(self, setup):
        """The latent-bug fix: the climber used to re-run the estimators on
        every revisit (mutating a slot back to the same component is a
        frequent move in a 4x3-component space)."""

        class CountingQor:
            def __init__(self, inner):
                self.inner = inner
                self.calls = 0

            @property
            def cache_token(self):
                return self.inner.cache_token

            def estimate(self, accelerator, config):
                self.calls += 1
                return self.inner.estimate(accelerator, config)

        counting = CountingQor(setup.qor)
        iterations = 120
        archive = SEARCH_STRATEGIES.get("hill_climb")(
            setup.accelerator, counting, setup.hw, iterations=iterations, seed=31
        )
        assert archive
        total_evaluations = iterations + 8  # iterations + initial archive
        # With only 4*3 components across 17 slots, revisits are guaranteed;
        # the memo must convert them into hits instead of recomputation.
        assert counting.calls < total_evaluations
        # And the memo never changes seeded results.
        plain = SEARCH_STRATEGIES.get("hill_climb")(
            setup.accelerator, setup.qor, setup.hw, iterations=iterations, seed=31
        )
        assert digest(archive) == digest(plain)

    def test_cache_hit_rate_reflects_dedupe(self, setup):
        """Cache-backed run: misses == distinct configurations, so the
        cache-hit rate of a warm re-run is 100%."""
        cache = EvalCache()
        SEARCH_STRATEGIES.get("hill_climb")(
            setup.accelerator, setup.qor, setup.hw, iterations=120, seed=31, cache=cache
        )
        cold = cache.stats()
        # The in-run memo keeps revisits away from the cache: every cache
        # lookup is a distinct configuration, and each missed exactly once.
        assert cold.misses == cold.lookups
        SEARCH_STRATEGIES.get("hill_climb")(
            setup.accelerator, setup.qor, setup.hw, iterations=120, seed=31, cache=cache
        )
        warm = cache.stats()
        repeat_lookups = warm.lookups - cold.lookups
        repeat_hits = warm.hits - cold.hits
        assert repeat_lookups > 0
        assert repeat_hits / repeat_lookups == pytest.approx(1.0)


# --------------------------------------------------------------------- #
# Whole-flow equivalence: engine-threaded staged run == legacy serial run
# --------------------------------------------------------------------- #
class TestFlowEquivalence:
    def test_engine_threaded_pipeline_matches_legacy_flow(self, setup):
        from repro.autoax import AutoAxConfig, AutoAxFpgaFlow
        from repro.autoax.stages import run_autoax_pipeline

        config = AutoAxConfig(
            parameters=("area",),
            num_training_samples=8,
            num_random_baseline=6,
            hill_climb_iterations=30,
            image_size=24,
            seed=11,
        )
        legacy = AutoAxFpgaFlow(
            setup.accelerator.multipliers,
            setup.accelerator.adders,
            config=config,
            images=setup.images,
        ).run()
        engine = BatchEvaluator(cache=EvalCache(), mode="serial")
        staged, _ = run_autoax_pipeline(
            setup.accelerator.multipliers,
            setup.accelerator.adders,
            config,
            images=setup.images,
            engine=engine,
        )
        assert digest(staged.baseline) == digest(legacy.baseline)
        assert digest(staged.scenarios["area"].candidates) == digest(
            legacy.scenarios["area"].candidates
        )
        assert digest(staged.scenarios["area"].front) == digest(legacy.scenarios["area"].front)
