"""Tests for Verilog export, structural metrics and activity estimation."""

import numpy as np

from repro.circuits import GateType, structural_metrics, to_verilog
from repro.circuits.activity import node_signal_probabilities, node_switching_activities
from repro.generators import truncated_adder


def test_verilog_contains_module_and_ports(multiplier4):
    text = to_verilog(multiplier4)
    assert text.startswith("module ")
    assert "input  [3:0] a;" in text
    assert "input  [3:0] b;" in text
    assert f"output [{multiplier4.num_outputs - 1}:0] out;" in text
    assert text.strip().endswith("endmodule")


def test_verilog_has_one_assign_per_gate_and_output(adder8):
    text = to_verilog(adder8)
    assert text.count("assign") == adder8.num_gates + adder8.num_outputs


def test_verilog_sanitizes_module_name(adder8):
    text = to_verilog(adder8, module_name="8weird name!")
    assert "module m_8weird_name_" in text


def test_structural_metrics_consistency(multiplier8):
    metrics = structural_metrics(multiplier8)
    assert metrics.num_inputs == 16
    assert metrics.num_outputs == 16
    assert metrics.live_gates <= metrics.num_gates
    assert metrics.depth > 0
    assert metrics.max_fanout >= 1
    counts = metrics.gate_counts
    assert sum(counts.values()) == metrics.live_gates
    assert counts[GateType.AND.name] >= 64  # at least the partial products


def test_structural_metrics_flags_constant_outputs():
    trunc = truncated_adder(8, cut=3)
    metrics = structural_metrics(trunc)
    assert metrics.constant_outputs >= 3


def test_metrics_as_dict_has_gate_count_keys(adder8):
    flat = structural_metrics(adder8).as_dict()
    assert "count_xor" in flat
    assert flat["num_inputs"] == 16


def test_signal_probabilities_in_unit_interval(multiplier4):
    probabilities = node_signal_probabilities(multiplier4, num_samples=128, seed=1)
    assert probabilities.shape == (multiplier4.num_nodes,)
    assert np.all(probabilities >= 0.0)
    assert np.all(probabilities <= 1.0)


def test_switching_activity_bounded_by_half(multiplier4):
    activities = node_switching_activities(multiplier4, num_samples=128, seed=1)
    assert np.all(activities >= 0.0)
    assert np.all(activities <= 0.5 + 1e-12)


def test_input_signal_probability_near_half(adder8):
    probabilities = node_signal_probabilities(adder8, num_samples=2048, seed=7)
    inputs = probabilities[: adder8.num_inputs]
    assert np.all(np.abs(inputs - 0.5) < 0.1)


def test_activity_deterministic_for_fixed_seed(multiplier4):
    first = node_switching_activities(multiplier4, num_samples=64, seed=11)
    second = node_switching_activities(multiplier4, num_samples=64, seed=11)
    assert np.array_equal(first, second)
