"""Golden-vector regression tests: frozen exhaustive outputs.

``tests/fixtures/golden_vectors.json`` freezes the exhaustive simulation
outputs (as blake2b digests plus spot values) of one exact and one perturbed
8-bit adder and multiplier.  Backend or generator refactors that silently
change simulation semantics -- or the seeded perturbation operator -- fail
here even if both backends still agree with each other.

To regenerate after an *intentional* semantic change, recompute each entry
with ``digest_of(exhaustive_simulate(circuit, backend="bool"))`` using the
builders in :data:`GOLDEN_CIRCUITS` below.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.circuits import exhaustive_simulate
from repro.error import compute_error_metrics
from repro.generators import array_multiplier, perturb_netlist, ripple_carry_adder

pytestmark = pytest.mark.sim_backends

FIXTURE_PATH = Path(__file__).parent / "fixtures" / "golden_vectors.json"

GOLDEN_CIRCUITS = {
    "adder8_exact": lambda: ripple_carry_adder(8),
    "adder8_perturbed_seed7": lambda: perturb_netlist(ripple_carry_adder(8), seed=7),
    "mult8_exact": lambda: array_multiplier(8),
    "mult8_perturbed_seed7": lambda: perturb_netlist(array_multiplier(8), seed=7),
}


def digest_of(outputs) -> str:
    return hashlib.blake2b(outputs.astype("<i8").tobytes(), digest_size=16).hexdigest()


@pytest.fixture(scope="module")
def fixture_data():
    with FIXTURE_PATH.open() as handle:
        return json.load(handle)["circuits"]


@pytest.mark.parametrize("backend", ["bool", "bitplane", "compiled"])
@pytest.mark.parametrize("key", sorted(GOLDEN_CIRCUITS))
def test_exhaustive_outputs_match_frozen_fixture(key, backend, fixture_data):
    expected = fixture_data[key]
    circuit = GOLDEN_CIRCUITS[key]()
    outputs = exhaustive_simulate(circuit, backend=backend)
    assert len(outputs) == expected["num_patterns"]
    assert circuit.num_outputs == expected["num_outputs"]
    for index, value in expected["spot_values"].items():
        assert int(outputs[int(index)]) == value, f"output[{index}] drifted"
    assert digest_of(outputs) == expected["digest_blake2b"], (
        f"exhaustive outputs of {key} changed under the {backend!r} backend; "
        "if this is an intentional semantic change, regenerate the fixture "
        "(see the module docstring)"
    )


@pytest.mark.parametrize(
    "exact_key,perturbed_key",
    [("adder8_exact", "adder8_perturbed_seed7"), ("mult8_exact", "mult8_perturbed_seed7")],
)
def test_frozen_med_of_perturbed_circuits(exact_key, perturbed_key, fixture_data):
    exact_outputs = exhaustive_simulate(GOLDEN_CIRCUITS[exact_key]())
    perturbed = GOLDEN_CIRCUITS[perturbed_key]()
    perturbed_outputs = exhaustive_simulate(perturbed)
    med = compute_error_metrics(
        exact_outputs, perturbed_outputs, (1 << perturbed.num_outputs) - 1
    ).med
    assert med == pytest.approx(fixture_data[perturbed_key]["med_vs_exact"], rel=0, abs=1e-15)
