"""Tests of the error metrics and evaluation engines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.error import ErrorEvaluator, compute_error_metrics, evaluate_error, mean_error_distance
from repro.generators import (
    array_multiplier,
    ripple_carry_adder,
    truncated_adder,
    truncated_multiplier,
)


def test_zero_error_for_identical_outputs():
    values = np.arange(100)
    metrics = compute_error_metrics(values, values, max_output=255)
    assert metrics.med == 0.0
    assert metrics.wce == 0.0
    assert metrics.error_probability == 0.0
    assert metrics.mre == 0.0


def test_known_error_values():
    exact = np.array([0, 10, 20, 30])
    approx = np.array([0, 12, 20, 26])
    metrics = compute_error_metrics(exact, approx, max_output=100)
    assert metrics.mae == pytest.approx(1.5)
    assert metrics.med == pytest.approx(0.015)
    assert metrics.wce == 4.0
    assert metrics.error_probability == pytest.approx(0.5)
    assert metrics.mse == pytest.approx((4 + 16) / 4)


def test_error_metric_input_validation():
    with pytest.raises(ValueError):
        compute_error_metrics(np.arange(3), np.arange(4), 10)
    with pytest.raises(ValueError):
        compute_error_metrics(np.array([]), np.array([]), 10)
    with pytest.raises(ValueError):
        compute_error_metrics(np.arange(3), np.arange(3), 0)


@settings(max_examples=50)
@given(
    st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=50),
    st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=50),
)
def test_error_metric_invariants(exact, approx):
    length = min(len(exact), len(approx))
    exact_arr = np.array(exact[:length])
    approx_arr = np.array(approx[:length])
    metrics = compute_error_metrics(exact_arr, approx_arr, max_output=1000)
    assert 0.0 <= metrics.med <= 1.0
    assert metrics.wce >= metrics.mae
    assert 0.0 <= metrics.error_probability <= 1.0
    assert metrics.mse >= metrics.mae ** 2 - 1e-9


def test_mean_error_distance_shorthand():
    exact = np.array([0, 100])
    approx = np.array([0, 90])
    assert mean_error_distance(exact, approx, 100) == pytest.approx(0.05)


# --------------------------------------------------------------------- #
def test_exact_circuit_has_zero_error(multiplier4, multiplier4_evaluator):
    report = multiplier4_evaluator.evaluate(multiplier4)
    assert report.med == 0.0
    assert report.method == "exhaustive"
    assert report.num_patterns == 256


def test_truncated_multiplier_has_positive_error(multiplier4_evaluator):
    report = multiplier4_evaluator.evaluate(truncated_multiplier(4, 3))
    assert report.med > 0.0


def test_monte_carlo_used_for_wide_circuits():
    reference = ripple_carry_adder(16)
    evaluator = ErrorEvaluator(reference, max_exhaustive_inputs=18, num_samples=2048)
    assert evaluator.method == "monte_carlo"
    report = evaluator.evaluate(truncated_adder(16, 6))
    assert report.num_patterns == 2048
    assert report.med > 0.0


def test_monte_carlo_reproducible_with_seed():
    reference = ripple_carry_adder(16)
    circuit = truncated_adder(16, 8)
    first = ErrorEvaluator(reference, max_exhaustive_inputs=10, seed=7).evaluate(circuit)
    second = ErrorEvaluator(reference, max_exhaustive_inputs=10, seed=7).evaluate(circuit)
    assert first.metrics.as_dict() == second.metrics.as_dict()


def test_interface_mismatch_rejected(multiplier4_evaluator):
    with pytest.raises(ValueError):
        multiplier4_evaluator.evaluate(array_multiplier(8))


def test_evaluate_error_one_shot():
    report = evaluate_error(truncated_adder(8, 2), ripple_carry_adder(8))
    assert report.circuit_name.startswith("add8_trunc2")
    assert report.med > 0.0


def test_error_ordering_matches_truncation_severity(multiplier4_evaluator):
    mild = multiplier4_evaluator.evaluate(truncated_multiplier(4, 1))
    severe = multiplier4_evaluator.evaluate(truncated_multiplier(4, 4))
    assert severe.med > mild.med
