"""Unit tests for the primitive gate alphabet."""

import numpy as np
import pytest

from repro.circuits import GATE_ARITY, GateType, evaluate_gate, gate_truth_table
from repro.circuits.gates import CONSTANT_GATES, ONE_INPUT_GATES, TWO_INPUT_GATES, is_symmetric


def test_every_gate_type_has_an_arity():
    assert set(GATE_ARITY) == set(GateType)


def test_arity_partition_is_consistent():
    assert set(CONSTANT_GATES) == {g for g, a in GATE_ARITY.items() if a == 0}
    assert set(ONE_INPUT_GATES) == {g for g, a in GATE_ARITY.items() if a == 1}
    assert set(TWO_INPUT_GATES) == {g for g, a in GATE_ARITY.items() if a == 2}


@pytest.mark.parametrize(
    "gate_type,expected",
    [
        (GateType.AND, [0, 0, 0, 1]),
        (GateType.OR, [0, 1, 1, 1]),
        (GateType.XOR, [0, 1, 1, 0]),
        (GateType.NAND, [1, 1, 1, 0]),
        (GateType.NOR, [1, 0, 0, 0]),
        (GateType.XNOR, [1, 0, 0, 1]),
        (GateType.ANDNOT, [0, 0, 1, 0]),
        (GateType.ORNOT, [1, 0, 1, 1]),
    ],
)
def test_two_input_truth_tables(gate_type, expected):
    assert gate_truth_table(gate_type).astype(int).tolist() == expected


def test_not_and_buf_truth_tables():
    a = np.array([False, True])
    b = np.zeros(2, dtype=bool)
    assert evaluate_gate(GateType.NOT, a, b).tolist() == [True, False]
    assert evaluate_gate(GateType.BUF, a, b).tolist() == [False, True]


def test_constants_ignore_operands():
    a = np.array([True, False, True])
    b = np.array([False, False, True])
    assert evaluate_gate(GateType.CONST0, a, b).tolist() == [False] * 3
    assert evaluate_gate(GateType.CONST1, a, b).tolist() == [True] * 3


def test_evaluate_gate_is_vectorised():
    a = np.random.default_rng(0).integers(0, 2, 1000).astype(bool)
    b = np.random.default_rng(1).integers(0, 2, 1000).astype(bool)
    result = evaluate_gate(GateType.XOR, a, b)
    assert result.shape == (1000,)
    assert np.array_equal(result, a ^ b)


def test_symmetric_gate_classification():
    assert is_symmetric(GateType.AND)
    assert is_symmetric(GateType.XNOR)
    assert not is_symmetric(GateType.ANDNOT)


def test_buf_returns_copy_not_view():
    a = np.array([True, False])
    out = evaluate_gate(GateType.BUF, a, a)
    out[0] = False
    assert a[0]
