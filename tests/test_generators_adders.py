"""Behavioural tests of the approximate adder families."""

import numpy as np
import pytest

from repro.error import evaluate_error
from repro.generators import (
    approximate_fa_adder,
    carry_cut_adder,
    lower_or_adder,
    ripple_carry_adder,
    truncated_adder,
)


def _mean_abs_error(circuit, width, rng, samples=400):
    a = rng.integers(0, 1 << width, samples)
    b = rng.integers(0, 1 << width, samples)
    approx = circuit.evaluate_words({"a": a, "b": b})
    return float(np.abs(approx - (a + b)).mean())


def test_truncated_adder_zero_cut_is_exact(rng):
    adder = truncated_adder(8, cut=0)
    assert _mean_abs_error(adder, 8, rng) == 0.0


@pytest.mark.parametrize("cut", [1, 2, 4, 6])
def test_truncated_adder_error_bounded_by_cut(cut, rng):
    adder = truncated_adder(8, cut=cut)
    a = rng.integers(0, 256, 300)
    b = rng.integers(0, 256, 300)
    approx = adder.evaluate_words({"a": a, "b": b})
    # The truncated adder can at most lose the low `cut` bits of each operand
    # plus the carries they would have produced.
    assert np.all(np.abs(approx - (a + b)) < 2 ** (cut + 1))


def test_truncated_adder_error_monotone_in_cut(rng):
    errors = [_mean_abs_error(truncated_adder(8, cut=cut), 8, rng) for cut in (1, 3, 5, 7)]
    assert errors == sorted(errors)


def test_truncated_adder_fill_one_differs(rng):
    zero_fill = truncated_adder(8, cut=3, fill_one=False)
    one_fill = truncated_adder(8, cut=3, fill_one=True)
    a = rng.integers(0, 256, 100)
    b = rng.integers(0, 256, 100)
    assert not np.array_equal(
        zero_fill.evaluate_words({"a": a, "b": b}), one_fill.evaluate_words({"a": a, "b": b})
    )


def test_lower_or_adder_cut_zero_is_exact(rng):
    assert _mean_abs_error(lower_or_adder(8, cut=0), 8, rng) == 0.0


def test_lower_or_adder_more_accurate_than_truncation(rng):
    loa = _mean_abs_error(lower_or_adder(8, cut=4), 8, rng)
    trunc = _mean_abs_error(truncated_adder(8, cut=4), 8, rng)
    assert loa < trunc


@pytest.mark.parametrize("variant", [1, 2, 3, 4])
def test_afa_adder_cut_zero_is_exact(variant, rng):
    assert _mean_abs_error(approximate_fa_adder(8, cut=0, variant=variant), 8, rng) == 0.0


@pytest.mark.parametrize("variant", [1, 2, 3, 4])
def test_afa_adder_introduces_bounded_error(variant, rng):
    adder = approximate_fa_adder(8, cut=3, variant=variant)
    error = _mean_abs_error(adder, 8, rng)
    assert 0.0 < error < 32.0


def test_carry_cut_adder_full_segment_is_exact(rng):
    adder = carry_cut_adder(8, segment=8, lookback=0)
    assert _mean_abs_error(adder, 8, rng) == 0.0


def test_carry_cut_adder_lookback_reduces_error(rng):
    no_lookback = evaluate_error(carry_cut_adder(8, segment=2, lookback=0), ripple_carry_adder(8))
    with_lookback = evaluate_error(carry_cut_adder(8, segment=2, lookback=4), ripple_carry_adder(8))
    assert with_lookback.med < no_lookback.med


def test_adder_generators_validate_parameters():
    with pytest.raises(ValueError):
        truncated_adder(8, cut=9)
    with pytest.raises(ValueError):
        lower_or_adder(8, cut=-1)
    with pytest.raises(ValueError):
        approximate_fa_adder(8, cut=9, variant=1)
    with pytest.raises(ValueError):
        carry_cut_adder(8, segment=0)


def test_adder_metadata_records_family_and_cut():
    adder = lower_or_adder(8, cut=3)
    assert adder.meta["family"] == "loa"
    assert adder.meta["cut"] == 3
    assert adder.meta["bitwidth"] == 8


def test_adder_interface_width_is_preserved():
    for circuit in (
        truncated_adder(8, 4),
        lower_or_adder(8, 4),
        approximate_fa_adder(8, 4, 1),
        carry_cut_adder(8, 4, 1),
    ):
        assert circuit.num_outputs == 9
        assert circuit.word_width("a") == 8
        assert circuit.word_width("b") == 8
