"""Back-compat guarantees of the legacy wrappers over the staged pipelines.

* Seeded equivalence: `ApproxFpgasFlow` / `run_approxfpgas` / `AutoAxFpgaFlow`
  and the new `ExplorationSession` pipeline path produce identical results.
* Simulation-backend equivalence: the same seeded runs are bit-identical
  under the `"bool"` and `"bitplane"` simulation backends.
* The legacy entry points emit no deprecation warnings -- CI runs this file
  with ``-W error::DeprecationWarning`` to keep it that way.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro.api import ExplorationSession
from repro.autoax import AutoAxConfig, AutoAxFlow, AutoAxFpgaFlow, components_from_library
from repro.core import ApproxFpgasConfig, ApproxFpgasFlow, run_approxfpgas
from repro.io import result_to_dict

pytestmark = pytest.mark.filterwarnings("error::DeprecationWarning")

DETERMINISTIC_COST_FIELDS = (
    "num_circuits",
    "exhaustive_time_s",
    "training_time_s",
    "resynthesis_time_s",
)


def canonical_result(result) -> str:
    """JSON dump of an ApproxFPGAs result without the wall-clock fields."""
    payload = result_to_dict(result)
    payload["exploration_cost"] = {
        key: payload["exploration_cost"][key] for key in DETERMINISTIC_COST_FIELDS
    }
    for evaluation in payload["model_evaluations"]:
        evaluation.pop("train_time_s", None)
    return json.dumps(payload, sort_keys=True)


def autoax_signature(result):
    """Deterministic signature of an AutoAx result (configs, quality, cost)."""

    def entries(items):
        return [
            (
                entry.config.multiplier_indices,
                entry.config.adder_indices,
                entry.quality,
                tuple(sorted(entry.cost.items())),
            )
            for entry in items
        ]

    return {
        "scenarios": {
            parameter: (entries(scenario.candidates), entries(scenario.front))
            for parameter, scenario in result.scenarios.items()
        },
        "baseline": entries(result.baseline),
        "design_space_size": result.design_space_size,
        "training_size": result.training_size,
    }


@pytest.fixture(scope="module")
def config():
    return ApproxFpgasConfig(
        training_fraction=0.25,
        min_training_circuits=12,
        num_pseudo_fronts=2,
        top_k_models=2,
        model_ids=["ML2", "ML14", "ML18"],
        seed=21,
        evaluate_coverage=True,
    )


@pytest.fixture(scope="module")
def autoax_parts():
    from repro.generators import build_adder_library, build_multiplier_library

    multiplier_library = build_multiplier_library(8, size=20, seed=31)
    adder_library = build_adder_library(16, size=16, seed=37)
    multipliers = components_from_library(multiplier_library, 4, max_error=0.1)
    adders = components_from_library(adder_library, 4, max_error=0.05)
    autoax_config = AutoAxConfig(
        num_training_samples=10,
        num_random_baseline=8,
        hill_climb_iterations=25,
        image_size=24,
        seed=17,
    )
    return multipliers, adders, autoax_config


class TestApproxFpgasEquivalence:
    def test_wrapper_matches_session_pipeline(self, small_multiplier_library, config):
        legacy = ApproxFpgasFlow(small_multiplier_library, config=config).run()
        session = ExplorationSession(seed=config.seed)
        staged = session.run_approxfpgas(small_multiplier_library, config)
        assert canonical_result(legacy) == canonical_result(staged)

    def test_run_approxfpgas_kwargs_wrapper(self, small_multiplier_library, config):
        legacy = run_approxfpgas(
            small_multiplier_library,
            training_fraction=0.25,
            min_training_circuits=12,
            num_pseudo_fronts=2,
            top_k_models=2,
            model_ids=["ML2", "ML14", "ML18"],
            seed=21,
        )
        staged = ExplorationSession(seed=21).run_approxfpgas(small_multiplier_library, config)
        assert canonical_result(legacy) == canonical_result(staged)

    def test_subclass_overrides_still_drive_run(self, small_multiplier_library, config):
        """The advertised ablation hooks (overriding the public helpers)
        must keep taking effect inside run(), as in the monolithic flow."""
        forced = sorted(small_multiplier_library.names())[:12]

        class FixedSubsetFlow(ApproxFpgasFlow):
            def select_training_subset(self):
                return list(forced)

        result = FixedSubsetFlow(small_multiplier_library, config=config).run()
        assert sorted(result.training_names + result.validation_names) == sorted(forced)

    def test_wrapper_helpers_still_public(self, small_multiplier_library, config):
        flow = ApproxFpgasFlow(small_multiplier_library, config=config)
        subset = flow.select_training_subset()
        assert len(subset) == 15  # max(12, round(0.25 * 60))
        records, features, feature_names = flow.build_records()
        assert set(records) == set(small_multiplier_library.names())
        assert features.shape == (len(small_multiplier_library), len(feature_names))


class TestAutoAxEquivalence:
    def test_wrapper_matches_session_pipeline(self, autoax_parts):
        multipliers, adders, autoax_config = autoax_parts
        legacy = AutoAxFpgaFlow(multipliers, adders, config=autoax_config).run()
        session = ExplorationSession(seed=autoax_config.seed)
        staged = session.run_autoax(multipliers, adders, autoax_config)
        assert autoax_signature(legacy) == autoax_signature(staged)

    def test_autoax_flow_alias(self):
        assert AutoAxFlow is AutoAxFpgaFlow


class TestSimBackendEquivalence:
    """Whole-flow results do not depend on the simulation backend."""

    @pytest.mark.sim_backends
    def test_approxfpgas_bit_identical_across_backends(self, small_multiplier_library, config):
        results = {}
        for backend in ("bool", "bitplane"):
            session = ExplorationSession(seed=config.seed, sim_backend=backend)
            results[backend] = session.run_approxfpgas(small_multiplier_library, config)
        assert canonical_result(results["bool"]) == canonical_result(results["bitplane"])

    @pytest.mark.sim_backends
    def test_autoax_bit_identical_across_backends(self, autoax_parts):
        from repro.engine import BatchEvaluator
        from repro.generators import build_adder_library, build_multiplier_library

        multiplier_library = build_multiplier_library(8, size=20, seed=31)
        adder_library = build_adder_library(16, size=16, seed=37)
        _, _, autoax_config = autoax_parts

        signatures = {}
        for backend in ("bool", "bitplane"):
            multipliers = components_from_library(
                multiplier_library,
                4,
                max_error=0.1,
                engine=BatchEvaluator(multiplier_library.reference(), sim_backend=backend),
            )
            adders = components_from_library(
                adder_library,
                4,
                max_error=0.05,
                engine=BatchEvaluator(adder_library.reference(), sim_backend=backend),
            )
            session = ExplorationSession(seed=autoax_config.seed, sim_backend=backend)
            signatures[backend] = autoax_signature(
                session.run_autoax(multipliers, adders, autoax_config)
            )
        assert signatures["bool"] == signatures["bitplane"]


class TestNoDeprecationWarnings:
    def test_legacy_surface_is_warning_free(self, small_multiplier_library, config):
        """Importing and driving the legacy API emits no deprecation warnings."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            flow = ApproxFpgasFlow(small_multiplier_library, config=config)
            flow.select_training_subset()
            result = flow.run()
            result.summary()
            assert result.exploration_cost.resynthesis_time_s >= 0.0
