"""Tests of ML metrics, preprocessing, validation utilities and the model zoo."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features import FEATURE_NAMES
from repro.ml import (
    ASIC_FEATURE_FOR_MODEL,
    MODEL_DESCRIPTIONS,
    MODEL_IDS,
    FeatureSubsetRegressor,
    LinearRegression,
    MinMaxScaler,
    ModelZooError,
    StandardScaler,
    build_model,
    build_model_zoo,
    check_X_y,
    cross_val_score,
    k_fold_indices,
    mean_absolute_error,
    mean_squared_error,
    pearson_correlation,
    r2_score,
    spearman_correlation,
    train_test_split,
)


def test_metric_values_on_known_vectors():
    y_true = np.array([1.0, 2.0, 3.0, 4.0])
    y_pred = np.array([1.0, 2.0, 3.0, 5.0])
    assert mean_squared_error(y_true, y_pred) == pytest.approx(0.25)
    assert mean_absolute_error(y_true, y_pred) == pytest.approx(0.25)
    assert r2_score(y_true, y_true) == 1.0
    assert pearson_correlation(y_true, y_pred) > 0.95
    assert spearman_correlation(y_true, y_pred) == pytest.approx(1.0)


def test_r2_of_mean_prediction_is_zero():
    y = np.array([1.0, 2.0, 3.0])
    assert r2_score(y, np.full(3, 2.0)) == pytest.approx(0.0)


def test_correlation_of_constant_vector_is_zero():
    assert pearson_correlation(np.ones(5), np.arange(5)) == 0.0


@settings(max_examples=40)
@given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=2, max_size=40))
def test_spearman_invariant_to_monotone_transform(values):
    y = np.array(values, dtype=np.float64) * 0.1
    # A strictly monotone affine transform preserves all ranks exactly.
    transformed = 2.0 * y + 5.0
    if np.all(y == y[0]):
        assert spearman_correlation(y, transformed) == 0.0
    else:
        assert spearman_correlation(y, transformed) == pytest.approx(1.0, abs=1e-9)


def test_spearman_detects_nonlinear_monotone_relation():
    y = np.array([1.0, 2.0, 5.0, 9.0])
    assert spearman_correlation(y, np.exp(y)) == pytest.approx(1.0)


def test_check_x_y_rejects_bad_input():
    with pytest.raises(ValueError):
        check_X_y(np.array([[1.0], [np.nan]]), np.array([1.0, 2.0]))
    with pytest.raises(ValueError):
        check_X_y(np.zeros((3, 2)), np.zeros(4))
    with pytest.raises(ValueError):
        check_X_y(np.zeros((0, 2)), np.zeros(0))


def test_standard_scaler_roundtrip():
    rng = np.random.default_rng(0)
    X = rng.normal(3.0, 2.0, size=(50, 4))
    scaler = StandardScaler()
    Z = scaler.fit_transform(X)
    assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
    assert np.allclose(Z.std(axis=0), 1.0, atol=1e-9)
    assert np.allclose(scaler.inverse_transform(Z), X)


def test_standard_scaler_handles_constant_feature():
    X = np.column_stack([np.ones(10), np.arange(10)])
    Z = StandardScaler().fit_transform(X)
    assert np.all(np.isfinite(Z))


def test_minmax_scaler_range():
    X = np.random.default_rng(1).uniform(-5, 5, size=(30, 3))
    Z = MinMaxScaler().fit_transform(X)
    assert Z.min() >= 0.0 and Z.max() <= 1.0


def test_feature_subset_regressor_uses_only_selected_columns():
    rng = np.random.default_rng(2)
    X = rng.normal(size=(100, 5))
    y = 4.0 * X[:, 2] + 1.0
    model = FeatureSubsetRegressor(LinearRegression(), [2]).fit(X, y)
    # Changing other columns must not affect predictions.
    X_altered = X.copy()
    X_altered[:, 0] = 99.0
    assert np.allclose(model.predict(X), model.predict(X_altered))


def test_train_test_split_sizes_and_disjointness():
    X = np.arange(100).reshape(-1, 1).astype(float)
    y = np.arange(100).astype(float)
    X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.2, random_state=1)
    assert len(X_test) == 20 and len(X_train) == 80
    assert set(y_train.tolist()).isdisjoint(y_test.tolist())
    with pytest.raises(ValueError):
        train_test_split(X, y, test_size=1.5)


def test_k_fold_partitions_all_samples():
    folds = list(k_fold_indices(23, n_splits=4, random_state=0))
    assert len(folds) == 4
    all_test = np.concatenate([test for _, test in folds])
    assert sorted(all_test.tolist()) == list(range(23))
    for train, test in folds:
        assert set(train.tolist()).isdisjoint(test.tolist())


def test_cross_val_score_reasonable_for_linear_data():
    rng = np.random.default_rng(5)
    X = rng.normal(size=(60, 3))
    y = X @ np.array([1.0, 2.0, -1.0]) + 0.01 * rng.normal(size=60)
    scores = cross_val_score(LinearRegression(), X, y, n_splits=5)
    assert len(scores) == 5
    assert min(scores) > 0.95


# --------------------------------------------------------------------- #
def test_model_zoo_has_all_18_models():
    assert len(MODEL_IDS) == 18
    assert set(MODEL_DESCRIPTIONS) == set(MODEL_IDS)
    zoo = build_model_zoo(FEATURE_NAMES)
    assert set(zoo) == set(MODEL_IDS)


def test_every_zoo_model_fits_and_predicts():
    rng = np.random.default_rng(7)
    X = rng.uniform(1, 10, size=(40, len(FEATURE_NAMES)))
    y = X[:, -3] * 2.0 + rng.normal(0, 0.1, 40)
    for model_id in MODEL_IDS:
        model = build_model(model_id, FEATURE_NAMES, random_state=0)
        model.fit(X, y)
        predictions = model.predict(X)
        assert predictions.shape == (40,)
        assert np.all(np.isfinite(predictions)), model_id


def test_asic_regression_models_use_single_feature():
    for model_id, feature_name in ASIC_FEATURE_FOR_MODEL.items():
        model = build_model(model_id, FEATURE_NAMES)
        assert isinstance(model, FeatureSubsetRegressor)
        assert model.feature_indices == (list(FEATURE_NAMES).index(feature_name),)


def test_model_zoo_rejects_unknown_ids():
    with pytest.raises(ModelZooError):
        build_model("ML99", FEATURE_NAMES)
    with pytest.raises(ModelZooError):
        build_model_zoo(FEATURE_NAMES, include=["ML1", "bogus"])


def test_asic_models_require_asic_features():
    with pytest.raises(ModelZooError):
        build_model("ML1", ["num_gates", "depth"])
