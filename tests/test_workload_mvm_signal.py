"""Tests of the MVM / 1-D signal workload family and its bit slicing.

The regression half of the scenario-matrix PR
(``benchmarks/test_workload_matrix.py`` is the matrix gate itself):

* a hypothesis property suite proving :func:`repro.workloads.convert_sliced`
  / :func:`repro.workloads.recombine_slices` are an exact round-trip for
  **every** ``(resolution, slice_width)`` pair -- including non-divisible
  widths and sign-magnitude negatives -- plus hand-pinned slice layouts;
* the ``reduce_balanced`` degenerate-case contract (single operand, empty
  list with/without the ``empty`` identity) the 1-D datapaths rely on;
* the flat/zero-signal quality-metric contract: ``snr`` (and ``psnr``)
  return documented values on degenerate inputs without ever emitting a
  ``RuntimeWarning``;
* the :class:`~repro.workloads.ApproxAccelerator` protocol surface of the
  four new workloads (1-D inputs, prepared-vs-unprepared equivalence,
  exact-configuration behaviour, token distinctness, 1-D fidelity crops);
* frozen golden digests of seeded ``ExplorationSession`` + NSGA-II runs
  per new workload (appended to ``tests/fixtures/workload_golden.json``,
  same study recipe as the image trio's goldens in
  ``tests/test_workloads.py``).
"""

from __future__ import annotations

import hashlib
import json
import warnings
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ExplorationSession
from repro.autoax import AutoAxConfig
from repro.engine import accelerator_token
from repro.generators import build_adder_library, build_multiplier_library
from repro.workloads import (
    MIN_FIDELITY_LENGTH,
    WORKLOADS,
    BitSlicedMVMAccelerator,
    DctAccelerator,
    FirAccelerator,
    MixedWidthFirAccelerator,
    VectorAccelerator,
    build_workload,
    components_from_library,
    convert_sliced,
    dct_matrix,
    default_signal_set,
    fidelity_inputs,
    num_slices,
    psnr,
    recombine_slices,
    reduce_balanced,
    snr,
    snr_score,
)

pytestmark = pytest.mark.workloads

GOLDEN_PATH = Path(__file__).parent / "fixtures" / "workload_golden.json"
SIGNAL_WORKLOADS = ("mvm", "dct", "fir", "fir_mixed")


@pytest.fixture(scope="module")
def components():
    """The component setup the workload golden fixture was generated with."""
    multipliers = components_from_library(
        build_multiplier_library(8, size=30, seed=2), 6, max_error=0.1
    )
    adders = components_from_library(build_adder_library(16, size=24, seed=4), 5, max_error=0.02)
    return multipliers, adders


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


def signature(entries):
    return [
        {
            "multipliers": list(entry.config.multiplier_indices),
            "adders": list(entry.config.adder_indices),
            "quality": repr(entry.quality),
            "cost": {name: repr(value) for name, value in sorted(entry.cost.items())},
        }
        for entry in entries
    ]


def digest(entries) -> str:
    blob = json.dumps(signature(entries), sort_keys=True).encode()
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


# --------------------------------------------------------------------- #
# Bit slicing: exact round-trip property suite
# --------------------------------------------------------------------- #
@st.composite
def sliced_cases(draw):
    """(values, resolution, slice_width) across every legal pair."""
    resolution = draw(st.integers(min_value=2, max_value=12))
    slice_width = draw(st.integers(min_value=1, max_value=resolution - 1))
    limit = (1 << (resolution - 1)) - 1
    values = draw(
        st.lists(
            st.integers(min_value=-4 * limit - 7, max_value=4 * limit + 7),
            min_size=1,
            max_size=64,
        )
    )
    return np.asarray(values, dtype=np.int64), resolution, slice_width


class TestBitSlicing:
    @settings(max_examples=200)
    @given(sliced_cases())
    def test_round_trip_is_exact_after_clip(self, case):
        values, resolution, slice_width = case
        limit = (1 << (resolution - 1)) - 1
        signs, slices = convert_sliced(values, resolution, slice_width)
        assert len(slices) == num_slices(resolution, slice_width)
        width_mask = (1 << slice_width) - 1
        for plane in slices:
            assert plane.min() >= 0 and plane.max() <= width_mask
        back = recombine_slices(signs, slices, slice_width)
        assert np.array_equal(back, np.clip(values, -limit, limit))

    @settings(max_examples=60)
    @given(sliced_cases())
    def test_signs_are_sign_magnitude(self, case):
        values, resolution, slice_width = case
        signs, slices = convert_sliced(values, resolution, slice_width)
        assert set(np.unique(signs)) <= {-1, 1}
        # Zero is the collapsed double encoding: sign +1, all slices 0.
        zero_mask = np.clip(values, -((1 << (resolution - 1)) - 1),
                            (1 << (resolution - 1)) - 1) == 0
        assert np.all(signs[zero_mask] == 1)
        for plane in slices:
            assert np.all(plane[zero_mask] == 0)

    def test_non_divisible_slice_layout_is_pinned(self):
        # 8-bit sign-magnitude -> 7 magnitude bits -> 3 + 3 + 1 slices.
        assert num_slices(8, 3) == 3
        signs, slices = convert_sliced(np.array([127, -127, 85, -1]), 8, 3)
        assert [list(plane) for plane in slices] == [
            [7, 7, 5, 1],   # bits 0..2
            [7, 7, 2, 0],   # bits 3..5
            [1, 1, 1, 0],   # bit 6 (the narrow final slice)
        ]
        assert list(signs) == [1, -1, 1, -1]

    def test_divisible_and_single_slice_layouts(self):
        assert num_slices(9, 4) == 2
        assert num_slices(8, 7) == 1
        signs, slices = convert_sliced(np.array([-100]), 8, 7)
        assert len(slices) == 1 and slices[0][0] == 100 and signs[0] == -1

    def test_rejects_illegal_pairs(self):
        with pytest.raises(ValueError, match="resolution"):
            num_slices(1, 1)
        with pytest.raises(ValueError, match="slice width"):
            num_slices(8, 0)
        with pytest.raises(ValueError, match="slice width"):
            convert_sliced(np.array([1]), 8, 8)
        with pytest.raises(ValueError, match="empty slice list"):
            recombine_slices(np.array([1]), [], 3)


# --------------------------------------------------------------------- #
# reduce_balanced degenerate cases
# --------------------------------------------------------------------- #
class TestReduceBalanced:
    def _never(self, slot, left, right):  # pragma: no cover - must not run
        raise AssertionError("combine must not be called")

    def test_single_value_passes_through_without_a_slot(self):
        value, slot = reduce_balanced([42], self._never, slot=5)
        assert value == 42 and slot == 5

    def test_empty_without_identity_raises_the_historical_error(self):
        with pytest.raises(ValueError, match="empty value list"):
            reduce_balanced([], self._never)

    def test_empty_with_identity_returns_it_untouched(self):
        zero = np.zeros(3, dtype=np.int64)
        value, slot = reduce_balanced([], self._never, slot=7, empty=zero)
        assert value is zero and slot == 7

    def test_explicit_none_identity_is_honoured(self):
        value, slot = reduce_balanced([], self._never, empty=None)
        assert value is None and slot == 0

    def test_identity_is_ignored_when_values_exist(self):
        total, slot = reduce_balanced(
            [1, 2, 3], lambda s, a, b: a + b, empty="unused"
        )
        assert total == 6 and slot == 2


# --------------------------------------------------------------------- #
# Quality metrics on flat / zero signals
# --------------------------------------------------------------------- #
class TestDegenerateSignalMetrics:
    def test_snr_identical_signals_is_inf_without_warning(self):
        signal = np.array([3, 1, 4, 1, 5])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert snr(signal, signal) == float("inf")
            assert snr_score(signal, signal) == 1.0

    def test_snr_on_identical_zero_signals_is_inf(self):
        zeros = np.zeros(8)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert snr(zeros, zeros) == float("inf")
            assert snr_score(zeros, zeros) == 1.0

    def test_snr_zero_reference_with_noise_is_minus_inf(self):
        zeros = np.zeros(8)
        noisy = np.ones(8)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert snr(zeros, noisy) == float("-inf")
            assert snr_score(zeros, noisy) == 0.0

    def test_snr_score_is_clamped_and_monotone(self):
        reference = np.array([100.0, -50.0, 25.0, 80.0])
        small = snr_score(reference, reference + 0.01)
        large = snr_score(reference, reference + 10.0)
        assert small == 1.0  # beyond the 60 dB cap
        assert 0.0 < large < small
        # Negative raw SNR (noise louder than signal) clamps to 0.
        assert snr_score(np.ones(4), np.full(4, 1000.0)) == 0.0

    def test_snr_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="same shape"):
            snr(np.zeros(3), np.zeros(4))

    def test_psnr_on_flat_zero_images_is_warning_free(self):
        zeros = np.zeros((6, 6))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert psnr(zeros, zeros) == float("inf")
            assert np.isfinite(psnr(zeros, np.ones((6, 6))))


# --------------------------------------------------------------------- #
# Protocol surface of the new workloads
# --------------------------------------------------------------------- #
class TestSignalWorkloadProtocol:
    def test_registered_and_vector_based(self):
        for key in SIGNAL_WORKLOADS:
            assert key in WORKLOADS
            assert issubclass(WORKLOADS.get(key), VectorAccelerator)

    @pytest.mark.parametrize("key", SIGNAL_WORKLOADS)
    def test_default_inputs_are_1d_and_seeded(self, key):
        cls = WORKLOADS.get(key)
        inputs = default_signal_set(16, seed=cls.input_seed)
        assert len(inputs) == 4
        for signal in inputs:
            assert signal.ndim == 1 and signal.shape == (64,)
            assert signal.min() >= 0 and signal.max() <= 255

    def test_input_sets_pairwise_distinct(self):
        seeds = {WORKLOADS.get(key).input_seed for key in SIGNAL_WORKLOADS}
        assert len(seeds) == len(SIGNAL_WORKLOADS)
        sets = [default_signal_set(16, seed=seed) for seed in sorted(seeds)]
        blobs = {tuple(np.concatenate(signals).tolist()) for signals in sets}
        assert len(blobs) == len(sets)

    @pytest.mark.parametrize("key", SIGNAL_WORKLOADS)
    def test_prepared_equals_unprepared(self, components, key):
        accelerator = build_workload(key, *components)
        inputs = accelerator.default_inputs(12)
        prepared = accelerator.prepare_inputs(inputs)
        rng = np.random.default_rng(7)
        config = accelerator.random_configuration(rng)
        for signal, (item, reference) in zip(inputs, prepared):
            assert np.array_equal(
                accelerator.apply(signal, config), accelerator._apply_planes(item, config)
            )
            assert np.array_equal(accelerator.exact_filter(signal), reference)

    @pytest.mark.parametrize("key", SIGNAL_WORKLOADS)
    def test_rejects_2d_inputs(self, components, key):
        accelerator = build_workload(key, *components)
        config = accelerator.exact_configuration()
        with pytest.raises(ValueError, match="1-D"):
            accelerator.apply(np.zeros((4, 4)), config)
        with pytest.raises(ValueError, match="1-D"):
            accelerator.prepare_inputs([np.zeros((4, 4))])

    def test_tokens_distinct_from_each_other_and_image_trio(self, components):
        keys = SIGNAL_WORKLOADS + ("gaussian", "sobel", "sharpen")
        tokens = {accelerator_token(build_workload(key, *components)) for key in keys}
        assert len(tokens) == len(keys)

    def test_slice_width_is_a_real_knob(self, components):
        base = BitSlicedMVMAccelerator(*components)
        wider = BitSlicedMVMAccelerator(*components, slice_width=4)
        assert base.workload_token() != wider.workload_token()
        signal = default_signal_set(12, seed=base.input_seed)[0]
        # The exact (recombined) datapath is slice-width independent ...
        assert np.array_equal(base.exact_filter(signal), wider.exact_filter(signal))
        # ... while the approximate one genuinely changes shape: a
        # different number of time-multiplexed passes.
        assert base._num_slices == 3 and wider._num_slices == 2

    def test_mvm_exact_configuration_matches_reference(self, components):
        # The libraries' most-accurate components are the exact circuits,
        # so the "exact configuration" reproduces the golden output bit
        # for bit -- through the full slice/phase/recombine datapath.
        for key in SIGNAL_WORKLOADS:
            accelerator = build_workload(key, *components)
            config = accelerator.exact_configuration()
            for signal in accelerator.default_inputs(12):
                assert np.array_equal(
                    accelerator.apply(signal, config), accelerator.exact_filter(signal)
                ), key

    def test_single_sign_weight_rows_hit_the_empty_reduce(self, components):
        # An all-positive row leaves the negative weight-sign group empty;
        # the datapath must route through reduce_balanced's identity
        # instead of crashing (the satellite fix this PR pins).
        accelerator = BitSlicedMVMAccelerator(
            *components, weights=[[3, 5, 2, 7], [1, 2, 3, 4]], workload_name="mvm-pos"
        )
        config = accelerator.exact_configuration()
        signal = default_signal_set(8, seed=1)[0]
        assert np.array_equal(
            accelerator.apply(signal, config), accelerator.exact_filter(signal)
        )

    def test_mvm_validation_errors(self, components):
        with pytest.raises(ValueError, match="zero weights"):
            BitSlicedMVMAccelerator(*components, weights=[[1, 0], [2, 3]])
        with pytest.raises(ValueError, match="rectangular"):
            BitSlicedMVMAccelerator(*components, weights=[[1, 2], [3]])
        with pytest.raises(ValueError, match="slice width"):
            BitSlicedMVMAccelerator(*components, slice_width=9)

    def test_mixed_width_fir_validation(self, components):
        with pytest.raises(ValueError, match="multiplier width"):
            MixedWidthFirAccelerator(*components, multiplier_width=9)
        with pytest.raises(ValueError, match="adder width"):
            MixedWidthFirAccelerator(*components, adder_width=8)

    def test_dct_matrix_has_no_zero_entries(self):
        matrix = dct_matrix()
        assert len(matrix) == 8 and all(len(row) == 8 for row in matrix)
        assert all(value != 0 for row in matrix for value in row)
        assert DctAccelerator.weights == matrix

    def test_slot_shapes(self, components):
        mvm = build_workload("mvm", *components)
        assert (mvm.num_multiplier_slots, mvm.num_adder_slots) == (8, 7)
        dct = build_workload("dct", *components)
        assert (dct.num_multiplier_slots, dct.num_adder_slots) == (8, 7)
        fir = build_workload("fir", *components)
        assert (fir.num_multiplier_slots, fir.num_adder_slots) == (7, 6)
        mixed = build_workload("fir_mixed", *components)
        assert (mixed.num_multiplier_slots, mixed.num_adder_slots) == (7, 6)
        widths = {slot.kind: slot.operand_width for slot in mixed.slots()}
        assert widths == {"multiplier": 6, "adder": 12}

    def test_fidelity_inputs_crops_1d_signals(self):
        signals = default_signal_set(48, seed=303)
        reduced, flag = fidelity_inputs(signals, 96)
        assert flag
        for signal in reduced:
            assert signal.ndim == 1 and signal.shape[0] == MIN_FIDELITY_LENGTH
        floor, _ = fidelity_inputs(signals, 1)
        assert all(s.shape[0] == MIN_FIDELITY_LENGTH for s in floor)
        full, flag = fidelity_inputs(signals, 10 ** 9)
        assert not flag
        assert all(a is b for a, b in zip(full, signals))


# --------------------------------------------------------------------- #
# Frozen golden digests of the new workloads
# --------------------------------------------------------------------- #
class TestSignalWorkloadGoldens:
    @pytest.mark.parametrize("workload", SIGNAL_WORKLOADS)
    def test_session_nsga2_run_matches_golden(self, components, golden, workload):
        config = AutoAxConfig(
            parameters=("area",),
            num_training_samples=12,
            num_random_baseline=8,
            hill_climb_iterations=60,
            image_size=32,
            seed=11,
            search_strategy="nsga2",
            workload=workload,
        )
        session = ExplorationSession(seed=11)
        result = session.run_autoax(*components, config)
        scenario = result.scenarios["area"]
        expected = golden[workload]
        assert digest(scenario.candidates) == expected["candidates"]
        assert digest(scenario.front) == expected["front"]
        assert digest(result.baseline) == expected["baseline"]
        assert len(scenario.front) == expected["num_front"]

    def test_goldens_distinct_across_signal_workloads(self, golden):
        fronts = {golden[workload]["front"] for workload in SIGNAL_WORKLOADS}
        assert len(fronts) == len(SIGNAL_WORKLOADS)
