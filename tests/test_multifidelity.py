"""Multi-fidelity search suite: EHVI, fidelity rungs, successive halving.

Covers the three layers of the ``"sh_ehvi"`` strategy plus the bugfixes
that ride along:

* the **EHVI acquisition** -- the exact 2-objective closed form against
  hand-derived deterministic limits, its seeded Monte-Carlo fallback (the
  two must agree on two objectives), the n-dimensional hypervolume it
  scores against, and the uncertainty plumbing feeding it
  (``predict_with_std`` on the GP, the random forest and
  ``ScaledRegressor``, ``estimate_batch_with_std`` on the estimators);
* the **fidelity ladder** -- ``fidelity_inputs`` centre-cropping,
  ``ErrorEvaluator``/``BatchEvaluator`` pattern-budget rungs, and the
  cache-isolation guarantee that a low-fidelity screen can never be served
  for an exact request (in either direction, including through the
  service's shared cross-tenant store);
* **resumable successive halving** -- config validation, determinism,
  checkpoint/resume through the same store/run_id plumbing NSGA-II uses,
  and the registered ``"sh_ehvi"`` strategy end to end, including a
  service job killed mid-rung that resumes to a bit-identical payload.

Run alone with ``pytest -m multifidelity``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.pareto import hypervolume_2d
from repro.engine import BatchEvaluator, EvalCache, accelerator_context
from repro.error import ErrorEvaluator
from repro.generators import build_multiplier_library
from repro.io import JsonDirectoryStore, ShardedJsonStore
from repro.ml import (
    GaussianProcessRegressor,
    LinearRegression,
    RandomForestRegressor,
    ScaledRegressor,
)
from repro.search import (
    ParetoArchive,
    SuccessiveHalvingConfig,
    default_fidelity_ladder,
    ehvi_2d,
    expected_hypervolume_improvement,
    hypervolume,
    monte_carlo_ehvi,
    run_successive_halving,
)
from repro.workloads import MIN_FIDELITY_SIDE, fidelity_inputs

pytestmark = pytest.mark.multifidelity

TINY_STD = 1e-9


# --------------------------------------------------------------------- #
# Exact 2-D EHVI
# --------------------------------------------------------------------- #
class TestEhvi2d:
    FRONT = np.array([[2.0, 2.0]])
    REFERENCE = (4.0, 4.0)

    def test_deterministic_limit_is_plain_hypervolume_improvement(self):
        # With vanishing uncertainty EHVI degrades to the deterministic
        # improvement indicator; these three values are hand-derived.
        means = np.array([[3.0, 3.0], [1.0, 3.0], [1.0, 1.0]])
        stds = np.full_like(means, TINY_STD)
        values = ehvi_2d(self.FRONT, self.REFERENCE, means, stds)
        np.testing.assert_allclose(values, [0.0, 1.0, 5.0], atol=1e-6)

    def test_empty_front_factorises_into_partial_moments(self):
        # No front: EHVI = E[(r1 - Y1)+] * E[(r2 - Y2)+], which in the
        # deterministic limit is the candidate's own box.
        values = ehvi_2d(
            np.empty((0, 2)), self.REFERENCE, [[1.0, 3.0]], [[TINY_STD, TINY_STD]]
        )
        np.testing.assert_allclose(values, [3.0], atol=1e-6)

    def test_dominated_candidate_with_uncertainty_scores_positive(self):
        dominated = np.array([[3.0, 3.0]])
        tight = ehvi_2d(self.FRONT, self.REFERENCE, dominated, [[0.01, 0.01]])
        loose = ehvi_2d(self.FRONT, self.REFERENCE, dominated, [[1.0, 1.0]])
        assert tight[0] < 1e-6
        assert loose[0] > 0.01  # uncertainty keeps exploration alive

    def test_front_points_outside_reference_are_ignored(self):
        means = np.array([[1.0, 1.0], [3.0, 3.0]])
        stds = np.full_like(means, 0.3)
        with_junk = np.vstack([self.FRONT, [[9.0, 0.5], [0.5, 9.0], [11.0, 11.0]]])
        np.testing.assert_allclose(
            ehvi_2d(with_junk, self.REFERENCE, means, stds),
            ehvi_2d(self.FRONT, self.REFERENCE, means, stds),
        )

    def test_duplicate_front_points_do_not_change_the_result(self):
        front = np.array([[1.0, 3.0], [2.0, 2.0], [3.0, 1.0]])
        means = np.array([[1.5, 1.5]])
        stds = np.array([[0.5, 0.5]])
        np.testing.assert_allclose(
            ehvi_2d(np.repeat(front, 3, axis=0), self.REFERENCE, means, stds),
            ehvi_2d(front, self.REFERENCE, means, stds),
        )

    def test_values_are_finite_and_non_negative(self):
        rng = np.random.default_rng(7)
        front = rng.uniform(0.0, 4.0, size=(12, 2))
        means = rng.uniform(-1.0, 5.0, size=(30, 2))
        stds = rng.uniform(0.0, 2.0, size=(30, 2))  # exact zeros get floored
        values = ehvi_2d(front, self.REFERENCE, means, stds)
        assert values.shape == (30,)
        assert np.all(np.isfinite(values))
        assert np.all(values >= 0.0)

    def test_mismatched_mean_std_shapes_raise(self):
        with pytest.raises(ValueError, match="matching"):
            ehvi_2d(self.FRONT, self.REFERENCE, [[1.0, 1.0]], [[0.1, 0.1], [0.1, 0.1]])


class TestMonteCarloEhvi:
    def test_agrees_with_exact_closed_form_in_2d(self):
        rng = np.random.default_rng(11)
        for case in range(3):
            front = rng.uniform(0.0, 3.0, size=(5 + case * 3, 2))
            reference = np.array([4.0, 4.0])
            means = rng.uniform(0.5, 4.5, size=(6, 2))
            stds = rng.uniform(0.05, 0.8, size=(6, 2))
            exact = ehvi_2d(front, reference, means, stds)
            sampled = monte_carlo_ehvi(
                front, reference, means, stds, num_samples=4000, seed=3
            )
            # MC error is absolute (tiny EHVIs have huge *relative* noise).
            np.testing.assert_allclose(sampled, exact, atol=0.08 * (1.0 + exact.max()))

    def test_seeded_and_reproducible(self):
        front = np.array([[1.0, 2.0], [2.0, 1.0]])
        args = (front, (3.0, 3.0), [[1.5, 1.5]], [[0.4, 0.4]])
        first = monte_carlo_ehvi(*args, num_samples=64, seed=5)
        again = monte_carlo_ehvi(*args, num_samples=64, seed=5)
        other = monte_carlo_ehvi(*args, num_samples=64, seed=6)
        np.testing.assert_array_equal(first, again)
        assert not np.array_equal(first, other)

    def test_invalid_sample_count_raises(self):
        with pytest.raises(ValueError, match="num_samples"):
            monte_carlo_ehvi(np.empty((0, 2)), (1.0, 1.0), [[0.0, 0.0]], [[1.0, 1.0]], num_samples=0)


class TestEhviDispatch:
    def test_auto_uses_exact_closed_form_for_two_objectives(self):
        front = np.array([[1.0, 2.0], [2.0, 1.0]])
        means, stds = np.array([[1.2, 1.2]]), np.array([[0.3, 0.3]])
        np.testing.assert_array_equal(
            expected_hypervolume_improvement(front, (3.0, 3.0), means, stds),
            ehvi_2d(front, (3.0, 3.0), means, stds),
        )

    def test_auto_falls_back_to_monte_carlo_beyond_two_objectives(self):
        front = np.array([[1.0, 1.0, 1.0]])
        reference = (2.0, 2.0, 2.0)
        means = np.array([[0.5, 0.5, 0.5], [1.9, 1.9, 1.9]])
        stds = np.full_like(means, 0.05)
        values = expected_hypervolume_improvement(
            front, reference, means, stds, num_samples=256, seed=2
        )
        np.testing.assert_array_equal(
            values,
            monte_carlo_ehvi(front, reference, means, stds, num_samples=256, seed=2),
        )
        assert values[0] > values[1]  # clear improver beats the dominated one

    def test_exact_method_rejects_three_objectives(self):
        with pytest.raises(ValueError, match="two objectives"):
            expected_hypervolume_improvement(
                np.empty((0, 3)), (1.0, 1.0, 1.0), [[0.0] * 3], [[1.0] * 3], method="exact"
            )

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError, match="method"):
            expected_hypervolume_improvement(
                np.empty((0, 2)), (1.0, 1.0), [[0.0, 0.0]], [[1.0, 1.0]], method="bogus"
            )


# --------------------------------------------------------------------- #
# n-D hypervolume + the 2-D clamp regression
# --------------------------------------------------------------------- #
class TestHypervolume:
    def test_matches_2d_staircase_on_random_fronts(self):
        rng = np.random.default_rng(23)
        for _ in range(5):
            points = rng.uniform(0.0, 2.0, size=(rng.integers(1, 12), 2))
            reference = (2.5, 2.5)
            assert hypervolume(points, reference) == pytest.approx(
                hypervolume_2d(points, reference)
            )

    def test_hand_derived_3d_values(self):
        assert hypervolume([[0.0, 0.0, 0.0]], (1.0, 1.0, 1.0)) == pytest.approx(1.0)
        # Boxes of volume 4 and 2 overlapping in a 1x1x1 corner.
        assert hypervolume(
            [[0.0, 0.0, 1.0], [1.0, 1.0, 0.0]], (2.0, 2.0, 2.0)
        ) == pytest.approx(4.0 + 2.0 - 1.0)

    def test_single_objective_is_a_segment(self):
        assert hypervolume([[3.0], [1.0]], (4.0,)) == pytest.approx(3.0)

    def test_out_of_reference_points_contribute_nothing(self):
        inside = [[0.5, 0.5, 0.5]]
        junk = [[5.0, 0.1, 0.1], [0.1, 5.0, 0.1], [0.1, 0.1, 5.0]]
        reference = (1.0, 1.0, 1.0)
        assert hypervolume(np.vstack([inside, junk]), reference) == pytest.approx(
            hypervolume(inside, reference)
        )
        assert hypervolume(junk, reference) == 0.0

    def test_empty_front_is_zero(self):
        assert hypervolume(np.empty((0, 3)), (1.0, 1.0, 1.0)) == 0.0


class TestHypervolume2dNeverNegative:
    """Regression: points at/past the reference must clamp to zero area."""

    def test_front_entirely_beyond_reference_scores_zero(self):
        assert hypervolume_2d([[2.0, 2.0], [3.0, 1.5]], (1.0, 1.0)) == 0.0

    def test_mixed_front_equals_filtered_subset(self):
        points = np.array([[0.2, 0.8], [0.6, 0.4], [1.7, 0.1], [0.1, 2.4]])
        reference = (1.0, 1.0)
        inside = points[np.all(points <= np.asarray(reference), axis=1)]
        assert hypervolume_2d(points, reference) == pytest.approx(
            hypervolume_2d(inside, reference)
        )

    def test_fuzzed_volumes_are_never_negative(self):
        rng = np.random.default_rng(41)
        for _ in range(200):
            points = rng.uniform(-1.0, 3.0, size=(rng.integers(1, 9), 2))
            reference = rng.uniform(-0.5, 2.0, size=2)
            assert hypervolume_2d(points, reference) >= 0.0

    def test_archive_hypervolume_with_tight_reference_is_non_negative(self):
        archive = ParetoArchive(num_objectives=2)
        for key, point in enumerate([(1.0, 5.0), (3.0, 3.0), (5.0, 1.0)]):
            archive.insert(key, point)
        assert archive.hypervolume((2.0, 2.0)) == 0.0  # everything outside
        assert archive.hypervolume((4.0, 4.0)) == pytest.approx(
            hypervolume_2d(np.array([(1.0, 5.0), (3.0, 3.0), (5.0, 1.0)]), (4.0, 4.0))
        )


# --------------------------------------------------------------------- #
# Uncertainty plumbing: GP jitter, ensembles, scaling, estimators
# --------------------------------------------------------------------- #
class TestGaussianProcessDegenerateFits:
    def test_near_duplicate_large_magnitude_rows_fit_with_jitter(self):
        # Squared-distance cancellation at 1e4 magnitudes leaves the kernel
        # matrix indefinite when the white-noise term is tiny; this exact
        # construction crashed `linalg.cholesky` before jitter escalation.
        rng = np.random.default_rng(0)
        X = np.tile(rng.normal(size=3) * 1e4, (80, 1)) + rng.normal(
            scale=1e-8, size=(80, 3)
        )
        y = rng.normal(size=80)
        model = GaussianProcessRegressor(noise=1e-10).fit(X, y)
        assert model.jitter_ > 0.0
        mean, std = model.predict_with_std(X[:5])
        assert np.all(np.isfinite(mean)) and np.all(np.isfinite(std))

    def test_exact_duplicate_rows_fit(self):
        X = np.ones((16, 2)) * 3.0
        y = np.linspace(0.0, 1.0, 16)
        model = GaussianProcessRegressor(noise=1e-9).fit(X, y)
        mean, std = model.predict_with_std([[3.0, 3.0]])
        assert mean[0] == pytest.approx(y.mean(), abs=1e-3)
        assert np.isfinite(std[0])

    def test_healthy_fit_needs_no_jitter(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(30, 2))
        model = GaussianProcessRegressor().fit(X, rng.normal(size=30))
        assert model.jitter_ == 0.0

    def test_single_sample_contract(self):
        model = GaussianProcessRegressor(noise=1e-4, signal_variance=1.0)
        model.fit([[0.0, 0.0]], [2.5])
        mean_at, std_at = model.predict_with_std([[0.0, 0.0]])
        mean_far, std_far = model.predict_with_std([[50.0, 50.0]])
        assert mean_at[0] == pytest.approx(2.5, abs=1e-3)
        assert mean_far[0] == pytest.approx(2.5)  # training mean == y0 here
        assert std_at[0] < std_far[0]
        assert std_far[0] == pytest.approx(np.sqrt(1.0 + 1e-4), rel=1e-3)


class TestEnsembleAndScaledUncertainty:
    def _data(self):
        rng = np.random.default_rng(19)
        X = rng.uniform(-2.0, 2.0, size=(60, 2))
        y = X[:, 0] ** 2 + 0.3 * X[:, 1] + rng.normal(scale=0.05, size=60)
        return X, y

    def test_forest_std_is_member_disagreement(self):
        X, y = self._data()
        model = RandomForestRegressor(n_estimators=12, random_state=5).fit(X, y)
        mean, std = model.predict_with_std(X)
        np.testing.assert_allclose(mean, model.predict(X))
        stacked = np.stack([tree.predict(X) for tree in model.estimators_])
        np.testing.assert_allclose(std, stacked.std(axis=0))
        assert np.all(std >= 0.0) and std.max() > 0.0

    def test_forest_std_validates_like_predict(self):
        X, y = self._data()
        with pytest.raises(RuntimeError):
            RandomForestRegressor(n_estimators=3).predict_with_std(X)
        model = RandomForestRegressor(n_estimators=3, random_state=1).fit(X, y)
        with pytest.raises(ValueError):
            model.predict_with_std(X[:, :1])

    def test_scaled_regressor_forwards_and_unscales_std(self):
        X, y = self._data()
        scaled = ScaledRegressor(GaussianProcessRegressor(), scale_target=True).fit(X, y)
        mean, std = scaled.predict_with_std(X[:8])
        np.testing.assert_allclose(mean, scaled.predict(X[:8]))
        assert np.all(std > 0.0)
        # Target scaling must stretch the inner model's std by y's scale.
        unscaled = ScaledRegressor(GaussianProcessRegressor(), scale_target=False).fit(
            X, (y - y.mean()) / y.std()
        )
        _, inner_std = unscaled.predict_with_std(X[:8])
        np.testing.assert_allclose(std, inner_std * y.std(), rtol=1e-6)

    def test_scaled_regressor_without_inner_std_reports_zero(self):
        X, y = self._data()
        scaled = ScaledRegressor(LinearRegression()).fit(X, y)
        mean, std = scaled.predict_with_std(X[:5])
        np.testing.assert_allclose(mean, scaled.predict(X[:5]))
        np.testing.assert_array_equal(std, np.zeros(5))


class TestEstimatorBatchStd:
    def test_shapes_and_mean_consistency(self, autoax_searchables):
        accelerator = autoax_searchables.accelerator
        rng = np.random.default_rng(2)
        configs = [accelerator.random_configuration(rng) for _ in range(6)]
        for estimator in (autoax_searchables.qor, autoax_searchables.hw):
            mean, std = estimator.estimate_batch_with_std(accelerator, configs)
            assert mean.shape == std.shape == (6,)
            np.testing.assert_allclose(mean, estimator.estimate_batch(accelerator, configs))
            assert np.all(std >= 0.0) and np.all(np.isfinite(std))

    def test_empty_batch(self, autoax_searchables):
        mean, std = autoax_searchables.qor.estimate_batch_with_std(
            autoax_searchables.accelerator, []
        )
        assert mean.shape == std.shape == (0,)


# --------------------------------------------------------------------- #
# Fidelity ladders: input cropping, pattern rungs, cache isolation
# --------------------------------------------------------------------- #
class TestFidelityInputs:
    def test_full_budget_is_the_identity(self):
        images = [np.arange(64, dtype=np.float64).reshape(8, 8)]
        reduced_images, reduced = fidelity_inputs(images, 64)
        assert reduced is False
        assert reduced_images[0] is images[0]  # same object: same cache token

    def test_reduced_budget_centre_crops(self):
        image = np.arange(32 * 32, dtype=np.float64).reshape(32, 32)
        (cropped,), reduced = fidelity_inputs([image], 256)
        assert reduced is True
        assert cropped.shape == (16, 16)
        np.testing.assert_array_equal(cropped, image[8:24, 8:24])

    def test_minimum_side_floor(self):
        image = np.zeros((32, 32))
        (cropped,), reduced = fidelity_inputs([image], 1)
        assert reduced is True
        assert cropped.shape == (MIN_FIDELITY_SIDE, MIN_FIDELITY_SIDE)

    def test_budget_below_one_raises(self):
        with pytest.raises(ValueError, match="budget"):
            fidelity_inputs([np.zeros((8, 8))], 0)

    def test_default_ladder_is_ascending_and_strictly_reduced(self):
        assert default_fidelity_ladder(5120) == (320, 1280)
        assert default_fidelity_ladder(300) == (256,)  # both factors floored
        assert default_fidelity_ladder(200) == ()  # floor >= full: no rungs
        ladder = default_fidelity_ladder(100_000)
        assert list(ladder) == sorted(ladder)
        assert all(f < 100_000 for f in ladder)
        with pytest.raises(ValueError):
            default_fidelity_ladder(0)


class TestFidelityRungCacheIsolation:
    """A 1k-pattern screen must never be served for an exhaustive request
    (nor the other way round) -- the rung is part of the cache identity."""

    @pytest.fixture(scope="class")
    def library(self):
        return build_multiplier_library(4, size=8, seed=9)

    def test_error_evaluator_rung_semantics(self, library):
        reference = library.reference()  # 8 input bits: 256 exhaustive patterns
        screen = ErrorEvaluator(reference, fidelity=100)
        assert screen.method == "monte_carlo" and screen.num_patterns == 100
        # A budget covering the full sweep *is* exact evaluation.
        covered = ErrorEvaluator(reference, fidelity=1000)
        assert covered.method == "exhaustive" and covered.num_patterns == 256
        assert ErrorEvaluator(reference).method == "exhaustive"
        with pytest.raises(ValueError, match="fidelity"):
            ErrorEvaluator(reference, fidelity=0)

    def test_screen_and_exact_never_share_cache_entries(self, library):
        reference = library.reference()
        circuits = list(library.circuits[:4])
        cache = EvalCache()
        screen = BatchEvaluator(reference, cache=cache, mode="serial", fidelity=100)
        exact = BatchEvaluator(reference, cache=cache, mode="serial")

        screened = screen.evaluate_errors(circuits)
        before = cache.stats()
        exact_reports = exact.evaluate_errors(circuits)
        delta = cache.stats().since(before)
        assert delta.hits == 0 and delta.misses == len(circuits)  # no aliasing
        assert {r.method for r in screened} == {"monte_carlo"}
        assert {r.method for r in exact_reports} == {"exhaustive"}

        # Both directions: re-running either side now is pure hits.
        for engine, reports in ((screen, screened), (exact, exact_reports)):
            before = cache.stats()
            again = engine.evaluate_errors(circuits)
            delta = cache.stats().since(before)
            assert delta.misses == 0 and delta.hits == len(circuits)
            assert [r.metrics.med for r in again] == [r.metrics.med for r in reports]

    def test_accelerator_rung_contexts_are_namespaced(self, autoax_searchables):
        accelerator = autoax_searchables.accelerator
        images = autoax_searchables.images
        full_budget = sum(image.size for image in images)
        exact_ctx = accelerator_context(accelerator, images)
        assert accelerator_context(accelerator, images, fidelity=None) == exact_ctx
        screen_ctx = accelerator_context(accelerator, images, fidelity=256)
        assert screen_ctx != exact_ctx

        rng = np.random.default_rng(4)
        configs = [accelerator.random_configuration(rng) for _ in range(3)]
        engine = BatchEvaluator(cache=EvalCache(), mode="serial")
        engine.evaluate_configurations(accelerator, images, configs, fidelity=256)
        before = engine.stats()
        engine.evaluate_configurations(accelerator, images, configs)
        delta = engine.stats().since(before)
        assert delta.hits == 0 and delta.misses == len(configs)
        # A budget >= the full pixel count aliases plain exact evaluation.
        before = engine.stats()
        engine.evaluate_configurations(
            accelerator, images, configs, fidelity=full_budget
        )
        delta = engine.stats().since(before)
        assert delta.misses == 0 and delta.hits == len(configs)

    def test_isolation_holds_through_shared_cross_tenant_store(self, library, tmp_path):
        reference = library.reference()
        circuits = list(library.circuits[:3])
        store = ShardedJsonStore(tmp_path / "shared", shards=4)

        # Tenant A runs a 100-pattern screen against the shared store.
        cache_a = EvalCache(store=store)
        BatchEvaluator(reference, cache=cache_a, mode="serial", fidelity=100).evaluate_errors(
            circuits
        )
        # Tenant B's *exact* request through a fresh cache on the same store
        # must miss all the way to a recompute...
        cache_b = EvalCache(store=store)
        exact_engine = BatchEvaluator(reference, cache=cache_b, mode="serial")
        exact_engine.evaluate_errors(circuits)
        stats = cache_b.stats()
        assert stats.hits == 0 and stats.misses == len(circuits)
        # ... while a tenant C screen at A's rung is a pure disk hit.
        cache_c = EvalCache(store=store)
        BatchEvaluator(reference, cache=cache_c, mode="serial", fidelity=100).evaluate_errors(
            circuits
        )
        stats = cache_c.stats()
        assert stats.misses == 0 and stats.hits == len(circuits)


# --------------------------------------------------------------------- #
# Resumable successive halving
# --------------------------------------------------------------------- #
def _quadratic_evaluate(rung_index, fidelity, cohort):
    """Deterministic toy evaluation: fidelity shifts values reproducibly."""
    shift = 0.0 if fidelity is None else 1.0 / fidelity
    return [
        {"f0": (c - 3.0) ** 2 + shift, "f1": (c + 1.0) ** 2 - shift} for c in cohort
    ]


def _objectives(payload):
    return (payload["f0"], payload["f1"])


class TestSuccessiveHalvingConfig:
    def test_validation(self):
        SuccessiveHalvingConfig(rungs=(100, 400, None))  # valid
        with pytest.raises(ValueError, match="at least one"):
            SuccessiveHalvingConfig(rungs=())
        with pytest.raises(ValueError, match="eta"):
            SuccessiveHalvingConfig(eta=1.0)
        with pytest.raises(ValueError, match="min_survivors"):
            SuccessiveHalvingConfig(min_survivors=0)
        with pytest.raises(ValueError, match="ascend"):
            SuccessiveHalvingConfig(rungs=(400, 100))
        with pytest.raises(ValueError, match="ascend"):
            SuccessiveHalvingConfig(rungs=(None, 100))  # None is full fidelity
        with pytest.raises(ValueError, match="positive"):
            SuccessiveHalvingConfig(rungs=(0, None))


class TestRunSuccessiveHalving:
    CONFIG = SuccessiveHalvingConfig(rungs=(16, 64, None), eta=2.0, min_survivors=2)
    CANDIDATES = [float(v) for v in range(12)]

    def test_halves_per_rung_and_keeps_the_final_cohort(self):
        result = run_successive_halving(
            candidates=self.CANDIDATES,
            evaluate=_quadratic_evaluate,
            objectives=_objectives,
            config=self.CONFIG,
        )
        assert [h["evaluated"] for h in result.history] == [12, 6, 3]
        assert [h["survivors"] for h in result.history] == [6, 3, 3]
        assert [h["fidelity"] for h in result.history] == [16, 64, None]
        assert result.resumed_from is None
        assert len(result.survivors) == len(result.evaluations) == 3
        # Survivors carry final-rung (full fidelity) payloads.
        for candidate, payload in zip(result.survivors, result.evaluations):
            assert payload == _quadratic_evaluate(2, None, [candidate])[0]
        # The quadratic's minimisers survive; the far tail cannot.
        assert all(candidate <= 4.0 for candidate in result.survivors)

    def test_deterministic(self):
        runs = [
            run_successive_halving(
                candidates=self.CANDIDATES,
                evaluate=_quadratic_evaluate,
                objectives=_objectives,
                config=self.CONFIG,
            )
            for _ in range(2)
        ]
        assert runs[0].survivors == runs[1].survivors
        assert runs[0].history == runs[1].history

    def test_empty_candidates_and_bad_evaluate_raise(self):
        with pytest.raises(ValueError, match="at least one candidate"):
            run_successive_halving(
                candidates=[], evaluate=_quadratic_evaluate, objectives=_objectives
            )
        with pytest.raises(RuntimeError, match="returned"):
            run_successive_halving(
                candidates=[1.0, 2.0],
                evaluate=lambda r, f, cohort: cohort[:1] and [{"f0": 0.0, "f1": 0.0}],
                objectives=_objectives,
            )

    def test_min_survivors_floor(self):
        config = SuccessiveHalvingConfig(rungs=(16, None), eta=100.0, min_survivors=5)
        result = run_successive_halving(
            candidates=self.CANDIDATES,
            evaluate=_quadratic_evaluate,
            objectives=_objectives,
            config=config,
        )
        assert result.history[0]["survivors"] == 5

    def test_kill_mid_run_then_resume_is_identical(self, tmp_path):
        store = JsonDirectoryStore(tmp_path / "ckpt")
        kwargs = dict(
            candidates=self.CANDIDATES,
            evaluate=_quadratic_evaluate,
            objectives=_objectives,
            config=self.CONFIG,
            run_id="sh-test",
            token="tok-1",
        )
        uninterrupted = run_successive_halving(**kwargs)

        rungs_seen = []

        def killer(stats):
            rungs_seen.append(stats["rung"])
            if stats["rung"] == 0:
                raise KeyboardInterrupt("simulated death after rung 0")

        with pytest.raises(KeyboardInterrupt):
            run_successive_halving(store=store, on_rung=killer, **kwargs)
        assert rungs_seen == [0]  # checkpoint for rung 0 is already on disk

        resumed = run_successive_halving(store=store, **kwargs)
        assert resumed.resumed_from == 1
        assert resumed.survivors == uninterrupted.survivors
        assert resumed.evaluations == uninterrupted.evaluations
        assert resumed.history == uninterrupted.history

    def test_changed_token_invalidates_the_checkpoint(self, tmp_path):
        store = JsonDirectoryStore(tmp_path / "ckpt")
        calls = []

        def counting_evaluate(rung_index, fidelity, cohort):
            calls.append(rung_index)
            return _quadratic_evaluate(rung_index, fidelity, cohort)

        kwargs = dict(
            candidates=self.CANDIDATES,
            evaluate=counting_evaluate,
            objectives=_objectives,
            config=self.CONFIG,
            store=store,
            run_id="sh-test",
        )
        run_successive_halving(token="tok-1", **kwargs)
        assert calls == [0, 1, 2]
        result = run_successive_halving(token="tok-2", **kwargs)  # different work
        assert calls == [0, 1, 2, 0, 1, 2]  # fresh run, no rung skipped
        assert result.resumed_from is None
        # Same token again: everything restores, zero evaluations.
        final = run_successive_halving(token="tok-2", **kwargs)
        assert calls == [0, 1, 2, 0, 1, 2]
        assert final.resumed_from == len(self.CONFIG.rungs)
        assert final.survivors == result.survivors


# --------------------------------------------------------------------- #
# The registered "sh_ehvi" strategy
# --------------------------------------------------------------------- #
class TestShEhviStrategy:
    KNOBS = dict(iterations=60, archive_limit=8, seed=5, initial_cohort=10)

    def _run(self, searchables, **overrides):
        from repro.autoax.search import SEARCH_STRATEGIES

        strategy = SEARCH_STRATEGIES.get("sh_ehvi")
        kwargs = dict(self.KNOBS, images=searchables.images, **overrides)
        return strategy(
            searchables.accelerator, searchables.qor, searchables.hw, **kwargs
        )

    def test_registered_and_marked_as_needing_exact_inputs(self):
        from repro.autoax.search import SEARCH_STRATEGIES

        assert "sh_ehvi" in SEARCH_STRATEGIES
        assert SEARCH_STRATEGIES.get("sh_ehvi").needs_exact_inputs is True

    def test_requires_images(self, autoax_searchables):
        from repro.autoax.search import SEARCH_STRATEGIES

        with pytest.raises(ValueError, match="images"):
            SEARCH_STRATEGIES.get("sh_ehvi")(
                autoax_searchables.accelerator,
                autoax_searchables.qor,
                autoax_searchables.hw,
            )

    def test_returns_exact_measurements_on_a_pareto_front(self, autoax_searchables):
        telemetry = {}
        entries = self._run(autoax_searchables, cache=EvalCache(), telemetry=telemetry)
        assert 0 < len(entries) <= self.KNOBS["archive_limit"]
        accelerator = autoax_searchables.accelerator
        for entry in entries[:2]:  # exact, not estimated, values
            assert entry.quality == pytest.approx(
                accelerator.quality(autoax_searchables.images, entry.config)
            )
            assert entry.cost == accelerator.hw_cost(entry.config)
        # Telemetry: rung pattern counts ascend to the full budget, and the
        # exact-evaluation spend is a small fraction of pool * full.
        full = telemetry["full_patterns"]
        patterns = [r["patterns"] for r in telemetry["rungs"]]
        assert patterns == sorted(patterns) and patterns[-1] == full
        assert telemetry["exact_pattern_budget"] < telemetry["pool"] * full

    def test_deterministic_and_engine_serial_equivalence(self, autoax_searchables):
        first = self._run(autoax_searchables, cache=EvalCache())
        second = self._run(autoax_searchables, cache=EvalCache())
        engine = BatchEvaluator(cache=EvalCache(), mode="serial")
        third = self._run(autoax_searchables, engine=engine)
        key = lambda entries: [(e.config, e.quality, e.cost) for e in entries]
        assert key(first) == key(second) == key(third)

    def test_subsequent_exact_pass_is_pure_cache_hits(self, autoax_searchables):
        from repro.autoax.search import exact_reevaluation

        engine = BatchEvaluator(cache=EvalCache(), mode="serial")
        entries = self._run(autoax_searchables, engine=engine)
        before = engine.stats()
        reevaluated = exact_reevaluation(
            autoax_searchables.accelerator,
            autoax_searchables.images,
            entries,
            engine=engine,
        )
        delta = engine.stats().since(before)
        assert delta.misses == 0 and delta.hits == len(entries)
        assert [(e.quality, e.cost) for e in reevaluated] == [
            (e.quality, e.cost) for e in entries
        ]

    def test_checkpoint_resume_matches_uninterrupted(self, autoax_searchables, tmp_path):
        store = JsonDirectoryStore(tmp_path / "sh")
        uninterrupted = self._run(autoax_searchables, cache=EvalCache())

        class Die(Exception):
            pass

        def killer(stats):
            if stats["rung"] == 0:
                raise Die

        with pytest.raises(Die):
            self._run(
                autoax_searchables, cache=EvalCache(), store=store, on_generation=killer
            )
        telemetry = {}
        resumed = self._run(
            autoax_searchables, cache=EvalCache(), store=store, telemetry=telemetry
        )
        assert telemetry["resumed_from"] == 1
        key = lambda entries: [(e.config, e.quality, e.cost) for e in entries]
        assert key(resumed) == key(uninterrupted)


# --------------------------------------------------------------------- #
# Service integration: the flow knob and kill-mid-rung resume
# --------------------------------------------------------------------- #
SH_EHVI_JOB = {
    "parameters": ["area"],
    "num_training_samples": 6,
    "num_random_baseline": 4,
    "hill_climb_iterations": 30,
    "image_size": 16,
    "multiplier_bits": 4,
    "multiplier_library_size": 16,
    "num_multipliers": 4,
    "adder_bits": 8,
    "adder_library_size": 12,
    "num_adders": 3,
    "search_strategy": "sh_ehvi",
    "fidelity_ladder": [96, 256],
}


class TestShEhviService:
    def test_flow_exposes_the_ladder_knob(self):
        from repro.service.flows import DEFAULT_AUTOAX_PARAMS

        assert "fidelity_ladder" in DEFAULT_AUTOAX_PARAMS
        assert DEFAULT_AUTOAX_PARAMS["fidelity_ladder"] is None

    def test_kill_mid_rung_then_resume_is_bit_identical(self, tmp_path):
        from repro.service import JobClient, JobRegistry, Worker

        registry = JobRegistry(tmp_path / "reference")
        JobClient(registry).submit("autoax", SH_EHVI_JOB, job_id="reference")
        reference = Worker(registry, engine_mode="serial").run_once()
        assert reference.state == "done"

        class KilledMidRung(Worker):
            """Dies after the first successive-halving rung heartbeat."""

            beats = 0

            def _heartbeat(self, record):
                super()._heartbeat(record)
                progress = record.progress or {}
                if progress.get("status") == "started" and progress.get(
                    "stage", ""
                ).startswith("scenario-"):
                    KilledMidRung.beats += 1
                    if KilledMidRung.beats >= 1:
                        raise KeyboardInterrupt("simulated death mid-rung")

        service = JobRegistry(tmp_path / "service", lease_ttl=0.05)
        JobClient(service).submit("autoax", SH_EHVI_JOB, job_id="victim")
        with pytest.raises(KeyboardInterrupt):
            KilledMidRung(service, engine_mode="serial").run_once()
        assert KilledMidRung.beats == 1
        assert service.get("victim").state == "running"  # lease still held
        time.sleep(0.1)

        record = Worker(service, engine_mode="serial").run_once()
        assert record.state == "done"
        assert record.attempts == 2
        assert record.digest == reference.digest
